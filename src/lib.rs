//! # aapm-suite — the Application-Aware Power Management reproduction
//!
//! Umbrella crate of the reproduction of *Application-Aware Power
//! Management* (Rajamani, Hanson, Rubio, Ghiasi, Rawson — IISWC 2006).
//! It re-exports the workspace crates and hosts the runnable examples and
//! cross-crate integration tests.
//!
//! * [`platform`] — the simulated Pentium M 755 (p-states, pipeline/memory
//!   model, caches, DVFS, ground-truth power, event counters);
//! * [`workloads`] — MS-Loops microbenchmarks and the synthetic SPEC
//!   CPU2000 suite;
//! * [`telemetry`] — the simulated measurement rig (power DAQ, PMC driver);
//! * [`models`] — counter-based power/performance estimation and training;
//! * [`aapm`] — the three-phase governors: PerformanceMaximizer, PowerSave,
//!   baselines, and the simulation runtime;
//! * [`experiments`] — regeneration of every table and figure.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use aapm;
pub use aapm_experiments as experiments;
pub use aapm_models as models;
pub use aapm_platform as platform;
pub use aapm_telemetry as telemetry;
pub use aapm_workloads as workloads;
