//! `aapm-sim` — run any workload under any governor and inspect the result.
//!
//! ```text
//! aapm-sim --workload ammp --governor pm --limit 14.5
//! aapm-sim --workload swim --governor ps --floor 0.8 --trace trace.csv
//! aapm-sim --workload crafty --governor thermal-pm --limit 17.5 --cap 72
//! aapm-sim --list-workloads
//! ```
//!
//! Governors: `unconstrained`, `static-<mhz>`, `dbs`, `pm`, `pm-feedback`,
//! `thermal-pm`, `ps`, `ps-alt` (exponent 0.59), `throttle-save`.
//! `pm`-family governors train the power model on the MS-Loops first
//! (paper §III.A) unless `--paper-model` selects the published Table II
//! coefficients.

use std::fmt::Write as _;
use std::process::ExitCode;

use aapm::baselines::{DemandBasedSwitching, StaticClock, Unconstrained};
use aapm::feedback::FeedbackPm;
use aapm::governor::Governor;
use aapm::limits::{PerformanceFloor, PowerLimit};
use aapm::pm::PerformanceMaximizer;
use aapm::ps::PowerSave;
use aapm::runtime::{Session, SimulationConfig};
use aapm::thermal_guard::{ThermalGuard, ThermalGuardConfig};
use aapm::throttle_save::ThrottleSave;
use aapm_models::perf_model::{PerfModel, PerfModelParams};
use aapm_models::power_model::PowerModel;
use aapm_models::training::{collect_training_data, train_power_model, TrainingConfig};
use aapm_platform::config::MachineConfig;
use aapm_platform::pstate::PStateTable;
use aapm_platform::thermal::Celsius;
use aapm_platform::units::MegaHertz;
use aapm_workloads::spec;

#[derive(Debug)]
struct Args {
    workload: String,
    governor: String,
    limit: f64,
    floor: f64,
    cap: f64,
    seed: u64,
    scale: f64,
    paper_model: bool,
    trace_path: Option<String>,
    workload_file: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            workload: "ammp".into(),
            governor: "pm".into(),
            limit: 14.5,
            floor: 0.8,
            cap: 77.0,
            seed: 42,
            scale: 1.0,
            paper_model: false,
            trace_path: None,
            workload_file: None,
        }
    }
}

fn usage() {
    eprintln!(
        "usage: aapm-sim [--workload NAME | --workload-file FILE] [--governor G]\n\
        \u{20}               [--limit W] [--floor F]\n\
        \u{20}               [--cap C] [--seed N] [--scale X] [--paper-model] [--trace FILE]\n\
        \u{20}      aapm-sim --list-workloads | --list-governors"
    );
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args::default();
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--list-workloads" => {
                for b in spec::suite() {
                    println!("{}", b.name());
                }
                return Ok(None);
            }
            "--list-governors" => {
                for g in [
                    "unconstrained",
                    "static-<mhz>",
                    "dbs",
                    "pm",
                    "pm-feedback",
                    "thermal-pm",
                    "ps",
                    "ps-alt",
                    "throttle-save",
                ] {
                    println!("{g}");
                }
                return Ok(None);
            }
            "--workload" => args.workload = value("--workload")?,
            "--workload-file" => args.workload_file = Some(value("--workload-file")?),
            "--governor" => args.governor = value("--governor")?,
            "--limit" => {
                args.limit = value("--limit")?.parse().map_err(|e| format!("--limit: {e}"))?
            }
            "--floor" => {
                args.floor = value("--floor")?.parse().map_err(|e| format!("--floor: {e}"))?
            }
            "--cap" => args.cap = value("--cap")?.parse().map_err(|e| format!("--cap: {e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--scale" => {
                args.scale = value("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?
            }
            "--paper-model" => args.paper_model = true,
            "--trace" => args.trace_path = Some(value("--trace")?),
            "--help" | "-h" => {
                usage();
                return Ok(None);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Some(args))
}

fn power_model(args: &Args, table: &PStateTable) -> Result<PowerModel, String> {
    if args.paper_model {
        return Ok(PowerModel::paper_table_ii());
    }
    eprintln!("training the power model on the MS-Loops (use --paper-model to skip)…");
    let data = collect_training_data(&TrainingConfig::default(), table)
        .map_err(|e| format!("training failed: {e}"))?;
    train_power_model(&data).map_err(|e| format!("fit failed: {e}"))
}

fn build_governor(args: &Args, table: &PStateTable) -> Result<Box<dyn Governor>, String> {
    let limit = PowerLimit::new(args.limit).map_err(|e| e.to_string())?;
    let floor = PerformanceFloor::new(args.floor).map_err(|e| e.to_string())?;
    Ok(match args.governor.as_str() {
        "unconstrained" => Box::new(Unconstrained::new()),
        "dbs" => Box::new(DemandBasedSwitching::new()),
        "pm" => Box::new(PerformanceMaximizer::new(power_model(args, table)?, limit)),
        "pm-feedback" => Box::new(FeedbackPm::new(power_model(args, table)?, limit)),
        "thermal-pm" => {
            let config = ThermalGuardConfig {
                cap: Celsius::new(args.cap),
                ..ThermalGuardConfig::default()
            };
            Box::new(ThermalGuard::with_config(
                PerformanceMaximizer::new(power_model(args, table)?, limit),
                config,
            ))
        }
        "ps" => Box::new(PowerSave::new(PerfModel::new(PerfModelParams::paper()), floor)),
        "ps-alt" => {
            Box::new(PowerSave::new(PerfModel::new(PerfModelParams::paper_alternate()), floor))
        }
        "throttle-save" => Box::new(ThrottleSave::new(floor)),
        other => {
            if let Some(mhz) = other.strip_prefix("static-") {
                let mhz: u32 = mhz.parse().map_err(|e| format!("static frequency: {e}"))?;
                let id = table
                    .id_of_frequency(MegaHertz::new(mhz))
                    .map_err(|e| e.to_string())?;
                Box::new(StaticClock::new(id))
            } else {
                return Err(format!("unknown governor `{other}` (see --list-governors)"));
            }
        }
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            usage();
            return ExitCode::FAILURE;
        }
    };

    let base_program = if let Some(path) = &args.workload_file {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match aapm_workloads::dsl::parse_program(&text) {
            Ok(program) => program,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let Some(bench) = spec::by_name(&args.workload) else {
            eprintln!("error: unknown workload `{}` (see --list-workloads)", args.workload);
            return ExitCode::FAILURE;
        };
        bench.program().clone()
    };
    let table = PStateTable::pentium_m_755();
    let mut governor = match build_governor(&args, &table) {
        Ok(governor) => governor,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    let program = base_program.scaled(args.scale);
    let report = match Session::builder(MachineConfig::pentium_m_755(args.seed), program)
        .config(SimulationConfig { seed: args.seed ^ 0x51_0b, ..SimulationConfig::default() })
        .governor(governor.as_mut())
        .run()
    {
        Ok((report, _faults)) => report,
        Err(e) => {
            eprintln!("run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("workload   : {}", report.workload);
    println!("governor   : {}", report.governor);
    println!("completed  : {}", report.completed);
    println!("time       : {}", report.execution_time);
    println!("energy     : {}", report.measured_energy);
    if let Some(mean) = report.mean_power() {
        println!("mean power : {mean}");
    }
    if let Some(max) = report.max_power() {
        println!("peak sample: {max}");
    }
    let max_window =
        report.trace.moving_average_power(10).into_iter().fold(0.0f64, f64::max);
    println!("peak 100ms : {max_window:.3} W");
    println!("transitions: {}", report.transitions);
    println!("residency  :");
    for (id, fraction) in report.trace.pstate_residency() {
        let mhz = table.get(id).map(|s| s.frequency().mhz()).unwrap_or(0);
        println!("  {mhz:>5} MHz  {:>5.1}%", fraction * 100.0);
    }

    if let Some(path) = &args.trace_path {
        let mut csv = String::from("t_ms,power_w,true_power_w,freq_mhz,ipc,dpc\n");
        for r in report.trace.records() {
            let mhz = table.get(r.pstate).map(|s| s.frequency().mhz()).unwrap_or(0);
            let _ = writeln!(
                csv,
                "{:.0},{:.4},{:.4},{},{},{}",
                r.time.millis(),
                r.power.watts(),
                r.true_power.watts(),
                mhz,
                r.ipc.map_or_else(|| "".into(), |v| format!("{v:.4}")),
                r.dpc.map_or_else(|| "".into(), |v| format!("{v:.4}")),
            );
        }
        if let Err(e) = std::fs::write(path, csv) {
            eprintln!("failed to write trace: {e}");
            return ExitCode::FAILURE;
        }
        println!("trace      : {path}");
    }
    ExitCode::SUCCESS
}
