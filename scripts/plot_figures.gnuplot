# Renders the paper's figures from the CSVs that `aapm-experiments all
# --csv results/` writes. Requires gnuplot 5+.
#
#   gnuplot -e "dir='results'" scripts/plot_figures.gnuplot
#
# Outputs PNGs next to the CSVs.

if (!exists("dir")) dir = "results"
set datafile separator ","
set key outside
set grid

# Figure 1 — power traces across the suite at 2 GHz.
set terminal pngcairo size 1400,500
set output dir."/fig1_power_variation.png"
set title "Power variation, SPEC CPU2000 at 2 GHz (paper Fig. 1)"
set xlabel "sample time (ms, per benchmark)"
set ylabel "power (W)"
plot dir."/fig1_trace.csv" using 2:3 every ::1 with dots notitle

# Figure 2 — relative performance across three p-states.
set terminal pngcairo size 700,500
set output dir."/fig2_pstate_impact.png"
set title "Performance impact of p-states (paper Fig. 2)"
set style data histogram
set style histogram clustered
set style fill solid 0.8
set ylabel "performance relative to 2000 MHz"
set yrange [0.7:1.05]
plot dir."/fig2_relative_performance.csv" using 2:xtic(1) every ::1 title "1600 MHz", \
     '' using 3 every ::1 title "1800 MHz", \
     '' using 4 every ::1 title "2000 MHz"

# Figure 5 — PM on ammp: power and frequency over time.
set terminal pngcairo size 1200,600
set output dir."/fig5_pm_trace.png"
set title "PM controlling ammp (paper Fig. 5)"
set xlabel "time (ms)"
set ylabel "power (W)"
set y2label "frequency (MHz)"
set y2tics
plot dir."/fig5_trace.csv" using 2:($1 eq "unconstrained" ? $3 : 1/0) every ::1 with lines title "unconstrained (W)", \
     '' using 2:(strcol(1) eq "pm-14.5W" ? $3 : 1/0) every ::1 with lines title "PM 14.5 W (W)", \
     '' using 2:(strcol(1) eq "pm-10.5W" ? $3 : 1/0) every ::1 with lines title "PM 10.5 W (W)", \
     '' using 2:(strcol(1) eq "pm-10.5W" ? $4 : 1/0) every ::1 axes x1y2 with steps title "PM 10.5 W (MHz)"

# Figure 6 — suite performance vs power limit.
set terminal pngcairo size 800,500
set output dir."/fig6_perf_vs_limit.png"
set title "Performance vs power limit (paper Fig. 6)"
set xlabel "power limit (W)"
set ylabel "normalized performance"
set xrange [18:10] reverse
set yrange [0.7:1.02]
set y2tics
unset y2label
plot dir."/fig6_performance_vs_limit.csv" using 1:2 every ::1 with linespoints title "PM (dynamic)", \
     '' using 1:4 every ::1 with points pt 7 title "static"

# Figure 7 — per-benchmark speedups at 17.5 W.
set terminal pngcairo size 1400,500
set output dir."/fig7_pm_speedup.png"
set title "PM and unconstrained speedup over static 1800 MHz at 17.5 W (paper Fig. 7)"
set style data histogram
set style histogram clustered
set style fill solid 0.8
set xtics rotate by -45
set ylabel "speedup"
set yrange [0.95:1.15]
set xrange [*:*] noreverse
plot dir."/fig7_speedups.csv" using 2:xtic(1) every ::1 title "PM @17.5 W", \
     '' using 3 every ::1 title "unconstrained (2 GHz)"

# Figure 8 — PS on ammp: frequency trace.
set terminal pngcairo size 1200,500
set output dir."/fig8_ps_trace.png"
set title "PS on ammp, 80% floor (paper Fig. 8)"
set xlabel "time (ms)"
set ylabel "power (W)"
set y2label "frequency (MHz)"
set y2tics
set yrange [*:*]
plot dir."/fig8_trace.csv" using 1:2 every ::1 with lines title "power (W)", \
     '' using 1:3 every ::1 axes x1y2 with steps title "frequency (MHz)"

# Figure 9 — suite reduction & savings vs floor (first four rows).
set terminal pngcairo size 700,500
set output dir."/fig9_ps_suite.png"
set title "PS suite trade-off vs floor (paper Fig. 9)"
set style data histogram
set style histogram clustered
set style fill solid 0.8
set ylabel "percent"
set yrange [0:70]
# (fig9's CSV stores percent strings like "19.1%"; strip the sign)
pctval(s) = real(s[1:strlen(s)-1])
plot dir."/fig9_suite.csv" using (pctval(strcol(3))):xtic(1) every ::1::4 title "perf reduction", \
     '' using (pctval(strcol(4))) every ::1::4 title "energy savings"
