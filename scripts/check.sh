#!/usr/bin/env bash
# Full local gate: release build, the whole test suite, and clippy with
# warnings promoted to errors. Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --all-targets --offline -- -D warnings
cargo bench --no-run --offline

# Parallel-harness smoke: the full suite on a 2-wide pool must complete and
# leave the wall-clock/speedup report behind.
cargo run --release --offline -p aapm-experiments -- all --jobs 2 > /dev/null
test -s results/BENCH_suite.json

echo "check.sh: all gates passed"
