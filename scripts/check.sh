#!/usr/bin/env bash
# Full local gate: release build, the whole test suite, and clippy with
# warnings promoted to errors. Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --all-targets --offline -- -D warnings
cargo bench --no-run --offline

# Parallel-harness smoke: the full suite on a 2-wide pool must complete and
# leave the wall-clock/speedup report behind.
cargo run --release --offline -p aapm-experiments -- all --jobs 2 > /dev/null
test -s results/BENCH_suite.json

# Observability smoke: a suite cell with tracing and metrics enabled must
# emit parseable JSONL traces and a non-trivial aggregate snapshot.
rm -rf results/trace-smoke results/METRICS_fault_matrix.json
cargo run --release --offline -p aapm-experiments -- fault-matrix --jobs 2 \
    --trace-out results/trace-smoke \
    --metrics-out results/METRICS_fault_matrix.json > /dev/null
python3 - <<'EOF'
import json, pathlib, sys

traces = sorted(pathlib.Path("results/trace-smoke").glob("*.jsonl"))
assert traces, "no trace files written"
events = 0
for trace in traces:
    for i, line in enumerate(trace.read_text().splitlines(), 1):
        event = json.loads(line)
        assert "t" in event and "event" in event, f"{trace}:{i}: malformed event {event}"
        events += 1
assert events > 0, "no events in any trace"

snapshot = json.loads(pathlib.Path("results/METRICS_fault_matrix.json").read_text())
assert snapshot["runs"] > 0, snapshot
counters = snapshot["counters"]
assert any(name.startswith("fault.") for name in counters), counters
assert any(name.startswith("actuator.") for name in counters), counters
assert counters.get("runtime.intervals", 0) > 0, counters
print(f"observability smoke: {len(traces)} trace(s), {events} event(s), "
      f"{snapshot['runs']} run(s) aggregated")
EOF

# Determinism with the registry installed: the dedicated cross-width test.
cargo test -q --offline -p aapm-experiments --test parallel_determinism \
    observer_outputs_are_byte_identical_across_widths

echo "check.sh: all gates passed"
