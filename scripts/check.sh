#!/usr/bin/env bash
# Full local gate: release build, the whole test suite, and clippy with
# warnings promoted to errors. Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --all-targets --offline -- -D warnings

echo "check.sh: all gates passed"
