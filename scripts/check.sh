#!/usr/bin/env bash
# Full local gate: release build, the whole test suite, and clippy with
# warnings promoted to errors. Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --all-targets --offline -- -D warnings
cargo bench --no-run --offline
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q --offline

# Deprecation gate: the pre-builder run/run_with_faults/run_observed free
# functions are deleted. The symbols must stay gone everywhere — as
# definitions or as call sites; every run goes through Session::builder.
if grep -rnE '\b(run_with_faults|run_observed|runtime::run)\b' \
    --include='*.rs' src examples tests crates; then
    echo "deprecation gate FAIL: deleted run_*/runtime::run symbols reappeared" >&2
    exit 1
fi

# Parallel-harness smoke: the full suite on a 2-wide pool must complete and
# leave the wall-clock/speedup report behind.
cargo run --release --offline -p aapm-experiments -- all --jobs 2 > /dev/null
test -s results/BENCH_suite.json

# Observability smoke: a suite cell with tracing and metrics enabled must
# emit parseable JSONL traces and a non-trivial aggregate snapshot.
rm -rf results/trace-smoke results/METRICS_fault_matrix.json
cargo run --release --offline -p aapm-experiments -- fault-matrix --jobs 2 \
    --trace-out results/trace-smoke \
    --metrics-out results/METRICS_fault_matrix.json > /dev/null
python3 - <<'EOF'
import json, pathlib, sys

traces = sorted(pathlib.Path("results/trace-smoke").glob("*.jsonl"))
assert traces, "no trace files written"
events = 0
for trace in traces:
    for i, line in enumerate(trace.read_text().splitlines(), 1):
        event = json.loads(line)
        assert "t" in event and "event" in event, f"{trace}:{i}: malformed event {event}"
        events += 1
assert events > 0, "no events in any trace"

snapshot = json.loads(pathlib.Path("results/METRICS_fault_matrix.json").read_text())
assert snapshot["runs"] > 0, snapshot
counters = snapshot["counters"]
assert any(name.startswith("fault.") for name in counters), counters
assert any(name.startswith("actuator.") for name in counters), counters
assert counters.get("runtime.intervals", 0) > 0, counters
print(f"observability smoke: {len(traces)} trace(s), {events} event(s), "
      f"{snapshot['runs']} run(s) aggregated")
EOF

# Determinism with the registry installed: the dedicated cross-width test.
cargo test -q --offline -p aapm-experiments --test parallel_determinism \
    observer_outputs_are_byte_identical_across_widths

# Adversarial corpus gate: every committed fixture must replay to its
# recorded verdict (exit 0 means all matched), byte-identically across
# pool widths, and the corpus must hold its 13-fixture floor.
cargo run --release --offline -p aapm-experiments -- --replay-corpus --jobs 1 \
    > results/corpus-replay.jobs1.txt
for jobs in 2 8; do
    cargo run --release --offline -p aapm-experiments -- --replay-corpus --jobs "$jobs" \
        > "results/corpus-replay.jobs${jobs}.txt"
    cmp "results/corpus-replay.jobs1.txt" "results/corpus-replay.jobs${jobs}.txt"
done
fixtures=$(wc -l < results/corpus-replay.jobs1.txt)
if [ "$fixtures" -lt 13 ]; then
    echo "corpus gate FAIL: only ${fixtures} fixture(s) replayed (floor is 13)" >&2
    exit 1
fi
rm -f results/corpus-replay.jobs*.txt
echo "corpus gate: ${fixtures} fixtures replayed byte-identically at --jobs 1/2/8"

# Adaptive-refit smoke: the static-vs-adaptive comparison must run on a
# 2-wide pool and agree byte for byte with the serial run (the refit
# layer's RLS state lives inside each cell, so pool width must not leak
# into the results).
cargo run --release --offline -p aapm-experiments -- adaptive --jobs 1 \
    > results/adaptive.jobs1.txt
cargo run --release --offline -p aapm-experiments -- adaptive --jobs 2 \
    > results/adaptive.jobs2.txt
cmp results/adaptive.jobs1.txt results/adaptive.jobs2.txt
rm -f results/adaptive.jobs*.txt
echo "adaptive gate: static-vs-adaptive experiment byte-identical at --jobs 1/2"

# Fleet smoke: the hierarchical-vs-uniform fleet experiment must run on a
# 2-wide pool and agree byte for byte with the serial run (per-arm fleets
# and controllers live inside each cell, so pool width must not leak into
# the discrete-event schedule or the budget-tree arithmetic).
cargo run --release --offline -p aapm-experiments -- fleet --jobs 1 \
    > results/fleet.jobs1.txt
cargo run --release --offline -p aapm-experiments -- fleet --jobs 2 \
    > results/fleet.jobs2.txt
cmp results/fleet.jobs1.txt results/fleet.jobs2.txt
rm -f results/fleet.jobs*.txt
echo "fleet gate: hierarchical-vs-uniform experiment byte-identical at --jobs 1/2"

# Serve smoke: the open-loop SLO-governor experiment must run on a 2-wide
# pool and agree byte for byte with the serial run (each arm owns its
# arrival streams and meter, so pool width must not perturb one draw of
# the request processes or the fleet spike stage).
cargo run --release --offline -p aapm-experiments -- serve --jobs 1 \
    > results/serve.jobs1.txt
cargo run --release --offline -p aapm-experiments -- serve --jobs 2 \
    > results/serve.jobs2.txt
cmp results/serve.jobs1.txt results/serve.jobs2.txt
rm -f results/serve.jobs*.txt
echo "serve gate: slo-save-vs-static-cap experiment byte-identical at --jobs 1/2"

# Fuzz smoke: a fixed-seed sweep through the property oracles. Findings
# (cap/floor, the paper-expected model-deception violations) are reported
# but tolerated; any universal failure — panic, non-finite metric,
# conservation or watchdog-liveness breach — fails the gate and prints a
# shrunk counterexample to commit under corpus/.
cargo run --release --offline -p aapm-experiments -- --fuzz \
    --cases 512 --seed 20260807 > /dev/null

# bench-gate: re-run the machine bench and compare against the committed
# baseline. An attempt fails on a >20% throughput regression (or a >25%
# slower serial suite) and prints the simulated-seconds-per-wall-second
# headline. The committed baseline is conservative (minimum throughput /
# maximum wall over repeated runs) and the gate allows up to three
# attempts — shared-host scheduler noise can sink any single attempt, but
# a real regression (e.g. losing the fast-forward path) fails all three.
bench_gate_ok=0
for attempt in 1 2 3; do
    cargo run --release --offline -p aapm-experiments -- --bench-machine \
        --out results/BENCH_machine.current.json
    if python3 - <<'EOF'
import json, pathlib, sys

base = json.loads(pathlib.Path("results/BENCH_machine.json").read_text())
cur = json.loads(pathlib.Path("results/BENCH_machine.current.json").read_text())

failures = []
for key in ("ticked_sim_per_wall", "batched_sim_per_wall",
            "fastforward_sim_per_wall", "fleet_sim_per_wall",
            "serve_sim_per_wall", "cache_maccesses_per_sec"):
    floor = base[key] * 0.8
    if cur[key] < floor:
        failures.append(f"{key}: {cur[key]:.1f} < 80% of baseline {base[key]:.1f}")
# The fleet-scale headline claim is absolute, not relative: 10,000 nodes
# must simulate faster than real time.
if cur["fleet_sim_per_wall"] <= 1.0:
    failures.append(
        f"fleet_sim_per_wall: {cur['fleet_sim_per_wall']:.2f} sim-s/wall-s "
        f"is not faster than real time at 10k nodes")
ceiling = base["suite_serial_wall_s"] * 1.25
if cur["suite_serial_wall_s"] > ceiling:
    failures.append(
        f"suite_serial_wall_s: {cur['suite_serial_wall_s']:.3f}s > 125% of "
        f"baseline {base['suite_serial_wall_s']:.3f}s")

print(f"bench-gate: tick {cur['ticked_sim_per_wall']:.0f} sim-s/wall-s, "
      f"batched {cur['batched_sim_per_wall']:.0f} sim-s/wall-s, "
      f"fast-forward {cur['fastforward_sim_per_wall']:.0f} sim-s/wall-s, "
      f"fleet(10k) {cur['fleet_sim_per_wall']:.0f} sim-s/wall-s, "
      f"serve {cur['serve_sim_per_wall']:.0f} sim-s/wall-s, "
      f"cache {cur['cache_maccesses_per_sec']:.1f} Maccess/s, "
      f"serial suite {cur['suite_serial_wall_s']:.3f}s "
      f"(baseline {base['suite_serial_wall_s']:.3f}s)")
for failure in failures:
    print(f"bench-gate: {failure}", file=sys.stderr)
sys.exit(1 if failures else 0)
EOF
    then
        bench_gate_ok=1
        break
    fi
    echo "bench-gate: attempt ${attempt}/3 missed the baseline; retrying" >&2
done
rm -f results/BENCH_machine.current.json
if [ "${bench_gate_ok}" -ne 1 ]; then
    echo "bench-gate FAIL: three consecutive attempts below baseline" >&2
    exit 1
fi

echo "check.sh: all gates passed"
