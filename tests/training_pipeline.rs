//! Integration test of the full training pipeline: address streams →
//! cache simulation → machine runs → fitted models → governor behaviour.

use aapm::governor::{Governor, SampleContext};
use aapm::limits::PowerLimit;
use aapm::pm::PerformanceMaximizer;
use aapm_models::training::{
    collect_training_data, train_perf_model, train_power_model, TrainingConfig,
};
use aapm_platform::events::HardwareEvent;
use aapm_platform::pstate::{PStateId, PStateTable};
use aapm_platform::units::Seconds;
use aapm_telemetry::pmc::CounterSample;

#[test]
fn trained_models_drive_sensible_governor_decisions() {
    let table = PStateTable::pentium_m_755();
    let config = TrainingConfig { samples_per_point: 15, ..TrainingConfig::default() };
    let data = collect_training_data(&config, &table).expect("training data");
    let power_model = train_power_model(&data).expect("power model");
    let perf_fit = train_perf_model(&data);

    // The fits are sane.
    assert!(perf_fit.mean_relative_error < 0.1);
    assert!(perf_fit.params.exponent > 0.3 && perf_fit.params.exponent <= 1.0);

    // A trained PM must pick high frequency for a cool sample and low
    // frequency for a hot one.
    let mut pm = PerformanceMaximizer::new(power_model, PowerLimit::new(12.5).unwrap());
    let sample = |dpc: f64| {
        let cycles = 20e6;
        CounterSample {
            start: Seconds::ZERO,
            end: Seconds::from_millis(10.0),
            cycles,
            counts: vec![(HardwareEvent::InstructionsDecoded, dpc * cycles, true)],
        }
    };
    let cool = sample(0.1);
    let cool_ctx = SampleContext {
        counters: &cool,
        power: None, temperature: None,
        current: PStateId::new(7),
        table: &table,
        queue: None,
    };
    let cool_choice = pm.decide(&cool_ctx);
    let hot = sample(2.4);
    let hot_ctx = SampleContext {
        counters: &hot,
        power: None, temperature: None,
        current: PStateId::new(7),
        table: &table,
        queue: None,
    };
    let hot_choice = pm.decide(&hot_ctx);
    assert_eq!(cool_choice, PStateId::new(7), "a cool sample keeps 2 GHz at 12.5 W");
    assert!(hot_choice < PStateId::new(7), "a hot sample must throttle");
}

#[test]
fn training_is_stable_across_sample_counts() {
    // Doubling the per-point sample count must not change the fitted
    // coefficients much — the training loops are stationary by design.
    let table = PStateTable::pentium_m_755();
    let small = collect_training_data(
        &TrainingConfig { samples_per_point: 10, ..TrainingConfig::default() },
        &table,
    )
    .unwrap();
    let large = collect_training_data(
        &TrainingConfig { samples_per_point: 40, ..TrainingConfig::default() },
        &table,
    )
    .unwrap();
    let model_small = train_power_model(&small).unwrap();
    let model_large = train_power_model(&large).unwrap();
    for (id, _) in table.iter() {
        let a = model_small.coefficients(id).unwrap();
        let b = model_large.coefficients(id).unwrap();
        assert!(
            (a.alpha - b.alpha).abs() < 0.25,
            "{id}: alpha {} vs {}",
            a.alpha,
            b.alpha
        );
        assert!((a.beta - b.beta).abs() < 0.25, "{id}: beta {} vs {}", a.beta, b.beta);
    }
}
