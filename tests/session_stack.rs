//! Acceptance tests for composed governor stacks under the session
//! runtime: metrics forwarding through every decorator level, and runtime
//! command delivery through a two-deep stack (including the t = 0 and
//! same-timestamp edge cases).

use aapm::governor::GovernorCommand;
use aapm::limits::PowerLimit;
use aapm::pm::PerformanceMaximizer;
use aapm::runtime::{ScheduledCommand, Session, SimulationConfig};
use aapm::thermal_guard::{ThermalGuard, ThermalGuardConfig};
use aapm::watchdog::Watchdog;
use aapm_models::power_model::PowerModel;
use aapm_platform::config::MachineConfig;
use aapm_platform::thermal::Celsius;
use aapm_platform::units::Seconds;
use aapm_telemetry::faults::{FaultKind, FaultWindow};
use aapm_telemetry::metrics::{EventKind, Metrics};
use aapm_workloads::spec;

fn pm(limit: f64) -> PerformanceMaximizer {
    PerformanceMaximizer::new(PowerModel::paper_table_ii(), PowerLimit::new(limit).unwrap())
}

/// A `Watchdog(ThermalGuard(Pm))` stack must record events at every level
/// into one shared registry: the watchdog's blackout engagement, the
/// guard's ceiling moves, and PM's own hold bookkeeping all land in the
/// same snapshot. (Before the blanket layer impl, ThermalGuard forwarded
/// its metrics handle by move and could never emit its own events.)
#[test]
fn every_level_of_a_two_deep_stack_records_metrics() {
    // Hot workload, long run: crafty heats the package past a 72 °C cap.
    let crafty = spec::by_name("crafty").expect("crafty exists");
    let program = crafty.program().scaled(4.0);
    // A telemetry blackout engages the watchdog and starves PM's PMC feed.
    let window = FaultWindow {
        start: Seconds::new(1.0),
        end: Seconds::new(2.0),
        kind: FaultKind::Blackout,
    };
    let guard_config =
        ThermalGuardConfig { cap: Celsius::new(72.0), ..ThermalGuardConfig::default() };
    // Generous 30 W limit so the thermal envelope, not the power limit,
    // is the binding constraint once telemetry recovers.
    let mut stack = Watchdog::new(ThermalGuard::with_config(pm(30.0), guard_config));

    let metrics = Metrics::enabled();
    let (report, stats) = Session::builder(MachineConfig::pentium_m_755(7), program)
        .config(SimulationConfig::default())
        .governor(&mut stack)
        .faults(&[window])
        .observer(&metrics)
        .run()
        .unwrap();
    assert!(report.completed);
    assert!(stats.power_dropouts > 0, "the blackout must fire: {stats:?}");

    let snapshot = metrics.snapshot();
    // Outer layer: the watchdog engaged during the blackout and released.
    assert!(snapshot.counter("watchdog.engagements") >= 1, "watchdog level silent");
    assert!(snapshot.counter("watchdog.releases") >= 1, "watchdog never released");
    // Middle layer: the guard lowered the ceiling on the hot stretch.
    assert!(snapshot.counter("thermal_guard.ceiling_lowered") >= 1, "guard level silent");
    // Innermost governor: PM saw the starved PMC feed as stale intervals.
    assert_eq!(snapshot.counter("pm.stale_intervals"), stats.pmc_missed);
    assert!(snapshot.counter("pm.stale_intervals") > 0, "pm level silent");

    // The event stream carries all three levels too.
    let events = metrics.events();
    assert!(events.iter().any(|e| matches!(e.kind, EventKind::WatchdogEngaged { .. })));
    assert!(events.iter().any(|e| matches!(e.kind, EventKind::ThermalCeilingLowered { .. })));
    assert!(events.iter().any(|e| matches!(e.kind, EventKind::HoldEntered { governor: "pm" })));
}

/// Runs crafty under a `Watchdog(ThermalGuard(Pm))` stack with the given
/// schedule and returns the report.
fn run_stacked(initial_limit: f64, commands: &[ScheduledCommand]) -> aapm::report::RunReport {
    let crafty = spec::by_name("crafty").expect("crafty exists");
    let mut stack = Watchdog::new(ThermalGuard::new(pm(initial_limit)));
    let (report, _) = Session::builder(MachineConfig::pentium_m_755(5), crafty.program().clone())
        .governor(&mut stack)
        .commands(commands)
        .run()
        .unwrap();
    report
}

/// A mid-run `SetPowerLimit` must pass through both decorator levels and
/// reach the innermost PM: the p-state drops right after delivery and the
/// new limit holds for the rest of the run.
#[test]
fn command_reaches_innermost_governor_through_the_stack() {
    let commands = [ScheduledCommand {
        at: Seconds::new(1.0),
        command: GovernorCommand::SetPowerLimit(PowerLimit::new(8.5).unwrap()),
    }];
    let report = run_stacked(17.5, &commands);
    let late_violation: usize = report
        .trace
        .moving_average_power(10)
        .iter()
        .skip(110) // windows fully after the change
        .filter(|&&p| p > 8.5)
        .count();
    assert_eq!(late_violation, 0, "late windows must respect the forwarded 8.5 W limit");
    // And the limit genuinely throttled: early samples run hotter.
    let early_peak = report
        .trace
        .records()
        .iter()
        .filter(|r| r.time.seconds() < 0.9)
        .map(|r| r.power.watts())
        .fold(0.0f64, f64::max);
    assert!(early_peak > 8.5, "the 17.5 W era must draw more than the later cap");
}

/// A command scheduled at t = 0 lands before the first decision: the run
/// is bit-identical to constructing the innermost governor with that limit
/// in the first place.
#[test]
fn t_zero_command_applies_before_the_first_decision() {
    let commands = [ScheduledCommand {
        at: Seconds::ZERO,
        command: GovernorCommand::SetPowerLimit(PowerLimit::new(8.5).unwrap()),
    }];
    let commanded = run_stacked(17.5, &commands);
    let constructed = run_stacked(8.5, &[]);
    assert_eq!(commanded.trace, constructed.trace, "traces must match bit for bit");
    assert_eq!(commanded.execution_time, constructed.execution_time);
}

/// Two commands with the same timestamp are delivered in schedule order
/// within one interval, so the last write wins — identical to scheduling
/// only the final command.
#[test]
fn same_timestamp_commands_deliver_in_order_last_write_wins() {
    let both = [
        ScheduledCommand {
            at: Seconds::new(1.0),
            command: GovernorCommand::SetPowerLimit(PowerLimit::new(15.0).unwrap()),
        },
        ScheduledCommand {
            at: Seconds::new(1.0),
            command: GovernorCommand::SetPowerLimit(PowerLimit::new(8.5).unwrap()),
        },
    ];
    let only_last = [both[1]];
    let a = run_stacked(17.5, &both);
    let b = run_stacked(17.5, &only_last);
    assert_eq!(a.trace, b.trace, "the interposed 15 W write must be superseded");
    assert_eq!(a.execution_time, b.execution_time);
}
