//! The committed adversarial corpus replays byte-identically.
//!
//! Mirrors the `aapm-experiments --replay-corpus` gate inside the test
//! suite: every fixture under `corpus/` must parse, re-evaluate to its
//! recorded verdict line, and round-trip through the fixture codec. The
//! corpus floor (13 fixtures, a galgel-style cap violation first) is part
//! of the contract — shrinking the corpus is a regression too.

use std::path::PathBuf;

use aapm_fuzz::corpus::{self, Fixture};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[test]
fn committed_corpus_replays_byte_identically() {
    let entries = corpus::load_dir(&corpus_dir()).expect("corpus must load");
    assert!(entries.len() >= 13, "corpus floor is 13 fixtures, found {}", entries.len());
    for entry in &entries {
        assert_eq!(
            entry.fixture.replay(),
            entry.fixture.verdict,
            "verdict drift in {}",
            entry.file
        );
    }
}

#[test]
fn corpus_entry_one_is_the_galgel_style_cap_violation() {
    let entries = corpus::load_dir(&corpus_dir()).expect("corpus must load");
    let first = entries.first().expect("corpus must not be empty");
    assert!(first.file.starts_with("001-"), "entry #1 must sort first, got {}", first.file);
    assert_eq!(first.fixture.scenario.program.name, "galgel-like");
    assert!(
        first.fixture.verdict.contains("cap=FAIL"),
        "entry #1 records the deliberate cap violation, got: {}",
        first.fixture.verdict
    );
}

#[test]
fn committed_fixtures_round_trip_through_the_codec() {
    let entries = corpus::load_dir(&corpus_dir()).expect("corpus must load");
    for entry in &entries {
        let text = std::fs::read_to_string(corpus_dir().join(&entry.file)).unwrap();
        let parsed = Fixture::from_json(&text).expect("fixture must parse");
        assert_eq!(parsed.to_json(), text, "{} is not in canonical form", entry.file);
    }
}
