//! The shipped example workload files must parse and run.

use aapm::baselines::Unconstrained;
use aapm::runtime::Session;
use aapm_platform::config::MachineConfig;
use aapm_workloads::dsl::parse_program;

#[test]
fn shipped_workload_files_parse_and_run() {
    for (file, expected_name) in [
        ("workloads/bursty.workload", "bursty"),
        ("workloads/streaming.workload", "streaming"),
        ("workloads/interactive.workload", "interactive"),
    ] {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| panic!("{file}: {e}"));
        let program = parse_program(&text).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(program.name(), expected_name);
        // Run a shortened version end to end.
        let (report, _) = Session::builder(MachineConfig::pentium_m_755(1), program.scaled(0.1))
            .governor(&mut Unconstrained::new())
            .run()
            .unwrap_or_else(|e| panic!("{file}: {e}"));
        assert!(report.completed, "{file} must run to completion");
        assert!(report.measured_energy.joules() > 0.0);
    }
}

#[test]
fn streaming_workload_is_nearly_flat_in_frequency() {
    use aapm::baselines::StaticClock;
    use aapm_platform::pstate::PStateId;

    let text = std::fs::read_to_string("workloads/streaming.workload").unwrap();
    let program = parse_program(&text).unwrap().scaled(0.1);
    let (fast, _) = Session::builder(MachineConfig::pentium_m_755(1), program.clone())
        .governor(&mut Unconstrained::new())
        .run()
        .unwrap();
    let (slow, _) = Session::builder(MachineConfig::pentium_m_755(1), program)
        .governor(&mut StaticClock::new(PStateId::new(2))) // 1000 MHz
        .run()
        .unwrap();
    let slowdown = slow.execution_time / fast.execution_time;
    assert!(
        slowdown < 1.25,
        "halving the frequency should barely slow the streaming workload: {slowdown}"
    );
}
