//! Cross-crate consistency: what the telemetry layer reports must agree
//! with what the platform actually did.

use aapm::baselines::Unconstrained;
use aapm::runtime::Session;
use aapm_platform::config::MachineConfig;
use aapm_platform::events::HardwareEvent;
use aapm_platform::machine::Machine;
use aapm_platform::pipeline::{evaluate, MemoryTimings};
use aapm_platform::units::Seconds;
use aapm_telemetry::daq::{DaqConfig, PowerDaq};
use aapm_telemetry::pmc::PmcDriver;
use aapm_workloads::spec;

#[test]
fn measured_energy_tracks_true_energy_within_noise() {
    let bench = spec::by_name("gzip").expect("gzip exists");
    let (report, _) = Session::builder(MachineConfig::pentium_m_755(9), bench.program().clone())
        .governor(&mut Unconstrained::new())
        .run()
        .unwrap();
    let ratio = report.measured_energy.joules() / report.true_energy.joules();
    assert!((ratio - 1.0).abs() < 0.03, "measured/true energy ratio {ratio}");
}

#[test]
fn pmc_rates_match_the_analytic_pipeline_model() {
    // Run a single-phase workload and compare the PMC-reported IPC/DPC/DCU
    // against the pipeline model's prediction for that phase.
    let bench = spec::by_name("swim").expect("swim exists");
    let phase = bench.program().phases()[0].clone();
    let mut builder = MachineConfig::builder();
    builder.execution_variation(0.0);
    let config = builder.build().unwrap();
    let table = config.pstates().clone();
    let top = *table.get(table.highest()).unwrap();
    let expected = evaluate(&phase, &top, &MemoryTimings::pentium_m_755());

    let mut machine =
        Machine::new(config, aapm_platform::program::PhaseProgram::from_phase(phase));
    let mut pmc = PmcDriver::new(vec![
        HardwareEvent::InstructionsRetired,
        HardwareEvent::DcuMissOutstanding,
    ]);
    machine.tick(Seconds::from_millis(10.0));
    let sample = pmc.sample(&machine);
    assert!((sample.ipc().unwrap() - expected.ipc).abs() < 1e-9);
    assert!(
        (sample.dcu().unwrap() - expected.dcu_outstanding_per_cycle).abs() < 1e-9,
        "DCU: {} vs {}",
        sample.dcu().unwrap(),
        expected.dcu_outstanding_per_cycle
    );
}

#[test]
fn ideal_daq_reproduces_instantaneous_phase_power() {
    let bench = spec::by_name("sixtrack").expect("sixtrack exists");
    let mut builder = MachineConfig::builder();
    builder.execution_variation(0.0);
    let config = builder.build().unwrap();
    let mut machine = Machine::new(config, bench.program().clone());
    let mut daq = PowerDaq::new(DaqConfig::ideal(), 1);
    machine.tick(Seconds::from_millis(10.0));
    let sample = daq.sample(&machine);
    // Mid-phase, average power equals instantaneous power.
    let instant = machine.instantaneous_power();
    assert!(
        (sample.power.watts() - instant.watts()).abs() < 1e-6,
        "DAQ {} vs machine {}",
        sample.power,
        instant
    );
}

#[test]
fn trace_residency_is_consistent_with_transition_count() {
    let bench = spec::by_name("ammp").expect("ammp exists");
    let mut pm = aapm::pm::PerformanceMaximizer::new(
        aapm_models::power_model::PowerModel::paper_table_ii(),
        aapm::limits::PowerLimit::new(11.5).unwrap(),
    );
    let (report, _) = Session::builder(MachineConfig::pentium_m_755(9), bench.program().clone())
        .governor(&mut pm)
        .run()
        .unwrap();
    let residency = report.trace.pstate_residency();
    let total: f64 = residency.iter().map(|(_, f)| f).sum();
    assert!((total - 1.0).abs() < 1e-9);
    // More than one state visited implies at least one transition, and the
    // transition count bounds the number of distinct states.
    if residency.len() > 1 {
        assert!(report.transitions as usize >= residency.len() - 1);
    }
}
