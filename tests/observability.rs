//! Cross-crate observability acceptance tests: the metrics registry's
//! counters and event stream must agree exactly with the fault-injection
//! layer's own bookkeeping ([`FaultStats`]), the hold-window events must
//! pair up, and the exported JSONL must be well-formed — all without
//! perturbing the run.

use aapm::limits::PowerLimit;
use aapm::pm::PerformanceMaximizer;
use aapm::runtime::{Session, SimulationConfig};
use aapm_models::power_model::PowerModel;
use aapm_platform::config::MachineConfig;
use aapm_platform::program::PhaseProgram;
use aapm_telemetry::faults::FaultConfig;
use aapm_telemetry::metrics::{EventKind, Metrics};
use aapm_workloads::synth::random_program;

fn short_program(seed: u64) -> PhaseProgram {
    let program = random_program(seed, 4);
    let target: u64 = 400_000_000;
    let factor = target as f64 / program.total_instructions() as f64;
    program.scaled(factor.min(1.0))
}

fn pm(limit: f64) -> PerformanceMaximizer {
    PerformanceMaximizer::new(PowerModel::paper_table_ii(), PowerLimit::new(limit).unwrap())
}

fn faulted_sim() -> SimulationConfig {
    SimulationConfig {
        max_samples: 30_000,
        faults: FaultConfig {
            seed: 0x0B5E,
            power_dropout_rate: 0.05,
            pmc_missed_rate: 0.05,
            actuation_ignored_rate: 0.05,
            actuation_stall_rate: 0.02,
            ..FaultConfig::default()
        },
        ..SimulationConfig::default()
    }
}

/// Acceptance: every fault and actuator-retry event in the stream matches
/// the count the fault layer itself reports in [`FaultStats`].
#[test]
fn event_and_counter_totals_match_fault_stats() {
    let metrics = Metrics::enabled();
    let (report, stats) = Session::builder(MachineConfig::pentium_m_755(5), short_program(5))
        .config(faulted_sim())
        .governor(&mut pm(12.5))
        .observer(&metrics)
        .run()
        .unwrap();
    assert!(stats.pmc_missed > 0 && stats.power_dropouts > 0, "faults must fire: {stats:?}");
    assert!(stats.actuations_ignored > 0, "actuator faults must fire: {stats:?}");

    let snapshot = metrics.snapshot();
    assert_eq!(snapshot.counter("fault.pmc_missed"), stats.pmc_missed);
    assert_eq!(snapshot.counter("fault.power_dropped"), stats.power_dropouts);
    assert_eq!(snapshot.counter("fault.power_stuck"), stats.power_stuck);
    assert_eq!(snapshot.counter("fault.thermal_dropped"), stats.thermal_dropouts);
    assert_eq!(snapshot.counter("actuator.ignored"), stats.actuations_ignored);
    assert_eq!(snapshot.counter("actuator.stalled"), stats.actuations_stalled);
    assert_eq!(snapshot.counter("actuator.failures"), stats.actuation_failures);
    assert_eq!(snapshot.counter("runtime.intervals"), report.trace.len() as u64);
    // PM goes stale exactly when its PMC read is missed.
    assert_eq!(snapshot.counter("pm.stale_intervals"), stats.pmc_missed);

    // The event stream carries the same totals as the counters.
    let events = metrics.events();
    let count = |f: &dyn Fn(&EventKind) -> bool| {
        events.iter().filter(|e| f(&e.kind)).count() as u64
    };
    assert_eq!(
        count(&|k| matches!(k, EventKind::FaultInjected { kind: "pmc_missed" })),
        stats.pmc_missed
    );
    assert_eq!(
        count(&|k| matches!(k, EventKind::FaultInjected { kind: "power_dropped" })),
        stats.power_dropouts
    );
    assert_eq!(
        count(&|k| matches!(k, EventKind::ActuatorIgnored { .. })),
        stats.actuations_ignored
    );
    assert_eq!(
        count(&|k| matches!(k, EventKind::ActuatorStalled { .. })),
        stats.actuations_stalled
    );
    assert_eq!(
        count(&|k| matches!(k, EventKind::ActuationFailed { .. })),
        stats.actuation_failures
    );

    // Hold windows pair up: a run can end inside a window, so entries may
    // lead exits by at most one.
    let entries = count(&|k| matches!(k, EventKind::HoldEntered { .. }));
    let exits = count(&|k| matches!(k, EventKind::HoldExited { .. }));
    assert!(entries > 0, "5% PMC misses must open hold windows");
    assert!(entries >= exits && entries - exits <= 1, "entries {entries} vs exits {exits}");

    // The report carries the same snapshot the caller can read directly.
    assert_eq!(report.metrics, snapshot);
}

/// Event timestamps are simulated time: monotone non-decreasing and inside
/// the run's span, and the JSONL rendering is one well-formed object per
/// line.
#[test]
fn event_stream_is_simulated_time_ordered_jsonl() {
    let metrics = Metrics::enabled();
    let (report, _stats) = Session::builder(MachineConfig::pentium_m_755(9), short_program(9))
        .config(faulted_sim())
        .governor(&mut pm(12.5))
        .observer(&metrics)
        .run()
        .unwrap();
    let events = metrics.events();
    assert!(!events.is_empty());
    // The final interval's events are stamped at its boundary, which may
    // land up to one sample interval past the exact completion time.
    let span = report.execution_time.seconds() + SimulationConfig::default().sample_interval.seconds();
    let mut last = f64::NEG_INFINITY;
    for event in &events {
        let t = event.t.seconds();
        assert!(t >= last, "events must be time-ordered: {t} after {last}");
        assert!(t >= 0.0 && t <= span + 1e-9, "event at {t} outside run span {span}");
        last = t;
    }
    let jsonl = metrics.events_jsonl();
    assert_eq!(jsonl.lines().count(), events.len());
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"t\":"), "line must open with the timestamp: {line}");
        assert!(line.ends_with('}'), "line must be a closed object: {line}");
        assert!(line.contains("\"event\":\""), "line must name its event: {line}");
    }
}

/// The observability layer is write-only: a run with the registry enabled
/// is bit-identical to the same run without it.
#[test]
fn metrics_do_not_perturb_faulted_runs() {
    let run_with = |metrics: &Metrics| {
        Session::builder(MachineConfig::pentium_m_755(13), short_program(13))
            .config(faulted_sim())
            .governor(&mut pm(12.5))
            .observer(metrics)
            .run()
            .unwrap()
    };
    let (plain, plain_stats) = run_with(&Metrics::disabled());
    let (observed, observed_stats) = run_with(&Metrics::enabled());
    assert_eq!(plain_stats, observed_stats);
    assert_eq!(plain.execution_time, observed.execution_time);
    assert_eq!(plain.measured_energy, observed.measured_energy);
    assert_eq!(plain.trace, observed.trace, "traces must match bit for bit");
    assert!(plain.metrics.is_empty(), "disabled registry must record nothing");
    assert!(!observed.metrics.is_empty());
}
