//! Property-based cross-crate tests: governor and platform invariants over
//! randomly generated workloads.

use aapm::baselines::{DemandBasedSwitching, StaticClock, Unconstrained};
use aapm::governor::Governor;
use aapm::limits::{PerformanceFloor, PowerLimit};
use aapm::pm::PerformanceMaximizer;
use aapm::ps::PowerSave;
use aapm::runtime::{Session, SimulationConfig};
use aapm_models::perf_model::{PerfModel, PerfModelParams};
use aapm_models::power_model::PowerModel;
use aapm_platform::config::MachineConfig;
use aapm_platform::program::PhaseProgram;
use aapm_workloads::synth::random_program;
use proptest::prelude::*;

/// Shortens a random program so each property case stays fast.
fn short_program(seed: u64) -> PhaseProgram {
    let program = random_program(seed, 4);
    // Budget the program to roughly 0.3–1 s of simulated time.
    let target: u64 = 400_000_000;
    let factor = target as f64 / program.total_instructions() as f64;
    program.scaled(factor.min(1.0))
}

fn quick_sim() -> SimulationConfig {
    SimulationConfig { max_samples: 30_000, ..SimulationConfig::default() }
}

fn quick_run(governor: &mut dyn Governor, seed: u64, program: PhaseProgram) -> aapm::report::RunReport {
    let (report, _) = Session::builder(MachineConfig::pentium_m_755(seed), program)
        .config(quick_sim())
        .governor(governor)
        .run()
        .expect("run succeeds");
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any random workload under any governor completes, and the trace's
    /// p-states are always valid table entries.
    #[test]
    fn governed_runs_complete_with_valid_pstates(seed in 0u64..500) {
        let program = short_program(seed);
        let model = PowerModel::paper_table_ii();
        let mut governors: Vec<Box<dyn Governor>> = vec![
            Box::new(Unconstrained::new()),
            Box::new(StaticClock::new(aapm_platform::pstate::PStateId::new(2))),
            Box::new(DemandBasedSwitching::new()),
            Box::new(PerformanceMaximizer::new(model, PowerLimit::new(12.5).unwrap())),
            Box::new(PowerSave::new(
                PerfModel::new(PerfModelParams::paper()),
                PerformanceFloor::new(0.6).unwrap(),
            )),
        ];
        let table = aapm_platform::pstate::PStateTable::pentium_m_755();
        for governor in &mut governors {
            let report = quick_run(governor.as_mut(), seed, program.clone());
            prop_assert!(report.completed, "{} did not complete", report.governor);
            for record in report.trace.records() {
                prop_assert!(table.contains(record.pstate));
            }
        }
    }

    /// PM with a tighter limit never consumes more average power.
    #[test]
    fn pm_power_monotone_in_limit(seed in 0u64..200) {
        let program = short_program(seed);
        let model = PowerModel::paper_table_ii();
        let mut previous_power = f64::INFINITY;
        for watts in [17.5, 13.5, 9.5] {
            let mut pm = PerformanceMaximizer::new(model.clone(), PowerLimit::new(watts).unwrap());
            let report = quick_run(&mut pm, seed, program.clone());
            let mean = report.mean_power().map_or(0.0, |w| w.watts());
            prop_assert!(
                mean <= previous_power + 0.3,
                "limit {watts}: mean power {mean} above looser limit's {previous_power}"
            );
            previous_power = mean;
        }
    }

    /// PS with a lower floor never runs faster (time monotone in floor).
    #[test]
    fn ps_time_monotone_in_floor(seed in 0u64..200) {
        let program = short_program(seed);
        let mut previous_time = 0.0;
        for floor in [0.9, 0.6, 0.3] {
            let mut ps = PowerSave::new(
                PerfModel::new(PerfModelParams::paper()),
                PerformanceFloor::new(floor).unwrap(),
            );
            let report = quick_run(&mut ps, seed, program.clone());
            let time = report.execution_time.seconds();
            prop_assert!(
                time >= previous_time * 0.999,
                "floor {floor}: time {time} faster than higher floor's {previous_time}"
            );
            previous_time = time;
        }
    }

    /// Runs are exactly reproducible for identical seeds, and energy is
    /// strictly positive and additive across the trace.
    #[test]
    fn runs_reproducible_and_energy_positive(seed in 0u64..200) {
        let program = short_program(seed);
        let make = || quick_run(&mut Unconstrained::new(), seed, program.clone());
        let a = make();
        let b = make();
        prop_assert_eq!(a.execution_time, b.execution_time);
        prop_assert_eq!(a.measured_energy, b.measured_energy);
        prop_assert!(a.measured_energy.joules() > 0.0);
        let summed: f64 = a
            .trace
            .records()
            .iter()
            .map(|r| r.power.watts() * a.trace.interval().seconds())
            .sum();
        prop_assert!((summed - a.measured_energy.joules()).abs() < 1e-6);
    }

    /// The machine's wall-clock time at the lowest p-state is never shorter
    /// than at the highest (frequency helps or is neutral, never hurts).
    #[test]
    fn lower_frequency_never_runs_faster(seed in 0u64..200) {
        let program = short_program(seed);
        let table = aapm_platform::pstate::PStateTable::pentium_m_755();
        let mut t = Vec::new();
        for id in [table.lowest(), table.highest()] {
            let mut machine = aapm_platform::machine::Machine::new(
                {
                    let mut b = MachineConfig::builder();
                    b.execution_variation(0.0).initial_pstate(id).seed(seed);
                    b.build().unwrap()
                },
                program.clone(),
            );
            t.push(machine.run_to_completion().unwrap());
        }
        prop_assert!(t[0] >= t[1], "600 MHz ({}) beat 2 GHz ({})", t[0], t[1]);
    }
}
