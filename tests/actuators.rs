//! End-to-end integration tests for the actuator extensions: clock
//! modulation, deep power caps, and the thermal envelope.

use aapm::baselines::Unconstrained;
use aapm::combined_pm::CombinedPm;

use aapm::governor::Governor;
use aapm::limits::{PerformanceFloor, PowerLimit};
use aapm::pm::PerformanceMaximizer;
use aapm::runtime::Session;
use aapm::thermal_guard::{ThermalGuard, ThermalGuardConfig};
use aapm::throttle_save::ThrottleSave;
use aapm_models::power_model::PowerModel;
use aapm_platform::config::MachineConfig;
use aapm_platform::program::PhaseProgram;
use aapm_platform::thermal::{Celsius, ThermalModel};
use aapm_workloads::spec;

fn run_under(governor: &mut dyn Governor, program: PhaseProgram) -> aapm::report::RunReport {
    let (report, _) = Session::builder(MachineConfig::pentium_m_755(3), program)
        .governor(governor)
        .run()
        .expect("session run");
    report
}

fn reference(name: &str, scale: f64) -> aapm::report::RunReport {
    let bench = spec::by_name(name).expect("known benchmark");
    run_under(&mut Unconstrained::new(), bench.program().scaled(scale))
}

#[test]
fn throttle_save_meets_floor_but_saves_nothing() {
    let reference = reference("gzip", 0.5);
    let bench = spec::by_name("gzip").unwrap();
    let mut governor = ThrottleSave::new(PerformanceFloor::new(0.75).unwrap());
    let report = run_under(&mut governor, bench.program().scaled(0.5));
    let realized = reference.execution_time / report.execution_time;
    assert!(realized >= 0.73, "floor respected: {realized}");
    // Average power drops…
    assert!(report.mean_power().unwrap() < reference.mean_power().unwrap());
    // …but energy does not (leakage over the stretched run).
    assert!(report.measured_energy >= reference.measured_energy * 0.98);
}

#[test]
fn combined_pm_holds_a_cap_below_p0_power() {
    let bench = spec::by_name("gzip").unwrap();
    let limit = PowerLimit::new(2.5).unwrap();
    let model = PowerModel::paper_table_ii();

    let mut plain = PerformanceMaximizer::new(model.clone(), limit);
    let plain_run = run_under(&mut plain, bench.program().scaled(0.3));
    let mut combined = CombinedPm::new(model, limit);
    let combined_run = run_under(&mut combined, bench.program().scaled(0.3));

    assert!(
        plain_run.violation_fraction(limit.watts(), 10) > 0.9,
        "plain PM cannot reach 2.5 W"
    );
    assert!(
        combined_run.violation_fraction(limit.watts(), 10) < 0.02,
        "combined PM holds 2.5 W, violated {}",
        combined_run.violation_fraction(limit.watts(), 10)
    );
    assert!(combined_run.completed);
}

#[test]
fn thermal_guard_composes_over_pm() {
    // Hot workload, long run, power limit AND thermal cap together.
    let bench = spec::by_name("crafty").unwrap();
    let program = bench.program().scaled(4.0);
    let cap = Celsius::new(72.0);
    let limit = PowerLimit::new(17.5).unwrap();
    let config = ThermalGuardConfig { cap, ..ThermalGuardConfig::default() };
    let mut governor = ThermalGuard::with_config(
        PerformanceMaximizer::new(PowerModel::paper_table_ii(), limit),
        config,
    );
    let report = run_under(&mut governor, program);
    assert!(report.completed);
    // Replay the power trace through the package model: the die must stay
    // within ~1.5 °C of the cap (sensor quantization + one-sample lag).
    let mut model = ThermalModel::new(*MachineConfig::default().thermal());
    let mut peak = 0.0f64;
    for record in report.trace.records() {
        model.advance(record.true_power, report.trace.interval());
        peak = peak.max(model.temperature().degrees());
    }
    assert!(peak <= cap.degrees() + 1.5, "die peaked at {peak:.1} °C");
    // And the power limit still holds.
    assert!(report.violation_fraction(limit.watts(), 10) < 0.01);
}

#[test]
fn governor_trait_defaults_keep_clock_ungated() {
    // A plain PM run must never engage the modulator (default trait impl).
    let bench = spec::by_name("swim").unwrap();
    let mut pm =
        PerformanceMaximizer::new(PowerModel::paper_table_ii(), PowerLimit::new(10.5).unwrap());
    let report = run_under(&mut pm, bench.program().scaled(0.3));
    // swim at 10.5 W barely throttles DVFS; if the clock had been gated the
    // run would stretch far beyond the unconstrained time.
    let reference = reference("swim", 0.3);
    assert!(report.execution_time.seconds() < reference.execution_time.seconds() * 1.1);
}
