//! Cross-crate fault-injection tests: provable inertness of the all-zero
//! fault config, seeded reproducibility of fault plans, graceful governor
//! degradation under sensor dropout, watchdog engagement through a
//! scheduled telemetry blackout, and scheduled-command validation.

use aapm::limits::PowerLimit;
use aapm::pm::PerformanceMaximizer;
use aapm::runtime::{ScheduledCommand, Session, SimulationConfig};
use aapm::slo_save::SloSave;
use aapm::watchdog::{Watchdog, WatchdogConfig};
use aapm::GovernorCommand;
use aapm_models::power_model::PowerModel;
use aapm_platform::config::MachineConfig;
use aapm_platform::error::PlatformError;
use aapm_platform::program::PhaseProgram;
use aapm_platform::pstate::PStateId;
use aapm_platform::units::Seconds;
use aapm_telemetry::faults::{FaultConfig, FaultKind, FaultWindow};
use aapm_telemetry::pmc::{wrapped_delta, COUNTER_WRAP};
use aapm_workloads::requests::RequestWorkload;
use aapm_workloads::synth::random_program;
use proptest::prelude::*;

fn short_program(seed: u64) -> PhaseProgram {
    let program = random_program(seed, 4);
    let target: u64 = 400_000_000;
    let factor = target as f64 / program.total_instructions() as f64;
    program.scaled(factor.min(1.0))
}

fn quick_sim() -> SimulationConfig {
    SimulationConfig { max_samples: 30_000, ..SimulationConfig::default() }
}

fn pm(limit: f64) -> PerformanceMaximizer {
    PerformanceMaximizer::new(PowerModel::paper_table_ii(), PowerLimit::new(limit).unwrap())
}

fn dropout_faults(seed: u64, rate: f64) -> FaultConfig {
    FaultConfig {
        seed,
        power_dropout_rate: rate,
        thermal_dropout_rate: rate,
        pmc_missed_rate: rate,
        actuation_ignored_rate: rate / 2.0,
        ..FaultConfig::default()
    }
}

/// The all-zero fault config must be provably inert: a session built with
/// an explicit (empty) fault plan produces a bit-identical report to one
/// built without, and zero stats.
#[test]
fn zero_fault_config_is_bit_identical_to_plain_run() {
    let program = short_program(3);
    let (baseline, _) = Session::builder(MachineConfig::pentium_m_755(3), program.clone())
        .config(quick_sim())
        .governor(&mut pm(12.5))
        .run()
        .unwrap();
    let (faulted, stats) = Session::builder(MachineConfig::pentium_m_755(3), program)
        .config(quick_sim())
        .governor(&mut pm(12.5))
        .faults(&[])
        .run()
        .unwrap();
    assert!(stats.is_clean(), "inert config must inject nothing: {stats:?}");
    assert_eq!(baseline.execution_time, faulted.execution_time);
    assert_eq!(baseline.measured_energy, faulted.measured_energy);
    assert_eq!(baseline.true_energy, faulted.true_energy);
    assert_eq!(baseline.trace, faulted.trace, "traces must match bit for bit");
}

/// Scheduled commands with non-finite times are rejected up front instead
/// of panicking inside the sort (the old `partial_cmp(...).expect(...)`).
#[test]
fn non_finite_command_times_are_rejected() {
    let nan = Seconds::new(f64::INFINITY) - Seconds::new(f64::INFINITY);
    assert!(nan.seconds().is_nan(), "NaN must be constructible via subtraction");
    for bad in [nan, Seconds::new(f64::INFINITY)] {
        let commands = [
            ScheduledCommand {
                at: Seconds::new(0.1),
                command: GovernorCommand::SetPowerLimit(PowerLimit::new(10.0).unwrap()),
            },
            ScheduledCommand {
                at: bad,
                command: GovernorCommand::SetPowerLimit(PowerLimit::new(8.0).unwrap()),
            },
        ];
        let result = Session::builder(MachineConfig::pentium_m_755(1), short_program(1))
            .config(quick_sim())
            .governor(&mut pm(12.5))
            .commands(&commands)
            .run();
        assert!(
            matches!(result, Err(PlatformError::InvalidConfig { parameter: "commands", .. })),
            "time {bad} must be rejected, got {result:?}"
        );
    }
}

/// A scheduled blackout (power + PMC + thermal all lost) must drive the
/// watchdog to its safe p-state, and control must return after recovery.
#[test]
fn watchdog_forces_safe_pstate_through_blackout_and_recovers() {
    let window = FaultWindow {
        start: Seconds::new(1.0),
        end: Seconds::new(2.0),
        kind: FaultKind::Blackout,
    };
    let config = WatchdogConfig::default();
    let mut dog = Watchdog::with_config(pm(30.0), config);
    // A long program so the run spans well past the window.
    let program = short_program(7).scaled(10.0);
    let (report, stats) = Session::builder(MachineConfig::pentium_m_755(7), program)
        .config(quick_sim())
        .governor(&mut dog)
        .faults(&[window])
        .run()
        .unwrap();
    assert!(stats.power_dropouts >= 90, "the window covers ~100 samples");
    let records = report.trace.records();
    let interval = report.trace.interval().seconds();
    let at = |t: f64| ((t / interval) as usize).min(records.len() - 1);
    // Well inside the window (threshold 10 intervals + margin for the
    // engage decision and p-state transition to propagate): safe state.
    for record in &records[at(1.3)..at(1.9)] {
        assert_eq!(
            record.pstate,
            config.safe_pstate,
            "watchdog must hold the safe state at t={}",
            record.time
        );
    }
    // Before the window: PM's generous 30 W limit keeps a high state.
    assert!(records[at(0.5)].pstate > PStateId::new(4), "healthy run starts fast");
    // Well after the window (recovery window + PM raise streak): control
    // returned and frequency came back up.
    assert!(
        records[at(2.5)..].iter().any(|r| r.pstate > PStateId::new(4)),
        "inner governor must regain control after the blackout"
    );
}

/// Sensor dropout must not break PM's power-limit contract: violations
/// under ≤10 % dropout stay within a small margin of the fault-free run.
#[test]
fn pm_adherence_degrades_gracefully_under_dropout() {
    let limit = 12.5;
    let program = short_program(11);
    let (clean, _) = Session::builder(MachineConfig::pentium_m_755(11), program.clone())
        .config(quick_sim())
        .governor(&mut pm(limit))
        .run()
        .unwrap();
    let clean_violation =
        clean.violation_fraction(PowerLimit::new(limit).unwrap().watts(), 10);
    for rate in [0.02, 0.05, 0.10] {
        let sim = SimulationConfig {
            faults: dropout_faults(0xD0_11 ^ (rate * 1000.0) as u64, rate),
            ..quick_sim()
        };
        let (faulted, stats) = Session::builder(MachineConfig::pentium_m_755(11), program.clone())
            .config(sim)
            .governor(&mut pm(limit))
            .run()
            .unwrap();
        assert!(stats.telemetry_losses() > 0, "rate {rate} must inject faults");
        let violation =
            faulted.violation_fraction(PowerLimit::new(limit).unwrap().watts(), 10);
        assert!(
            violation <= clean_violation + 0.02,
            "rate {rate}: violations {violation} vs clean {clean_violation}"
        );
        assert!(faulted.completed, "rate {rate}: run must still complete");
    }
}

/// Boundary behavior of the 40-bit counter arithmetic at exactly
/// 2^40 − 1 → 0: the last representable value before the wrap, the wrap
/// itself, and the first reads after it.
#[test]
fn pmc_wrap_boundary_at_exactly_top_of_range() {
    let top = COUNTER_WRAP - 1.0; // 2^40 − 1, exactly representable in f64
    assert_eq!(top as u64, (1u64 << 40) - 1);
    // One count accumulated as the register ticks from 2^40−1 to 0 (the
    // raw total reaches 2^40, which reads back as 0 modulo the width).
    assert_eq!(wrapped_delta(COUNTER_WRAP, top), 1.0);
    assert_eq!(wrapped_delta(0.0, top), 1.0, "a read of 0 right after the top is one count");
    // Reading the same boundary value twice is zero counts, not a wrap.
    assert_eq!(wrapped_delta(top, top), 0.0);
    // A read that lands a few counts past the wrap reconstructs the full
    // distance across the discontinuity.
    assert_eq!(wrapped_delta(5.0, COUNTER_WRAP - 3.0), 8.0);
    // And one count below the top stays a plain difference.
    assert_eq!(wrapped_delta(top, top - 1.0), 1.0);
}

/// A fault window opening at t = 0 corrupts the very first control
/// interval — before the governor has made any decision — and the runtime
/// must start up blind without panicking or miscounting.
#[test]
fn fault_at_t_zero_precedes_the_first_governor_decision() {
    let window = FaultWindow {
        start: Seconds::ZERO,
        end: Seconds::new(0.05),
        kind: FaultKind::Blackout,
    };
    let (report, stats) = Session::builder(MachineConfig::pentium_m_755(5), short_program(5))
        .config(quick_sim())
        .governor(&mut pm(12.5))
        .faults(&[window])
        .run()
        .unwrap();
    assert!(report.completed, "a blind start must still complete");
    assert!(
        stats.power_dropouts >= 4,
        "the [0, 0.05) window must cover the first intervals, got {stats:?}"
    );
    assert_eq!(
        stats.power_dropouts, stats.pmc_missed,
        "a blackout loses power and PMC reads together"
    );
    // The governor saw no telemetry in interval one; its first decision
    // must still have been recorded (the trace starts at the beginning).
    let records = report.trace.records();
    assert!(!records.is_empty());
    assert!(records[0].time.seconds() < 0.02, "trace must start at the first interval");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Faulted runs are bit-reproducible: the same seeds (machine, DAQ, and
    /// fault plan) give identical reports and fault stats.
    #[test]
    fn faulted_runs_reproducible_with_same_seeds(seed in 0u64..100) {
        let program = short_program(seed);
        let sim = SimulationConfig {
            faults: dropout_faults(seed ^ 0xFA17, 0.08),
            ..quick_sim()
        };
        let make = || {
            Session::builder(MachineConfig::pentium_m_755(seed), program.clone())
                .config(sim)
                .governor(&mut pm(12.5))
                .run()
                .expect("run succeeds")
        };
        let (a, stats_a) = make();
        let (b, stats_b) = make();
        prop_assert_eq!(stats_a, stats_b);
        prop_assert!(stats_a.telemetry_losses() > 0, "8% rates must fire");
        prop_assert_eq!(a.execution_time, b.execution_time);
        prop_assert_eq!(a.measured_energy, b.measured_energy);
        prop_assert_eq!(a.trace, b.trace);
    }

    /// Open-loop serve sessions conserve request accounting under any
    /// fault plan: every arrival the source emitted is either completed or
    /// still queued when the sample cap lands, whatever telemetry the
    /// faults ate along the way.
    #[test]
    fn serve_queue_conserves_requests_under_faults(seed in 0u64..100) {
        let mut b = RequestWorkload::builder("serve-faulted");
        b.seed(seed).day(Seconds::new(4.0)).rates(60.0, 180.0);
        let workload = b.build().unwrap();
        let faults = FaultConfig {
            seed: seed ^ 0x5EED,
            power_dropout_rate: 0.15,
            power_stuck_rate: 0.1,
            thermal_dropout_rate: 0.15,
            pmc_missed_rate: 0.15,
            actuation_ignored_rate: 0.1,
            actuation_stall_rate: 0.1,
            ..FaultConfig::default()
        };
        let sim = SimulationConfig { max_samples: 400, faults, ..SimulationConfig::default() };
        let (report, stats) = Session::builder(MachineConfig::pentium_m_755(seed), workload)
            .config(sim)
            .governor(&mut SloSave::new(Seconds::from_millis(40.0)).unwrap())
            .run()
            .expect("serve run reaches the sample cap");
        prop_assert!(!report.completed, "an open-loop server never finishes");
        let summary = report.requests.expect("serve runs report request accounting");
        prop_assert_eq!(
            summary.arrived,
            summary.completed + summary.pending,
            "queue accounting must conserve requests"
        );
        prop_assert!(summary.arrived > 0, "4 s at ≥60 rps must see traffic");
        prop_assert!(summary.completed > 0, "the governed server must serve");
        prop_assert!(stats.telemetry_losses() > 0, "heavy rates must fire");
    }

    /// No governor panics and every run completes under heavy mixed faults
    /// (including stuck power readings and stalled/ignored actuations).
    #[test]
    fn heavy_faults_never_panic_and_runs_complete(seed in 0u64..50) {
        let program = short_program(seed);
        let faults = FaultConfig {
            seed: seed ^ 0xBAD,
            power_dropout_rate: 0.15,
            power_stuck_rate: 0.1,
            thermal_dropout_rate: 0.15,
            pmc_missed_rate: 0.15,
            actuation_ignored_rate: 0.1,
            actuation_stall_rate: 0.1,
            ..FaultConfig::default()
        };
        let sim = SimulationConfig { faults, ..quick_sim() };
        let (report, stats) = Session::builder(MachineConfig::pentium_m_755(seed), program)
            .config(sim)
            .governor(&mut Watchdog::new(pm(12.5)))
            .run()
            .expect("run succeeds");
        prop_assert!(report.completed, "run must complete despite faults");
        prop_assert!(stats.telemetry_losses() > 0);
        prop_assert!(stats.actuation_faults() > 0);
    }
}
