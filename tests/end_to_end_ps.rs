//! End-to-end integration tests for PowerSave.

use aapm::baselines::Unconstrained;
use aapm::governor::GovernorCommand;
use aapm::limits::PerformanceFloor;
use aapm::ps::PowerSave;
use aapm::governor::Governor;
use aapm::runtime::{ScheduledCommand, Session};
use aapm_models::perf_model::{PerfModel, PerfModelParams};
use aapm_platform::config::MachineConfig;
use aapm_workloads::spec;
use aapm_platform::units::Seconds;

fn run_under(governor: &mut dyn Governor, name: &str, scale: f64) -> aapm::report::RunReport {
    let bench = spec::by_name(name).expect("known benchmark");
    let (report, _) = Session::builder(MachineConfig::pentium_m_755(5), bench.program().scaled(scale))
        .governor(governor)
        .run()
        .expect("session run");
    report
}

fn reference(name: &str, scale: f64) -> aapm::report::RunReport {
    run_under(&mut Unconstrained::new(), name, scale)
}

fn ps_run(name: &str, scale: f64, floor: f64, params: PerfModelParams) -> aapm::report::RunReport {
    let mut ps = PowerSave::new(PerfModel::new(params), PerformanceFloor::new(floor).unwrap());
    run_under(&mut ps, name, scale)
}

#[test]
fn ps_meets_floors_on_well_modelled_workloads() {
    for name in ["swim", "sixtrack", "ammp", "gzip", "mesa"] {
        for floor in [0.8, 0.6] {
            let reference = reference(name, 0.5);
            let report = ps_run(name, 0.5, floor, PerfModelParams::paper());
            let realized = reference.execution_time / report.execution_time;
            assert!(
                realized >= floor - 0.02,
                "{name} at floor {floor}: realized only {realized}"
            );
        }
    }
}

#[test]
fn ps_saves_energy_proportionally_to_memory_boundedness() {
    let swim_ref = reference("swim", 0.5);
    let swim = ps_run("swim", 0.5, 0.8, PerfModelParams::paper());
    let sixtrack_ref = reference("sixtrack", 0.5);
    let sixtrack = ps_run("sixtrack", 0.5, 0.8, PerfModelParams::paper());
    let swim_savings = swim.energy_savings_vs(&swim_ref);
    let sixtrack_savings = sixtrack.energy_savings_vs(&sixtrack_ref);
    assert!(swim_savings > 0.3, "swim should save big: {swim_savings}");
    assert!(
        swim_savings > sixtrack_savings + 0.15,
        "memory-bound saves much more: swim {swim_savings} vs sixtrack {sixtrack_savings}"
    );
}

#[test]
fn deceptive_workloads_violate_with_081_and_recover_with_059() {
    let art_ref = reference("art", 0.5);
    let art_081 = ps_run("art", 0.5, 0.8, PerfModelParams::paper());
    let art_059 = ps_run("art", 0.5, 0.8, PerfModelParams::paper_alternate());
    let reduction_081 = 1.0 - art_ref.execution_time / art_081.execution_time;
    let reduction_059 = 1.0 - art_ref.execution_time / art_059.execution_time;
    assert!(reduction_081 > 0.3, "art must violate its 20% allowance: {reduction_081}");
    assert!(
        reduction_059 < reduction_081 - 0.1,
        "0.59 must recover much of the loss: {reduction_059} vs {reduction_081}"
    );
}

#[test]
fn ps_adapts_to_floor_changes_at_runtime() {
    let bench = spec::by_name("swim").expect("swim exists");
    let mut ps = PowerSave::new(
        PerfModel::new(PerfModelParams::paper()),
        PerformanceFloor::new(0.95).unwrap(),
    );
    let commands = [ScheduledCommand {
        at: Seconds::new(1.0),
        command: GovernorCommand::SetPerformanceFloor(PerformanceFloor::new(0.4).unwrap()),
    }];
    let (report, _) = Session::builder(MachineConfig::pentium_m_755(5), bench.program().clone())
        .governor(&mut ps)
        .commands(&commands)
        .run()
        .unwrap();
    let early: Vec<_> =
        report.trace.records().iter().filter(|r| r.time.seconds() < 0.9).collect();
    let late: Vec<_> =
        report.trace.records().iter().filter(|r| r.time.seconds() > 1.1).collect();
    let mean_pstate = |records: &[&aapm_telemetry::trace::TraceRecord]| {
        records.iter().map(|r| r.pstate.index() as f64).sum::<f64>() / records.len() as f64
    };
    assert!(
        mean_pstate(&late) < mean_pstate(&early) - 1.0,
        "relaxing the floor must drop the frequency substantially"
    );
}

#[test]
fn tighter_floors_never_save_less_energy_on_swim() {
    let swim_ref = reference("swim", 0.4);
    let mut last_savings = -1.0;
    for floor in [0.9, 0.8, 0.6, 0.4] {
        let report = ps_run("swim", 0.4, floor, PerfModelParams::paper());
        let savings = report.energy_savings_vs(&swim_ref);
        assert!(
            savings >= last_savings - 0.02,
            "floor {floor}: savings {savings} below previous {last_savings}"
        );
        last_savings = savings;
    }
}
