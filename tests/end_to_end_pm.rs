//! End-to-end integration tests for PerformanceMaximizer across crates:
//! platform ← workloads ← telemetry ← models ← governors.

use aapm::baselines::{StaticClock, Unconstrained};
use aapm::governor::GovernorCommand;
use aapm::limits::PowerLimit;
use aapm::pm::PerformanceMaximizer;
use aapm::governor::Governor;
use aapm::runtime::{ScheduledCommand, Session};
use aapm_models::power_model::PowerModel;
use aapm_models::training::{collect_training_data, train_power_model, TrainingConfig};
use aapm_platform::config::MachineConfig;
use aapm_platform::program::PhaseProgram;
use aapm_platform::pstate::{PStateId, PStateTable};
use aapm_platform::units::Seconds;
use aapm_workloads::spec;

fn trained_model() -> PowerModel {
    let table = PStateTable::pentium_m_755();
    let config = TrainingConfig { samples_per_point: 15, ..TrainingConfig::default() };
    let data = collect_training_data(&config, &table).expect("training data");
    train_power_model(&data).expect("power model")
}

fn run_under(governor: &mut dyn Governor, program: PhaseProgram) -> aapm::report::RunReport {
    let (report, _) = Session::builder(MachineConfig::pentium_m_755(5), program)
        .governor(governor)
        .run()
        .expect("run succeeds");
    report
}

#[test]
fn pm_meets_limits_across_representative_workloads() {
    let model = trained_model();
    // galgel excluded: it is the paper's (and our) known violator.
    for name in ["swim", "crafty", "ammp", "gzip", "sixtrack"] {
        let bench = spec::by_name(name).expect("known benchmark");
        for watts in [16.5, 13.5, 11.5] {
            let limit = PowerLimit::new(watts).unwrap();
            let mut pm = PerformanceMaximizer::new(model.clone(), limit);
            let report = run_under(&mut pm, bench.program().scaled(0.5));
            assert!(report.completed, "{name} at {watts} W did not finish");
            let violations = report.violation_fraction(limit.watts(), 10);
            assert!(
                violations < 0.01,
                "{name} at {watts} W violates {violations} of windows"
            );
        }
    }
}

#[test]
fn pm_is_never_slower_than_worst_case_static_clocking() {
    let model = trained_model();
    // At 13.5 W the worst-case static frequency is 1600 MHz (Table IV).
    let static_id = PStateId::new(5);
    for name in ["swim", "mesa", "gap"] {
        let bench = spec::by_name(name).expect("known benchmark");
        let program = bench.program().scaled(0.5);
        let mut pm =
            PerformanceMaximizer::new(model.clone(), PowerLimit::new(13.5).unwrap());
        let pm_run = run_under(&mut pm, program.clone());
        let static_run = run_under(&mut StaticClock::new(static_id), program);
        assert!(
            pm_run.execution_time.seconds() <= static_run.execution_time.seconds() * 1.02,
            "{name}: PM {} vs static {}",
            pm_run.execution_time,
            static_run.execution_time
        );
    }
}

#[test]
fn pm_adapts_to_runtime_limit_changes_within_a_sample() {
    let model = trained_model();
    let bench = spec::by_name("crafty").expect("crafty exists");
    let mut pm = PerformanceMaximizer::new(model, PowerLimit::new(17.5).unwrap());
    let commands = [ScheduledCommand {
        at: Seconds::new(1.0),
        command: GovernorCommand::SetPowerLimit(PowerLimit::new(8.5).unwrap()),
    }];
    let (report, _) = Session::builder(MachineConfig::pentium_m_755(5), bench.program().clone())
        .governor(&mut pm)
        .commands(&commands)
        .run()
        .unwrap();
    // Within two samples of the change the p-state must have dropped.
    let after: Vec<_> = report
        .trace
        .records()
        .iter()
        .filter(|r| r.time.seconds() > 1.03 && r.time.seconds() < 1.5)
        .collect();
    assert!(!after.is_empty());
    assert!(
        after.iter().all(|r| r.pstate < PStateId::new(6)),
        "crafty at 8.5 W must drop well below 1800 MHz right after the signal"
    );
    // And the limit holds for the rest of the run.
    let late_violation: usize = report
        .trace
        .moving_average_power(10)
        .iter()
        .skip(110) // windows fully after the change
        .filter(|&&p| p > 8.5)
        .count();
    assert_eq!(late_violation, 0, "late windows must respect the new 8.5 W limit");
}

#[test]
fn pm_exploits_power_slack_of_cool_workloads() {
    // A cool memory-bound workload under a mid limit should still run at
    // high frequency most of the time — the paper's "power slack" benefit.
    let model = trained_model();
    let bench = spec::by_name("swim").expect("swim exists");
    let mut pm = PerformanceMaximizer::new(model, PowerLimit::new(12.5).unwrap());
    let pm_run = run_under(&mut pm, bench.program().scaled(0.5));
    let unconstrained = run_under(&mut Unconstrained::new(), bench.program().scaled(0.5));
    let slowdown = pm_run.execution_time / unconstrained.execution_time;
    assert!(
        slowdown < 1.05,
        "swim draws ~7 W: a 12.5 W limit should cost almost nothing, got {slowdown}"
    );
}
