//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the surface the workspace's bench targets use — `Criterion`,
//! `Bencher::iter`, `BenchmarkGroup` (with `sample_size` / `throughput`),
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple wall-clock measurement loop instead of criterion's full
//! statistical machinery. Timings it reports are indicative, not rigorous.

use std::fmt::Display;
use std::time::Instant;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measurement state handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Times `routine`, running it enough times to smooth scheduling noise
    /// (bounded so expensive routines still finish quickly).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call.
        let _ = routine();
        let mut iterations: u64 = 0;
        let start = Instant::now();
        loop {
            let _ = std::hint::black_box(routine());
            iterations += 1;
            let elapsed = start.elapsed();
            if elapsed.as_millis() >= 200 || iterations >= 1_000 {
                self.iterations = iterations;
                self.elapsed_ns = elapsed.as_nanos() as f64;
                return;
            }
        }
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.iterations == 0 {
        println!("{name}: no iterations recorded");
        return;
    }
    let per_iter_ns = bencher.elapsed_ns / bencher.iterations as f64;
    let mut line = format!("{name}: {per_iter_ns:.0} ns/iter ({} iters)", bencher.iterations);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (per_iter_ns / 1e9);
            line.push_str(&format!(", {rate:.3e} elem/s"));
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (per_iter_ns / 1e9);
            line.push_str(&format!(", {rate:.3e} B/s"));
        }
        None => {}
    }
    println!("{line}");
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { iterations: 0, elapsed_ns: 0.0 };
        f(&mut bencher);
        report(&id.to_string(), &bencher, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string(), throughput: None }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (accepted for API compatibility;
    /// this implementation sizes its measurement loop adaptively).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { iterations: 0, elapsed_ns: 0.0 };
        f(&mut bencher);
        report(&format!("{}/{id}", self.name), &bencher, self.throughput);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut ran = 0u64;
        Criterion::default().bench_function("count", |b| b.iter(|| ran += 1));
        assert!(ran > 0, "routine must execute");
    }

    #[test]
    fn groups_support_throughput_and_finish() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_function("noop", |b| b.iter(|| 2 + 2));
        group.finish();
    }
}
