//! Offline vendored subset of the `rand` 0.9 API.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the exact surface the workspace consumes — `SmallRng` (the
//! xoshiro256++ generator, as in upstream rand 0.9 on 64-bit targets),
//! `SeedableRng::seed_from_u64` (SplitMix64 seeding, as upstream), and the
//! `Rng::random` / `Rng::random_range` methods — with deterministic,
//! portable output. It is NOT a cryptographic generator and implements only
//! what the workspace uses.

pub mod rngs;

pub use rngs::SmallRng;

/// Seeding interface (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (SplitMix64 expansion, matching
    /// upstream rand's `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible directly from a generator (subset of upstream's
/// `StandardUniform` distribution).
pub trait FromRng {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by `Rng::random_range` (subset of upstream's
/// `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = f64::from_rng(rng) as $t;
                let value = self.start + unit * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if value >= self.end {
                    self.start
                } else {
                    value
                }
            }
        }
    )+};
}

float_sample_range!(f32, f64);

/// Raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods (subset of upstream's `Rng`).
pub trait Rng: RngCore {
    /// A value of `T` from its standard distribution.
    fn random<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.random_range(0..3);
            assert!(y < 3);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.random::<f64>()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
