//! Test configuration and the deterministic input generator.

/// Per-test configuration (subset: `cases` only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of input cases to draw and run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The generator strategies draw from — SplitMix64, seeded from the test's
/// fully-qualified name so every run of a given test sees the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name, then mixed through SplitMix64.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw in `[0, 1)` with 53 bits of precision.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A draw in `[0, bound)`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }
}
