//! The `Strategy` trait and the primitive strategies (ranges, tuples,
//! constants, mapping).

use core::ops::Range;

use crate::test_runner::TestRng;

/// A generator of test inputs (subset of upstream: generation only — no
/// shrinking; `aapm-fuzz` layers an explicit scenario minimizer on top).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `map(value)` for every drawn `value`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// A strategy that draws from `self`, then from the strategy `flat`
    /// returns for the drawn value — the dependent-generation combinator.
    fn prop_flat_map<O, F>(self, flat: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { source: self, flat }
    }

    /// A strategy that redraws until `accept` holds. Panics (citing
    /// `reason`) after 1000 consecutive rejections — upstream resolves this
    /// with global rejection bookkeeping; the subset keeps it local.
    fn prop_filter<F>(self, reason: &'static str, accept: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, reason, accept }
    }

    /// Erases the strategy's concrete type so heterogeneous strategies of
    /// one value type can share a container (e.g. [`Union`] arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    flat: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;

    fn generate(&self, rng: &mut TestRng) -> O::Value {
        let seed = self.source.generate(rng);
        (self.flat)(seed).generate(rng)
    }
}

/// The result of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    reason: &'static str,
    accept: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.source.generate(rng);
            if (self.accept)(&value) {
                return value;
            }
        }
        panic!("prop_filter rejected 1000 consecutive draws: {}", self.reason);
    }
}

/// A type-erased strategy, produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> core::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Object-safe adapter behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// A weighted choice among strategies of one value type; the engine behind
/// [`prop_oneof!`](crate::prop_oneof).
#[derive(Debug)]
pub struct Union<S> {
    arms: Vec<(u32, S)>,
    total_weight: u64,
}

impl<S: Strategy> Union<S> {
    /// A uniform choice among `arms`.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<S>) -> Self {
        Union::new_weighted(arms.into_iter().map(|arm| (1, arm)).collect())
    }

    /// A weighted choice: each arm is drawn with probability proportional
    /// to its weight.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty or every weight is zero.
    pub fn new_weighted(arms: Vec<(u32, S)>) -> Self {
        assert!(!arms.is_empty(), "Union needs at least one arm");
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "Union needs at least one positive weight");
        Union { arms, total_weight }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut ticket = rng.next_below(self.total_weight);
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if ticket < weight {
                return arm.generate(rng);
            }
            ticket -= weight;
        }
        unreachable!("ticket was drawn below the total weight");
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = rng.next_below(span);
                ((self.start as i128) + offset as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.next_unit_f64() as $t;
                let value = self.start + unit * (self.end - self.start);
                if value >= self.end { self.start } else { value }
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11);
