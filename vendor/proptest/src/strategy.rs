//! The `Strategy` trait and the primitive strategies (ranges, tuples,
//! constants, mapping).

use core::ops::Range;

use crate::test_runner::TestRng;

/// A generator of test inputs (subset of upstream: generation only — no
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `map(value)` for every drawn `value`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = rng.next_below(span);
                ((self.start as i128) + offset as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.next_unit_f64() as $t;
                let value = self.start + unit * (self.end - self.start);
                if value >= self.end { self.start } else { value }
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11);
