//! Collection strategies (subset: `vec`).

use core::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy for `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec-length range");
    VecStrategy { element, size }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.next_below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
