//! Offline vendored subset of the `proptest` 1.x API.
//!
//! The build environment has no network access to crates.io, so this crate
//! reimplements the slice of proptest the workspace's property tests use:
//! the `proptest!` macro with an optional `#![proptest_config(...)]` header,
//! `ProptestConfig::with_cases`, the `Strategy` trait with `prop_map`,
//! numeric-range and tuple strategies, `prop::collection::vec`,
//! `prop::sample::select`, and the `prop_assert*` macros.
//!
//! Semantics differ from upstream in two deliberate ways: inputs are drawn
//! from a deterministic per-test generator (seeded from the test's module
//! path and name) so test runs are exactly reproducible, and failing cases
//! are not shrunk — the failing input is reported as-is.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-importable API surface, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! Namespaced strategy constructors (`prop::collection::vec`, …).
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests. Each function argument is drawn from its
/// strategy `cases` times; the body runs once per drawn tuple.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($config); $($rest)*);
    };
    (@fns ($config:expr); ) => {};
    (@fns ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _case in 0..config.cases {
                $(let $arg = {
                    let strategy = $strategy;
                    $crate::strategy::Strategy::generate(&strategy, &mut rng)
                };)+
                $body
            }
        }
        $crate::proptest!(@fns ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Rejects the current case when the assumption does not hold. Upstream
/// draws a replacement input; this subset simply skips the case (the
/// per-test generator still advances, so remaining cases differ).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, y in -1.5f64..2.5, n in 1usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b),
            items in prop::collection::vec(0u8..5, 2..6),
        ) {
            prop_assert!(pair < 20);
            prop_assert!((2..6).contains(&items.len()));
            prop_assert!(items.iter().all(|&v| v < 5));
        }

        #[test]
        fn select_draws_from_options(v in prop::sample::select(vec![2u32, 4, 8])) {
            prop_assert!([2, 4, 8].contains(&v));
        }
    }

    #[test]
    fn same_test_name_redraws_identically() {
        let mut a = crate::test_runner::TestRng::for_test("x::y");
        let mut b = crate::test_runner::TestRng::for_test("x::y");
        let s = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(Strategy::generate(&s, &mut a), Strategy::generate(&s, &mut b));
        }
    }
}
