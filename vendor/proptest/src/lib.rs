//! Offline vendored subset of the `proptest` 1.x API.
//!
//! The build environment has no network access to crates.io, so this crate
//! reimplements the slice of proptest the workspace's property tests use:
//! the `proptest!` macro with an optional `#![proptest_config(...)]` header,
//! `ProptestConfig::with_cases`, the `Strategy` trait with `prop_map`,
//! `prop_flat_map`, `prop_filter`, and `boxed`, the `prop_oneof!` /
//! `Union` choice combinators, numeric-range and tuple strategies,
//! `prop::collection::vec`, `prop::sample::select`, and the `prop_assert*`
//! macros.
//!
//! Semantics differ from upstream in two deliberate ways: inputs are drawn
//! from a deterministic per-test generator (seeded from the test's module
//! path and name) so test runs are exactly reproducible, and failing cases
//! are not shrunk — the failing input is reported as-is.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-importable API surface, mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    pub mod prop {
        //! Namespaced strategy constructors (`prop::collection::vec`, …).
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests. Each function argument is drawn from its
/// strategy `cases` times; the body runs once per drawn tuple.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($config); $($rest)*);
    };
    (@fns ($config:expr); ) => {};
    (@fns ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _case in 0..config.cases {
                $(let $arg = {
                    let strategy = $strategy;
                    $crate::strategy::Strategy::generate(&strategy, &mut rng)
                };)+
                $body
            }
        }
        $crate::proptest!(@fns ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Chooses among strategies producing one value type. Arms are drawn
/// uniformly, or per-arm `weight => strategy` when weights are given; every
/// arm is boxed, so heterogeneous strategy types are fine as long as their
/// `Value`s agree.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Rejects the current case when the assumption does not hold. Upstream
/// draws a replacement input; this subset simply skips the case (the
/// per-test generator still advances, so remaining cases differ).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, y in -1.5f64..2.5, n in 1usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b),
            items in prop::collection::vec(0u8..5, 2..6),
        ) {
            prop_assert!(pair < 20);
            prop_assert!((2..6).contains(&items.len()));
            prop_assert!(items.iter().all(|&v| v < 5));
        }

        #[test]
        fn select_draws_from_options(v in prop::sample::select(vec![2u32, 4, 8])) {
            prop_assert!([2, 4, 8].contains(&v));
        }
    }

    #[test]
    fn oneof_reaches_every_arm() {
        let strategy = prop_oneof![Just(1u32), Just(2u32), (10u32..20).prop_map(|v| v)];
        let mut rng = crate::test_runner::TestRng::for_test("oneof_reaches_every_arm");
        let mut seen = [false; 3];
        for _ in 0..256 {
            match strategy.generate(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                10..=19 => seen[2] = true,
                other => panic!("value {other} outside every arm"),
            }
        }
        assert_eq!(seen, [true; 3], "every arm must be drawn eventually");
    }

    #[test]
    fn weighted_oneof_honors_weights() {
        let strategy = prop_oneof![9 => Just(0u32), 1 => Just(1u32)];
        let mut rng = crate::test_runner::TestRng::for_test("weighted_oneof_honors_weights");
        let ones: u32 = (0..2000).map(|_| strategy.generate(&mut rng)).sum();
        let rate = f64::from(ones) / 2000.0;
        assert!((rate - 0.1).abs() < 0.05, "observed rate {rate} for weight 1/10");
    }

    #[test]
    fn flat_map_generates_dependently() {
        // Draw a length, then a vector of exactly that length.
        let strategy = (1usize..6)
            .prop_flat_map(|len| prop::collection::vec(0u8..10, len..len + 1));
        let mut rng = crate::test_runner::TestRng::for_test("flat_map_generates_dependently");
        for _ in 0..128 {
            let items = strategy.generate(&mut rng);
            assert!((1..6).contains(&items.len()));
        }
    }

    #[test]
    fn filter_redraws_until_accepted() {
        let strategy = (0u64..100).prop_filter("must be even", |v| v % 2 == 0);
        let mut rng = crate::test_runner::TestRng::for_test("filter_redraws_until_accepted");
        for _ in 0..128 {
            assert_eq!(strategy.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "impossible predicate")]
    fn filter_panics_when_nothing_is_accepted() {
        let strategy = (0u64..100).prop_filter("impossible predicate", |_| false);
        let mut rng =
            crate::test_runner::TestRng::for_test("filter_panics_when_nothing_is_accepted");
        let _ = strategy.generate(&mut rng);
    }

    #[test]
    fn boxed_strategies_preserve_draws() {
        let plain = 5u64..50;
        let boxed = (5u64..50).boxed();
        let mut a = crate::test_runner::TestRng::for_test("boxed_strategies_preserve_draws");
        let mut b = crate::test_runner::TestRng::for_test("boxed_strategies_preserve_draws");
        for _ in 0..64 {
            assert_eq!(plain.generate(&mut a), boxed.generate(&mut b));
        }
    }

    #[test]
    fn union_new_is_uniform_choice() {
        let union = Union::new(vec![Just(1u8), Just(2u8)]);
        let mut rng = crate::test_runner::TestRng::for_test("union_new_is_uniform_choice");
        let twos = (0..2000).filter(|_| union.generate(&mut rng) == 2).count();
        let rate = twos as f64 / 2000.0;
        assert!((rate - 0.5).abs() < 0.05, "observed rate {rate} for a fair coin");
    }

    #[test]
    fn same_test_name_redraws_identically() {
        let mut a = crate::test_runner::TestRng::for_test("x::y");
        let mut b = crate::test_runner::TestRng::for_test("x::y");
        let s = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(Strategy::generate(&s, &mut a), Strategy::generate(&s, &mut b));
        }
    }
}
