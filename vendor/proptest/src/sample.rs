//! Sampling strategies (subset: `select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy drawing uniformly from a fixed list of options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "cannot select from an empty list");
    Select { options }
}

/// The result of [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.next_below(self.options.len() as u64) as usize;
        self.options[index].clone()
    }
}
