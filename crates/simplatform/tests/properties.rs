//! Property-based tests of platform invariants.

use aapm_platform::cache::{Cache, CacheGeometry};
use aapm_platform::config::MachineConfig;
use aapm_platform::dram::{Dram, DramTimings};
use aapm_platform::dvfs::{transition_cost, DvfsParams};
use aapm_platform::machine::Machine;
use aapm_platform::phase::PhaseDescriptor;
use aapm_platform::pipeline::{evaluate, MemoryTimings};
use aapm_platform::power::GroundTruthPower;
use aapm_platform::program::PhaseProgram;
use aapm_platform::pstate::{PStateId, PStateTable};
use aapm_platform::throttle::ThrottleLevel;
use aapm_platform::units::Seconds;
use proptest::prelude::*;

/// Strategy: a valid phase over the plausible workload space.
fn phase_strategy() -> impl Strategy<Value = PhaseDescriptor> {
    (
        1_000_000u64..500_000_000,
        0.4f64..2.0,     // core cpi
        1.0f64..1.6,     // decode ratio
        0.0f64..0.4,     // fp
        0.1f64..0.55,    // mem
        0.0f64..1.0,     // l1 fraction of mem
        0.0f64..1.0,     // l2 fraction of l1
        0.0f64..0.9,     // overlap
        0.7f64..1.35,    // activity
    )
        .prop_map(
            |(instr, cpi, decode, fp, mem, l1_frac, l2_frac, overlap, activity)| {
                let l1 = mem * 0.25 * l1_frac;
                let l2 = l1 * l2_frac;
                PhaseDescriptor::builder("prop")
                    .instructions(instr)
                    .core_cpi(cpi)
                    .decode_ratio(decode)
                    .fp_fraction(fp)
                    .mem_fraction(mem)
                    .l1_mpi(l1)
                    .l2_mpi(l2)
                    .overlap(overlap)
                    .activity(activity)
                    .build()
                    .expect("constructed within invariants")
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Throughput (instructions/second) never decreases with frequency, and
    /// CPI never decreases either (stall cycles can only grow with f).
    #[test]
    fn throughput_monotone_in_frequency(phase in phase_strategy()) {
        let table = PStateTable::pentium_m_755();
        let timings = MemoryTimings::pentium_m_755();
        let mut last_ips = 0.0;
        let mut last_cpi = 0.0;
        for (_, state) in table.iter() {
            let rates = evaluate(&phase, state, &timings);
            prop_assert!(rates.instructions_per_second >= last_ips);
            prop_assert!(rates.cpi >= last_cpi);
            last_ips = rates.instructions_per_second;
            last_cpi = rates.cpi;
        }
    }

    /// True power increases strictly with the p-state for any phase, and
    /// active power always exceeds idle power which exceeds gated power.
    #[test]
    fn power_ordering_invariants(phase in phase_strategy()) {
        let table = PStateTable::pentium_m_755();
        let timings = MemoryTimings::pentium_m_755();
        let power = GroundTruthPower::calibrated();
        let mut last = 0.0;
        for (_, state) in table.iter() {
            let rates = evaluate(&phase, state, &timings);
            let active = power.power(state, &rates, phase.activity());
            prop_assert!(active.watts() > last);
            prop_assert!(active >= power.idle_power(state));
            prop_assert!(power.idle_power(state) > power.gated_power(state));
            last = active.watts();
        }
    }

    /// The DCU counter reports at least the stall the core actually feels.
    #[test]
    fn dcu_reports_at_least_felt_stall(phase in phase_strategy()) {
        let table = PStateTable::pentium_m_755();
        let timings = MemoryTimings::pentium_m_755();
        for (_, state) in table.iter() {
            let rates = evaluate(&phase, state, &timings);
            // Resource stalls include L2 + DRAM-felt + mispredict; DCU
            // covers L2 + full DRAM. Compare the memory components only:
            let mispredict_stall =
                phase.branch_fraction() * phase.mispredict_rate()
                    * timings.mispredict_penalty_cycles * rates.ipc;
            prop_assert!(
                rates.dcu_outstanding_per_cycle
                    >= rates.resource_stalls_per_cycle - mispredict_stall - 1e-9
            );
        }
    }

    /// Executing a program tick by tick retires exactly its instruction
    /// budget, regardless of tick size.
    #[test]
    fn machine_conserves_instructions(
        phase in phase_strategy(),
        tick_ms in 1.0f64..40.0,
    ) {
        let mut builder = MachineConfig::builder();
        builder.execution_variation(0.0);
        let mut machine =
            Machine::new(builder.build().unwrap(), PhaseProgram::from_phase(phase.clone()));
        let mut retired = 0.0;
        let mut guard = 0;
        while !machine.finished() && guard < 2_000_000 {
            retired += machine.tick(Seconds::from_millis(tick_ms)).instructions;
            guard += 1;
        }
        prop_assert!(machine.finished(), "machine must finish");
        let budget = phase.instructions() as f64;
        prop_assert!(
            (retired - budget).abs() / budget < 1e-6,
            "retired {retired} vs budget {budget}"
        );
    }

    /// Energy and elapsed time are invariant to how the run is advanced:
    /// segment-level fast-forward vs a fine tick loop.
    #[test]
    fn fast_forward_does_not_change_physics(phase in phase_strategy()) {
        let mut builder = MachineConfig::builder();
        builder.execution_variation(0.0);
        let config = builder.build().unwrap();
        let mut ticked =
            Machine::new(config.clone(), PhaseProgram::from_phase(phase.clone()));
        while !ticked.finished() {
            ticked.tick(Seconds::from_millis(1.0));
        }
        let t_ticked = ticked.completion_time().expect("finished");
        let mut fast = Machine::new(config, PhaseProgram::from_phase(phase));
        let t_fast = fast.run_to_completion().unwrap();
        // Completion time is exact; energy differs only by the idle tail of
        // the ticked run's final tick.
        prop_assert!((t_fast.seconds() - t_ticked.seconds()).abs() < 1e-9);
        let idle_tail_bound = 13.0 * 0.001; // < idle watts × tick
        prop_assert!(
            (fast.true_energy().joules() - ticked.true_energy().joules()).abs()
                < idle_tail_bound
        );
    }

    /// Throttling at duty d scales completion time by exactly 1/d for any
    /// workload (clock gating freezes the whole core).
    #[test]
    fn throttle_scales_time_inversely(phase in phase_strategy(), steps in 1u8..8) {
        let mut builder = MachineConfig::builder();
        builder.execution_variation(0.0);
        let config = builder.build().unwrap();
        let mut full = Machine::new(config.clone(), PhaseProgram::from_phase(phase.clone()));
        let mut gated = Machine::new(config, PhaseProgram::from_phase(phase));
        gated.set_throttle(ThrottleLevel::new(steps).unwrap());
        let t_full = full.run_to_completion().unwrap();
        let t_gated = gated.run_to_completion().unwrap();
        let duty = f64::from(steps) / 8.0;
        prop_assert!((t_gated.seconds() * duty - t_full.seconds()).abs() / t_full.seconds() < 1e-6);
    }

    /// Cache residency never exceeds capacity, and a just-accessed line is
    /// always resident.
    #[test]
    fn cache_capacity_and_residency(addresses in prop::collection::vec(0u64..(1 << 22), 1..400)) {
        let geometry = CacheGeometry { capacity_bytes: 4096, line_bytes: 64, ways: 4 };
        let mut cache = Cache::new(geometry).unwrap();
        for &addr in &addresses {
            cache.access(addr);
            prop_assert!(cache.probe(addr), "just-accessed line must be resident");
            prop_assert!(cache.resident_lines() <= 64, "capacity is 64 lines");
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.accesses(), addresses.len() as u64);
    }

    /// DRAM latencies are always one of the three configured values and the
    /// stats add up.
    #[test]
    fn dram_latency_values(addresses in prop::collection::vec(0u64..(1 << 26), 1..300)) {
        let timings = DramTimings::ddr333();
        let mut dram = Dram::new(timings);
        for &addr in &addresses {
            let latency = dram.access(addr);
            prop_assert!(
                latency == timings.row_hit_ns
                    || latency == timings.row_empty_ns
                    || latency == timings.row_conflict_ns
            );
        }
        prop_assert_eq!(dram.stats().accesses(), addresses.len() as u64);
    }

    /// DVFS transitions cost more when the voltage swing is larger, and
    /// upward transitions always cost at least as much as downward ones.
    #[test]
    fn transition_costs_scale_with_voltage_swing(a in 0usize..8, b in 0usize..8) {
        let table = PStateTable::pentium_m_755();
        let params = DvfsParams::enhanced_speedstep();
        let from = table.get(PStateId::new(a)).unwrap();
        let to = table.get(PStateId::new(b)).unwrap();
        let up = transition_cost(from, to, &params);
        let down = transition_cost(to, from, &params);
        if a == b {
            prop_assert_eq!(up.stall, Seconds::ZERO);
        } else {
            let (upward, downward) = if b > a { (up, down) } else { (down, up) };
            prop_assert!(upward.stall >= downward.stall);
            prop_assert!(upward.voltage_ramp_blocking);
            prop_assert!(!downward.voltage_ramp_blocking);
        }
    }
}
