//! Error types for the platform simulator.

use std::error::Error as StdError;
use std::fmt;

use crate::units::MegaHertz;

/// Errors raised by platform components.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlatformError {
    /// A p-state index was outside the platform's p-state table.
    UnknownPState {
        /// The offending index.
        index: usize,
        /// Number of entries in the table.
        table_len: usize,
    },
    /// A frequency was requested that the p-state table does not contain.
    UnknownFrequency {
        /// The requested frequency.
        frequency: MegaHertz,
    },
    /// A p-state table failed validation.
    InvalidPStateTable {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// A phase descriptor failed validation.
    InvalidPhase {
        /// Name of the offending phase.
        phase: String,
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// A configuration parameter was out of range.
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// A cache geometry was not realizable (sizes must be power-of-two
    /// multiples of line size and associativity).
    InvalidCacheGeometry {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// A p-state write was not applied by the platform, even after retries.
    ActuationFailed {
        /// Index of the p-state the governor asked for.
        pstate: usize,
        /// Number of write attempts made before giving up.
        attempts: usize,
        /// The underlying platform error, when the write failed for a
        /// reason other than injected actuator loss.
        source: Option<Box<PlatformError>>,
    },
    /// A telemetry channel delivered no usable data for too long.
    TelemetryLost {
        /// Which channel went silent (`"power"`, `"thermal"`, `"pmc"`, …).
        channel: &'static str,
        /// Consecutive control intervals without data.
        intervals: usize,
    },
    /// An experiment cell panicked inside the parallel harness; the panic
    /// was contained to that cell.
    CellPanicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A measurement that must be finite (an execution time, an energy)
    /// came back as NaN or ±∞, so no meaningful statistic can be derived.
    NonFiniteMeasurement {
        /// Which quantity was non-finite (`"execution time"`, …).
        quantity: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A run over an unbounded horizon reached a state that can never
    /// finish: the current phase still has instructions pending but its
    /// effective retire rate is zero (zeroed phase rates), so no finite
    /// advance reaches the phase boundary.
    NoForwardProgress {
        /// Name of the stuck phase.
        phase: String,
        /// Instructions still pending in the phase.
        pending: f64,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownPState { index, table_len } => {
                write!(f, "p-state index {index} out of range for table of {table_len} entries")
            }
            PlatformError::UnknownFrequency { frequency } => {
                write!(f, "no p-state with frequency {frequency}")
            }
            PlatformError::InvalidPStateTable { reason } => {
                write!(f, "invalid p-state table: {reason}")
            }
            PlatformError::InvalidPhase { phase, reason } => {
                write!(f, "invalid phase `{phase}`: {reason}")
            }
            PlatformError::InvalidConfig { parameter, reason } => {
                write!(f, "invalid configuration parameter `{parameter}`: {reason}")
            }
            PlatformError::InvalidCacheGeometry { reason } => {
                write!(f, "invalid cache geometry: {reason}")
            }
            PlatformError::ActuationFailed { pstate, attempts, .. } => {
                write!(f, "p-state {pstate} actuation failed after {attempts} attempts")
            }
            PlatformError::TelemetryLost { channel, intervals } => {
                write!(f, "telemetry channel `{channel}` lost for {intervals} consecutive intervals")
            }
            PlatformError::CellPanicked { message } => {
                write!(f, "experiment cell panicked: {message}")
            }
            PlatformError::NonFiniteMeasurement { quantity, value } => {
                write!(f, "non-finite {quantity}: {value}")
            }
            PlatformError::NoForwardProgress { phase, pending } => {
                write!(
                    f,
                    "phase `{phase}` makes no forward progress: {pending} instructions \
                     pending at a zero retire rate"
                )
            }
        }
    }
}

impl StdError for PlatformError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            PlatformError::ActuationFailed { source: Some(inner), .. } => {
                Some(inner.as_ref() as &(dyn StdError + 'static))
            }
            _ => None,
        }
    }
}

/// Convenient result alias for platform operations.
pub type Result<T> = std::result::Result<T, PlatformError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty_lowercase_messages() {
        let errors = [
            PlatformError::UnknownPState { index: 9, table_len: 8 },
            PlatformError::UnknownFrequency { frequency: MegaHertz::new(1234) },
            PlatformError::InvalidPStateTable { reason: "empty".into() },
            PlatformError::InvalidPhase { phase: "x".into(), reason: "bad".into() },
            PlatformError::InvalidConfig { parameter: "p", reason: "bad".into() },
            PlatformError::InvalidCacheGeometry { reason: "bad".into() },
            PlatformError::ActuationFailed { pstate: 2, attempts: 4, source: None },
            PlatformError::TelemetryLost { channel: "power", intervals: 10 },
            PlatformError::CellPanicked { message: "boom".into() },
            PlatformError::NonFiniteMeasurement { quantity: "execution time", value: f64::NAN },
            PlatformError::NoForwardProgress { phase: "stuck".into(), pending: 1e6 },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with("p-state"));
        }
    }

    #[test]
    fn actuation_failed_exposes_its_source() {
        let inner = PlatformError::UnknownPState { index: 9, table_len: 8 };
        let outer = PlatformError::ActuationFailed {
            pstate: 9,
            attempts: 1,
            source: Some(Box::new(inner.clone())),
        };
        let chained = outer.source().expect("wrapped cause must surface via source()");
        assert_eq!(chained.to_string(), inner.to_string());
        let bare = PlatformError::ActuationFailed { pstate: 1, attempts: 3, source: None };
        assert!(bare.source().is_none());
        assert!(PlatformError::TelemetryLost { channel: "pmc", intervals: 5 }.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlatformError>();
    }
}
