//! Strongly-typed physical quantities used throughout the platform model.
//!
//! The simulator mixes quantities in several units (seconds, watts, joules,
//! megahertz, volts). Newtypes keep them from being confused ([C-NEWTYPE])
//! while still being cheap `f64`/`u32` wrappers.
//!
//! # Examples
//!
//! ```
//! use aapm_platform::units::{Seconds, Watts};
//!
//! let dt = Seconds::from_millis(10.0);
//! let power = Watts::new(12.5);
//! let energy = power * dt;
//! assert!((energy.joules() - 0.125).abs() < 1e-12);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A duration in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(f64);

impl Seconds {
    /// The zero duration.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Creates a duration from a raw number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN.
    pub fn new(secs: f64) -> Self {
        assert!(!secs.is_nan(), "duration must not be NaN");
        Seconds(secs)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Seconds::new(ms * 1e-3)
    }

    /// Creates a duration from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Seconds::new(us * 1e-6)
    }

    /// Returns the duration as a raw number of seconds.
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Returns the duration in milliseconds.
    pub fn millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the duration in microseconds.
    pub fn micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns `true` if the duration is positive (greater than zero).
    pub fn is_positive(self) -> bool {
        self.0 > 0.0
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Seconds) -> Seconds {
        Seconds(self.0.min(other.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Seconds) -> Seconds {
        Seconds(self.0.max(other.0))
    }

    /// Clamps a possibly-negative duration to zero.
    pub fn clamp_non_negative(self) -> Seconds {
        Seconds(self.0.max(0.0))
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl SubAssign for Seconds {
    fn sub_assign(&mut self, rhs: Seconds) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

impl Div<f64> for Seconds {
    type Output = Seconds;
    fn div(self, rhs: f64) -> Seconds {
        Seconds(self.0 / rhs)
    }
}

impl Div for Seconds {
    /// Dividing two durations yields a dimensionless ratio.
    type Output = f64;
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        Seconds(iter.map(|s| s.0).sum())
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} s", self.0)
    }
}

/// Electrical power in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(f64);

impl Watts {
    /// Zero watts.
    pub const ZERO: Watts = Watts(0.0);

    /// Creates a power value from a raw number of watts.
    ///
    /// # Panics
    ///
    /// Panics if `w` is NaN.
    pub fn new(w: f64) -> Self {
        assert!(!w.is_nan(), "power must not be NaN");
        Watts(w)
    }

    /// Returns the power as a raw number of watts.
    pub fn watts(self) -> f64 {
        self.0
    }

    /// Returns the smaller of two powers.
    pub fn min(self, other: Watts) -> Watts {
        Watts(self.0.min(other.0))
    }

    /// Returns the larger of two powers.
    pub fn max(self, other: Watts) -> Watts {
        Watts(self.0.max(other.0))
    }

    /// Clamps a possibly-negative reading to zero (ADC noise can undershoot).
    pub fn clamp_non_negative(self) -> Watts {
        Watts(self.0.max(0.0))
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}

impl Neg for Watts {
    type Output = Watts;
    fn neg(self) -> Watts {
        Watts(-self.0)
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}

impl Div<f64> for Watts {
    type Output = Watts;
    fn div(self, rhs: f64) -> Watts {
        Watts(self.0 / rhs)
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.0 * rhs.seconds())
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        Watts(iter.map(|w| w.0).sum())
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} W", self.0)
    }
}

/// Energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(f64);

impl Joules {
    /// Zero joules.
    pub const ZERO: Joules = Joules(0.0);

    /// Creates an energy value from a raw number of joules.
    ///
    /// # Panics
    ///
    /// Panics if `j` is NaN.
    pub fn new(j: f64) -> Self {
        assert!(!j.is_nan(), "energy must not be NaN");
        Joules(j)
    }

    /// Returns the energy as a raw number of joules.
    pub fn joules(self) -> f64 {
        self.0
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sub for Joules {
    type Output = Joules;
    fn sub(self, rhs: Joules) -> Joules {
        Joules(self.0 - rhs.0)
    }
}

impl Mul<f64> for Joules {
    type Output = Joules;
    fn mul(self, rhs: f64) -> Joules {
        Joules(self.0 * rhs)
    }
}

impl Div<Seconds> for Joules {
    /// Average power over an interval.
    type Output = Watts;
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.0 / rhs.seconds())
    }
}

impl Div for Joules {
    /// Dividing two energies yields a dimensionless ratio.
    type Output = f64;
    fn div(self, rhs: Joules) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        Joules(iter.map(|j| j.0).sum())
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} J", self.0)
    }
}

/// Core clock frequency in megahertz.
///
/// Stored as an integer because ACPI p-state tables enumerate discrete
/// frequencies; derived quantities (GHz, Hz) are floating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MegaHertz(u32);

impl MegaHertz {
    /// Creates a frequency from a raw number of megahertz.
    pub const fn new(mhz: u32) -> Self {
        MegaHertz(mhz)
    }

    /// Returns the frequency in megahertz.
    pub const fn mhz(self) -> u32 {
        self.0
    }

    /// Returns the frequency in gigahertz.
    pub fn ghz(self) -> f64 {
        f64::from(self.0) * 1e-3
    }

    /// Returns the frequency in hertz.
    pub fn hz(self) -> f64 {
        f64::from(self.0) * 1e6
    }

    /// Returns the ratio `self / other` as a dimensionless number.
    pub fn ratio(self, other: MegaHertz) -> f64 {
        f64::from(self.0) / f64::from(other.0)
    }
}

impl fmt::Display for MegaHertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MHz", self.0)
    }
}

/// Supply voltage in volts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Volts(f64);

impl Volts {
    /// Creates a voltage from a raw number of volts.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN or negative.
    pub fn new(v: f64) -> Self {
        assert!(v.is_finite() && v >= 0.0, "voltage must be finite and non-negative");
        Volts(v)
    }

    /// Returns the voltage as a raw number of volts.
    pub fn volts(self) -> f64 {
        self.0
    }

    /// Returns the squared voltage, the term that enters dynamic power.
    pub fn squared(self) -> f64 {
        self.0 * self.0
    }
}

impl Sub for Volts {
    type Output = f64;
    /// Difference between two voltages, in volts.
    fn sub(self, rhs: Volts) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Volts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} V", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_conversions_round_trip() {
        let s = Seconds::from_millis(10.0);
        assert!((s.seconds() - 0.01).abs() < 1e-15);
        assert!((s.millis() - 10.0).abs() < 1e-12);
        assert!((s.micros() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn seconds_arithmetic() {
        let a = Seconds::new(1.5);
        let b = Seconds::new(0.5);
        assert_eq!(a + b, Seconds::new(2.0));
        assert_eq!(a - b, Seconds::new(1.0));
        assert_eq!(a * 2.0, Seconds::new(3.0));
        assert_eq!(a / 3.0, Seconds::new(0.5));
        assert!((a / b - 3.0).abs() < 1e-15);
    }

    #[test]
    fn negative_duration_clamps_to_zero() {
        let d = Seconds::new(1.0) - Seconds::new(2.0);
        assert!(d < Seconds::ZERO);
        assert_eq!(d.clamp_non_negative(), Seconds::ZERO);
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(10.0) * Seconds::new(2.0);
        assert_eq!(e, Joules::new(20.0));
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Joules::new(20.0) / Seconds::new(4.0);
        assert_eq!(p, Watts::new(5.0));
    }

    #[test]
    fn frequency_conversions() {
        let f = MegaHertz::new(1800);
        assert_eq!(f.mhz(), 1800);
        assert!((f.ghz() - 1.8).abs() < 1e-12);
        assert!((f.hz() - 1.8e9).abs() < 1.0);
        assert!((f.ratio(MegaHertz::new(900)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn voltage_squared() {
        let v = Volts::new(1.2);
        assert!((v.squared() - 1.44).abs() < 1e-12);
    }

    #[test]
    fn sums_of_quantities() {
        let total: Watts = vec![Watts::new(1.0), Watts::new(2.5)].into_iter().sum();
        assert_eq!(total, Watts::new(3.5));
        let total: Joules = vec![Joules::new(1.0), Joules::new(2.0)].into_iter().sum();
        assert_eq!(total, Joules::new(3.0));
        let total: Seconds = vec![Seconds::new(0.25), Seconds::new(0.75)].into_iter().sum();
        assert_eq!(total, Seconds::new(1.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_duration_panics() {
        let _ = Seconds::new(f64::NAN);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert!(!format!("{}", Seconds::new(1.0)).is_empty());
        assert!(!format!("{}", Watts::new(1.0)).is_empty());
        assert!(!format!("{}", Joules::new(1.0)).is_empty());
        assert!(!format!("{}", MegaHertz::new(600)).is_empty());
        assert!(!format!("{}", Volts::new(1.0)).is_empty());
    }
}
