//! ACPI-style processor performance states (p-states).
//!
//! A p-state is a (frequency, voltage) operating point. The platform exposes
//! an ordered table of p-states; governors pick entries from the table, never
//! arbitrary frequencies — exactly as on the Pentium M 755 studied in the
//! paper, whose eight Enhanced SpeedStep operating points (600 MHz @ 0.998 V
//! … 2000 MHz @ 1.340 V) are reproduced by [`PStateTable::pentium_m_755`].

use std::fmt;

use crate::error::{PlatformError, Result};
use crate::units::{MegaHertz, Volts};

/// Index of a p-state within a [`PStateTable`].
///
/// Index 0 is the *lowest*-frequency state; higher indices are higher
/// frequency. The newtype prevents mixing table indices with other integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PStateId(usize);

impl PStateId {
    /// Creates an id from a raw index. Validity against a particular table is
    /// checked by [`PStateTable::get`].
    pub const fn new(index: usize) -> Self {
        PStateId(index)
    }

    /// Returns the raw table index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for PStateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A single voltage/frequency operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PState {
    frequency: MegaHertz,
    voltage: Volts,
}

impl PState {
    /// Creates a p-state from a frequency and the supply voltage used at that
    /// frequency.
    pub fn new(frequency: MegaHertz, voltage: Volts) -> Self {
        PState { frequency, voltage }
    }

    /// The core clock frequency of this operating point.
    pub fn frequency(&self) -> MegaHertz {
        self.frequency
    }

    /// The supply voltage of this operating point.
    pub fn voltage(&self) -> Volts {
        self.voltage
    }
}

impl fmt::Display for PState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.frequency, self.voltage)
    }
}

/// An ordered table of p-states, ascending in frequency and voltage.
///
/// # Examples
///
/// ```
/// use aapm_platform::pstate::PStateTable;
///
/// let table = PStateTable::pentium_m_755();
/// assert_eq!(table.len(), 8);
/// assert_eq!(table.highest().index(), 7);
/// assert_eq!(table.get(table.highest()).unwrap().frequency().mhz(), 2000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PStateTable {
    states: Vec<PState>,
}

impl PStateTable {
    /// Builds a table from a list of states.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidPStateTable`] if the list is empty, or
    /// if frequencies or voltages are not strictly increasing.
    pub fn new(states: Vec<PState>) -> Result<Self> {
        if states.is_empty() {
            return Err(PlatformError::InvalidPStateTable { reason: "table is empty".into() });
        }
        for pair in states.windows(2) {
            if pair[1].frequency <= pair[0].frequency {
                return Err(PlatformError::InvalidPStateTable {
                    reason: format!(
                        "frequencies must be strictly increasing ({} then {})",
                        pair[0].frequency, pair[1].frequency
                    ),
                });
            }
            if pair[1].voltage.volts() <= pair[0].voltage.volts() {
                return Err(PlatformError::InvalidPStateTable {
                    reason: format!(
                        "voltages must be strictly increasing ({} then {})",
                        pair[0].voltage, pair[1].voltage
                    ),
                });
            }
        }
        Ok(PStateTable { states })
    }

    /// The eight Enhanced SpeedStep p-states of the Pentium M 755 (90 nm
    /// Dothan) used in the paper (its Table II).
    pub fn pentium_m_755() -> Self {
        let pairs: [(u32, f64); 8] = [
            (600, 0.998),
            (800, 1.052),
            (1000, 1.100),
            (1200, 1.148),
            (1400, 1.196),
            (1600, 1.244),
            (1800, 1.292),
            (2000, 1.340),
        ];
        let states = pairs
            .iter()
            .map(|&(mhz, v)| PState::new(MegaHertz::new(mhz), Volts::new(v)))
            .collect();
        PStateTable::new(states).expect("built-in table is valid")
    }

    /// Number of p-states in the table.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if the table has no entries. Never true for a
    /// successfully constructed table.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Looks up a p-state by id.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownPState`] if the id is out of range.
    pub fn get(&self, id: PStateId) -> Result<&PState> {
        self.states.get(id.index()).ok_or(PlatformError::UnknownPState {
            index: id.index(),
            table_len: self.states.len(),
        })
    }

    /// Returns `true` if `id` indexes a state in this table.
    pub fn contains(&self, id: PStateId) -> bool {
        id.index() < self.states.len()
    }

    /// The lowest-frequency p-state.
    pub fn lowest(&self) -> PStateId {
        PStateId(0)
    }

    /// The highest-frequency p-state.
    pub fn highest(&self) -> PStateId {
        PStateId(self.states.len() - 1)
    }

    /// Returns the id of the state one step slower than `id`, or `None` if
    /// `id` is already the lowest state.
    pub fn next_lower(&self, id: PStateId) -> Option<PStateId> {
        if id.index() == 0 || !self.contains(id) {
            None
        } else {
            Some(PStateId(id.index() - 1))
        }
    }

    /// Returns the id of the state one step faster than `id`, or `None` if
    /// `id` is already the highest state.
    pub fn next_higher(&self, id: PStateId) -> Option<PStateId> {
        if !self.contains(id) || id.index() + 1 >= self.states.len() {
            None
        } else {
            Some(PStateId(id.index() + 1))
        }
    }

    /// Finds the p-state with exactly the given frequency.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownFrequency`] if no state matches.
    pub fn id_of_frequency(&self, frequency: MegaHertz) -> Result<PStateId> {
        self.states
            .iter()
            .position(|s| s.frequency == frequency)
            .map(PStateId)
            .ok_or(PlatformError::UnknownFrequency { frequency })
    }

    /// Iterates over `(id, state)` pairs from lowest to highest frequency.
    pub fn iter(&self) -> impl Iterator<Item = (PStateId, &PState)> {
        self.states.iter().enumerate().map(|(i, s)| (PStateId(i), s))
    }

    /// Iterates over `(id, state)` pairs from highest to lowest frequency,
    /// the order in which [`PerformanceMaximizer`]-style governors scan.
    ///
    /// [`PerformanceMaximizer`]: https://docs.rs/aapm
    pub fn iter_descending(&self) -> impl Iterator<Item = (PStateId, &PState)> {
        self.states.iter().enumerate().rev().map(|(i, s)| (PStateId(i), s))
    }

    /// The highest frequency in the table.
    pub fn max_frequency(&self) -> MegaHertz {
        self.states[self.states.len() - 1].frequency
    }

    /// The lowest frequency in the table.
    pub fn min_frequency(&self) -> MegaHertz {
        self.states[0].frequency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PStateTable {
        PStateTable::pentium_m_755()
    }

    #[test]
    fn pentium_m_table_matches_paper_table_ii() {
        let t = table();
        assert_eq!(t.len(), 8);
        let (id, lowest) = t.iter().next().unwrap();
        assert_eq!(id, t.lowest());
        assert_eq!(lowest.frequency().mhz(), 600);
        assert!((lowest.voltage().volts() - 0.998).abs() < 1e-9);
        let top = t.get(t.highest()).unwrap();
        assert_eq!(top.frequency().mhz(), 2000);
        assert!((top.voltage().volts() - 1.340).abs() < 1e-9);
    }

    #[test]
    fn empty_table_rejected() {
        assert!(matches!(
            PStateTable::new(vec![]),
            Err(PlatformError::InvalidPStateTable { .. })
        ));
    }

    #[test]
    fn non_monotone_frequency_rejected() {
        let states = vec![
            PState::new(MegaHertz::new(1000), Volts::new(1.0)),
            PState::new(MegaHertz::new(1000), Volts::new(1.1)),
        ];
        assert!(PStateTable::new(states).is_err());
    }

    #[test]
    fn non_monotone_voltage_rejected() {
        let states = vec![
            PState::new(MegaHertz::new(1000), Volts::new(1.1)),
            PState::new(MegaHertz::new(1200), Volts::new(1.1)),
        ];
        assert!(PStateTable::new(states).is_err());
    }

    #[test]
    fn get_out_of_range_errors() {
        let t = table();
        let err = t.get(PStateId::new(8)).unwrap_err();
        assert!(matches!(err, PlatformError::UnknownPState { index: 8, table_len: 8 }));
    }

    #[test]
    fn next_lower_and_higher_walk_the_table() {
        let t = table();
        assert_eq!(t.next_lower(t.lowest()), None);
        assert_eq!(t.next_higher(t.highest()), None);
        let mid = PStateId::new(3);
        assert_eq!(t.next_lower(mid), Some(PStateId::new(2)));
        assert_eq!(t.next_higher(mid), Some(PStateId::new(4)));
    }

    #[test]
    fn id_of_frequency_finds_exact_matches_only() {
        let t = table();
        let id = t.id_of_frequency(MegaHertz::new(1800)).unwrap();
        assert_eq!(t.get(id).unwrap().frequency().mhz(), 1800);
        assert!(t.id_of_frequency(MegaHertz::new(1700)).is_err());
    }

    #[test]
    fn descending_iteration_starts_at_max_frequency() {
        let t = table();
        let (first, state) = t.iter_descending().next().unwrap();
        assert_eq!(first, t.highest());
        assert_eq!(state.frequency(), t.max_frequency());
    }

    #[test]
    fn min_max_frequency() {
        let t = table();
        assert_eq!(t.min_frequency().mhz(), 600);
        assert_eq!(t.max_frequency().mhz(), 2000);
    }
}
