//! Deterministic noise sources.
//!
//! All stochastic behaviour in the simulator (measurement noise, run-to-run
//! execution variation) flows through [`NoiseSource`], a seeded generator,
//! so experiments are exactly reproducible and "three runs, take the median"
//! is meaningful.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded noise generator producing Gaussian and uniform deviates.
///
/// # Examples
///
/// ```
/// use aapm_platform::noise::NoiseSource;
///
/// let mut a = NoiseSource::seeded(42);
/// let mut b = NoiseSource::seeded(42);
/// assert_eq!(a.gaussian(0.0, 1.0), b.gaussian(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct NoiseSource {
    rng: SmallRng,
    spare: Option<f64>,
}

impl NoiseSource {
    /// Creates a noise source from a seed.
    pub fn seeded(seed: u64) -> Self {
        NoiseSource { rng: SmallRng::seed_from_u64(seed), spare: None }
    }

    /// Creates a derived source whose stream is independent of, but fully
    /// determined by, this one. Used to give each component (DAQ, machine,
    /// PMC) its own stream from one experiment seed.
    pub fn fork(&mut self, stream: u64) -> NoiseSource {
        let seed = self.rng.random::<u64>() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        NoiseSource::seeded(seed)
    }

    /// A Gaussian deviate with the given mean and standard deviation
    /// (Box–Muller with spare caching).
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        if std_dev == 0.0 {
            return mean;
        }
        let z = match self.spare.take() {
            Some(z) => z,
            None => {
                let u1: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = self.rng.random_range(0.0..1.0);
                let radius = (-2.0 * u1.ln()).sqrt();
                let angle = 2.0 * std::f64::consts::PI * u2;
                self.spare = Some(radius * angle.sin());
                radius * angle.cos()
            }
        };
        mean + std_dev * z
    }

    /// A uniform deviate in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(low < high, "uniform range must be non-empty");
        self.rng.random_range(low..high)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.rng.random_range(0..bound)
    }

    /// A Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.rng.random_range(0.0..1.0) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = NoiseSource::seeded(7);
        let mut b = NoiseSource::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.gaussian(1.0, 2.0), b.gaussian(1.0, 2.0));
            assert_eq!(a.uniform(0.0, 5.0), b.uniform(0.0, 5.0));
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NoiseSource::seeded(1);
        let mut b = NoiseSource::seeded(2);
        let same = (0..32).filter(|_| a.below(u64::MAX) == b.below(u64::MAX)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_deterministic_and_distinct() {
        let mut root1 = NoiseSource::seeded(9);
        let mut root2 = NoiseSource::seeded(9);
        let mut f1 = root1.fork(1);
        let mut f2 = root2.fork(1);
        assert_eq!(f1.below(u64::MAX), f2.below(u64::MAX));

        let mut root = NoiseSource::seeded(9);
        let mut fa = root.fork(1);
        let mut fb = root.fork(1);
        assert_ne!(fa.below(u64::MAX), fb.below(u64::MAX), "sequential forks differ");
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut n = NoiseSource::seeded(1234);
        let samples: Vec<f64> = (0..20_000).map(|_| n.gaussian(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "variance {var}");
    }

    #[test]
    fn zero_std_dev_returns_mean() {
        let mut n = NoiseSource::seeded(5);
        assert_eq!(n.gaussian(2.5, 0.0), 2.5);
    }

    #[test]
    fn chance_extremes() {
        let mut n = NoiseSource::seeded(5);
        assert!(!(0..100).any(|_| n.chance(0.0)));
        assert!((0..100).all(|_| n.chance(1.0)));
    }
}
