//! Frequency-independent workload phase descriptors.
//!
//! The machine model executes workloads described as sequences of *phases*.
//! A phase captures everything about a region of execution that does not
//! depend on the operating p-state: instruction count, the core's no-miss
//! CPI, speculation (decode-to-retire ratio), per-instruction cache traffic,
//! and how much DRAM-miss latency the core can overlap. Given a phase and a
//! p-state, [`crate::pipeline`] derives cycle-accurate *rates* (IPC, DPC,
//! stall cycles, …) and [`crate::power`] derives true power.

use crate::error::{PlatformError, Result};

/// Intrinsic, frequency-independent description of one execution phase.
///
/// Construct with [`PhaseDescriptor::builder`]; the builder validates all
/// invariants listed on each field.
///
/// # Examples
///
/// ```
/// use aapm_platform::phase::PhaseDescriptor;
///
/// let phase = PhaseDescriptor::builder("compute")
///     .instructions(1_000_000)
///     .core_cpi(0.8)
///     .decode_ratio(1.2)
///     .build()?;
/// assert_eq!(phase.name(), "compute");
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDescriptor {
    name: String,
    instructions: u64,
    core_cpi: f64,
    decode_ratio: f64,
    fp_fraction: f64,
    mem_fraction: f64,
    l1_mpi: f64,
    l2_mpi: f64,
    overlap: f64,
    activity: f64,
    branch_fraction: f64,
    mispredict_rate: f64,
    prefetch_per_inst: f64,
}

impl PhaseDescriptor {
    /// Starts building a phase with the given name.
    pub fn builder(name: impl Into<String>) -> PhaseDescriptorBuilder {
        PhaseDescriptorBuilder::new(name)
    }

    /// Name of the phase (for traces and diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Retired-instruction budget of the phase.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Cycles per instruction with a perfect (always-hitting) memory system.
    pub fn core_cpi(&self) -> f64 {
        self.core_cpi
    }

    /// Decoded-to-retired instruction ratio (≥ 1); captures speculative work
    /// that is decoded but squashed before retirement.
    pub fn decode_ratio(&self) -> f64 {
        self.decode_ratio
    }

    /// Fraction of retired instructions that are floating-point operations.
    pub fn fp_fraction(&self) -> f64 {
        self.fp_fraction
    }

    /// Fraction of retired instructions that access memory (loads + stores).
    pub fn mem_fraction(&self) -> f64 {
        self.mem_fraction
    }

    /// L1 data-cache misses per retired instruction (these become L2
    /// requests).
    pub fn l1_mpi(&self) -> f64 {
        self.l1_mpi
    }

    /// L2 misses per retired instruction (these become DRAM requests).
    pub fn l2_mpi(&self) -> f64 {
        self.l2_mpi
    }

    /// Fraction of DRAM-miss latency hidden by memory-level parallelism and
    /// prefetching, in `[0, 1)`. High overlap makes a workload *look*
    /// memory-bound to the DCU counter while scaling like a core-bound one —
    /// the mechanism behind the paper's `art`/`mcf` model errors.
    pub fn overlap(&self) -> f64 {
        self.overlap
    }

    /// Switching-activity scale factor for dynamic power (1.0 = nominal).
    pub fn activity(&self) -> f64 {
        self.activity
    }

    /// Fraction of retired instructions that are branches.
    pub fn branch_fraction(&self) -> f64 {
        self.branch_fraction
    }

    /// Mispredictions per retired branch.
    pub fn mispredict_rate(&self) -> f64 {
        self.mispredict_rate
    }

    /// Hardware prefetches issued per retired instruction.
    pub fn prefetch_per_inst(&self) -> f64 {
        self.prefetch_per_inst
    }

    /// Returns a copy of this phase with a different instruction budget.
    /// Useful for scaling workload length without re-deriving intrinsics.
    pub fn with_instructions(&self, instructions: u64) -> PhaseDescriptor {
        PhaseDescriptor { instructions, ..self.clone() }
    }

    /// Returns a copy of this phase with a different name.
    pub fn with_name(&self, name: impl Into<String>) -> PhaseDescriptor {
        PhaseDescriptor { name: name.into(), ..self.clone() }
    }
}

/// Builder for [`PhaseDescriptor`]; see [`PhaseDescriptor::builder`].
#[derive(Debug, Clone)]
pub struct PhaseDescriptorBuilder {
    name: String,
    instructions: u64,
    core_cpi: f64,
    decode_ratio: f64,
    fp_fraction: f64,
    mem_fraction: f64,
    l1_mpi: f64,
    l2_mpi: f64,
    overlap: f64,
    activity: f64,
    branch_fraction: f64,
    mispredict_rate: f64,
    prefetch_per_inst: f64,
}

impl PhaseDescriptorBuilder {
    fn new(name: impl Into<String>) -> Self {
        PhaseDescriptorBuilder {
            name: name.into(),
            instructions: 1_000_000,
            core_cpi: 1.0,
            decode_ratio: 1.1,
            fp_fraction: 0.0,
            mem_fraction: 0.3,
            l1_mpi: 0.0,
            l2_mpi: 0.0,
            overlap: 0.0,
            activity: 1.0,
            branch_fraction: 0.12,
            mispredict_rate: 0.03,
            prefetch_per_inst: 0.0,
        }
    }

    /// Sets the retired-instruction budget.
    pub fn instructions(&mut self, instructions: u64) -> &mut Self {
        self.instructions = instructions;
        self
    }

    /// Sets the no-miss core CPI (> 0).
    pub fn core_cpi(&mut self, core_cpi: f64) -> &mut Self {
        self.core_cpi = core_cpi;
        self
    }

    /// Sets the decoded-to-retired ratio (≥ 1).
    pub fn decode_ratio(&mut self, decode_ratio: f64) -> &mut Self {
        self.decode_ratio = decode_ratio;
        self
    }

    /// Sets the floating-point instruction fraction (in `[0, 1]`).
    pub fn fp_fraction(&mut self, fp_fraction: f64) -> &mut Self {
        self.fp_fraction = fp_fraction;
        self
    }

    /// Sets the memory-access instruction fraction (in `[0, 1]`).
    pub fn mem_fraction(&mut self, mem_fraction: f64) -> &mut Self {
        self.mem_fraction = mem_fraction;
        self
    }

    /// Sets L1 misses per instruction (≥ 0, ≤ `mem_fraction` + prefetches).
    pub fn l1_mpi(&mut self, l1_mpi: f64) -> &mut Self {
        self.l1_mpi = l1_mpi;
        self
    }

    /// Sets L2 misses per instruction (≥ 0, ≤ L1 misses per instruction).
    pub fn l2_mpi(&mut self, l2_mpi: f64) -> &mut Self {
        self.l2_mpi = l2_mpi;
        self
    }

    /// Sets the DRAM-latency overlap factor (in `[0, 1)`).
    pub fn overlap(&mut self, overlap: f64) -> &mut Self {
        self.overlap = overlap;
        self
    }

    /// Sets the switching-activity scale (> 0, nominally 1.0).
    pub fn activity(&mut self, activity: f64) -> &mut Self {
        self.activity = activity;
        self
    }

    /// Sets the branch instruction fraction (in `[0, 1]`).
    pub fn branch_fraction(&mut self, branch_fraction: f64) -> &mut Self {
        self.branch_fraction = branch_fraction;
        self
    }

    /// Sets mispredictions per branch (in `[0, 1]`).
    pub fn mispredict_rate(&mut self, mispredict_rate: f64) -> &mut Self {
        self.mispredict_rate = mispredict_rate;
        self
    }

    /// Sets hardware prefetches per instruction (≥ 0).
    pub fn prefetch_per_inst(&mut self, prefetch_per_inst: f64) -> &mut Self {
        self.prefetch_per_inst = prefetch_per_inst;
        self
    }

    /// Validates the configuration and produces the phase.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidPhase`] when any field violates its
    /// documented range, when misses exceed the accesses that could produce
    /// them, or when the instruction budget is zero.
    pub fn build(&self) -> Result<PhaseDescriptor> {
        let fail = |reason: String| {
            Err(PlatformError::InvalidPhase { phase: self.name.clone(), reason })
        };
        if self.instructions == 0 {
            return fail("instruction budget must be positive".into());
        }
        if !(self.core_cpi.is_finite() && self.core_cpi > 0.0) {
            return fail(format!("core CPI must be positive, got {}", self.core_cpi));
        }
        if !(self.decode_ratio.is_finite() && self.decode_ratio >= 1.0) {
            return fail(format!("decode ratio must be >= 1, got {}", self.decode_ratio));
        }
        for (value, label) in [
            (self.fp_fraction, "fp fraction"),
            (self.mem_fraction, "memory fraction"),
            (self.branch_fraction, "branch fraction"),
            (self.mispredict_rate, "mispredict rate"),
        ] {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return fail(format!("{label} must lie in [0, 1], got {value}"));
            }
        }
        if !(self.l1_mpi.is_finite() && self.l1_mpi >= 0.0) {
            return fail(format!("l1 misses per instruction must be >= 0, got {}", self.l1_mpi));
        }
        if !(self.l2_mpi.is_finite() && self.l2_mpi >= 0.0) {
            return fail(format!("l2 misses per instruction must be >= 0, got {}", self.l2_mpi));
        }
        if self.l2_mpi > self.l1_mpi + self.prefetch_per_inst + 1e-12 {
            return fail(format!(
                "l2 misses per instruction ({}) cannot exceed l2 accesses \
                 (l1 misses {} + prefetches {})",
                self.l2_mpi, self.l1_mpi, self.prefetch_per_inst
            ));
        }
        if self.l1_mpi > self.mem_fraction + 1e-12 {
            return fail(format!(
                "l1 misses per instruction ({}) cannot exceed memory accesses \
                 per instruction ({})",
                self.l1_mpi, self.mem_fraction
            ));
        }
        if !(0.0..1.0).contains(&self.overlap) {
            return fail(format!("overlap must lie in [0, 1), got {}", self.overlap));
        }
        if !(self.activity.is_finite() && self.activity > 0.0) {
            return fail(format!("activity must be positive, got {}", self.activity));
        }
        if !(self.prefetch_per_inst.is_finite() && self.prefetch_per_inst >= 0.0) {
            return fail(format!("prefetches per instruction must be >= 0, got {}", self.prefetch_per_inst));
        }
        Ok(PhaseDescriptor {
            name: self.name.clone(),
            instructions: self.instructions,
            core_cpi: self.core_cpi,
            decode_ratio: self.decode_ratio,
            fp_fraction: self.fp_fraction,
            mem_fraction: self.mem_fraction,
            l1_mpi: self.l1_mpi,
            l2_mpi: self.l2_mpi,
            overlap: self.overlap,
            activity: self.activity,
            branch_fraction: self.branch_fraction,
            mispredict_rate: self.mispredict_rate,
            prefetch_per_inst: self.prefetch_per_inst,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_build_successfully() {
        let phase = PhaseDescriptor::builder("default").build().unwrap();
        assert_eq!(phase.name(), "default");
        assert!(phase.instructions() > 0);
        assert!(phase.decode_ratio() >= 1.0);
    }

    #[test]
    fn zero_instructions_rejected() {
        let err = PhaseDescriptor::builder("p").instructions(0).build().unwrap_err();
        assert!(matches!(err, PlatformError::InvalidPhase { .. }));
    }

    #[test]
    fn decode_ratio_below_one_rejected() {
        assert!(PhaseDescriptor::builder("p").decode_ratio(0.9).build().is_err());
    }

    #[test]
    fn miss_rates_must_nest() {
        // L2 misses cannot exceed L2 accesses (L1 misses + prefetches).
        assert!(PhaseDescriptor::builder("p")
            .mem_fraction(0.5)
            .l1_mpi(0.01)
            .l2_mpi(0.05)
            .build()
            .is_err());
        // L1 misses cannot exceed memory accesses.
        assert!(PhaseDescriptor::builder("p")
            .mem_fraction(0.01)
            .l1_mpi(0.1)
            .build()
            .is_err());
        // Prefetches can carry L2 misses beyond demand L1 misses.
        assert!(PhaseDescriptor::builder("p")
            .mem_fraction(0.5)
            .l1_mpi(0.01)
            .prefetch_per_inst(0.05)
            .l2_mpi(0.05)
            .build()
            .is_ok());
    }

    #[test]
    fn overlap_must_be_below_one() {
        assert!(PhaseDescriptor::builder("p").overlap(1.0).build().is_err());
        assert!(PhaseDescriptor::builder("p").overlap(0.95).build().is_ok());
    }

    #[test]
    fn fractions_must_be_in_unit_interval() {
        assert!(PhaseDescriptor::builder("p").fp_fraction(1.5).build().is_err());
        assert!(PhaseDescriptor::builder("p").mem_fraction(-0.1).build().is_err());
        assert!(PhaseDescriptor::builder("p").mispredict_rate(2.0).build().is_err());
    }

    #[test]
    fn with_instructions_preserves_other_fields() {
        let phase = PhaseDescriptor::builder("p")
            .core_cpi(0.7)
            .overlap(0.4)
            .build()
            .unwrap();
        let scaled = phase.with_instructions(42);
        assert_eq!(scaled.instructions(), 42);
        assert_eq!(scaled.core_cpi(), phase.core_cpi());
        assert_eq!(scaled.overlap(), phase.overlap());
    }

    #[test]
    fn with_name_renames_only() {
        let phase = PhaseDescriptor::builder("old").build().unwrap();
        let renamed = phase.with_name("new");
        assert_eq!(renamed.name(), "new");
        assert_eq!(renamed.instructions(), phase.instructions());
    }
}
