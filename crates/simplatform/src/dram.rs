//! DRAM timing model with open-page row-buffer behaviour.
//!
//! Models the DDR-333 main memory behind the Pentium M's 400 MT/s front-side
//! bus. Used during workload characterization to derive the *average* DRAM
//! latency a loop observes (row-buffer hits are cheaper than conflicts), and
//! as the source of the `dram_latency_ns` constant in
//! [`crate::pipeline::MemoryTimings`].

/// Timing parameters of the DRAM device + controller + front-side bus path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramTimings {
    /// Latency when the access hits an open row (CAS + bus + controller).
    pub row_hit_ns: f64,
    /// Latency when the row must first be activated (RCD + CAS + bus).
    pub row_empty_ns: f64,
    /// Latency when another row must be closed first (RP + RCD + CAS + bus).
    pub row_conflict_ns: f64,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Number of independent banks.
    pub banks: usize,
}

impl DramTimings {
    /// DDR-333-class timings over a 400 MT/s FSB, tuned so the *mixed*
    /// average latency lands near the 110 ns used by the analytic model.
    pub fn ddr333() -> Self {
        DramTimings {
            row_hit_ns: 80.0,
            row_empty_ns: 110.0,
            row_conflict_ns: 145.0,
            row_bytes: 4096,
            banks: 8,
        }
    }
}

impl Default for DramTimings {
    fn default() -> Self {
        DramTimings::ddr333()
    }
}

/// Outcome of one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowBufferOutcome {
    /// The addressed row was already open in its bank.
    Hit,
    /// The bank had no open row.
    Empty,
    /// A different row was open and had to be closed.
    Conflict,
}

/// Aggregate DRAM access statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DramStats {
    /// Row-buffer hits.
    pub hits: u64,
    /// Accesses to idle banks.
    pub empties: u64,
    /// Row conflicts.
    pub conflicts: u64,
    /// Sum of access latencies in nanoseconds.
    pub total_latency_ns: f64,
}

impl DramStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.empties + self.conflicts
    }

    /// Mean access latency in nanoseconds (0 with no accesses).
    pub fn mean_latency_ns(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.total_latency_ns / n as f64
        }
    }

    /// Row-buffer hit ratio (0 with no accesses).
    pub fn hit_ratio(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

/// Open-page DRAM model: each bank remembers its open row.
///
/// # Examples
///
/// ```
/// use aapm_platform::dram::{Dram, DramTimings};
///
/// let mut dram = Dram::new(DramTimings::ddr333());
/// let first = dram.access(0x0000);   // row activate
/// let second = dram.access(0x0040);  // same row: row-buffer hit
/// assert!(second < first);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    timings: DramTimings,
    open_rows: Vec<Option<u64>>,
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM model with all banks idle.
    pub fn new(timings: DramTimings) -> Self {
        Dram { open_rows: vec![None; timings.banks], timings, stats: DramStats::default() }
    }

    /// The timing parameters.
    pub fn timings(&self) -> &DramTimings {
        &self.timings
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Closes all rows and clears statistics.
    pub fn reset(&mut self) {
        for row in &mut self.open_rows {
            *row = None;
        }
        self.stats = DramStats::default();
    }

    /// Accesses `addr` and returns the latency in nanoseconds.
    pub fn access(&mut self, addr: u64) -> f64 {
        let row = addr / self.timings.row_bytes;
        // Interleave consecutive rows across banks.
        let bank = (row as usize) % self.timings.banks;
        let (outcome, latency) = match self.open_rows[bank] {
            Some(open) if open == row => (RowBufferOutcome::Hit, self.timings.row_hit_ns),
            Some(_) => (RowBufferOutcome::Conflict, self.timings.row_conflict_ns),
            None => (RowBufferOutcome::Empty, self.timings.row_empty_ns),
        };
        self.open_rows[bank] = Some(row);
        match outcome {
            RowBufferOutcome::Hit => self.stats.hits += 1,
            RowBufferOutcome::Empty => self.stats.empties += 1,
            RowBufferOutcome::Conflict => self.stats.conflicts += 1,
        }
        self.stats.total_latency_ns += latency;
        latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_mostly_row_hits() {
        let mut dram = Dram::new(DramTimings::ddr333());
        for addr in (0..1 << 20).step_by(64) {
            dram.access(addr);
        }
        // 4096/64 = 64 accesses per row; 1 activation per row.
        assert!(dram.stats().hit_ratio() > 0.95, "hit ratio {}", dram.stats().hit_ratio());
        assert!(dram.stats().mean_latency_ns() < 90.0);
    }

    #[test]
    fn random_stream_sees_conflicts() {
        let mut dram = Dram::new(DramTimings::ddr333());
        // A deterministic scattered pattern: large prime stride wraps around
        // a 256 MB space, touching a new row almost every access.
        let mut addr: u64 = 0;
        for _ in 0..10_000 {
            addr = (addr + 7_368_787) % (256 << 20);
            dram.access(addr);
        }
        assert!(dram.stats().hit_ratio() < 0.1, "hit ratio {}", dram.stats().hit_ratio());
        assert!(dram.stats().mean_latency_ns() > 120.0);
    }

    #[test]
    fn first_access_to_bank_is_empty() {
        let mut dram = Dram::new(DramTimings::ddr333());
        let lat = dram.access(0);
        assert_eq!(lat, DramTimings::ddr333().row_empty_ns);
        assert_eq!(dram.stats().empties, 1);
    }

    #[test]
    fn same_row_hits_then_conflict() {
        let t = DramTimings::ddr333();
        let mut dram = Dram::new(t);
        dram.access(0); // open row 0 in bank 0
        assert_eq!(dram.access(64), t.row_hit_ns);
        // Row `banks` maps back to bank 0 but is a different row.
        let conflicting = t.row_bytes * t.banks as u64;
        assert_eq!(dram.access(conflicting), t.row_conflict_ns);
        assert_eq!(dram.stats().conflicts, 1);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut dram = Dram::new(DramTimings::ddr333());
        dram.access(0);
        dram.access(64);
        dram.reset();
        assert_eq!(dram.stats().accesses(), 0);
        assert_eq!(dram.access(64), DramTimings::ddr333().row_empty_ns);
    }

    #[test]
    fn mean_latency_of_empty_stats_is_zero() {
        assert_eq!(DramStats::default().mean_latency_ns(), 0.0);
    }
}
