//! Ground-truth processor power model.
//!
//! This is the simulator's *physics*: what the sense resistors on the paper's
//! Radisys board would actually measure. It is deliberately richer than the
//! linear DPC model the paper's governors use (`aapm-models`), so that the
//! estimation models have realistic, workload-dependent error — the source of
//! the paper's `galgel` power-limit excursions.
//!
//! The model follows the standard CMOS decomposition,
//! `P = P_leak(V) + Ceff · V² · f`, with the effective switched capacitance
//! `Ceff` decomposed over microarchitectural activity (decode bandwidth,
//! floating-point work, cache and bus traffic), each scaled by the phase's
//! switching-activity factor.

use crate::pipeline::PhaseRates;
use crate::pstate::PState;
use crate::units::Watts;

/// Coefficients of the ground-truth power model.
///
/// Units: `leakage_coeff` is W/V³; every `c_*` coefficient is effective
/// capacitance in W / (GHz · V²) per unit of its driving per-cycle rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerConstants {
    /// Leakage scale: `P_leak = leakage_coeff · V³`.
    pub leakage_coeff: f64,
    /// Clock tree, fetch and other always-on switching.
    pub c_idle: f64,
    /// Per decoded instruction per cycle.
    pub c_decode: f64,
    /// Per retired micro-op per cycle (execute/retire datapath).
    pub c_uop: f64,
    /// Per floating-point operation per cycle.
    pub c_fp: f64,
    /// Per L1 data access per cycle.
    pub c_l1: f64,
    /// Per L2 request per cycle.
    pub c_l2: f64,
    /// Per front-side-bus (DRAM) request per cycle.
    pub c_bus: f64,
}

impl PowerConstants {
    /// Constants calibrated so the simulated platform reproduces the paper's
    /// measured landmarks: the FMA-256K worst-case loop draws ≈ 17.8 W at
    /// 2 GHz and ≈ 3.9 W at 600 MHz (paper Table III), the hottest SPEC
    /// workloads reach ≈ 18–19 W at 2 GHz, and the suite's power range at
    /// 2 GHz spans well over 35 % of peak (paper Figure 1).
    pub fn calibrated() -> Self {
        PowerConstants {
            leakage_coeff: 1.52,
            c_idle: 0.80,
            c_decode: 0.62,
            c_uop: 0.35,
            c_fp: 0.95,
            c_l1: 0.45,
            c_l2: 3.50,
            c_bus: 5.50,
        }
    }
}

impl Default for PowerConstants {
    fn default() -> Self {
        PowerConstants::calibrated()
    }
}

/// The ground-truth power model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GroundTruthPower {
    constants: PowerConstants,
}

impl GroundTruthPower {
    /// Creates a model with the given constants.
    pub fn new(constants: PowerConstants) -> Self {
        GroundTruthPower { constants }
    }

    /// Creates the calibrated Pentium M-like model.
    pub fn calibrated() -> Self {
        GroundTruthPower::new(PowerConstants::calibrated())
    }

    /// The model's constants.
    pub fn constants(&self) -> &PowerConstants {
        &self.constants
    }

    /// Leakage power at the given supply voltage.
    pub fn leakage(&self, pstate: &PState) -> Watts {
        let v = pstate.voltage().volts();
        Watts::new(self.constants.leakage_coeff * v * v * v)
    }

    /// Effective switched capacitance for the given activity rates, scaled
    /// by the phase activity factor (which multiplies everything except the
    /// always-on clock-tree term).
    pub fn effective_capacitance(&self, rates: &PhaseRates, activity: f64) -> f64 {
        let c = &self.constants;
        let workload = c.c_decode * rates.dpc
            + c.c_uop * rates.uops_per_cycle
            + c.c_fp * rates.fp_per_cycle
            + c.c_l1 * rates.l1_accesses_per_cycle
            + c.c_l2 * rates.l2_requests_per_cycle
            + c.c_bus * rates.memory_requests_per_cycle;
        c.c_idle + workload * activity
    }

    /// True power for a phase running with `rates` at `pstate`.
    pub fn power(&self, pstate: &PState, rates: &PhaseRates, activity: f64) -> Watts {
        let dynamic = self.effective_capacitance(rates, activity)
            * pstate.voltage().squared()
            * pstate.frequency().ghz();
        self.leakage(pstate) + Watts::new(dynamic)
    }

    /// True power when the core is halted (idle loop, DVFS transition).
    /// Only the clock tree and leakage draw power.
    pub fn idle_power(&self, pstate: &PState) -> Watts {
        let dynamic =
            self.constants.c_idle * pstate.voltage().squared() * pstate.frequency().ghz();
        self.leakage(pstate) + Watts::new(dynamic)
    }

    /// True power while the clock is gated by the throttle modulator: the
    /// clock tree is stopped, so only leakage remains.
    pub fn gated_power(&self, pstate: &PState) -> Watts {
        self.leakage(pstate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseDescriptor;
    use crate::pipeline::{evaluate, MemoryTimings};
    use crate::pstate::PStateTable;

    fn rates_for(phase: &PhaseDescriptor, idx: usize) -> (PhaseRates, PState) {
        let table = PStateTable::pentium_m_755();
        let ps = *table.get(crate::pstate::PStateId::new(idx)).unwrap();
        (evaluate(phase, &ps, &MemoryTimings::pentium_m_755()), ps)
    }

    fn busy_phase() -> PhaseDescriptor {
        PhaseDescriptor::builder("busy")
            .core_cpi(0.55)
            .decode_ratio(1.25)
            .fp_fraction(0.3)
            .mem_fraction(0.4)
            .l1_mpi(0.02)
            .l2_mpi(0.001)
            .build()
            .unwrap()
    }

    #[test]
    fn power_increases_with_pstate() {
        let model = GroundTruthPower::calibrated();
        let phase = busy_phase();
        let mut last = Watts::ZERO;
        for idx in 0..8 {
            let (rates, ps) = rates_for(&phase, idx);
            let p = model.power(&ps, &rates, phase.activity());
            assert!(p > last, "power must rise with frequency+voltage: {p} after {last}");
            last = p;
        }
    }

    #[test]
    fn idle_power_below_active_power() {
        let model = GroundTruthPower::calibrated();
        let phase = busy_phase();
        let (rates, ps) = rates_for(&phase, 7);
        assert!(model.idle_power(&ps) < model.power(&ps, &rates, 1.0));
    }

    #[test]
    fn leakage_grows_with_voltage() {
        let model = GroundTruthPower::calibrated();
        let table = PStateTable::pentium_m_755();
        let low = model.leakage(table.get(table.lowest()).unwrap());
        let high = model.leakage(table.get(table.highest()).unwrap());
        assert!(high > low);
        // V ratio 1.34/0.998 cubed ≈ 2.42
        let ratio = high.watts() / low.watts();
        assert!((ratio - (1.340_f64 / 0.998).powi(3)).abs() < 1e-9);
    }

    #[test]
    fn activity_factor_scales_dynamic_power_only() {
        let model = GroundTruthPower::calibrated();
        let phase = busy_phase();
        let (rates, ps) = rates_for(&phase, 7);
        let nominal = model.power(&ps, &rates, 1.0);
        let hot = model.power(&ps, &rates, 1.3);
        assert!(hot > nominal);
        // The gap is exactly 30% of the workload-dependent dynamic part.
        let idle = model.idle_power(&ps);
        let workload_dyn = nominal - idle;
        let expected = nominal + workload_dyn * 0.3;
        assert!((hot.watts() - expected.watts()).abs() < 1e-9);
    }

    #[test]
    fn calibration_peak_power_in_pentium_m_envelope() {
        // The hottest plausible workload must stay under the 21 W TDP class
        // but above 17 W, matching the paper's galgel samples (> 18 W peak).
        let model = GroundTruthPower::calibrated();
        // A galgel-like power burst: dense FP work with elevated switching
        // activity. The paper saw such bursts exceed 18 W in 10 ms samples.
        let hot = PhaseDescriptor::builder("hot")
            .core_cpi(0.50)
            .decode_ratio(1.30)
            .fp_fraction(0.30)
            .mem_fraction(0.45)
            .l1_mpi(0.02)
            .l2_mpi(0.0003)
            .activity(1.30)
            .build()
            .unwrap();
        let (rates, ps) = rates_for(&hot, 7);
        let p = model.power(&ps, &rates, hot.activity());
        assert!(
            p.watts() > 17.0 && p.watts() < 21.5,
            "hot workload at 2 GHz should land in 17–21.5 W, got {p}"
        );
    }

    #[test]
    fn memory_bound_power_well_below_peak() {
        let model = GroundTruthPower::calibrated();
        let memory = PhaseDescriptor::builder("mem")
            .core_cpi(1.0)
            .mem_fraction(0.5)
            .l1_mpi(0.07)
            .l2_mpi(0.035)
            .overlap(0.1)
            .build()
            .unwrap();
        let (rates, ps) = rates_for(&memory, 7);
        let p = model.power(&ps, &rates, memory.activity());
        // Figure 1's range: memory-bound workloads sit several watts below
        // the hottest ones even at full utilization.
        assert!(p.watts() < 13.0, "memory-bound at 2 GHz should be < 13 W, got {p}");
        assert!(p.watts() > 6.0, "but clearly above idle, got {p}");
    }
}
