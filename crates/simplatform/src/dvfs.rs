//! DVFS actuation: voltage/frequency transitions and their costs.
//!
//! On the Pentium M, a p-state change reprograms the PLL and the external
//! voltage-identification (VID) pins of the voltage regulator. The core is
//! halted while the PLL relocks; raising frequency additionally waits for
//! the regulator to ramp the voltage *up* first (running fast at low voltage
//! would be unsafe), while lowering frequency can drop voltage after the
//! frequency change without stalling the core for the ramp.

use crate::pstate::PState;
use crate::units::Seconds;

/// Parameters of the DVFS transition machinery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsParams {
    /// Core stall while the PLL relocks, per frequency change.
    pub pll_relock: Seconds,
    /// Voltage regulator slew rate in volts per second.
    pub vrm_slew_volts_per_sec: f64,
    /// Fixed driver/MSR overhead per transition.
    pub driver_overhead: Seconds,
}

impl DvfsParams {
    /// Enhanced SpeedStep-class costs: ~10 µs PLL relock, 1 mV/µs regulator
    /// slew, ~2 µs of driver work.
    pub fn enhanced_speedstep() -> Self {
        DvfsParams {
            pll_relock: Seconds::from_micros(10.0),
            vrm_slew_volts_per_sec: 1000.0, // 1 mV/µs
            driver_overhead: Seconds::from_micros(2.0),
        }
    }
}

impl Default for DvfsParams {
    fn default() -> Self {
        DvfsParams::enhanced_speedstep()
    }
}

/// A pending p-state transition: the core is stalled for `stall`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// Total core-stall time for the transition.
    pub stall: Seconds,
    /// Whether the voltage had to ramp before the frequency change
    /// (upward transitions only).
    pub voltage_ramp_blocking: bool,
}

/// Computes the cost of moving between two p-states.
///
/// # Examples
///
/// ```
/// use aapm_platform::dvfs::{transition_cost, DvfsParams};
/// use aapm_platform::pstate::{PStateId, PStateTable};
///
/// let table = PStateTable::pentium_m_755();
/// let params = DvfsParams::enhanced_speedstep();
/// let up = transition_cost(
///     table.get(PStateId::new(0))?,
///     table.get(PStateId::new(7))?,
///     &params,
/// );
/// let down = transition_cost(
///     table.get(PStateId::new(7))?,
///     table.get(PStateId::new(0))?,
///     &params,
/// );
/// // Raising frequency waits for the voltage ramp; lowering does not.
/// assert!(up.stall > down.stall);
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
pub fn transition_cost(from: &PState, to: &PState, params: &DvfsParams) -> Transition {
    if from == to {
        return Transition { stall: Seconds::ZERO, voltage_ramp_blocking: false };
    }
    let dv = to.voltage() - from.voltage();
    let going_up = dv > 0.0;
    let ramp = Seconds::new(dv.abs() / params.vrm_slew_volts_per_sec);
    let stall = if going_up {
        // Ramp voltage first (blocking), then relock the PLL.
        params.driver_overhead + ramp + params.pll_relock
    } else {
        // Relock immediately; voltage drifts down afterwards off the
        // critical path.
        params.driver_overhead + params.pll_relock
    };
    Transition { stall, voltage_ramp_blocking: going_up }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pstate::{PStateId, PStateTable};

    fn table() -> PStateTable {
        PStateTable::pentium_m_755()
    }

    #[test]
    fn same_state_transition_is_free() {
        let t = table();
        let ps = t.get(PStateId::new(3)).unwrap();
        let tr = transition_cost(ps, ps, &DvfsParams::enhanced_speedstep());
        assert_eq!(tr.stall, Seconds::ZERO);
    }

    #[test]
    fn upward_transition_includes_voltage_ramp() {
        let t = table();
        let params = DvfsParams::enhanced_speedstep();
        let from = t.get(PStateId::new(0)).unwrap();
        let to = t.get(PStateId::new(7)).unwrap();
        let tr = transition_cost(from, to, &params);
        assert!(tr.voltage_ramp_blocking);
        // ΔV = 1.340 − 0.998 = 0.342 V at 1 mV/µs → 342 µs of ramp.
        let expected_ramp_us = 342.0;
        let overhead_us = 12.0; // relock + driver
        assert!((tr.stall.micros() - (expected_ramp_us + overhead_us)).abs() < 1.0);
    }

    #[test]
    fn downward_transition_skips_ramp() {
        let t = table();
        let params = DvfsParams::enhanced_speedstep();
        let from = t.get(PStateId::new(7)).unwrap();
        let to = t.get(PStateId::new(0)).unwrap();
        let tr = transition_cost(from, to, &params);
        assert!(!tr.voltage_ramp_blocking);
        assert!((tr.stall.micros() - 12.0).abs() < 1.0);
    }

    #[test]
    fn adjacent_up_step_is_cheap_relative_to_sample_interval() {
        let t = table();
        let params = DvfsParams::enhanced_speedstep();
        let from = t.get(PStateId::new(6)).unwrap();
        let to = t.get(PStateId::new(7)).unwrap();
        let tr = transition_cost(from, to, &params);
        // One VID step (48 mV) ramps in 48 µs — well under the 10 ms sample.
        assert!(tr.stall.millis() < 0.1);
    }
}
