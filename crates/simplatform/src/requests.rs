//! The open-loop request layer: queues of timed requests served by a
//! machine in *serve* mode.
//!
//! Batch programs run to completion; a server never finishes. Work arrives
//! as [`Request`]s — an arrival time plus an instruction demand — queued
//! FIFO on a [`RequestQueue`] attached to a [`crate::machine::Machine`]
//! built with [`crate::machine::Machine::server`]. The machine drains the
//! queue work-conservingly at the current p-state's throughput, records
//! each request's *sojourn* (queueing + service) time on completion, and
//! exposes a per-interval [`QueueSample`] for governors and telemetry.
//!
//! Conservation is a first-class invariant: at any instant
//! `arrived == completed + pending`, and the property tests in
//! `aapm-core` hold the machine to it under fault injection.

use std::collections::VecDeque;

use crate::machine::PHASE_END_REL_EPS;
use crate::units::Seconds;

/// One open-loop request: when it arrives and how much work it carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Simulated arrival time.
    pub arrival: Seconds,
    /// Instruction demand (service requirement at the machine's rates).
    pub instructions: f64,
}

impl Request {
    /// Creates a request. Demands are clamped to at least one instruction
    /// so a degenerate draw can never wedge the server in a zero-length
    /// service loop.
    pub fn new(arrival: Seconds, instructions: f64) -> Self {
        debug_assert!(arrival.seconds().is_finite(), "arrival must be finite");
        debug_assert!(instructions.is_finite(), "demand must be finite");
        Request { arrival, instructions: instructions.max(1.0) }
    }
}

/// What a control interval observed about the queue: the end-of-interval
/// depth, cumulative conservation counters, and the sojourn times of every
/// request completed since the previous sample.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueueSample {
    /// Requests waiting or in service at the sample instant (arrivals in
    /// the future are excluded — they have not happened yet).
    pub depth: usize,
    /// Total requests ever offered to the queue.
    pub arrived: u64,
    /// Total requests ever completed.
    pub completed: u64,
    /// Sojourn times (arrival → completion, seconds) of the requests that
    /// completed during the sampled interval, in completion order.
    pub sojourns: Vec<f64>,
}

/// FIFO queue of open-loop requests with conservation accounting.
///
/// Requests must be offered in non-decreasing arrival order (arrival
/// processes generate them that way); the head of the queue is therefore
/// always the earliest-arriving pending request.
#[derive(Debug, Clone, Default)]
pub struct RequestQueue {
    pending: VecDeque<Request>,
    /// Instructions already retired into the head request.
    head_done: f64,
    arrived: u64,
    completed: u64,
    /// Sojourns completed since the last [`RequestQueue::drain_sample`].
    recent_sojourns: Vec<f64>,
    /// Sum of all sojourn times ever recorded (for energy-per-request and
    /// mean-latency reporting).
    total_sojourn: f64,
}

impl RequestQueue {
    /// An empty queue.
    pub fn new() -> Self {
        RequestQueue::default()
    }

    /// Offers a request. Arrivals must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `request.arrival` precedes the last offered
    /// arrival.
    pub fn offer(&mut self, request: Request) {
        debug_assert!(
            self.pending.back().is_none_or(|last| last.arrival <= request.arrival),
            "requests must be offered in arrival order"
        );
        self.pending.push_back(request);
        self.arrived += 1;
    }

    /// Requests waiting or in service at `now` (future arrivals excluded).
    pub fn depth_at(&self, now: Seconds) -> usize {
        self.pending.partition_point(|r| r.arrival <= now)
    }

    /// Total requests ever offered.
    pub fn arrived(&self) -> u64 {
        self.arrived
    }

    /// Total requests ever completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests still pending (arrived or future).
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Sum of all recorded sojourn times, in seconds.
    pub fn total_sojourn(&self) -> f64 {
        self.total_sojourn
    }

    /// The head request, if it has arrived by `now`.
    pub(crate) fn head_at(&self, now: Seconds) -> Option<&Request> {
        self.pending.front().filter(|r| r.arrival <= now)
    }

    /// Arrival time of the earliest pending request strictly after `now`.
    pub(crate) fn next_arrival_after(&self, now: Seconds) -> Option<Seconds> {
        self.pending.front().map(|r| r.arrival).filter(|&a| a > now)
    }

    /// Instructions left on the head request (0 when the queue is empty).
    pub(crate) fn head_remaining(&self) -> f64 {
        self.pending.front().map_or(0.0, |r| r.instructions - self.head_done)
    }

    /// Retires `instructions` into the head request.
    pub(crate) fn advance_head(&mut self, instructions: f64) {
        self.head_done += instructions;
    }

    /// Whether the head request's remaining demand is within the relative
    /// completion tolerance (same boundary rule as phase completion).
    pub(crate) fn head_complete(&self) -> bool {
        self.pending
            .front()
            .is_some_and(|r| r.instructions - self.head_done <= r.instructions * PHASE_END_REL_EPS)
    }

    /// Pops the completed head, recording its sojourn at completion time
    /// `now`.
    pub(crate) fn complete_head(&mut self, now: Seconds) {
        let head = self.pending.pop_front().expect("complete_head on an empty queue");
        self.head_done = 0.0;
        self.completed += 1;
        let sojourn = (now - head.arrival).clamp_non_negative().seconds();
        self.recent_sojourns.push(sojourn);
        self.total_sojourn += sojourn;
    }

    /// Drains the interval's completions into a [`QueueSample`] stamped
    /// with the queue state at `now`.
    pub fn drain_sample(&mut self, now: Seconds) -> QueueSample {
        QueueSample {
            depth: self.depth_at(now),
            arrived: self.arrived,
            completed: self.completed,
            sojourns: std::mem::take(&mut self.recent_sojourns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(arrival: f64, instructions: f64) -> Request {
        Request::new(Seconds::new(arrival), instructions)
    }

    #[test]
    fn offers_accumulate_in_arrival_order() {
        let mut q = RequestQueue::new();
        q.offer(r(0.0, 100.0));
        q.offer(r(1.0, 200.0));
        q.offer(r(1.0, 300.0));
        assert_eq!(q.arrived(), 3);
        assert_eq!(q.pending(), 3);
        assert_eq!(q.depth_at(Seconds::new(0.5)), 1);
        assert_eq!(q.depth_at(Seconds::new(1.0)), 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "arrival order")]
    fn out_of_order_offer_panics() {
        let mut q = RequestQueue::new();
        q.offer(r(2.0, 1.0));
        q.offer(r(1.0, 1.0));
    }

    #[test]
    fn zero_demand_is_clamped_to_one_instruction() {
        assert_eq!(r(0.0, 0.0).instructions, 1.0);
        assert_eq!(r(0.0, -5.0).instructions, 1.0);
    }

    #[test]
    fn head_progress_and_completion_record_sojourn() {
        let mut q = RequestQueue::new();
        q.offer(r(1.0, 1000.0));
        assert!(q.head_at(Seconds::new(0.5)).is_none(), "not yet arrived");
        assert!(q.head_at(Seconds::new(1.0)).is_some());
        q.advance_head(999.9999999999);
        assert!(q.head_complete(), "within relative tolerance");
        q.complete_head(Seconds::new(3.5));
        assert_eq!(q.completed(), 1);
        assert_eq!(q.pending(), 0);
        let sample = q.drain_sample(Seconds::new(3.5));
        assert_eq!(sample.sojourns, vec![2.5]);
        assert_eq!(sample.arrived, 1);
        assert_eq!(sample.completed, 1);
        assert_eq!(sample.depth, 0);
    }

    #[test]
    fn drain_sample_resets_recent_but_not_totals() {
        let mut q = RequestQueue::new();
        q.offer(r(0.0, 1.0));
        q.advance_head(1.0);
        q.complete_head(Seconds::new(0.25));
        let first = q.drain_sample(Seconds::new(0.25));
        assert_eq!(first.sojourns.len(), 1);
        let second = q.drain_sample(Seconds::new(0.5));
        assert!(second.sojourns.is_empty(), "recent sojourns drained");
        assert_eq!(second.completed, 1, "cumulative counters persist");
        assert!((q.total_sojourn() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn conservation_holds_through_a_mixed_history() {
        let mut q = RequestQueue::new();
        for i in 0..10 {
            q.offer(r(i as f64, 50.0));
        }
        for _ in 0..4 {
            q.advance_head(50.0);
            assert!(q.head_complete());
            q.complete_head(Seconds::new(20.0));
        }
        assert_eq!(q.arrived(), q.completed() + q.pending() as u64);
    }

    #[test]
    fn next_arrival_after_skips_arrived_head() {
        let mut q = RequestQueue::new();
        q.offer(r(2.0, 1.0));
        assert_eq!(q.next_arrival_after(Seconds::new(1.0)), Some(Seconds::new(2.0)));
        assert_eq!(q.next_arrival_after(Seconds::new(2.0)), None, "already arrived");
    }

    #[test]
    fn sojourn_clamps_negative_to_zero() {
        // A completion stamped (pathologically) before the arrival must not
        // record a negative sojourn.
        let mut q = RequestQueue::new();
        q.offer(r(5.0, 1.0));
        q.advance_head(1.0);
        q.complete_head(Seconds::new(4.0));
        assert_eq!(q.drain_sample(Seconds::new(4.0)).sojourns, vec![0.0]);
    }
}
