//! Hardware performance-monitoring events.
//!
//! The Pentium M exposes 92 selectable events on two general-purpose
//! counters. The simulator models the subset the paper's methodology uses
//! (decoded instructions, retired instructions, DCU miss outstanding cycles,
//! resource stalls, memory-bus requests, L2 requests) plus a few neighbours
//! that are useful for workload characterization. Events are identified by a
//! compact enum so counter banks can be fixed-size arrays.

use std::fmt;

/// A selectable hardware event.
///
/// Each variant corresponds to one event-select encoding on the real PMU.
/// `Cycles` plays the role of the timestamp counter: it is always available
/// and does not occupy one of the two general-purpose counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum HardwareEvent {
    /// Unhalted core clock cycles (free-running, TSC-like).
    Cycles,
    /// Instructions retired (architecturally completed).
    InstructionsRetired,
    /// Instructions decoded, including speculative work that is later
    /// squashed. The paper's power model input (DPC = decoded per cycle).
    InstructionsDecoded,
    /// Cycles in which the L1 data cache has at least one miss outstanding
    /// ("DCU Miss Outstanding"); can exceed elapsed cycles when several
    /// misses overlap. The paper's memory-boundedness input.
    DcuMissOutstanding,
    /// Cycles in which instruction issue stalled for a resource.
    ResourceStalls,
    /// Requests that reached the front-side bus, i.e. DRAM accesses.
    MemoryRequests,
    /// Accesses presented to the unified L2 cache (L1 misses + prefetches).
    L2Requests,
    /// L1 data-cache misses.
    L1DMisses,
    /// L2 cache misses.
    L2Misses,
    /// Retired floating-point operations.
    FpOperations,
    /// Retired branch instructions.
    BranchesRetired,
    /// Mispredicted retired branches.
    BranchMispredictions,
    /// Hardware prefetch requests issued.
    HardwarePrefetches,
    /// Micro-operations retired.
    UopsRetired,
}

impl HardwareEvent {
    /// Every event the simulated PMU can count, in canonical order.
    pub const ALL: [HardwareEvent; 14] = [
        HardwareEvent::Cycles,
        HardwareEvent::InstructionsRetired,
        HardwareEvent::InstructionsDecoded,
        HardwareEvent::DcuMissOutstanding,
        HardwareEvent::ResourceStalls,
        HardwareEvent::MemoryRequests,
        HardwareEvent::L2Requests,
        HardwareEvent::L1DMisses,
        HardwareEvent::L2Misses,
        HardwareEvent::FpOperations,
        HardwareEvent::BranchesRetired,
        HardwareEvent::BranchMispredictions,
        HardwareEvent::HardwarePrefetches,
        HardwareEvent::UopsRetired,
    ];

    /// Number of distinct events.
    pub const COUNT: usize = Self::ALL.len();

    /// A stable dense index for array-backed counter banks.
    pub fn index(self) -> usize {
        match self {
            HardwareEvent::Cycles => 0,
            HardwareEvent::InstructionsRetired => 1,
            HardwareEvent::InstructionsDecoded => 2,
            HardwareEvent::DcuMissOutstanding => 3,
            HardwareEvent::ResourceStalls => 4,
            HardwareEvent::MemoryRequests => 5,
            HardwareEvent::L2Requests => 6,
            HardwareEvent::L1DMisses => 7,
            HardwareEvent::L2Misses => 8,
            HardwareEvent::FpOperations => 9,
            HardwareEvent::BranchesRetired => 10,
            HardwareEvent::BranchMispredictions => 11,
            HardwareEvent::HardwarePrefetches => 12,
            HardwareEvent::UopsRetired => 13,
        }
    }

    /// Whether this event is free-running (does not occupy a programmable
    /// counter). Only [`HardwareEvent::Cycles`] qualifies, mirroring the TSC.
    pub fn is_free_running(self) -> bool {
        self == HardwareEvent::Cycles
    }

    /// Short mnemonic used in traces and tables.
    pub fn mnemonic(self) -> &'static str {
        match self {
            HardwareEvent::Cycles => "CYC",
            HardwareEvent::InstructionsRetired => "INST_RET",
            HardwareEvent::InstructionsDecoded => "INST_DEC",
            HardwareEvent::DcuMissOutstanding => "DCU_MISS_OUT",
            HardwareEvent::ResourceStalls => "RES_STALL",
            HardwareEvent::MemoryRequests => "MEM_REQ",
            HardwareEvent::L2Requests => "L2_REQ",
            HardwareEvent::L1DMisses => "L1D_MISS",
            HardwareEvent::L2Misses => "L2_MISS",
            HardwareEvent::FpOperations => "FP_OPS",
            HardwareEvent::BranchesRetired => "BR_RET",
            HardwareEvent::BranchMispredictions => "BR_MISP",
            HardwareEvent::HardwarePrefetches => "HW_PREF",
            HardwareEvent::UopsRetired => "UOPS_RET",
        }
    }
}

impl fmt::Display for HardwareEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = HashSet::new();
        for event in HardwareEvent::ALL {
            let idx = event.index();
            assert!(idx < HardwareEvent::COUNT, "index {idx} out of bounds");
            assert!(seen.insert(idx), "duplicate index {idx}");
        }
        assert_eq!(seen.len(), HardwareEvent::COUNT);
    }

    #[test]
    fn all_array_matches_index_order() {
        for (i, event) in HardwareEvent::ALL.iter().enumerate() {
            assert_eq!(event.index(), i, "ALL[{i}] has index {}", event.index());
        }
    }

    #[test]
    fn only_cycles_is_free_running() {
        for event in HardwareEvent::ALL {
            assert_eq!(event.is_free_running(), event == HardwareEvent::Cycles);
        }
    }

    #[test]
    fn mnemonics_are_unique_and_nonempty() {
        let mut seen = HashSet::new();
        for event in HardwareEvent::ALL {
            let m = event.mnemonic();
            assert!(!m.is_empty());
            assert!(seen.insert(m), "duplicate mnemonic {m}");
            assert_eq!(format!("{event}"), m);
        }
    }
}
