//! Lockstep structure-of-arrays simulation of independent machines.
//!
//! [`MachineBatch`] steps N independent [`Machine`]s through the same tick
//! cadence at once. The hot per-lane state (elapsed time, true energy,
//! phase progress, die temperature, and all hardware counters) lives in
//! contiguous per-lane arrays, and everything `Machine::tick` derives per
//! segment — retire rate, per-tick counter increments, per-tick energy,
//! the thermal target and decay factor — is precomputed per (segment × dt)
//! into the same layout. The common case ("every lane executes strictly
//! inside its current phase segment") then reduces to a handful of
//! branch-light, auto-vectorizable array sweeps: one fused
//! multiply-free add per counter slot, one add each for energy, progress,
//! and elapsed time, and a three-op exponential step for the temperature.
//!
//! Determinism is the design constraint, not an afterthought: every fast
//! path evaluates *bit-identical float expressions* to the scalar
//! [`Machine::tick`] on the same inputs. Precomputing a per-tick constant
//! is legal because the scalar path recomputes the identical expression
//! from identical inputs each tick; eligibility for the fast path is
//! decided with the very same `left / ips ≥ dt` division the scalar path
//! uses to clip a tick at a phase boundary. Any lane the fast path cannot
//! represent exactly — mid-DVFS-stall, inside the tick that crosses a
//! phase boundary, or a degenerate zero-rate segment — falls back to the
//! scalar `Machine::tick` for that tick (state is synced into the machine,
//! ticked, and loaded back), so batch-stepped lanes are bit-identical to
//! the same machines stepped alone. The property tests in this module pin
//! that equivalence over random tick/p-state/throttle scripts, mirroring
//! the PR 4 `tick` vs `tick_uncached` oracle.
//!
//! Grouping rule for callers: batch lanes must share a tick cadence but
//! nothing else — programs, seeds, p-states, and throttles may differ per
//! lane. Governed runs whose control decisions diverge per lane should
//! keep the scalar `Machine` (each `Session` owns its machine); the batch
//! is for same-cadence, externally-scripted populations — characterization
//! sweeps, benches, and fleet-style simulations.

use crate::counters::CounterSnapshot;
use crate::error::Result;
use crate::events::HardwareEvent;
use crate::machine::Machine;
use crate::pstate::PStateId;
use crate::requests::Request;
use crate::thermal::Celsius;
use crate::throttle::ThrottleLevel;
use crate::units::{Joules, Seconds};

const EVENTS: usize = HardwareEvent::COUNT;

/// Per-lane derived constants for one (segment × dt) combination, computed
/// by `refresh_lane` and scattered into the batch's SoA arrays.
struct LaneDerived {
    ips: f64,
    budget: f64,
    threshold: f64,
    executed: f64,
    tick_energy_j: f64,
    target_c: f64,
    decay: f64,
    inc: [f64; EVENTS],
}

/// N independent machines stepped in lockstep over SoA state.
///
/// # Examples
///
/// ```
/// use aapm_platform::batch::MachineBatch;
/// use aapm_platform::config::MachineConfig;
/// use aapm_platform::machine::Machine;
/// use aapm_platform::phase::PhaseDescriptor;
/// use aapm_platform::program::PhaseProgram;
/// use aapm_platform::units::Seconds;
///
/// let lane = |seed: u64| {
///     let phase = PhaseDescriptor::builder("work").instructions(30_000_000).build().unwrap();
///     Machine::new(MachineConfig::pentium_m_755(seed), PhaseProgram::from_phase(phase))
/// };
/// let mut batch = MachineBatch::new(vec![lane(1), lane(2)]);
/// let mut solo = lane(1);
/// for _ in 0..4 {
///     batch.tick_all(Seconds::from_millis(10.0));
///     solo.tick(Seconds::from_millis(10.0));
/// }
/// // Batch lanes are bit-identical to the same machine stepped alone
/// // (sync_lane writes the hot SoA state back before reading).
/// assert_eq!(batch.sync_lane(0).true_energy(), solo.true_energy());
/// assert_eq!(batch.sync_lane(0).counter_snapshot(), solo.counter_snapshot());
/// ```
#[derive(Debug)]
pub struct MachineBatch {
    machines: Vec<Machine>,
    // Hot per-lane accumulators; authoritative between syncs. `counts` is
    // event-major (`[event × lanes + lane]`) so each counter slot's add
    // sweeps a contiguous stripe across all lanes.
    elapsed_s: Vec<f64>,
    energy_j: Vec<f64>,
    phase_done: Vec<f64>,
    temp_c: Vec<f64>,
    counts: Vec<f64>,
    // Per-(segment × dt) derived constants, `refresh_lane`'s output.
    ips: Vec<f64>,
    budget: Vec<f64>,
    threshold: Vec<f64>,
    executed: Vec<f64>,
    tick_energy_j: Vec<f64>,
    target_c: Vec<f64>,
    decay: Vec<f64>,
    inc: Vec<f64>,
    // Lane classification: `fast` marks lanes whose derived constants are
    // valid (executing a live segment, or idling on sentinels); `ok` is
    // per-tick scratch for the eligibility sweep.
    fast: Vec<bool>,
    ok: Vec<bool>,
    // Tick length the derived constants were computed for (NaN until the
    // first `tick_all`; a cadence change recomputes every lane).
    dt_s: f64,
}

impl MachineBatch {
    /// Wraps `machines` (any mix of programs, seeds, and progress) into a
    /// lockstep batch.
    pub fn new(machines: Vec<Machine>) -> Self {
        let n = machines.len();
        let mut batch = MachineBatch {
            machines,
            elapsed_s: vec![0.0; n],
            energy_j: vec![0.0; n],
            phase_done: vec![0.0; n],
            temp_c: vec![0.0; n],
            counts: vec![0.0; n * EVENTS],
            ips: vec![0.0; n],
            budget: vec![0.0; n],
            threshold: vec![0.0; n],
            executed: vec![0.0; n],
            tick_energy_j: vec![0.0; n],
            target_c: vec![0.0; n],
            decay: vec![0.0; n],
            inc: vec![0.0; n * EVENTS],
            fast: vec![false; n],
            ok: vec![false; n],
            dt_s: f64::NAN,
        };
        for lane in 0..n {
            batch.load_lane(lane);
        }
        batch
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the batch has no lanes.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Whether every lane's program has finished.
    pub fn all_finished(&self) -> bool {
        self.machines.iter().all(Machine::finished)
    }

    /// Read access to one lane's machine **without syncing**.
    ///
    /// Control-plane state is always live here: the p-state, throttle
    /// level, program position, `finished`, and `completion_time` are
    /// maintained on the machine itself. The hot accumulators — counters,
    /// energy, elapsed time, temperature — are authoritative in the SoA
    /// arrays between syncs, so read those through
    /// [`MachineBatch::counter_snapshot`], [`MachineBatch::energy`], and
    /// [`MachineBatch::elapsed`], or take a fully coherent view with
    /// [`MachineBatch::sync_lane`] / [`MachineBatch::lane_mut`].
    pub fn lane(&self, lane: usize) -> &Machine {
        &self.machines[lane]
    }

    /// Read access to one lane, with its hot state synced back into the
    /// machine first — counters, energy, elapsed time, and temperature all
    /// reflect the batch's progress (this is the DAQ/PMC sampling path).
    pub fn sync_lane(&mut self, lane: usize) -> &Machine {
        self.write_back_lane(lane);
        &self.machines[lane]
    }

    /// Exclusive access to one lane's machine, synced on entry; when the
    /// guard drops, the machine's state is loaded back into the SoA arrays
    /// and the lane's derived constants are recomputed. This is the
    /// escape hatch for per-lane scalar operations the batch has no sweep
    /// for — e.g. `fast_forward`ing one lane through an unobserved span.
    pub fn lane_mut(&mut self, lane: usize) -> LaneGuard<'_> {
        self.write_back_lane(lane);
        LaneGuard { batch: self, lane }
    }

    /// Requests a p-state change on one lane (see [`Machine::set_pstate`]);
    /// the lane steps scalar ticks until the DVFS stall has elapsed.
    ///
    /// # Errors
    ///
    /// As [`Machine::set_pstate`].
    pub fn set_pstate(&mut self, lane: usize, target: PStateId) -> Result<()> {
        self.machines[lane].set_pstate(target)?;
        self.refresh_lane(lane);
        Ok(())
    }

    /// Sets one lane's clock-modulation level (see
    /// [`Machine::set_throttle`]), effective on the next tick.
    pub fn set_throttle(&mut self, lane: usize, level: ThrottleLevel) {
        self.machines[lane].set_throttle(level);
        self.refresh_lane(lane);
    }

    /// Offers a request to one serve-mode lane's queue (see
    /// [`Machine::offer_request`]). The queue is control-plane state that
    /// never enters the SoA arrays — serve lanes always tick through the
    /// scalar fallback, which reads the live queue — so no lane sync is
    /// needed on either side of the push.
    ///
    /// # Panics
    ///
    /// As [`Machine::offer_request`]: panics if the lane is a batch
    /// (program-driven) machine.
    pub fn offer_request(&mut self, lane: usize, request: Request) {
        self.machines[lane].offer_request(request);
    }

    /// Dissolves the batch back into its machines, each synced to its
    /// lane's final state.
    pub fn into_machines(mut self) -> Vec<Machine> {
        for lane in 0..self.machines.len() {
            self.write_back_lane(lane);
        }
        self.machines
    }

    /// Advances every lane by `dt`, bit-identically to calling
    /// [`Machine::tick`] on each machine.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn tick_all(&mut self, dt: Seconds) {
        assert!(dt.is_positive(), "tick duration must be positive");
        let n = self.machines.len();
        if n == 0 {
            return;
        }
        let dt_s = dt.seconds();
        if self.dt_s != dt_s {
            self.dt_s = dt_s;
            for lane in 0..n {
                self.refresh_lane(lane);
            }
        }

        // Eligibility sweep: a lane may take the vector path when its
        // derived constants are valid and the whole tick fits strictly
        // inside the current segment — decided with the same
        // `left / ips ≥ dt` division the scalar tick uses to clip at a
        // boundary, so the choice is bit-exact. Idle lanes carry sentinels
        // (`budget = MAX`, `ips = 1`) that always pass.
        let mut all_ok = true;
        for lane in 0..n {
            let ok = self.fast[lane]
                && (self.budget[lane] - self.phase_done[lane]) / self.ips[lane] >= dt_s;
            self.ok[lane] = ok;
            all_ok &= ok;
        }

        if all_ok {
            for (done, executed) in self.phase_done.iter_mut().zip(&self.executed) {
                *done += *executed;
            }
            for (counts, inc) in
                self.counts.chunks_exact_mut(n).zip(self.inc.chunks_exact(n))
            {
                for (count, inc) in counts.iter_mut().zip(inc) {
                    *count += *inc;
                }
            }
            for (energy, tick_energy) in self.energy_j.iter_mut().zip(&self.tick_energy_j) {
                *energy += *tick_energy;
            }
            for elapsed in &mut self.elapsed_s {
                *elapsed += dt_s;
            }
            for ((temp, target), decay) in
                self.temp_c.iter_mut().zip(&self.target_c).zip(&self.decay)
            {
                *temp = *target + (*temp - *target) * *decay;
            }
            // Boundary sweep: rare, so collect first and complete outside
            // the scan (no allocation unless a lane actually completes).
            let mut completed = Vec::new();
            for lane in 0..n {
                if self.budget[lane] - self.phase_done[lane] <= self.threshold[lane] {
                    completed.push(lane);
                }
            }
            for lane in completed {
                self.complete_lane(lane);
            }
        } else {
            for lane in 0..n {
                if self.ok[lane] {
                    self.fast_step_lane(lane, dt_s);
                } else {
                    self.fallback_tick(lane, dt);
                }
            }
        }
    }

    /// The vector path for one lane — the same updates `tick_all` applies
    /// across all lanes, used when only some lanes are eligible this tick.
    fn fast_step_lane(&mut self, lane: usize, dt_s: f64) {
        let n = self.machines.len();
        self.phase_done[lane] += self.executed[lane];
        for event in 0..EVENTS {
            self.counts[event * n + lane] += self.inc[event * n + lane];
        }
        self.energy_j[lane] += self.tick_energy_j[lane];
        self.elapsed_s[lane] += dt_s;
        self.temp_c[lane] =
            self.target_c[lane] + (self.temp_c[lane] - self.target_c[lane]) * self.decay[lane];
        if self.budget[lane] - self.phase_done[lane] <= self.threshold[lane] {
            self.complete_lane(lane);
        }
    }

    /// Scalar fallback for one tick: sync the lane into its machine, tick
    /// it exactly, and load the result back. Handles DVFS stalls, boundary
    /// crossings, and degenerate zero-rate segments.
    fn fallback_tick(&mut self, lane: usize, dt: Seconds) {
        self.write_back_lane(lane);
        self.machines[lane].tick(dt);
        self.load_lane(lane);
        self.refresh_lane(lane);
    }

    /// A lane's phase boundary fired: advance the machine's phase (which
    /// resamples the lane's execution jitter from its own noise stream and
    /// latches a completion time) and re-derive the lane's constants. The
    /// completion timestamp equals the scalar path's
    /// `elapsed + (dt - remaining)` with `remaining = 0`.
    fn complete_lane(&mut self, lane: usize) {
        let now = Seconds::new(self.elapsed_s[lane]);
        self.phase_done[lane] = 0.0;
        self.machines[lane].complete_phase(now);
        self.refresh_lane(lane);
    }

    /// Copies a machine's hot state into its lane's SoA slots.
    fn load_lane(&mut self, lane: usize) {
        let n = self.machines.len();
        let machine = &self.machines[lane];
        self.elapsed_s[lane] = machine.elapsed.seconds();
        self.energy_j[lane] = machine.true_energy.joules();
        self.phase_done[lane] = machine.phase_done_instructions;
        self.temp_c[lane] = machine.thermal.temperature().degrees();
        let raw = machine.counters.raw();
        for (event, count) in raw.iter().enumerate() {
            self.counts[event * n + lane] = *count;
        }
    }

    /// Writes a lane's SoA slots back into its machine.
    fn write_back_lane(&mut self, lane: usize) {
        let n = self.machines.len();
        let machine = &mut self.machines[lane];
        machine.elapsed = Seconds::new(self.elapsed_s[lane]);
        machine.true_energy = Joules::new(self.energy_j[lane]);
        machine.phase_done_instructions = self.phase_done[lane];
        machine.thermal.set_temperature(Celsius::new(self.temp_c[lane]));
        let raw = machine.counters.raw_mut();
        for (event, count) in raw.iter_mut().enumerate() {
            *count = self.counts[event * n + lane];
        }
    }

    /// Recomputes a lane's per-(segment × dt) constants. Every expression
    /// here is the one `Machine::tick` evaluates per tick with `adv = dt`,
    /// so reusing the results across ticks is bit-identical to recomputing
    /// them. Lanes this path cannot represent (mid-stall, zero-rate) are
    /// left `fast = false` and take the scalar fallback.
    fn refresh_lane(&mut self, lane: usize) {
        self.fast[lane] = false;
        let dt_s = self.dt_s;
        if !dt_s.is_finite() {
            // No cadence yet (before the first tick_all): nothing to derive.
            return;
        }
        let dt = Seconds::new(dt_s);

        let derived = {
            let machine = &mut self.machines[lane];
            let ps = *machine.operating_point();
            let thermal = *machine.thermal.params();
            let ambient = thermal.ambient.degrees();
            let resistance = thermal.resistance_c_per_w;
            let decay = (-dt.seconds() / thermal.time_constant.seconds()).exp();

            if machine.is_serving() {
                // Serve-mode lane: arrivals and request completions
                // subdivide any tick, and the queue lives on the machine
                // (not in SoA hot state), so every tick takes the scalar
                // fallback — write-back → `Machine::tick` → reload keeps
                // the queue exact.
                None
            } else if machine.transition_remaining.is_positive() {
                // Mid-DVFS-stall: sub-tick structure, scalar fallback.
                None
            } else if machine.finished() {
                // Idle lane: stays on the vector path via sentinels — the
                // eligibility division always passes, the boundary check
                // never fires, and the per-tick constants are the scalar
                // idle branch's expressions (cycles at full frequency,
                // idle power, zero work).
                let energy = machine.power_model.idle_power(&ps) * dt;
                let average_power = energy / dt;
                let mut inc = [0.0; EVENTS];
                inc[HardwareEvent::Cycles.index()] = ps.frequency().hz() * dt.seconds();
                Some(LaneDerived {
                    ips: 1.0,
                    budget: f64::MAX,
                    threshold: -1.0,
                    executed: 0.0,
                    tick_energy_j: energy.joules(),
                    target_c: ambient + average_power.watts() * resistance,
                    decay,
                    inc,
                })
            } else {
                let duty = machine.throttle().duty();
                let seg = machine.segment(&ps);
                let ips = seg.rates.instructions_per_second * machine.phase_jitter * duty;
                if ips <= 0.0 {
                    // Degenerate zero-rate segment: scalar fallback (which
                    // idles through the tick without NaN).
                    None
                } else {
                    let adv = dt;
                    let cycles = ps.frequency().hz() * (adv * duty).seconds();
                    let energy = seg.active_power * (adv * duty)
                        + seg.gated_power * (adv * (1.0 - duty));
                    let average_power = energy / dt;
                    let rates = &seg.rates;
                    let mut inc = [0.0; EVENTS];
                    inc[HardwareEvent::Cycles.index()] = cycles;
                    inc[HardwareEvent::InstructionsRetired.index()] = rates.ipc * cycles;
                    inc[HardwareEvent::InstructionsDecoded.index()] = rates.dpc * cycles;
                    inc[HardwareEvent::DcuMissOutstanding.index()] =
                        rates.dcu_outstanding_per_cycle * cycles;
                    inc[HardwareEvent::ResourceStalls.index()] =
                        rates.resource_stalls_per_cycle * cycles;
                    inc[HardwareEvent::MemoryRequests.index()] =
                        rates.memory_requests_per_cycle * cycles;
                    inc[HardwareEvent::L2Requests.index()] = rates.l2_requests_per_cycle * cycles;
                    inc[HardwareEvent::L1DMisses.index()] = rates.l1_misses_per_cycle * cycles;
                    inc[HardwareEvent::L2Misses.index()] = rates.l2_misses_per_cycle * cycles;
                    inc[HardwareEvent::FpOperations.index()] = rates.fp_per_cycle * cycles;
                    inc[HardwareEvent::BranchesRetired.index()] =
                        rates.branches_per_cycle * cycles;
                    inc[HardwareEvent::BranchMispredictions.index()] =
                        rates.mispredicts_per_cycle * cycles;
                    inc[HardwareEvent::HardwarePrefetches.index()] =
                        rates.prefetches_per_cycle * cycles;
                    inc[HardwareEvent::UopsRetired.index()] = rates.uops_per_cycle * cycles;
                    Some(LaneDerived {
                        ips,
                        budget: seg.phase_instructions,
                        threshold: seg.phase_instructions * crate::machine::PHASE_END_REL_EPS,
                        executed: ips * adv.seconds(),
                        tick_energy_j: energy.joules(),
                        target_c: ambient + average_power.watts() * resistance,
                        decay,
                        inc,
                    })
                }
            }
        };

        let Some(derived) = derived else {
            return;
        };
        let n = self.machines.len();
        self.ips[lane] = derived.ips;
        self.budget[lane] = derived.budget;
        self.threshold[lane] = derived.threshold;
        self.executed[lane] = derived.executed;
        self.tick_energy_j[lane] = derived.tick_energy_j;
        self.target_c[lane] = derived.target_c;
        self.decay[lane] = derived.decay;
        for (event, inc) in derived.inc.iter().enumerate() {
            self.inc[event * n + lane] = *inc;
        }
        self.fast[lane] = true;
    }

    /// Convenience: a lane's counter snapshot without borrowing the whole
    /// machine (reads straight from the SoA arrays).
    pub fn counter_snapshot(&self, lane: usize) -> CounterSnapshot {
        let n = self.machines.len();
        let mut counts = [0.0; EVENTS];
        for (event, count) in counts.iter_mut().enumerate() {
            *count = self.counts[event * n + lane];
        }
        CounterSnapshot::from_raw(counts)
    }

    /// A lane's accumulated true energy, read straight from the SoA arrays
    /// (no sync).
    pub fn energy(&self, lane: usize) -> Joules {
        Joules::new(self.energy_j[lane])
    }

    /// A lane's elapsed simulated time, read straight from the SoA arrays
    /// (no sync).
    pub fn elapsed(&self, lane: usize) -> Seconds {
        Seconds::new(self.elapsed_s[lane])
    }
}

/// Exclusive access to one lane's machine, handed out by
/// [`MachineBatch::lane_mut`]. On entry the lane's SoA state has been
/// synced into the machine; on drop the machine's state is loaded back
/// into the SoA arrays and the lane's derived per-tick constants are
/// recomputed, so a manual `tick`/`fast_forward`/actuation through the
/// guard leaves the batch exactly as if the machine had always been
/// stepped in place.
#[derive(Debug)]
pub struct LaneGuard<'a> {
    batch: &'a mut MachineBatch,
    lane: usize,
}

impl std::ops::Deref for LaneGuard<'_> {
    type Target = Machine;

    fn deref(&self) -> &Machine {
        &self.batch.machines[self.lane]
    }
}

impl std::ops::DerefMut for LaneGuard<'_> {
    fn deref_mut(&mut self) -> &mut Machine {
        &mut self.batch.machines[self.lane]
    }
}

impl Drop for LaneGuard<'_> {
    fn drop(&mut self) {
        self.batch.load_lane(self.lane);
        self.batch.refresh_lane(self.lane);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::phase::PhaseDescriptor;
    use crate::program::PhaseProgram;

    fn program(name: &str, instructions: u64, core_cpi: f64) -> PhaseProgram {
        let a = PhaseDescriptor::builder(format!("{name}-a"))
            .instructions(instructions)
            .core_cpi(core_cpi)
            .mispredict_rate(0.0)
            .build()
            .unwrap();
        let b = PhaseDescriptor::builder(format!("{name}-b"))
            .instructions(instructions)
            .core_cpi(core_cpi * 2.0)
            .mispredict_rate(0.0)
            .build()
            .unwrap();
        PhaseProgram::new(name, vec![a, b]).unwrap()
    }

    fn lanes() -> Vec<Machine> {
        vec![
            Machine::new(MachineConfig::pentium_m_755(11), program("p0", 30_000_000, 1.0)),
            Machine::new(MachineConfig::pentium_m_755(12), program("p1", 60_000_000, 0.7)),
            Machine::new(MachineConfig::pentium_m_755(13), program("p2", 15_000_000, 2.0)),
        ]
    }

    fn assert_lane_matches(batch: &mut MachineBatch, lane: usize, scalar: &Machine) {
        let machine = batch.sync_lane(lane);
        assert_eq!(machine.counter_snapshot(), scalar.counter_snapshot(), "lane {lane}");
        assert_eq!(machine.true_energy(), scalar.true_energy(), "lane {lane}");
        assert_eq!(machine.elapsed(), scalar.elapsed(), "lane {lane}");
        assert_eq!(machine.completion_time(), scalar.completion_time(), "lane {lane}");
        assert_eq!(machine.temperature(), scalar.temperature(), "lane {lane}");
        assert_eq!(
            machine.instantaneous_power(),
            scalar.instantaneous_power(),
            "lane {lane}"
        );
        assert_eq!(machine.finished(), scalar.finished(), "lane {lane}");
    }

    #[test]
    fn fixed_cadence_lockstep_is_bit_identical_to_scalar() {
        let mut scalars = lanes();
        let mut batch = MachineBatch::new(lanes());
        let dt = Seconds::from_millis(10.0);
        for step in 0..600 {
            if step == 100 {
                for (lane, scalar) in scalars.iter_mut().enumerate() {
                    scalar.set_pstate(PStateId::new(2)).unwrap();
                    batch.set_pstate(lane, PStateId::new(2)).unwrap();
                }
            }
            if step == 200 {
                let level = ThrottleLevel::new(5).unwrap();
                for (lane, scalar) in scalars.iter_mut().enumerate() {
                    scalar.set_throttle(level);
                    batch.set_throttle(lane, level);
                }
            }
            for scalar in &mut scalars {
                scalar.tick(dt);
            }
            batch.tick_all(dt);
        }
        for (lane, scalar) in scalars.iter().enumerate() {
            assert_lane_matches(&mut batch, lane, scalar);
        }
    }

    #[test]
    fn lanes_finishing_at_different_times_stay_bit_identical() {
        // Budgets spanning 4× finish many hundreds of ticks apart; finished
        // lanes idle on the vector path while the rest keep executing, and
        // each lane's completion time must equal its scalar twin's exactly.
        let mut scalars = lanes();
        let mut batch = MachineBatch::new(lanes());
        let dt = Seconds::from_millis(10.0);
        let mut guard = 0;
        while !batch.all_finished() && guard < 20_000 {
            for scalar in &mut scalars {
                scalar.tick(dt);
            }
            batch.tick_all(dt);
            guard += 1;
        }
        assert!(batch.all_finished(), "batch must finish");
        let times: Vec<_> =
            scalars.iter().map(|scalar| scalar.completion_time().unwrap()).collect();
        assert!(times[0] != times[1] && times[1] != times[2], "staggered finishes: {times:?}");
        for (lane, scalar) in scalars.iter().enumerate() {
            assert_lane_matches(&mut batch, lane, scalar);
        }
    }

    #[test]
    fn lane_is_read_only_and_control_plane_live() {
        let mut batch = MachineBatch::new(lanes());
        batch.tick_all(Seconds::from_millis(10.0));
        // Control-plane state (p-state, program position) is live on the
        // unsynced machine; the hot accumulators are authoritative in the
        // SoA arrays instead.
        batch.set_pstate(0, PStateId::new(3)).unwrap();
        assert_eq!(batch.lane(0).pstate(), PStateId::new(3));
        assert!(!batch.lane(0).finished());
        assert_eq!(batch.elapsed(0), Seconds::from_millis(10.0));
        assert!(batch.energy(0).joules() > 0.0);
        assert_eq!(
            batch.counter_snapshot(0),
            batch.sync_lane(0).counter_snapshot(),
            "sync_lane reconciles the machine with the SoA view"
        );
    }

    #[test]
    fn lane_mut_fast_forward_stays_bit_identical_to_scalar() {
        // Mixed driving: batch ticks, then a per-lane fast_forward span
        // through the lane_mut guard, then more batch ticks — every step
        // mirrored on scalar twins. The guard's drop-time reload must leave
        // the batch exactly as if the machine had been stepped in place.
        let mut scalars = lanes();
        let mut batch = MachineBatch::new(lanes());
        let dt = Seconds::from_millis(10.0);
        for _ in 0..20 {
            for scalar in &mut scalars {
                scalar.tick(dt);
            }
            batch.tick_all(dt);
        }
        let span = Seconds::from_millis(250.0);
        for (lane, scalar) in scalars.iter_mut().enumerate() {
            let mut remaining = span;
            while remaining.is_positive() {
                let advanced = scalar.fast_forward(remaining).unwrap().advanced;
                remaining = (remaining - advanced).clamp_non_negative();
            }
            let mut guard = batch.lane_mut(lane);
            let mut remaining = span;
            while remaining.is_positive() {
                let advanced = guard.fast_forward(remaining).unwrap().advanced;
                remaining = (remaining - advanced).clamp_non_negative();
            }
        }
        for _ in 0..20 {
            for scalar in &mut scalars {
                scalar.tick(dt);
            }
            batch.tick_all(dt);
        }
        for (lane, scalar) in scalars.iter().enumerate() {
            assert_lane_matches(&mut batch, lane, scalar);
        }
    }

    #[test]
    fn into_machines_round_trips_final_state() {
        let mut scalars = lanes();
        let mut batch = MachineBatch::new(lanes());
        let dt = Seconds::from_millis(10.0);
        for _ in 0..50 {
            for scalar in &mut scalars {
                scalar.tick(dt);
            }
            batch.tick_all(dt);
        }
        let unbatched = batch.into_machines();
        for (scalar, machine) in scalars.iter().zip(&unbatched) {
            assert_eq!(machine.true_energy(), scalar.true_energy());
            assert_eq!(machine.elapsed(), scalar.elapsed());
            assert_eq!(machine.counter_snapshot(), scalar.counter_snapshot());
        }
    }

    #[test]
    fn counter_snapshot_reads_soa_state_directly() {
        let mut batch = MachineBatch::new(lanes());
        batch.tick_all(Seconds::from_millis(10.0));
        for lane in 0..batch.len() {
            let soa = batch.counter_snapshot(lane);
            let synced = batch.sync_lane(lane).counter_snapshot();
            assert_eq!(soa, synced);
        }
    }

    mod batch_bit_identity {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Driving a batch and per-machine scalar stepping through an
            /// identical script of random tick sizes, p-state changes, and
            /// throttle levels leaves every lane bit-identical to its
            /// scalar twin at every step — the batch analogue of the
            /// `tick` vs `tick_uncached` memo oracle.
            #[test]
            fn batched_lanes_are_bit_identical_to_scalar_stepping(
                seed in 0u64..256,
                script in prop::collection::vec((1u32..20_000, 0u8..10, 1u8..9), 1..40),
            ) {
                let make = |salt: u64| {
                    vec![
                        Machine::new(
                            MachineConfig::pentium_m_755(seed ^ salt),
                            program("q0", 20_000_000, 1.0),
                        ),
                        Machine::new(
                            MachineConfig::pentium_m_755(seed.wrapping_add(7) ^ salt),
                            program("q1", 40_000_000, 0.8),
                        ),
                    ]
                };
                let mut scalars = make(0);
                let mut batch = MachineBatch::new(make(0));
                for (us, ps, level) in script {
                    if ps < 8 {
                        for (lane, scalar) in scalars.iter_mut().enumerate() {
                            scalar.set_pstate(PStateId::new(ps as usize)).unwrap();
                            batch.set_pstate(lane, PStateId::new(ps as usize)).unwrap();
                        }
                    }
                    let level = ThrottleLevel::new(level).unwrap();
                    for (lane, scalar) in scalars.iter_mut().enumerate() {
                        scalar.set_throttle(level);
                        batch.set_throttle(lane, level);
                    }
                    let dt = Seconds::from_micros(f64::from(us));
                    for scalar in &mut scalars {
                        scalar.tick(dt);
                    }
                    batch.tick_all(dt);
                    for (lane, scalar) in scalars.iter().enumerate() {
                        let machine = batch.sync_lane(lane);
                        prop_assert_eq!(machine.counter_snapshot(), scalar.counter_snapshot());
                        prop_assert_eq!(machine.true_energy(), scalar.true_energy());
                        prop_assert_eq!(machine.elapsed(), scalar.elapsed());
                        prop_assert_eq!(machine.completion_time(), scalar.completion_time());
                        prop_assert_eq!(machine.temperature(), scalar.temperature());
                        prop_assert_eq!(
                            machine.instantaneous_power(),
                            scalar.instantaneous_power()
                        );
                    }
                }
            }
        }
    }
}
