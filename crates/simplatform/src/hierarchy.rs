//! Two-level cache hierarchy + DRAM, for address-stream characterization.
//!
//! Drives an address stream through L1 → L2 → DRAM and reports where each
//! access was served. `aapm-workloads` uses this to turn the MS-Loops
//! microbenchmarks' address streams into per-footprint miss rates — the
//! simulated analogue of running the loops on the instrumented Pentium M.

use crate::cache::{Cache, CacheGeometry};
use crate::dram::{Dram, DramTimings};
use crate::error::Result;

/// Configuration of the hardware sequential prefetcher.
///
/// The Pentium M's prefetcher detects ascending line streams and pulls
/// upcoming lines into the caches ahead of demand. The paper's FMA loop
/// "most exercises" it; prefetching is why L2-resident streaming loops keep
/// the core fed (high power) instead of stalling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Number of consecutive ascending-line misses before the stream is
    /// considered detected.
    pub trigger_streak: u32,
    /// Lines fetched ahead once a stream is detected.
    pub degree: usize,
}

impl PrefetchConfig {
    /// Pentium M-like defaults: trigger after 2 sequential misses, fetch
    /// 2 lines ahead.
    pub fn pentium_m() -> Self {
        PrefetchConfig { trigger_streak: 2, degree: 2 }
    }
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig::pentium_m()
    }
}

/// Sequential-stream detector driving the prefetcher.
///
/// Watches the demand *line* stream (hits included, so a stream stays
/// trained while prefetches absorb its misses) and keeps a frontier of the
/// furthest line already requested, issuing `degree` lines ahead.
#[derive(Debug, Clone)]
struct PrefetchEngine {
    config: PrefetchConfig,
    last_line: Option<u64>,
    streak: u32,
    frontier: u64,
}

impl PrefetchEngine {
    fn new(config: PrefetchConfig) -> Self {
        PrefetchEngine { config, last_line: None, streak: 0, frontier: 0 }
    }

    /// Observes a demand access to `line`; returns the inclusive line range
    /// to prefetch, if any. A range (not a collected list) keeps this on
    /// the characterization hot path allocation-free.
    fn on_access(&mut self, line: u64) -> Option<(u64, u64)> {
        match self.last_line {
            Some(last) if line == last => return None, // same line, no news
            Some(last) if line == last + 1 => self.streak += 1,
            _ => {
                self.streak = 0;
                self.frontier = 0;
            }
        }
        self.last_line = Some(line);
        if self.streak < self.config.trigger_streak {
            return None;
        }
        let start = self.frontier.max(line + 1);
        let end = line + self.config.degree as u64;
        if start > end {
            return None;
        }
        self.frontier = end + 1;
        Some((start, end))
    }
}

/// Which level served a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceLevel {
    /// Served by the L1 data cache.
    L1,
    /// Missed L1, served by the unified L2.
    L2,
    /// Missed both caches, served by DRAM.
    Dram,
}

/// Per-level access totals for a stream run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HierarchyStats {
    /// Total accesses driven through the hierarchy.
    pub accesses: u64,
    /// Accesses served by L1.
    pub l1_hits: u64,
    /// Accesses served by L2 (L1 misses that hit L2).
    pub l2_hits: u64,
    /// Accesses served by DRAM (missed both levels).
    pub dram_accesses: u64,
    /// Mean DRAM latency observed, in nanoseconds.
    pub mean_dram_latency_ns: f64,
    /// Prefetch requests issued by the hardware prefetcher.
    pub prefetches_issued: u64,
    /// Prefetch fills that had to come from DRAM.
    pub prefetch_dram_fills: u64,
}

impl HierarchyStats {
    /// L1 misses per access.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            (self.l2_hits + self.dram_accesses) as f64 / self.accesses as f64
        }
    }

    /// L2 misses per access (i.e. DRAM accesses per access).
    pub fn l2_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.dram_accesses as f64 / self.accesses as f64
        }
    }
}

/// An L1 + L2 + DRAM simulation.
///
/// # Examples
///
/// ```
/// use aapm_platform::hierarchy::MemoryHierarchy;
///
/// let mut mem = MemoryHierarchy::pentium_m_755()?;
/// // Stream through 8 MB: far beyond L2, most accesses reach DRAM.
/// for addr in (0..(8u64 << 20)).step_by(64) {
///     mem.access(addr);
/// }
/// let stats = mem.stats();
/// assert!(stats.l2_miss_rate() > 0.9);
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1: Cache,
    l2: Cache,
    dram: Dram,
    stats: HierarchyStats,
    prefetcher: Option<PrefetchEngine>,
    line_bytes: u64,
}

impl MemoryHierarchy {
    /// Builds a hierarchy from explicit geometries and DRAM timings, with no
    /// hardware prefetcher.
    ///
    /// # Errors
    ///
    /// Propagates cache-geometry validation failures.
    pub fn new(l1: CacheGeometry, l2: CacheGeometry, dram: DramTimings) -> Result<Self> {
        let line_bytes = l1.line_bytes as u64;
        Ok(MemoryHierarchy {
            l1: Cache::new(l1)?,
            l2: Cache::new(l2)?,
            dram: Dram::new(dram),
            stats: HierarchyStats::default(),
            prefetcher: None,
            line_bytes,
        })
    }

    /// The Pentium M 755 hierarchy: 32 KB L1-D, 2 MB L2, DDR-333 DRAM,
    /// prefetcher disabled (see [`MemoryHierarchy::with_prefetcher`]).
    pub fn pentium_m_755() -> Result<Self> {
        MemoryHierarchy::new(
            CacheGeometry::pentium_m_l1d(),
            CacheGeometry::pentium_m_l2(),
            DramTimings::ddr333(),
        )
    }

    /// Enables the hardware sequential prefetcher.
    pub fn with_prefetcher(mut self, config: PrefetchConfig) -> Self {
        self.prefetcher = Some(PrefetchEngine::new(config));
        self
    }

    /// Drives one demand access through the hierarchy.
    pub fn access(&mut self, addr: u64) -> ServiceLevel {
        self.stats.accesses += 1;
        let level = if !self.l1.access(addr).is_miss() {
            self.stats.l1_hits += 1;
            ServiceLevel::L1
        } else if !self.l2.access(addr).is_miss() {
            self.stats.l2_hits += 1;
            ServiceLevel::L2
        } else {
            let latency = self.dram.access(addr);
            self.stats.dram_accesses += 1;
            let n = self.stats.dram_accesses as f64;
            self.stats.mean_dram_latency_ns += (latency - self.stats.mean_dram_latency_ns) / n;
            ServiceLevel::Dram
        };
        self.run_prefetcher(addr);
        level
    }

    /// Feeds the prefetch engine with the demand line stream and installs
    /// any prefetched lines into both cache levels.
    fn run_prefetcher(&mut self, addr: u64) {
        let Some(engine) = self.prefetcher.as_mut() else { return };
        let line = addr / self.line_bytes;
        let Some((start, end)) = engine.on_access(line) else { return };
        self.stats.prefetches_issued += end - start + 1;
        for target_line in start..=end {
            let target_addr = target_line * self.line_bytes;
            // Fill L2 first; if absent there, the fill comes from DRAM.
            if self.l2.access(target_addr).is_miss() {
                self.dram.access(target_addr);
                self.stats.prefetch_dram_fills += 1;
            }
            self.l1.access(target_addr);
        }
    }

    /// Aggregate statistics since the last reset.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// L1 statistics.
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// L2 statistics.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Clears statistics, keeping cache contents warm (for measuring a
    /// steady-state pass after warm-up).
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.stats = HierarchyStats::default();
    }

    /// Flushes both caches, closes DRAM rows, clears statistics, and resets
    /// the prefetch stream detector.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.dram.reset();
        self.stats = HierarchyStats::default();
        if let Some(engine) = self.prefetcher.as_mut() {
            let config = engine.config;
            *engine = PrefetchEngine::new(config);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_resident_working_set_hits_l1() {
        let mut mem = MemoryHierarchy::pentium_m_755().unwrap();
        let footprint = 16 * 1024; // 16 KB fits in the 32 KB L1
        // Warm-up pass.
        for addr in (0..footprint).step_by(64) {
            mem.access(addr);
        }
        mem.reset_stats();
        for _ in 0..4 {
            for addr in (0..footprint).step_by(64) {
                mem.access(addr);
            }
        }
        assert!(mem.stats().l1_miss_rate() < 0.01);
    }

    #[test]
    fn l2_resident_working_set_hits_l2() {
        let mut mem = MemoryHierarchy::pentium_m_755().unwrap();
        let footprint = 256 * 1024; // beyond L1 (32 KB), inside L2 (2 MB)
        for addr in (0..footprint).step_by(64) {
            mem.access(addr);
        }
        mem.reset_stats();
        for _ in 0..4 {
            for addr in (0..footprint).step_by(64) {
                mem.access(addr);
            }
        }
        let stats = mem.stats();
        assert!(stats.l1_miss_rate() > 0.9, "streaming 256 KB thrashes L1");
        assert!(stats.l2_miss_rate() < 0.01, "but fits in L2");
    }

    #[test]
    fn dram_resident_working_set_reaches_dram() {
        let mut mem = MemoryHierarchy::pentium_m_755().unwrap();
        let footprint = 8u64 << 20; // 8 MB, beyond the 2 MB L2
        for addr in (0..footprint).step_by(64) {
            mem.access(addr);
        }
        mem.reset_stats();
        for addr in (0..footprint).step_by(64) {
            mem.access(addr);
        }
        let stats = mem.stats();
        assert!(stats.l2_miss_rate() > 0.95);
        assert!(stats.mean_dram_latency_ns > 0.0);
    }

    #[test]
    fn service_levels_reported_correctly() {
        let mut mem = MemoryHierarchy::pentium_m_755().unwrap();
        assert_eq!(mem.access(0x0), ServiceLevel::Dram, "cold access goes to DRAM");
        assert_eq!(mem.access(0x0), ServiceLevel::L1, "now L1-resident");
        // Evict from L1 only by touching many conflicting lines, then the
        // line should still be in L2.
        let l1_capacity = 32 * 1024;
        for addr in (0..(4 * l1_capacity as u64)).step_by(64) {
            mem.access(0x100_0000 + addr);
        }
        assert_eq!(mem.access(0x0), ServiceLevel::L2);
    }

    #[test]
    fn flush_returns_to_cold_state() {
        let mut mem = MemoryHierarchy::pentium_m_755().unwrap();
        mem.access(0x0);
        mem.flush();
        assert_eq!(mem.stats().accesses, 0);
        assert_eq!(mem.access(0x0), ServiceLevel::Dram);
    }

    #[test]
    fn miss_rates_zero_when_no_accesses() {
        let stats = HierarchyStats::default();
        assert_eq!(stats.l1_miss_rate(), 0.0);
        assert_eq!(stats.l2_miss_rate(), 0.0);
    }

    #[test]
    fn prefetcher_covers_sequential_streams() {
        let footprint = 1u64 << 20; // 1 MB: thrashes L1, fits L2
        let mut plain = MemoryHierarchy::pentium_m_755().unwrap();
        let mut prefetching =
            MemoryHierarchy::pentium_m_755().unwrap().with_prefetcher(PrefetchConfig::pentium_m());
        for mem in [&mut plain, &mut prefetching] {
            for addr in (0..footprint).step_by(64) {
                mem.access(addr);
            }
            mem.reset_stats();
            for addr in (0..footprint).step_by(64) {
                mem.access(addr);
            }
        }
        assert!(prefetching.stats().prefetches_issued > 0);
        assert!(
            prefetching.stats().l1_miss_rate() < 0.5 * plain.stats().l1_miss_rate(),
            "prefetcher should cover most sequential demand misses: {} vs {}",
            prefetching.stats().l1_miss_rate(),
            plain.stats().l1_miss_rate()
        );
    }

    #[test]
    fn prefetcher_ignores_random_streams() {
        let mut mem =
            MemoryHierarchy::pentium_m_755().unwrap().with_prefetcher(PrefetchConfig::pentium_m());
        let mut addr: u64 = 0;
        for _ in 0..20_000 {
            addr = (addr + 7_368_787) % (64 << 20);
            mem.access(addr);
        }
        let stats = mem.stats();
        assert!(
            (stats.prefetches_issued as f64) < 0.02 * stats.accesses as f64,
            "random stream should not trigger streams, issued {}",
            stats.prefetches_issued
        );
    }

    #[test]
    fn reset_stats_preserves_prefetcher_but_clears_counts() {
        let mut mem =
            MemoryHierarchy::pentium_m_755().unwrap().with_prefetcher(PrefetchConfig::pentium_m());
        for addr in (0..(1u64 << 18)).step_by(64) {
            mem.access(addr);
        }
        mem.reset_stats();
        assert_eq!(mem.stats().prefetches_issued, 0);
        assert_eq!(mem.stats().accesses, 0);
    }
}
