//! Discrete-event fleet simulation: thousands of machines, cohort-batched.
//!
//! A [`Fleet`] holds N independent [`Machine`]s grouped into *cohorts* —
//! lanes that share a control cadence and therefore step together through
//! one [`MachineBatch`] lockstep sweep (the §14 SoA engine). Time advances
//! through a discrete-event scheduler: a min-heap of
//! `(next_wake_tick, class, cohort_id)` keyed on **integer multiples of a
//! base interval**, so equal wake times compare exactly, per-step tick
//! lengths are a constant [`Seconds`] value, and idle or far-future nodes
//! cost nothing — a retired cohort simply never re-enters the heap.
//! Cohorts that no controller observes ([`CohortMode::FastForward`]) are
//! not scheduled at all; they advance through the closed-form
//! [`Machine::fast_forward`] path only when a controller meters them (and
//! to the horizon when a run drains).
//!
//! Control policy lives outside this crate: a [`FleetController`] gets a
//! callback after every cohort step (the per-node governor cadence) and at
//! a global governor cadence (the cluster-reallocation point), and may
//! read per-lane SoA state and actuate p-states through the fleet. The
//! cluster-governor layer in `aapm-core` implements it.
//!
//! Determinism contract: [`Fleet::run_des`] is **byte-identical** to
//! [`Fleet::run_lockstep`], the naive engine that scalar-ticks every
//! machine at every multiple of its cadence. Both engines deliver the same
//! callback sequence (equal-tick events order cohorts ascending, then the
//! governor) and the same per-machine float expressions — the batch sweep
//! is bit-identical to scalar ticking (§14), and the per-step `dt` is
//! computed by one shared expression. The tests in this module and the
//! cluster-governed test in `aapm-core` pin the equivalence.
//!
//! Retirement semantics: a governed cohort retires (stops waking) at the
//! first step on which *all* its lanes have finished; individual finished
//! lanes idle on the batch's sentinel path until then. A fast-forward lane
//! freezes at its own completion time — it books no idle energy after its
//! program ends.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::batch::MachineBatch;
use crate::counters::CounterSnapshot;
use crate::error::{PlatformError, Result};
use crate::machine::Machine;
use crate::pstate::PStateId;
use crate::requests::{Request, RequestQueue};
use crate::units::{Joules, Seconds};

/// Identifies one cohort within a [`Fleet`].
pub type CohortId = usize;

/// How a cohort advances through simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CohortMode {
    /// Stepped every `cadence_ticks` base ticks through the batch lockstep
    /// sweep, with a [`FleetController::cohort_stepped`] callback after
    /// each step.
    Governed {
        /// Control cadence in base ticks (must be positive).
        cadence_ticks: u64,
    },
    /// Never scheduled: advanced only by closed-form
    /// [`Machine::fast_forward`] spans when the controller (or the
    /// end-of-run drain) calls [`Fleet::advance_fastforward_to`].
    FastForward,
}

/// One same-cadence group of lanes backed by a [`MachineBatch`].
#[derive(Debug)]
struct Cohort {
    batch: MachineBatch,
    mode: CohortMode,
    /// Global node id of this cohort's lane 0.
    node_offset: usize,
    /// A retired cohort (all lanes finished) never re-enters the heap.
    retired: bool,
    /// How far (in base ticks) fast-forward lanes have been advanced.
    advanced_ticks: u64,
}

/// The control policy driven by a fleet run. Implementations must be
/// deterministic functions of the observed state — both engines replay
/// the identical callback sequence and expect identical actuations back.
pub trait FleetController {
    /// Called after a governed cohort advanced one cadence step (the
    /// per-node governor's decision point).
    ///
    /// # Errors
    ///
    /// Propagated out of the run.
    fn cohort_stepped(&mut self, fleet: &mut Fleet, cohort: CohortId, now_ticks: u64)
        -> Result<()>;

    /// Called at every multiple of the run's governor cadence, after all
    /// same-tick cohort steps (the cluster-reallocation point).
    ///
    /// # Errors
    ///
    /// Propagated out of the run.
    fn governor_tick(&mut self, fleet: &mut Fleet, now_ticks: u64) -> Result<()>;
}

/// A no-op controller: the fleet free-runs under its initial p-states.
#[derive(Debug, Default, Clone, Copy)]
pub struct UncontrolledFleet;

impl FleetController for UncontrolledFleet {
    fn cohort_stepped(&mut self, _: &mut Fleet, _: CohortId, _: u64) -> Result<()> {
        Ok(())
    }

    fn governor_tick(&mut self, _: &mut Fleet, _: u64) -> Result<()> {
        Ok(())
    }
}

/// Event classes at one heap timestamp: cohort steps first (ascending
/// id), then the governor.
const CLASS_COHORT: u8 = 0;
const CLASS_GOVERNOR: u8 = 1;

/// N machines under discrete-event scheduling (see module docs).
#[derive(Debug)]
pub struct Fleet {
    base: Seconds,
    cohorts: Vec<Cohort>,
    nodes: usize,
}

impl Fleet {
    /// Creates an empty fleet whose event clock counts multiples of
    /// `base_interval`.
    ///
    /// # Panics
    ///
    /// Panics if `base_interval` is not positive and finite.
    pub fn new(base_interval: Seconds) -> Self {
        assert!(
            base_interval.is_positive() && base_interval.seconds().is_finite(),
            "fleet base interval must be positive and finite"
        );
        Fleet { base: base_interval, cohorts: Vec::new(), nodes: 0 }
    }

    /// Adds a cohort; lanes get the next contiguous run of global node
    /// ids, in order.
    ///
    /// # Errors
    ///
    /// Rejects empty cohorts and zero governed cadences.
    pub fn add_cohort(&mut self, machines: Vec<Machine>, mode: CohortMode) -> Result<CohortId> {
        if machines.is_empty() {
            return Err(PlatformError::InvalidConfig {
                parameter: "fleet_cohort",
                reason: "a cohort needs at least one lane".into(),
            });
        }
        if matches!(mode, CohortMode::Governed { cadence_ticks: 0 }) {
            return Err(PlatformError::InvalidConfig {
                parameter: "fleet_cohort",
                reason: "governed cadence must be at least one base tick".into(),
            });
        }
        let id = self.cohorts.len();
        let node_offset = self.nodes;
        self.nodes += machines.len();
        self.cohorts.push(Cohort {
            batch: MachineBatch::new(machines),
            mode,
            node_offset,
            retired: false,
            advanced_ticks: 0,
        });
        Ok(id)
    }

    /// The base interval one event tick represents.
    pub fn base_interval(&self) -> Seconds {
        self.base
    }

    /// Simulated time at an event tick. Both engines and all metering use
    /// this one expression, so timestamps compare bit-exactly.
    pub fn time_at(&self, tick: u64) -> Seconds {
        Seconds::new(self.base.seconds() * tick as f64)
    }

    /// Number of cohorts.
    pub fn cohort_count(&self) -> usize {
        self.cohorts.len()
    }

    /// Number of lanes in `cohort`.
    pub fn lanes(&self, cohort: CohortId) -> usize {
        self.cohorts[cohort].batch.len()
    }

    /// Total nodes across all cohorts.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Global node id of `cohort`'s lane 0 (lane `l` is `offset + l`).
    pub fn node_offset(&self, cohort: CohortId) -> usize {
        self.cohorts[cohort].node_offset
    }

    /// A cohort's stepping mode.
    pub fn mode(&self, cohort: CohortId) -> CohortMode {
        self.cohorts[cohort].mode
    }

    /// Whether a governed cohort has retired (all lanes finished).
    pub fn retired(&self, cohort: CohortId) -> bool {
        self.cohorts[cohort].retired
    }

    /// A governed cohort's per-step tick length — the shared expression
    /// both engines use.
    ///
    /// # Panics
    ///
    /// Panics if the cohort is not governed.
    pub fn cohort_dt(&self, cohort: CohortId) -> Seconds {
        match self.cohorts[cohort].mode {
            CohortMode::Governed { cadence_ticks } => {
                Seconds::new(self.base.seconds() * cadence_ticks as f64)
            }
            CohortMode::FastForward => {
                panic!("fast-forward cohorts have no step cadence")
            }
        }
    }

    /// Read access to one lane's machine (control-plane state is live;
    /// hot accumulators live in the SoA arrays — see
    /// [`MachineBatch::lane`]).
    pub fn machine(&self, cohort: CohortId, lane: usize) -> &Machine {
        self.cohorts[cohort].batch.lane(lane)
    }

    /// A lane's cumulative counters, read from the SoA arrays.
    pub fn counter_snapshot(&self, cohort: CohortId, lane: usize) -> CounterSnapshot {
        self.cohorts[cohort].batch.counter_snapshot(lane)
    }

    /// A lane's accumulated true energy, read from the SoA arrays.
    pub fn energy(&self, cohort: CohortId, lane: usize) -> Joules {
        self.cohorts[cohort].batch.energy(lane)
    }

    /// A lane's elapsed simulated time, read from the SoA arrays.
    pub fn elapsed(&self, cohort: CohortId, lane: usize) -> Seconds {
        self.cohorts[cohort].batch.elapsed(lane)
    }

    /// Requests a p-state change on one lane.
    ///
    /// # Errors
    ///
    /// As [`MachineBatch::set_pstate`].
    pub fn set_pstate(&mut self, cohort: CohortId, lane: usize, target: PStateId) -> Result<()> {
        self.cohorts[cohort].batch.set_pstate(lane, target)
    }

    /// Offers a request to one serve-mode lane. Open-loop fleet cohorts
    /// are fed by their controller: queue a cadence window of arrivals
    /// *before* the window is ticked (future arrival times are fine — the
    /// queue starts a request only once lane time reaches it).
    ///
    /// # Panics
    ///
    /// As [`Machine::offer_request`]: panics if the lane is a batch
    /// (program-driven) machine.
    pub fn offer_request(&mut self, cohort: CohortId, lane: usize, request: Request) {
        self.cohorts[cohort].batch.offer_request(lane, request);
    }

    /// A serve-mode lane's request queue, `None` for batch lanes. Queue
    /// state is control-plane (never mirrored into the SoA arrays), so
    /// this read is live without a lane sync.
    pub fn queue(&self, cohort: CohortId, lane: usize) -> Option<&RequestQueue> {
        self.cohorts[cohort].batch.lane(lane).queue()
    }

    /// Advances every fast-forward cohort to `tick` through closed-form
    /// [`Machine::fast_forward`] spans. Lanes freeze at their completion
    /// time (no idle energy after a program ends); unfinished lanes land
    /// exactly on `time_at(tick)`. Idempotent per tick, so controllers may
    /// call it at every metering point.
    ///
    /// # Errors
    ///
    /// Propagates [`PlatformError::NoForwardProgress`] from degenerate
    /// zero-rate segments.
    pub fn advance_fastforward_to(&mut self, tick: u64) -> Result<()> {
        let target = self.time_at(tick);
        for cohort in &mut self.cohorts {
            if cohort.mode != CohortMode::FastForward || cohort.advanced_ticks >= tick {
                continue;
            }
            cohort.advanced_ticks = tick;
            for lane in 0..cohort.batch.len() {
                let mut machine = cohort.batch.lane_mut(lane);
                let mut remaining = (target - machine.elapsed()).clamp_non_negative();
                while !machine.finished() && remaining.is_positive() {
                    let advanced = machine.fast_forward(remaining)?.advanced;
                    remaining = (remaining - advanced).clamp_non_negative();
                }
            }
        }
        Ok(())
    }

    /// Runs the fleet to `horizon_ticks` under the discrete-event engine:
    /// a min-heap of `(next_wake, class, cohort)` wakes each governed
    /// cohort at multiples of its cadence (batch lockstep sweep +
    /// controller callback) and the controller's governor at multiples of
    /// `governor_every` (0 disables governor wakes). Equal-timestamp
    /// events run cohorts in ascending id order, then the governor.
    /// Fast-forward cohorts are drained to the horizon at the end.
    ///
    /// # Errors
    ///
    /// Propagates controller and fast-forward errors.
    pub fn run_des(
        &mut self,
        horizon_ticks: u64,
        governor_every: u64,
        controller: &mut dyn FleetController,
    ) -> Result<()> {
        let mut heap: BinaryHeap<Reverse<(u64, u8, usize)>> = BinaryHeap::new();
        for (id, cohort) in self.cohorts.iter().enumerate() {
            if cohort.retired {
                continue;
            }
            if let CohortMode::Governed { cadence_ticks } = cohort.mode {
                if cadence_ticks <= horizon_ticks {
                    heap.push(Reverse((cadence_ticks, CLASS_COHORT, id)));
                }
            }
        }
        if governor_every > 0 && governor_every <= horizon_ticks {
            heap.push(Reverse((governor_every, CLASS_GOVERNOR, usize::MAX)));
        }
        while let Some(Reverse((tick, class, id))) = heap.pop() {
            if class == CLASS_COHORT {
                let dt = self.cohort_dt(id);
                self.cohorts[id].batch.tick_all(dt);
                controller.cohort_stepped(self, id, tick)?;
                if self.cohorts[id].batch.all_finished() {
                    // Idle nodes cost nothing: the cohort never wakes again.
                    self.cohorts[id].retired = true;
                } else if let CohortMode::Governed { cadence_ticks } = self.cohorts[id].mode {
                    let next = tick + cadence_ticks;
                    if next <= horizon_ticks {
                        heap.push(Reverse((next, CLASS_COHORT, id)));
                    }
                }
            } else {
                controller.governor_tick(self, tick)?;
                let next = tick + governor_every;
                if next <= horizon_ticks {
                    heap.push(Reverse((next, CLASS_GOVERNOR, usize::MAX)));
                }
            }
        }
        self.advance_fastforward_to(horizon_ticks)
    }

    /// The naive reference engine: walks every base tick from 1 to the
    /// horizon and scalar-ticks each governed cohort's machines one by one
    /// (through [`MachineBatch::lane_mut`]) whenever the tick is a
    /// multiple of its cadence, with the same callbacks, ordering, and
    /// retirement rule as [`Fleet::run_des`]. Exists to pin the DES
    /// engine's byte-identity; it is O(horizon × cohorts) even when
    /// nothing wakes.
    ///
    /// # Errors
    ///
    /// Propagates controller and fast-forward errors.
    pub fn run_lockstep(
        &mut self,
        horizon_ticks: u64,
        governor_every: u64,
        controller: &mut dyn FleetController,
    ) -> Result<()> {
        for tick in 1..=horizon_ticks {
            for id in 0..self.cohorts.len() {
                let CohortMode::Governed { cadence_ticks } = self.cohorts[id].mode else {
                    continue;
                };
                if self.cohorts[id].retired || tick % cadence_ticks != 0 {
                    continue;
                }
                let dt = self.cohort_dt(id);
                for lane in 0..self.cohorts[id].batch.len() {
                    let mut machine = self.cohorts[id].batch.lane_mut(lane);
                    machine.tick(dt);
                }
                controller.cohort_stepped(self, id, tick)?;
                if self.cohorts[id].batch.all_finished() {
                    self.cohorts[id].retired = true;
                }
            }
            if governor_every > 0 && tick % governor_every == 0 {
                controller.governor_tick(self, tick)?;
            }
        }
        self.advance_fastforward_to(horizon_ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::phase::PhaseDescriptor;
    use crate::program::PhaseProgram;

    fn program(instructions: u64, core_cpi: f64) -> PhaseProgram {
        let phase = PhaseDescriptor::builder("fleet-test")
            .instructions(instructions)
            .core_cpi(core_cpi)
            .build()
            .unwrap();
        PhaseProgram::from_phase(phase)
    }

    fn machine(seed: u64, instructions: u64, core_cpi: f64) -> Machine {
        Machine::new(MachineConfig::pentium_m_755(seed), program(instructions, core_cpi))
    }

    /// Builds the same heterogeneous fleet twice (cadences 3 and 7, plus a
    /// fast-forward cohort).
    fn build_fleet() -> Fleet {
        // The model retires ~2e9 instructions/s at the top p-state, so
        // cohort 0 (~100 s of work) outlives every horizon below, cohort 1
        // (~1 s) finishes mid-run, and the fast-forward cohort mixes an
        // ~18 s program with one that completes almost immediately.
        let mut fleet = Fleet::new(Seconds::from_millis(10.0));
        fleet
            .add_cohort(
                vec![machine(1, 200_000_000_000, 1.0), machine(2, 300_000_000_000, 0.7)],
                CohortMode::Governed { cadence_ticks: 3 },
            )
            .unwrap();
        fleet
            .add_cohort(
                vec![machine(3, 1_200_000_000, 2.0), machine(4, 1_000_000_000, 1.4)],
                CohortMode::Governed { cadence_ticks: 7 },
            )
            .unwrap();
        fleet
            .add_cohort(
                vec![machine(5, 40_000_000_000, 0.9), machine(6, 120_000_000, 1.1)],
                CohortMode::FastForward,
            )
            .unwrap();
        fleet
    }

    /// Records the callback sequence and actuates a deterministic p-state
    /// script, exercising the scalar-fallback path in both engines.
    #[derive(Default)]
    struct Recorder {
        log: Vec<(u64, usize)>,
        governor_log: Vec<u64>,
        decisions: usize,
    }

    impl FleetController for Recorder {
        fn cohort_stepped(&mut self, fleet: &mut Fleet, cohort: CohortId, now: u64) -> Result<()> {
            self.log.push((now, cohort));
            self.decisions += 1;
            // Cycle lane 0 of every stepped cohort through p-states.
            let target = PStateId::new(self.decisions % 8);
            fleet.set_pstate(cohort, 0, target)?;
            Ok(())
        }

        fn governor_tick(&mut self, fleet: &mut Fleet, now: u64) -> Result<()> {
            self.governor_log.push(now);
            // Meter fast-forward cohorts at the governor cadence.
            fleet.advance_fastforward_to(now)
        }
    }

    /// Everything observable about one node, bit-exact.
    fn node_state(fleet: &Fleet) -> Vec<(u64, u64, CounterSnapshot, Option<Seconds>, PStateId)> {
        let mut out = Vec::new();
        for cohort in 0..fleet.cohort_count() {
            for lane in 0..fleet.lanes(cohort) {
                let machine = fleet.machine(cohort, lane);
                out.push((
                    fleet.energy(cohort, lane).joules().to_bits(),
                    fleet.elapsed(cohort, lane).seconds().to_bits(),
                    fleet.counter_snapshot(cohort, lane),
                    machine.completion_time(),
                    machine.pstate(),
                ));
            }
        }
        out
    }

    #[test]
    fn des_is_byte_identical_to_naive_lockstep() {
        let mut des = build_fleet();
        let mut naive = build_fleet();
        let mut des_ctl = Recorder::default();
        let mut naive_ctl = Recorder::default();
        des.run_des(500, 50, &mut des_ctl).unwrap();
        naive.run_lockstep(500, 50, &mut naive_ctl).unwrap();
        assert_eq!(des_ctl.log, naive_ctl.log, "callback sequences must match");
        assert_eq!(des_ctl.governor_log, naive_ctl.governor_log);
        assert_eq!(node_state(&des), node_state(&naive));
    }

    #[test]
    fn equal_tick_events_order_cohorts_then_governor() {
        // Cadences 3 and 7 first coincide at tick 21; the governor fires
        // there too. The recorded order at tick 21 must be cohort 0,
        // cohort 1, governor.
        let mut fleet = build_fleet();
        let mut ctl = Recorder::default();
        fleet.run_des(21, 21, &mut ctl).unwrap();
        let at_21: Vec<usize> =
            ctl.log.iter().filter(|(t, _)| *t == 21).map(|(_, c)| *c).collect();
        assert_eq!(at_21, vec![0, 1], "cohorts step in ascending id order");
        assert_eq!(ctl.governor_log, vec![21], "governor fires after same-tick cohort steps");
    }

    #[test]
    fn finished_cohorts_retire_and_stop_waking() {
        // Cohort 1's programs (~1 simulated second of work) finish well
        // inside the 20 s horizon; after retirement it must produce no
        // further callbacks and its lanes' elapsed time must freeze.
        let mut fleet = build_fleet();
        let mut ctl = Recorder::default();
        fleet.run_des(2_000, 0, &mut ctl).unwrap();
        assert!(fleet.retired(1), "cohort 1 must retire");
        assert!(!fleet.retired(0), "cohort 0 keeps running");
        let last_wake = ctl.log.iter().filter(|(_, c)| *c == 1).map(|(t, _)| *t).max().unwrap();
        assert!(last_wake < 2_000, "retired cohort stops waking (last wake {last_wake})");
        let frozen = fleet.elapsed(1, 0).seconds();
        let wake_time = fleet.time_at(last_wake).seconds();
        assert!(
            (frozen - wake_time).abs() < 1e-9 * wake_time,
            "elapsed freezes at the retirement step ({frozen} vs {wake_time})"
        );
    }

    #[test]
    fn fastforward_drain_lands_on_the_horizon() {
        let mut fleet = build_fleet();
        fleet.run_des(500, 0, &mut UncontrolledFleet).unwrap();
        // Lane 0 of the FF cohort runs a 2G-instruction program (far past
        // the 5 s horizon): it must land exactly on the horizon time. Lane
        // 1 finishes early and freezes at completion.
        let horizon = fleet.time_at(500).seconds();
        let landed = fleet.elapsed(2, 0).seconds();
        assert!(
            (landed - horizon).abs() < 1e-9 * horizon,
            "unfinished FF lane lands on the horizon ({landed} vs {horizon})"
        );
        let done = fleet.machine(2, 1).completion_time().expect("lane 1 finishes");
        assert_eq!(fleet.elapsed(2, 1), done, "finished FF lanes freeze at completion");
        assert!(done < fleet.time_at(500));
    }

    fn server(seed: u64) -> Machine {
        let service = PhaseDescriptor::builder("service")
            .instructions(1)
            .core_cpi(1.0)
            .build()
            .unwrap();
        Machine::server(MachineConfig::pentium_m_755(seed), service)
    }

    /// Serve fleet: one open-loop cohort (cadence 5) next to a governed
    /// batch cohort, so serve lanes and SoA fast-path lanes interleave in
    /// the event heap.
    fn build_serve_fleet() -> Fleet {
        let mut fleet = Fleet::new(Seconds::from_millis(10.0));
        fleet
            .add_cohort(vec![server(11), server(12)], CohortMode::Governed { cadence_ticks: 5 })
            .unwrap();
        fleet
            .add_cohort(
                vec![machine(3, 200_000_000_000, 1.0)],
                CohortMode::Governed { cadence_ticks: 3 },
            )
            .unwrap();
        fleet
    }

    /// Feeds a deterministic open-loop arrival script into the serve
    /// cohort, always one cadence window ahead of the lanes' clock, and
    /// cycles lane 0 through p-states to cover DVFS on the serve path.
    struct ServeScript {
        cadence: u64,
        fed_until: u64,
        offered: u64,
        decisions: usize,
    }

    impl ServeScript {
        fn new(cadence: u64) -> Self {
            Self { cadence, fed_until: 0, offered: 0, decisions: 0 }
        }

        /// One 8M-instruction request per lane every second tick.
        fn feed(&mut self, fleet: &mut Fleet, upto: u64) {
            while self.fed_until < upto {
                let tick = self.fed_until;
                if tick % 2 == 0 {
                    let arrival = fleet.time_at(tick);
                    for lane in 0..fleet.lanes(0) {
                        fleet.offer_request(0, lane, Request::new(arrival, 8e6));
                        self.offered += 1;
                    }
                }
                self.fed_until += 1;
            }
        }
    }

    impl FleetController for ServeScript {
        fn cohort_stepped(&mut self, fleet: &mut Fleet, cohort: CohortId, now: u64) -> Result<()> {
            if cohort == 0 {
                self.feed(fleet, now + self.cadence);
                self.decisions += 1;
                fleet.set_pstate(0, 0, PStateId::new(self.decisions % 8))?;
            }
            Ok(())
        }

        fn governor_tick(&mut self, _fleet: &mut Fleet, _now: u64) -> Result<()> {
            Ok(())
        }
    }

    /// Queue accounting per serve lane, bit-exact.
    fn queue_state(fleet: &Fleet) -> Vec<(u64, u64, usize, u64)> {
        (0..fleet.lanes(0))
            .map(|lane| {
                let q = fleet.queue(0, lane).expect("serve lanes expose their queue");
                (q.arrived(), q.completed(), q.pending(), q.total_sojourn().to_bits())
            })
            .collect()
    }

    #[test]
    fn serve_cohort_des_matches_lockstep_and_conserves_requests() {
        let mut des = build_serve_fleet();
        let mut naive = build_serve_fleet();
        let mut des_ctl = ServeScript::new(5);
        let mut naive_ctl = ServeScript::new(5);
        des_ctl.feed(&mut des, 5);
        naive_ctl.feed(&mut naive, 5);
        des.run_des(400, 0, &mut des_ctl).unwrap();
        naive.run_lockstep(400, 0, &mut naive_ctl).unwrap();

        assert_eq!(des_ctl.offered, naive_ctl.offered);
        assert_eq!(node_state(&des), node_state(&naive));
        assert_eq!(queue_state(&des), queue_state(&naive));

        // Conservation: every offered request is either completed or still
        // queued; an open-loop cohort never retires.
        let total: u64 = queue_state(&des)
            .iter()
            .map(|(arrived, completed, pending, _)| {
                assert_eq!(*arrived, completed + *pending as u64, "queue accounting conserves");
                *arrived
            })
            .sum();
        assert_eq!(total, des_ctl.offered, "every offered request arrived at a queue");
        let completed: u64 = queue_state(&des).iter().map(|(_, c, _, _)| *c).sum();
        assert!(completed > 0, "the fleet must actually serve traffic");
        assert!(!des.retired(0), "serve cohorts never retire");
    }

    #[test]
    fn empty_cohorts_and_zero_cadence_are_rejected() {
        let mut fleet = Fleet::new(Seconds::from_millis(10.0));
        assert!(fleet.add_cohort(Vec::new(), CohortMode::FastForward).is_err());
        assert!(fleet
            .add_cohort(vec![machine(1, 1_000_000, 1.0)], CohortMode::Governed {
                cadence_ticks: 0
            })
            .is_err());
    }
}
