//! Clock throttling (duty-cycle modulation).
//!
//! Besides DVFS, the platform supports the Pentium M's second
//! power-management mechanism: on-demand clock modulation, which gates the
//! core clock for a fraction of each modulation window (the paper's
//! companion report, IBM RC24007, models both actuators). Eight duty
//! levels (1/8 … 8/8) mirror the ACPI T-state encoding.
//!
//! Throttling is the *inferior* knob: it scales work and active power
//! linearly with the duty cycle but keeps the supply voltage — so unlike
//! DVFS there is no quadratic dynamic-energy win, and leakage accrues over
//! the stretched run time. The `ablation-throttle` experiment quantifies
//! this against PowerSave.

use std::fmt;

use crate::error::{PlatformError, Result};

/// Number of duty steps (ACPI T-states on the simulated part).
pub const THROTTLE_STEPS: u8 = 8;

/// A clock-modulation duty level: the core clock runs `level/8` of the
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThrottleLevel(u8);

impl ThrottleLevel {
    /// Full speed (no gating).
    pub const FULL: ThrottleLevel = ThrottleLevel(THROTTLE_STEPS);

    /// Creates a throttle level running `steps` of every 8 clock windows.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidConfig`] unless `1 ≤ steps ≤ 8`.
    pub fn new(steps: u8) -> Result<Self> {
        if steps == 0 || steps > THROTTLE_STEPS {
            return Err(PlatformError::InvalidConfig {
                parameter: "throttle_level",
                reason: format!("duty steps must lie in 1..={THROTTLE_STEPS}, got {steps}"),
            });
        }
        Ok(ThrottleLevel(steps))
    }

    /// The raw step count (1–8).
    pub fn steps(self) -> u8 {
        self.0
    }

    /// The duty cycle as a fraction in `(0, 1]`.
    pub fn duty(self) -> f64 {
        f64::from(self.0) / f64::from(THROTTLE_STEPS)
    }

    /// Whether the clock is ungated.
    pub fn is_full(self) -> bool {
        self.0 == THROTTLE_STEPS
    }

    /// All eight levels, lowest duty first.
    pub fn all() -> impl Iterator<Item = ThrottleLevel> {
        (1..=THROTTLE_STEPS).map(ThrottleLevel)
    }
}

impl Default for ThrottleLevel {
    fn default() -> Self {
        ThrottleLevel::FULL
    }
}

impl fmt::Display for ThrottleLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}/8", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_levels_construct() {
        assert_eq!(ThrottleLevel::new(8).unwrap(), ThrottleLevel::FULL);
        assert!((ThrottleLevel::new(4).unwrap().duty() - 0.5).abs() < 1e-12);
        assert!(ThrottleLevel::new(0).is_err());
        assert!(ThrottleLevel::new(9).is_err());
    }

    #[test]
    fn all_levels_ascend() {
        let levels: Vec<_> = ThrottleLevel::all().collect();
        assert_eq!(levels.len(), 8);
        assert!(levels.windows(2).all(|w| w[0] < w[1]));
        assert!(levels.last().unwrap().is_full());
    }

    #[test]
    fn default_is_full_speed() {
        assert!(ThrottleLevel::default().is_full());
        assert_eq!(ThrottleLevel::default().duty(), 1.0);
    }

    #[test]
    fn display_shows_duty() {
        assert_eq!(ThrottleLevel::new(3).unwrap().to_string(), "T3/8");
    }
}
