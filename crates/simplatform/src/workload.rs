//! The workload-source abstraction: what a session executes.
//!
//! Historically the runtime ran exactly one thing — a batch
//! [`PhaseProgram`], executed start to finish. The serve-traffic refactor
//! splits "what work exists" from "how the machine executes it":
//! a [`WorkloadSource`] names itself, builds the machine that will run it,
//! and (for open-loop sources) generates the timed [`Request`]s that arrive
//! while the session runs. Batch programs implement the trait trivially —
//! no arrivals, machine runs the program to completion. The open-loop
//! request family in `aapm-workloads` builds a serve-mode machine instead
//! and streams seeded arrivals into each control interval.
//!
//! The contract that keeps runs deterministic: `arrivals_into` is called
//! exactly once per control interval with abutting `[start, end)` windows,
//! so a source may keep cursor state (an RNG, the last arrival time) and
//! must produce the same stream for the same window sequence.

use crate::config::MachineConfig;
use crate::machine::Machine;
use crate::program::PhaseProgram;
use crate::requests::Request;
use crate::units::Seconds;

/// A source of work for one simulated machine.
///
/// Implementors are either *batch* (the default method bodies: the machine
/// executes a phase program to completion, no arrivals) or *open-loop*
/// (`open_loop()` returns true, `machine()` builds a serve-mode machine,
/// and `arrivals_into` streams requests).
pub trait WorkloadSource {
    /// Workload name for reports.
    fn name(&self) -> &str;

    /// Builds the machine that executes this workload.
    fn machine(&self, config: MachineConfig) -> Machine;

    /// Appends the requests arriving in `[start, end)`, in non-decreasing
    /// arrival order. Called once per control interval with abutting
    /// windows. Batch sources leave the buffer untouched.
    fn arrivals_into(&mut self, start: Seconds, end: Seconds, out: &mut Vec<Request>) {
        let _ = (start, end, out);
    }

    /// Whether this source is open-loop (never finishes; the session runs
    /// until its sample cap instead of to completion).
    fn open_loop(&self) -> bool {
        false
    }
}

/// Batch programs are workload sources: the machine runs them to
/// completion and no requests ever arrive.
impl WorkloadSource for PhaseProgram {
    fn name(&self) -> &str {
        PhaseProgram::name(self)
    }

    fn machine(&self, config: MachineConfig) -> Machine {
        Machine::new(config, self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseDescriptor;

    #[test]
    fn phase_program_is_a_batch_source() {
        let phase = PhaseDescriptor::builder("batch").instructions(1_000).build().unwrap();
        let mut program = PhaseProgram::from_phase(phase);
        assert_eq!(WorkloadSource::name(&program), "batch");
        assert!(!program.open_loop());
        let mut out = Vec::new();
        program.arrivals_into(Seconds::ZERO, Seconds::new(1.0), &mut out);
        assert!(out.is_empty(), "batch sources generate no requests");
        let machine = WorkloadSource::machine(&program, MachineConfig::default());
        assert!(!machine.is_serving());
        assert_eq!(machine.program().total_instructions(), 1_000);
    }
}
