//! # aapm-platform — the simulated system under test
//!
//! A Pentium M 755-class platform model for reproducing *Application-Aware
//! Power Management* (Rajamani et al., IISWC 2006) without the original
//! hardware. It provides:
//!
//! * the eight Enhanced SpeedStep p-states of the paper's machine
//!   ([`pstate::PStateTable::pentium_m_755`]);
//! * an analytic pipeline/memory timing model that turns
//!   frequency-independent workload *phases* into per-cycle event rates
//!   ([`pipeline`]), with on-chip latencies fixed in cycles and DRAM latency
//!   fixed in nanoseconds — the mechanism behind workload-dependent DVFS
//!   sensitivity;
//! * a ground-truth CMOS power model ([`power`]) richer than the linear
//!   counter models the governors use, so estimation error is realistic;
//! * a set-associative cache simulator and DRAM row-buffer model
//!   ([`cache`], [`dram`], [`hierarchy`]) used to characterize
//!   microbenchmarks from their address streams;
//! * DVFS transition costs ([`dvfs`]) and hardware event counters
//!   ([`events`], [`counters`]);
//! * the machine executor ([`machine::Machine`]) that runs phase programs
//!   under external p-state control.
//!
//! # Quickstart
//!
//! ```
//! use aapm_platform::config::MachineConfig;
//! use aapm_platform::machine::Machine;
//! use aapm_platform::phase::PhaseDescriptor;
//! use aapm_platform::program::PhaseProgram;
//!
//! let phase = PhaseDescriptor::builder("demo")
//!     .instructions(50_000_000)
//!     .core_cpi(0.8)
//!     .build()?;
//! let mut machine = Machine::new(
//!     MachineConfig::pentium_m_755(42),
//!     PhaseProgram::from_phase(phase),
//! );
//! let time = machine.run_to_completion()?;
//! println!("finished in {time}, used {}", machine.true_energy());
//! # Ok::<(), aapm_platform::error::PlatformError>(())
//! ```

pub mod batch;
pub mod cache;
pub mod config;
pub mod counters;
pub mod dram;
pub mod dvfs;
pub mod error;
pub mod events;
pub mod fleet;
pub mod hierarchy;
pub mod machine;
pub mod noise;
pub mod phase;
pub mod pipeline;
pub mod power;
pub mod program;
pub mod pstate;
pub mod requests;
pub mod thermal;
pub mod throttle;
pub mod units;
pub mod workload;

pub use batch::MachineBatch;
pub use config::MachineConfig;
pub use counters::{CounterDelta, CounterSnapshot};
pub use error::PlatformError;
pub use events::HardwareEvent;
pub use fleet::{CohortId, CohortMode, Fleet, FleetController};
pub use machine::Machine;
pub use phase::PhaseDescriptor;
pub use program::PhaseProgram;
pub use pstate::{PState, PStateId, PStateTable};
pub use requests::{QueueSample, Request, RequestQueue};
pub use thermal::{Celsius, ThermalModel, ThermalParams};
pub use throttle::ThrottleLevel;
pub use units::{Joules, MegaHertz, Seconds, Volts, Watts};
pub use workload::WorkloadSource;
