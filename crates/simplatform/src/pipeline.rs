//! Analytic pipeline/memory timing model.
//!
//! Given a frequency-independent [`PhaseDescriptor`] and an operating
//! p-state, this module derives the per-cycle rates the rest of the platform
//! consumes: CPI/IPC, decoded instructions per cycle (DPC), DCU-miss
//! outstanding cycles, resource stalls, and cache/bus traffic rates.
//!
//! The frequency dependence is the heart of the reproduction:
//!
//! * **On-chip latencies** (L1, L2) are fixed in *cycles* — they shrink in
//!   wall-clock time as frequency rises, so purely cache-resident work
//!   scales linearly with frequency.
//! * **DRAM latency** is fixed in *nanoseconds* — it costs more core cycles
//!   at higher frequency, so DRAM-bound work barely speeds up with
//!   frequency. This is why `swim`'s execution time is flat across p-states
//!   (the paper's Figure 2) while `sixtrack` scales linearly.
//! * **Miss overlap** discounts the DRAM stall that the core actually
//!   *feels*, but not what the DCU-miss-outstanding counter *reports*;
//!   workloads with high memory-level parallelism therefore look
//!   memory-bound to the counter while scaling like core-bound code — the
//!   mechanism behind the paper's `art`/`mcf` performance-model errors.

use crate::phase::PhaseDescriptor;
use crate::pstate::PState;

/// Memory-hierarchy timing parameters seen by the analytic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryTimings {
    /// L1 data-cache hit latency in core cycles (hidden by the pipeline for
    /// the common case; charged only via `core_cpi`, kept for reference).
    pub l1_hit_cycles: f64,
    /// L2 hit latency in core cycles (frequency-independent in cycles).
    pub l2_hit_cycles: f64,
    /// DRAM access latency in nanoseconds (frequency-independent in time).
    pub dram_latency_ns: f64,
    /// Fraction of an L2 hit's latency the out-of-order core cannot hide.
    pub l2_stall_exposure: f64,
    /// Extra misprediction penalty in cycles charged per mispredicted branch.
    pub mispredict_penalty_cycles: f64,
    /// Sustainable DRAM bandwidth in bytes per second. Throughput is capped
    /// so that line traffic (demand misses + prefetches, 64 B each) never
    /// exceeds it — the limit MCOPY's large footprints probe (Table I).
    pub dram_bandwidth_bytes_per_sec: f64,
    /// Cache line size in bytes (the unit of DRAM traffic).
    pub line_bytes: f64,
}

impl MemoryTimings {
    /// Timings modelled on the Pentium M 755 (Dothan): 3-cycle L1, 10-cycle
    /// 2 MB L2, ~110 ns of memory latency and ~2.1 GB/s of sustainable
    /// bandwidth over the 400 MT/s front-side bus.
    pub fn pentium_m_755() -> Self {
        MemoryTimings {
            l1_hit_cycles: 3.0,
            l2_hit_cycles: 10.0,
            dram_latency_ns: 110.0,
            l2_stall_exposure: 0.8,
            mispredict_penalty_cycles: 11.0,
            dram_bandwidth_bytes_per_sec: 2.1e9,
            line_bytes: 64.0,
        }
    }
}

impl Default for MemoryTimings {
    fn default() -> Self {
        MemoryTimings::pentium_m_755()
    }
}

/// Per-cycle activity rates of one phase at one p-state.
///
/// All `*_per_cycle` fields are event counts per core clock cycle;
/// `instructions_per_second` folds the frequency back in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseRates {
    /// Total cycles per retired instruction at this p-state.
    pub cpi: f64,
    /// Retired instructions per cycle (`1 / cpi`).
    pub ipc: f64,
    /// Decoded instructions per cycle (the paper's DPC).
    pub dpc: f64,
    /// DCU-miss-outstanding cycles per cycle (full latency, before overlap;
    /// may exceed 1 under memory-level parallelism).
    pub dcu_outstanding_per_cycle: f64,
    /// Resource-stall cycles per cycle (stall the core actually feels).
    pub resource_stalls_per_cycle: f64,
    /// DRAM (front-side-bus) requests per cycle.
    pub memory_requests_per_cycle: f64,
    /// L2 accesses per cycle (demand misses + prefetches).
    pub l2_requests_per_cycle: f64,
    /// L1 data accesses per cycle.
    pub l1_accesses_per_cycle: f64,
    /// L1 data misses per cycle.
    pub l1_misses_per_cycle: f64,
    /// L2 misses per cycle.
    pub l2_misses_per_cycle: f64,
    /// Floating-point operations retired per cycle.
    pub fp_per_cycle: f64,
    /// Branches retired per cycle.
    pub branches_per_cycle: f64,
    /// Branch mispredictions per cycle.
    pub mispredicts_per_cycle: f64,
    /// Hardware prefetches per cycle.
    pub prefetches_per_cycle: f64,
    /// Micro-operations retired per cycle (approximated as 1.15 × IPC).
    pub uops_per_cycle: f64,
    /// Retired instructions per second at this p-state.
    pub instructions_per_second: f64,
}

/// Evaluates the timing model for `phase` at `pstate`.
///
/// # Examples
///
/// ```
/// use aapm_platform::phase::PhaseDescriptor;
/// use aapm_platform::pipeline::{evaluate, MemoryTimings};
/// use aapm_platform::pstate::PStateTable;
///
/// let table = PStateTable::pentium_m_755();
/// let compute = PhaseDescriptor::builder("compute").core_cpi(0.8).build()?;
/// let timings = MemoryTimings::pentium_m_755();
/// let slow = evaluate(&compute, table.get(table.lowest())?, &timings);
/// let fast = evaluate(&compute, table.get(table.highest())?, &timings);
/// // A cache-resident phase retires the same IPC at any frequency…
/// assert!((slow.ipc - fast.ipc).abs() < 1e-9);
/// // …so its wall-clock throughput scales with frequency.
/// assert!(fast.instructions_per_second > 3.0 * slow.instructions_per_second);
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
pub fn evaluate(phase: &PhaseDescriptor, pstate: &PState, timings: &MemoryTimings) -> PhaseRates {
    let f_ghz = pstate.frequency().ghz();
    let dram_latency_cycles = timings.dram_latency_ns * f_ghz;

    // Stall components, in cycles per retired instruction.
    let l2_stall_per_inst = phase.l1_mpi() * timings.l2_hit_cycles * timings.l2_stall_exposure;
    let dram_stall_full_per_inst = phase.l2_mpi() * dram_latency_cycles;
    let dram_stall_felt_per_inst = dram_stall_full_per_inst * (1.0 - phase.overlap());
    let mispredict_per_inst = phase.branch_fraction() * phase.mispredict_rate();
    let mispredict_stall_per_inst = mispredict_per_inst * timings.mispredict_penalty_cycles;

    let latency_cpi =
        phase.core_cpi() + l2_stall_per_inst + dram_stall_felt_per_inst + mispredict_stall_per_inst;

    // Bandwidth ceiling: each DRAM-bound line (demand miss or prefetch
    // fill) moves `line_bytes` over the bus. The cycles-per-instruction
    // floor that keeps traffic at or below the sustainable bandwidth is
    // bytes/inst ÷ (bytes/sec) × cycles/sec. Latency-dominated workloads
    // never hit it; streaming workloads (MCOPY at large footprints)
    // saturate here instead of at the latency bound.
    let dram_lines_per_inst = phase.l2_mpi();
    let bandwidth_cpi = dram_lines_per_inst * timings.line_bytes
        / timings.dram_bandwidth_bytes_per_sec
        * pstate.frequency().hz();

    let cpi = latency_cpi.max(bandwidth_cpi);
    let ipc = 1.0 / cpi;

    // The DCU counter reports cycles with a miss outstanding at *full*
    // latency: overlapped misses still keep the unit busy.
    let dcu_outstanding_per_inst =
        phase.l1_mpi() * timings.l2_hit_cycles + dram_stall_full_per_inst;

    let l2_requests_per_inst = phase.l1_mpi() + phase.prefetch_per_inst();

    PhaseRates {
        cpi,
        ipc,
        dpc: ipc * phase.decode_ratio(),
        dcu_outstanding_per_cycle: dcu_outstanding_per_inst * ipc,
        resource_stalls_per_cycle: (l2_stall_per_inst
            + dram_stall_felt_per_inst
            + mispredict_stall_per_inst)
            * ipc,
        memory_requests_per_cycle: phase.l2_mpi() * ipc,
        l2_requests_per_cycle: l2_requests_per_inst * ipc,
        l1_accesses_per_cycle: phase.mem_fraction() * ipc,
        l1_misses_per_cycle: phase.l1_mpi() * ipc,
        l2_misses_per_cycle: phase.l2_mpi() * ipc,
        fp_per_cycle: phase.fp_fraction() * ipc,
        branches_per_cycle: phase.branch_fraction() * ipc,
        mispredicts_per_cycle: mispredict_per_inst * ipc,
        prefetches_per_cycle: phase.prefetch_per_inst() * ipc,
        uops_per_cycle: 1.15 * ipc,
        instructions_per_second: ipc * pstate.frequency().hz(),
    }
}

/// Wall-clock execution time, in seconds, of `phase` at `pstate`.
pub fn phase_time_seconds(
    phase: &PhaseDescriptor,
    pstate: &PState,
    timings: &MemoryTimings,
) -> f64 {
    let rates = evaluate(phase, pstate, timings);
    phase.instructions() as f64 / rates.instructions_per_second
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pstate::PStateTable;

    fn table() -> PStateTable {
        PStateTable::pentium_m_755()
    }

    fn timings() -> MemoryTimings {
        MemoryTimings::pentium_m_755()
    }

    fn core_bound() -> PhaseDescriptor {
        PhaseDescriptor::builder("core")
            .core_cpi(0.7)
            .decode_ratio(1.3)
            .build()
            .unwrap()
    }

    fn memory_bound() -> PhaseDescriptor {
        PhaseDescriptor::builder("memory")
            .core_cpi(0.9)
            .mem_fraction(0.45)
            .l1_mpi(0.06)
            .l2_mpi(0.03)
            .overlap(0.1)
            .build()
            .unwrap()
    }

    #[test]
    fn core_bound_ipc_is_frequency_independent() {
        let t = table();
        let phase = core_bound();
        let low = evaluate(&phase, t.get(t.lowest()).unwrap(), &timings());
        let high = evaluate(&phase, t.get(t.highest()).unwrap(), &timings());
        assert!((low.ipc - high.ipc).abs() < 1e-12);
        // Throughput scales with the frequency ratio (2000/600).
        let ratio = high.instructions_per_second / low.instructions_per_second;
        assert!((ratio - 2000.0 / 600.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_ipc_falls_with_frequency() {
        let t = table();
        let phase = memory_bound();
        let low = evaluate(&phase, t.get(t.lowest()).unwrap(), &timings());
        let high = evaluate(&phase, t.get(t.highest()).unwrap(), &timings());
        assert!(high.ipc < low.ipc, "DRAM stalls cost more cycles at 2 GHz");
        // But wall-clock throughput must still not *decrease* with frequency.
        assert!(high.instructions_per_second > low.instructions_per_second);
        // And it scales far below the 3.33x frequency ratio.
        let ratio = high.instructions_per_second / low.instructions_per_second;
        assert!(ratio < 2.0, "memory-bound speedup {ratio} should be well below 3.33");
    }

    #[test]
    fn dcu_counts_full_latency_regardless_of_overlap() {
        let t = table();
        let base = memory_bound();
        let overlapped = PhaseDescriptor::builder("mlp")
            .core_cpi(base.core_cpi())
            .mem_fraction(base.mem_fraction())
            .l1_mpi(base.l1_mpi())
            .l2_mpi(base.l2_mpi())
            .overlap(0.8)
            .build()
            .unwrap();
        let ps = t.get(t.highest()).unwrap();
        let r_base = evaluate(&base, ps, &timings());
        let r_mlp = evaluate(&overlapped, ps, &timings());
        // Per instruction, outstanding-miss cycles are identical…
        let per_inst_base = r_base.dcu_outstanding_per_cycle / r_base.ipc;
        let per_inst_mlp = r_mlp.dcu_outstanding_per_cycle / r_mlp.ipc;
        assert!((per_inst_base - per_inst_mlp).abs() < 1e-9);
        // …but the overlapped phase actually runs faster.
        assert!(r_mlp.ipc > r_base.ipc);
    }

    #[test]
    fn dpc_scales_ipc_by_decode_ratio() {
        let t = table();
        let phase = core_bound();
        let r = evaluate(&phase, t.get(t.highest()).unwrap(), &timings());
        assert!((r.dpc - r.ipc * 1.3).abs() < 1e-12);
    }

    #[test]
    fn traffic_rates_are_consistent() {
        let t = table();
        let phase = memory_bound();
        let r = evaluate(&phase, t.get(t.highest()).unwrap(), &timings());
        assert!(r.l1_misses_per_cycle <= r.l1_accesses_per_cycle);
        assert!(r.l2_misses_per_cycle <= r.l2_requests_per_cycle + 1e-12);
        assert!((r.memory_requests_per_cycle - r.l2_misses_per_cycle).abs() < 1e-12);
    }

    #[test]
    fn phase_time_matches_rate_definition() {
        let t = table();
        let phase = memory_bound().with_instructions(1_000_000);
        let ps = t.get(t.highest()).unwrap();
        let r = evaluate(&phase, ps, &timings());
        let time = phase_time_seconds(&phase, ps, &timings());
        assert!((time * r.instructions_per_second - 1_000_000.0).abs() < 1e-3);
    }

    #[test]
    fn cpi_monotone_in_dram_miss_rate() {
        let t = table();
        let ps = t.get(t.highest()).unwrap();
        let mut last_cpi = 0.0;
        for &mpi in &[0.0, 0.005, 0.01, 0.02, 0.04] {
            let phase = PhaseDescriptor::builder("sweep")
                .mem_fraction(0.5)
                .l1_mpi(0.05_f64.max(mpi))
                .l2_mpi(mpi)
                .build()
                .unwrap();
            let cpi = evaluate(&phase, ps, &timings()).cpi;
            assert!(cpi >= last_cpi, "cpi must grow with miss rate");
            last_cpi = cpi;
        }
    }

    #[test]
    fn bandwidth_cap_binds_for_streaming_workloads() {
        // A phase demanding far more line traffic than 2.1 GB/s: at 2 GHz
        // the latency model alone would allow ~64 B × 0.2/inst × IPS.
        let t = table();
        let ps = t.get(t.highest()).unwrap();
        let streaming = PhaseDescriptor::builder("stream")
            .core_cpi(0.5)
            .mem_fraction(0.5)
            .l1_mpi(0.2)
            .l2_mpi(0.2)
            .overlap(0.89)
            .mispredict_rate(0.0)
            .build()
            .unwrap();
        let r = evaluate(&streaming, ps, &timings());
        let bytes_per_sec = 0.2 * 64.0 * r.instructions_per_second;
        assert!(
            bytes_per_sec <= 2.1e9 * 1.001,
            "traffic {bytes_per_sec:.3e} B/s must respect the 2.1 GB/s cap"
        );
        // And when bandwidth binds, throughput is frequency-independent.
        let slow = evaluate(&streaming, t.get(t.lowest()).unwrap(), &timings());
        let slow_bytes = 0.2 * 64.0 * slow.instructions_per_second;
        if slow_bytes >= 2.1e9 * 0.999 {
            assert!(
                (r.instructions_per_second - slow.instructions_per_second).abs()
                    / r.instructions_per_second
                    < 1e-6
            );
        }
    }

    #[test]
    fn bandwidth_cap_is_inert_for_latency_bound_workloads() {
        // swim-class traffic (~0.05 lines/inst at CPI ≈ 11) runs far below
        // the cap, so adding it must not change the latency model's CPI.
        let t = table();
        let ps = t.get(t.highest()).unwrap();
        let phase = PhaseDescriptor::builder("latency")
            .core_cpi(0.4)
            .mem_fraction(0.45)
            .l1_mpi(0.06)
            .l2_mpi(0.05)
            .overlap(0.05)
            .build()
            .unwrap();
        let mut no_cap = timings();
        no_cap.dram_bandwidth_bytes_per_sec = f64::INFINITY;
        let with_cap = evaluate(&phase, ps, &timings());
        let without = evaluate(&phase, ps, &no_cap);
        assert!((with_cap.cpi - without.cpi).abs() < 1e-12);
    }

    #[test]
    fn mispredictions_add_stall() {
        let t = table();
        let ps = t.get(t.highest()).unwrap();
        let clean = PhaseDescriptor::builder("clean")
            .branch_fraction(0.2)
            .mispredict_rate(0.0)
            .build()
            .unwrap();
        let noisy = PhaseDescriptor::builder("noisy")
            .branch_fraction(0.2)
            .mispredict_rate(0.1)
            .build()
            .unwrap();
        let r_clean = evaluate(&clean, ps, &timings());
        let r_noisy = evaluate(&noisy, ps, &timings());
        assert!(r_noisy.cpi > r_clean.cpi);
        assert!(r_noisy.mispredicts_per_cycle > 0.0);
    }
}
