//! Die-temperature model.
//!
//! The paper frames DVFS control as a response to *power and thermal*
//! constraints ("programmable power and thermal envelopes", "partial
//! supply/cooling failures"). The platform therefore carries a
//! first-order RC thermal model of the die + heatsink path:
//!
//! ```text
//! τ · dT/dt = P · R_th − (T − T_ambient)
//! ```
//!
//! integrated per simulation step. A steady power `P` settles at
//! `T_ambient + P · R_th`; transients decay with time constant `τ`.
//! The thermally-guarded governor in `aapm` uses this through a quantized
//! on-die sensor in `aapm-telemetry`.

use std::fmt;

use crate::units::{Seconds, Watts};

/// A temperature in degrees Celsius.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Celsius(f64);

impl Celsius {
    /// Creates a temperature.
    ///
    /// # Panics
    ///
    /// Panics if `degrees` is not finite.
    pub fn new(degrees: f64) -> Self {
        assert!(degrees.is_finite(), "temperature must be finite");
        Celsius(degrees)
    }

    /// The temperature in degrees Celsius.
    pub fn degrees(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} °C", self.0)
    }
}

/// Physical parameters of the die → heatsink → ambient path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalParams {
    /// Ambient (heatsink inlet) temperature.
    pub ambient: Celsius,
    /// Junction-to-ambient thermal resistance in °C per watt.
    pub resistance_c_per_w: f64,
    /// Thermal time constant of the package.
    pub time_constant: Seconds,
}

impl ThermalParams {
    /// A mobile package in the Pentium M class: 35 °C ambient inside the
    /// chassis, ≈2.8 °C/W junction-to-ambient, a ~4 s package time
    /// constant. Sustained 17.8 W (the FMA worst case) settles near 85 °C,
    /// just under the part's 100 °C junction limit.
    pub fn pentium_m_mobile() -> Self {
        ThermalParams {
            ambient: Celsius::new(35.0),
            resistance_c_per_w: 2.8,
            time_constant: Seconds::new(4.0),
        }
    }
}

impl Default for ThermalParams {
    fn default() -> Self {
        ThermalParams::pentium_m_mobile()
    }
}

/// The integrating RC thermal model.
///
/// # Examples
///
/// ```
/// use aapm_platform::thermal::{ThermalModel, ThermalParams};
/// use aapm_platform::units::{Seconds, Watts};
///
/// let mut model = ThermalModel::new(ThermalParams::pentium_m_mobile());
/// // A long stretch at 10 W settles near 35 + 10·2.8 = 63 °C.
/// for _ in 0..10_000 {
///     model.advance(Watts::new(10.0), Seconds::from_millis(10.0));
/// }
/// assert!((model.temperature().degrees() - 63.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    params: ThermalParams,
    temperature: Celsius,
}

impl ThermalModel {
    /// Creates a model settled at ambient temperature.
    pub fn new(params: ThermalParams) -> Self {
        ThermalModel { params, temperature: params.ambient }
    }

    /// The model parameters.
    pub fn params(&self) -> &ThermalParams {
        &self.params
    }

    /// Current die temperature.
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// Overwrites the die temperature directly — the SoA batch stepper's
    /// write-back path (`crate::batch`), which integrates the same
    /// exponential step over contiguous per-lane arrays.
    pub(crate) fn set_temperature(&mut self, temperature: Celsius) {
        self.temperature = temperature;
    }

    /// The temperature a sustained power level would settle at.
    pub fn steady_state(&self, power: Watts) -> Celsius {
        Celsius::new(self.params.ambient.degrees() + power.watts() * self.params.resistance_c_per_w)
    }

    /// Integrates `dt` of dissipation at `power` (exact exponential step,
    /// stable for any `dt`).
    pub fn advance(&mut self, power: Watts, dt: Seconds) {
        let target = self.steady_state(power).degrees();
        let decay = (-dt.seconds() / self.params.time_constant.seconds()).exp();
        let now = target + (self.temperature.degrees() - target) * decay;
        self.temperature = Celsius::new(now);
    }

    /// Resets the die to ambient (e.g. after a long idle).
    pub fn reset(&mut self) {
        self.temperature = self.params.ambient;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ThermalModel {
        ThermalModel::new(ThermalParams::pentium_m_mobile())
    }

    #[test]
    fn starts_at_ambient() {
        assert_eq!(model().temperature(), Celsius::new(35.0));
    }

    #[test]
    fn converges_to_steady_state() {
        let mut m = model();
        for _ in 0..20_000 {
            m.advance(Watts::new(17.8), Seconds::from_millis(10.0));
        }
        let expected = 35.0 + 17.8 * 2.8;
        assert!((m.temperature().degrees() - expected).abs() < 0.1);
    }

    #[test]
    fn transient_follows_time_constant() {
        let mut m = model();
        // One time constant of heating covers 1 − 1/e ≈ 63.2% of the step.
        m.advance(Watts::new(10.0), Seconds::new(4.0));
        let target = 63.0;
        let expected = target - (target - 35.0) * (-1.0f64).exp();
        assert!((m.temperature().degrees() - expected).abs() < 0.01);
    }

    #[test]
    fn cooling_works_symmetrically() {
        let mut m = model();
        for _ in 0..5_000 {
            m.advance(Watts::new(18.0), Seconds::from_millis(10.0));
        }
        let hot = m.temperature();
        for _ in 0..5_000 {
            m.advance(Watts::ZERO, Seconds::from_millis(10.0));
        }
        assert!(m.temperature() < hot);
        assert!((m.temperature().degrees() - 35.0).abs() < 1.0);
    }

    #[test]
    fn exponential_step_is_timestep_invariant() {
        // One 1 s step equals one hundred 10 ms steps.
        let mut coarse = model();
        coarse.advance(Watts::new(12.0), Seconds::new(1.0));
        let mut fine = model();
        for _ in 0..100 {
            fine.advance(Watts::new(12.0), Seconds::from_millis(10.0));
        }
        assert!((coarse.temperature().degrees() - fine.temperature().degrees()).abs() < 1e-9);
    }

    #[test]
    fn reset_returns_to_ambient() {
        let mut m = model();
        m.advance(Watts::new(18.0), Seconds::new(10.0));
        m.reset();
        assert_eq!(m.temperature(), Celsius::new(35.0));
    }
}
