//! Whole-machine configuration.

use crate::dvfs::DvfsParams;
use crate::error::{PlatformError, Result};
use crate::pipeline::MemoryTimings;
use crate::power::{GroundTruthPower, PowerConstants};
use crate::pstate::{PStateId, PStateTable};
use crate::thermal::ThermalParams;

/// Configuration for a [`crate::machine::Machine`].
///
/// Construct with [`MachineConfig::builder`]. The default configuration is
/// the calibrated Pentium M 755 platform used throughout the reproduction.
///
/// # Examples
///
/// ```
/// use aapm_platform::config::MachineConfig;
///
/// let config = MachineConfig::builder().seed(7).build()?;
/// assert_eq!(config.pstates().len(), 8);
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MachineConfig {
    pstates: PStateTable,
    timings: MemoryTimings,
    power: GroundTruthPower,
    dvfs: DvfsParams,
    thermal: ThermalParams,
    initial_pstate: PStateId,
    seed: u64,
    execution_variation: f64,
}

impl MachineConfig {
    /// Starts building a configuration with Pentium M 755 defaults.
    pub fn builder() -> MachineConfigBuilder {
        MachineConfigBuilder::new()
    }

    /// The calibrated Pentium M 755 platform with the given noise seed.
    pub fn pentium_m_755(seed: u64) -> Self {
        MachineConfig::builder().seed(seed).build().expect("default config is valid")
    }

    /// The p-state table.
    pub fn pstates(&self) -> &PStateTable {
        &self.pstates
    }

    /// Memory timing parameters.
    pub fn timings(&self) -> &MemoryTimings {
        &self.timings
    }

    /// The ground-truth power model.
    pub fn power(&self) -> &GroundTruthPower {
        &self.power
    }

    /// DVFS transition parameters.
    pub fn dvfs(&self) -> &DvfsParams {
        &self.dvfs
    }

    /// Thermal-path parameters.
    pub fn thermal(&self) -> &ThermalParams {
        &self.thermal
    }

    /// P-state the machine boots in.
    pub fn initial_pstate(&self) -> PStateId {
        self.initial_pstate
    }

    /// Seed for all machine-level stochastic behaviour.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Relative run-to-run throughput variation (std-dev of a per-phase
    /// multiplicative factor). Models the "natural variation in execution
    /// time" the paper observes between repeated runs.
    pub fn execution_variation(&self) -> f64 {
        self.execution_variation
    }

    /// Returns a copy with a different seed — the idiom for "run the same
    /// experiment three times and take the median".
    pub fn with_seed(&self, seed: u64) -> MachineConfig {
        MachineConfig { seed, ..self.clone() }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::pentium_m_755(0)
    }
}

/// Builder for [`MachineConfig`].
#[derive(Debug, Clone)]
pub struct MachineConfigBuilder {
    pstates: PStateTable,
    timings: MemoryTimings,
    power_constants: PowerConstants,
    dvfs: DvfsParams,
    thermal: ThermalParams,
    initial_pstate: Option<PStateId>,
    seed: u64,
    execution_variation: f64,
}

impl MachineConfigBuilder {
    fn new() -> Self {
        MachineConfigBuilder {
            pstates: PStateTable::pentium_m_755(),
            timings: MemoryTimings::pentium_m_755(),
            power_constants: PowerConstants::calibrated(),
            dvfs: DvfsParams::enhanced_speedstep(),
            thermal: ThermalParams::pentium_m_mobile(),
            initial_pstate: None,
            seed: 0,
            execution_variation: 0.004,
        }
    }

    /// Replaces the p-state table.
    pub fn pstates(&mut self, pstates: PStateTable) -> &mut Self {
        self.pstates = pstates;
        self
    }

    /// Replaces the memory timings.
    pub fn timings(&mut self, timings: MemoryTimings) -> &mut Self {
        self.timings = timings;
        self
    }

    /// Replaces the ground-truth power constants.
    pub fn power_constants(&mut self, constants: PowerConstants) -> &mut Self {
        self.power_constants = constants;
        self
    }

    /// Replaces the DVFS transition parameters.
    pub fn dvfs(&mut self, dvfs: DvfsParams) -> &mut Self {
        self.dvfs = dvfs;
        self
    }

    /// Replaces the thermal-path parameters.
    pub fn thermal(&mut self, thermal: ThermalParams) -> &mut Self {
        self.thermal = thermal;
        self
    }

    /// Sets the boot p-state (defaults to the highest).
    pub fn initial_pstate(&mut self, id: PStateId) -> &mut Self {
        self.initial_pstate = Some(id);
        self
    }

    /// Sets the machine noise seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the run-to-run throughput variation (std-dev, `0 ≤ v < 0.1`).
    pub fn execution_variation(&mut self, variation: f64) -> &mut Self {
        self.execution_variation = variation;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidConfig`] if the initial p-state is
    /// outside the table or the execution variation is out of range.
    pub fn build(&self) -> Result<MachineConfig> {
        let initial = self.initial_pstate.unwrap_or_else(|| self.pstates.highest());
        if !self.pstates.contains(initial) {
            return Err(PlatformError::InvalidConfig {
                parameter: "initial_pstate",
                reason: format!("{initial} not in a table of {} states", self.pstates.len()),
            });
        }
        if !(0.0..0.1).contains(&self.execution_variation) {
            return Err(PlatformError::InvalidConfig {
                parameter: "execution_variation",
                reason: format!("must lie in [0, 0.1), got {}", self.execution_variation),
            });
        }
        Ok(MachineConfig {
            pstates: self.pstates.clone(),
            timings: self.timings,
            power: GroundTruthPower::new(self.power_constants),
            dvfs: self.dvfs,
            thermal: self.thermal,
            initial_pstate: initial,
            seed: self.seed,
            execution_variation: self.execution_variation,
        })
    }
}

impl Default for MachineConfigBuilder {
    fn default() -> Self {
        MachineConfigBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_boots_at_highest_pstate() {
        let config = MachineConfig::default();
        assert_eq!(config.initial_pstate(), config.pstates().highest());
    }

    #[test]
    fn invalid_initial_pstate_rejected() {
        let err = MachineConfig::builder()
            .initial_pstate(PStateId::new(99))
            .build()
            .unwrap_err();
        assert!(matches!(err, PlatformError::InvalidConfig { parameter: "initial_pstate", .. }));
    }

    #[test]
    fn invalid_variation_rejected() {
        assert!(MachineConfig::builder().execution_variation(0.5).build().is_err());
        assert!(MachineConfig::builder().execution_variation(-0.1).build().is_err());
        assert!(MachineConfig::builder().execution_variation(0.0).build().is_ok());
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let a = MachineConfig::pentium_m_755(1);
        let b = a.with_seed(2);
        assert_eq!(b.seed(), 2);
        assert_eq!(a.pstates(), b.pstates());
        assert_eq!(a.execution_variation(), b.execution_variation());
    }
}
