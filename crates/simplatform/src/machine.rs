//! The machine executor: runs a [`PhaseProgram`] under DVFS control.
//!
//! [`Machine`] is the system under test. It advances in continuous time
//! (ticks of any length, typically the 10 ms sampling interval), executing
//! the program's phases at the current p-state, accumulating hardware event
//! counts and true energy. Governors interact with it only through
//! [`Machine::set_pstate`] and the telemetry layer — just as the paper's
//! user-level controller saw the real machine only through the PMC driver
//! and the DAQ.

use crate::config::MachineConfig;
use crate::counters::{CounterBlock, CounterSnapshot};
use crate::dvfs::transition_cost;
use crate::error::Result;
use crate::events::HardwareEvent;
use crate::noise::NoiseSource;
use crate::pipeline::{evaluate, PhaseRates};
use crate::power::GroundTruthPower;
use crate::program::PhaseProgram;
use crate::pstate::{PState, PStateId};
use crate::thermal::{Celsius, ThermalModel};
use crate::throttle::ThrottleLevel;
use crate::units::{Joules, Seconds, Watts};

/// What happened during one [`Machine::tick`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickOutcome {
    /// Simulated time advanced (always the requested `dt`).
    pub advanced: Seconds,
    /// Instructions retired during the tick.
    pub instructions: f64,
    /// Average true power over the tick.
    pub average_power: Watts,
    /// Whether the program finished during or before this tick.
    pub finished: bool,
}

/// The simulated system under test.
///
/// # Examples
///
/// ```
/// use aapm_platform::config::MachineConfig;
/// use aapm_platform::machine::Machine;
/// use aapm_platform::phase::PhaseDescriptor;
/// use aapm_platform::program::PhaseProgram;
/// use aapm_platform::units::Seconds;
///
/// let phase = PhaseDescriptor::builder("work").instructions(10_000_000).build()?;
/// let mut machine = Machine::new(MachineConfig::default(), PhaseProgram::from_phase(phase));
/// while !machine.finished() {
///     machine.tick(Seconds::from_millis(10.0));
/// }
/// assert!(machine.completion_time().is_some());
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    power_model: GroundTruthPower,
    program: PhaseProgram,
    current: PStateId,
    phase_index: usize,
    phase_done_instructions: f64,
    phase_jitter: f64,
    counters: CounterBlock,
    elapsed: Seconds,
    true_energy: Joules,
    transition_remaining: Seconds,
    transitions_performed: u64,
    completion_time: Option<Seconds>,
    throttle: ThrottleLevel,
    thermal: ThermalModel,
    noise: NoiseSource,
}

impl Machine {
    /// Creates a machine ready to execute `program` from its first phase.
    pub fn new(config: MachineConfig, program: PhaseProgram) -> Self {
        let mut noise = NoiseSource::seeded(config.seed());
        let phase_jitter = Self::sample_jitter(&mut noise, config.execution_variation());
        let thermal = ThermalModel::new(*config.thermal());
        Machine {
            power_model: *config.power(),
            current: config.initial_pstate(),
            config,
            program,
            phase_index: 0,
            phase_done_instructions: 0.0,
            phase_jitter,
            counters: CounterBlock::new(),
            elapsed: Seconds::ZERO,
            true_energy: Joules::ZERO,
            transition_remaining: Seconds::ZERO,
            transitions_performed: 0,
            completion_time: None,
            throttle: ThrottleLevel::FULL,
            thermal,
            noise,
        }
    }

    fn sample_jitter(noise: &mut NoiseSource, variation: f64) -> f64 {
        if variation == 0.0 {
            1.0
        } else {
            // Clamp to keep throughput positive even in the far tails.
            noise.gaussian(1.0, variation).clamp(0.5, 1.5)
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The program being executed.
    pub fn program(&self) -> &PhaseProgram {
        &self.program
    }

    /// The current p-state id.
    pub fn pstate(&self) -> PStateId {
        self.current
    }

    /// The current operating point.
    pub fn operating_point(&self) -> &PState {
        self.config.pstates().get(self.current).expect("current p-state always valid")
    }

    /// Simulated time since boot.
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// True energy consumed since boot (what a perfect meter would report).
    pub fn true_energy(&self) -> Joules {
        self.true_energy
    }

    /// Whether the program has retired all of its instructions.
    pub fn finished(&self) -> bool {
        self.phase_index >= self.program.len()
    }

    /// Time at which the program finished, if it has.
    pub fn completion_time(&self) -> Option<Seconds> {
        self.completion_time
    }

    /// Number of p-state transitions performed so far.
    pub fn transitions_performed(&self) -> u64 {
        self.transitions_performed
    }

    /// Snapshot of the hardware counters (the PMC driver reads this).
    pub fn counter_snapshot(&self) -> CounterSnapshot {
        self.counters.snapshot()
    }

    /// Instantaneous true power right now (idle power if finished or
    /// mid-transition; duty-weighted under clock modulation).
    pub fn instantaneous_power(&self) -> Watts {
        let ps = *self.operating_point();
        if self.finished() || self.transition_remaining.is_positive() {
            return self.power_model.idle_power(&ps);
        }
        let phase = &self.program.phases()[self.phase_index];
        let rates = evaluate(phase, &ps, self.config.timings());
        let duty = self.throttle.duty();
        self.power_model.power(&ps, &rates, phase.activity()) * duty
            + self.power_model.gated_power(&ps) * (1.0 - duty)
    }

    /// The current clock-modulation (throttle) level.
    pub fn throttle(&self) -> ThrottleLevel {
        self.throttle
    }

    /// Sets the clock-modulation duty level, effective immediately. Unlike
    /// DVFS, clock modulation reprograms within microseconds, so no stall
    /// is charged.
    pub fn set_throttle(&mut self, level: ThrottleLevel) {
        self.throttle = level;
    }

    /// Requests a p-state change, effective immediately; the core stalls for
    /// the transition cost before executing further instructions. Requesting
    /// the current p-state is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::PlatformError::UnknownPState`] if `target` is
    /// not in the table.
    pub fn set_pstate(&mut self, target: PStateId) -> Result<()> {
        let to = *self.config.pstates().get(target)?;
        if target == self.current {
            return Ok(());
        }
        let from = *self.operating_point();
        let transition = transition_cost(&from, &to, self.config.dvfs());
        self.current = target;
        self.transition_remaining += transition.stall;
        self.transitions_performed += 1;
        Ok(())
    }

    /// Advances simulated time by `dt`, executing the program.
    ///
    /// The tick is subdivided internally at phase boundaries and DVFS
    /// stalls; counters, energy, and elapsed time always advance by exactly
    /// `dt` worth of simulation.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn tick(&mut self, dt: Seconds) -> TickOutcome {
        assert!(dt.is_positive(), "tick duration must be positive");
        let mut remaining = dt;
        let mut energy = Joules::ZERO;
        let mut instructions = 0.0;

        while remaining.is_positive() {
            let ps = *self.operating_point();

            // 1. DVFS stall: clock halted, idle power, no events.
            if self.transition_remaining.is_positive() {
                let adv = remaining.min(self.transition_remaining);
                energy += self.power_model.idle_power(&ps) * adv;
                self.transition_remaining = (self.transition_remaining - adv).clamp_non_negative();
                remaining = (remaining - adv).clamp_non_negative();
                continue;
            }

            // 2. Program complete: idle spin for the rest of the tick.
            if self.finished() {
                energy += self.power_model.idle_power(&ps) * remaining;
                self.counters.add(HardwareEvent::Cycles, ps.frequency().hz() * remaining.seconds());
                remaining = Seconds::ZERO;
                continue;
            }

            // 3. Execute the current phase. Clock modulation gates the
            // core clock for (1 − duty) of the wall-clock time: work and
            // cycle-counted events scale with the duty, the gated fraction
            // draws leakage only.
            let duty = self.throttle.duty();
            let phase = self.program.phases()[self.phase_index].clone();
            let rates = evaluate(&phase, &ps, self.config.timings());
            let ips = rates.instructions_per_second * self.phase_jitter * duty;
            let left_in_phase = phase.instructions() as f64 - self.phase_done_instructions;
            let time_to_phase_end = Seconds::new(left_in_phase / ips);
            let adv = remaining.min(time_to_phase_end);

            let executed = ips * adv.seconds();
            self.accumulate_events(&rates, &ps, adv * duty);
            let active_power = self.power_model.power(&ps, &rates, phase.activity());
            energy += active_power * (adv * duty)
                + self.power_model.gated_power(&ps) * (adv * (1.0 - duty));
            instructions += executed;
            self.phase_done_instructions += executed;
            remaining = (remaining - adv).clamp_non_negative();

            // Phase complete? (Tolerate float residue.)
            if self.phase_done_instructions >= phase.instructions() as f64 - 1e-6
                || adv == time_to_phase_end
            {
                self.phase_index += 1;
                self.phase_done_instructions = 0.0;
                self.phase_jitter =
                    Self::sample_jitter(&mut self.noise, self.config.execution_variation());
                if self.finished() {
                    self.completion_time =
                        Some(self.elapsed + (dt - remaining.clamp_non_negative()));
                }
            }
        }

        self.elapsed += dt;
        self.true_energy += energy;
        let average_power = energy / dt;
        self.thermal.advance(average_power, dt);
        TickOutcome { advanced: dt, instructions, average_power, finished: self.finished() }
    }

    /// Current die temperature from the integrated RC thermal model.
    pub fn temperature(&self) -> Celsius {
        self.thermal.temperature()
    }

    fn accumulate_events(&mut self, rates: &PhaseRates, ps: &PState, dt: Seconds) {
        let cycles = ps.frequency().hz() * dt.seconds();
        let c = &mut self.counters;
        c.add(HardwareEvent::Cycles, cycles);
        c.add(HardwareEvent::InstructionsRetired, rates.ipc * cycles);
        c.add(HardwareEvent::InstructionsDecoded, rates.dpc * cycles);
        c.add(HardwareEvent::DcuMissOutstanding, rates.dcu_outstanding_per_cycle * cycles);
        c.add(HardwareEvent::ResourceStalls, rates.resource_stalls_per_cycle * cycles);
        c.add(HardwareEvent::MemoryRequests, rates.memory_requests_per_cycle * cycles);
        c.add(HardwareEvent::L2Requests, rates.l2_requests_per_cycle * cycles);
        c.add(HardwareEvent::L1DMisses, rates.l1_misses_per_cycle * cycles);
        c.add(HardwareEvent::L2Misses, rates.l2_misses_per_cycle * cycles);
        c.add(HardwareEvent::FpOperations, rates.fp_per_cycle * cycles);
        c.add(HardwareEvent::BranchesRetired, rates.branches_per_cycle * cycles);
        c.add(HardwareEvent::BranchMispredictions, rates.mispredicts_per_cycle * cycles);
        c.add(HardwareEvent::HardwarePrefetches, rates.prefetches_per_cycle * cycles);
        c.add(HardwareEvent::UopsRetired, rates.uops_per_cycle * cycles);
    }

    /// Runs the machine to completion with a fixed tick, returning total
    /// wall-clock time. Convenience for tests and uncontrolled runs.
    pub fn run_to_completion(&mut self, tick: Seconds) -> Seconds {
        while !self.finished() {
            self.tick(tick);
        }
        self.completion_time().expect("finished machines have a completion time")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseDescriptor;

    fn simple_program(instructions: u64) -> PhaseProgram {
        // Mispredict rate zeroed so total CPI equals core CPI exactly.
        let phase = PhaseDescriptor::builder("work")
            .instructions(instructions)
            .core_cpi(1.0)
            .mispredict_rate(0.0)
            .build()
            .unwrap();
        PhaseProgram::from_phase(phase)
    }

    fn quiet_config() -> MachineConfig {
        let mut builder = MachineConfig::builder();
        builder.execution_variation(0.0).seed(1);
        builder.build().unwrap()
    }

    #[test]
    fn program_completes_in_expected_time() {
        // 20M instructions at CPI 1.0, 2 GHz → 10 ms.
        let mut machine = Machine::new(quiet_config(), simple_program(20_000_000));
        let time = machine.run_to_completion(Seconds::from_millis(1.0));
        assert!((time.millis() - 10.0).abs() < 0.1, "took {time}");
    }

    #[test]
    fn counters_match_analytic_rates() {
        let mut machine = Machine::new(quiet_config(), simple_program(200_000_000));
        let before = machine.counter_snapshot();
        machine.tick(Seconds::from_millis(10.0));
        let delta = machine.counter_snapshot() - before;
        // 2 GHz for 10 ms = 20M cycles; CPI 1.0 → 20M instructions.
        assert!((delta.get(HardwareEvent::Cycles) - 20e6).abs() < 1.0);
        assert!((delta.ipc() - 1.0).abs() < 1e-9);
        assert!((delta.dpc() - 1.1).abs() < 1e-9, "default decode ratio 1.1");
    }

    #[test]
    fn lower_pstate_slows_execution() {
        let config = quiet_config();
        let mut fast = Machine::new(config.clone(), simple_program(50_000_000));
        let mut slow = Machine::new(config, simple_program(50_000_000));
        slow.set_pstate(PStateId::new(0)).unwrap();
        let t_fast = fast.run_to_completion(Seconds::from_millis(1.0));
        let t_slow = slow.run_to_completion(Seconds::from_millis(1.0));
        // Core-bound: time ratio ≈ frequency ratio 2000/600.
        let ratio = t_slow / t_fast;
        assert!((ratio - 2000.0 / 600.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn energy_accumulates_and_scales_with_pstate() {
        let config = quiet_config();
        let mut fast = Machine::new(config.clone(), simple_program(50_000_000));
        let mut slow = Machine::new(config, simple_program(50_000_000));
        slow.set_pstate(PStateId::new(0)).unwrap();
        fast.run_to_completion(Seconds::from_millis(1.0));
        slow.run_to_completion(Seconds::from_millis(1.0));
        assert!(fast.true_energy() > Joules::ZERO);
        // Core-bound work at low V/f takes longer but still wins on energy.
        assert!(slow.true_energy() < fast.true_energy());
    }

    #[test]
    fn transition_stall_consumes_time_without_instructions() {
        let mut machine = Machine::new(quiet_config(), simple_program(100_000_000));
        machine.set_pstate(PStateId::new(0)).unwrap();
        machine.set_pstate(PStateId::new(7)).unwrap(); // long upward ramp
        let before = machine.counter_snapshot();
        // The upward ramp is ~354 µs; tick 100 µs: entirely stalled.
        let outcome = machine.tick(Seconds::from_micros(100.0));
        let delta = machine.counter_snapshot() - before;
        assert_eq!(outcome.instructions, 0.0);
        assert_eq!(delta.get(HardwareEvent::InstructionsRetired), 0.0);
        assert!(outcome.average_power > Watts::ZERO, "idle power still drawn");
    }

    #[test]
    fn setting_same_pstate_is_free() {
        let mut machine = Machine::new(quiet_config(), simple_program(1_000_000));
        let current = machine.pstate();
        machine.set_pstate(current).unwrap();
        assert_eq!(machine.transitions_performed(), 0);
    }

    #[test]
    fn unknown_pstate_rejected() {
        let mut machine = Machine::new(quiet_config(), simple_program(1_000_000));
        assert!(machine.set_pstate(PStateId::new(42)).is_err());
    }

    #[test]
    fn finished_machine_idles() {
        let mut machine = Machine::new(quiet_config(), simple_program(1_000));
        machine.run_to_completion(Seconds::from_millis(1.0));
        let energy_before = machine.true_energy();
        let outcome = machine.tick(Seconds::from_millis(10.0));
        assert!(outcome.finished);
        assert_eq!(outcome.instructions, 0.0);
        assert!(machine.true_energy() > energy_before, "idle power accumulates");
    }

    #[test]
    fn multi_phase_program_advances_through_phases() {
        let a = PhaseDescriptor::builder("a")
            .instructions(10_000_000)
            .mispredict_rate(0.0)
            .build()
            .unwrap();
        let b = PhaseDescriptor::builder("b")
            .instructions(10_000_000)
            .core_cpi(2.0)
            .mispredict_rate(0.0)
            .build()
            .unwrap();
        let program = PhaseProgram::new("ab", vec![a, b]).unwrap();
        let mut machine = Machine::new(quiet_config(), program);
        let time = machine.run_to_completion(Seconds::from_millis(1.0));
        // 10M @ CPI 1 + 10M @ CPI 2 at 2 GHz = 5ms + 10ms.
        assert!((time.millis() - 15.0).abs() < 0.2, "took {time}");
    }

    #[test]
    fn completion_time_is_within_final_tick() {
        let mut machine = Machine::new(quiet_config(), simple_program(20_000_000));
        // Run with a coarse tick so completion lands mid-tick.
        while !machine.finished() {
            machine.tick(Seconds::from_millis(3.0));
        }
        let t = machine.completion_time().unwrap();
        assert!(t <= machine.elapsed());
        assert!((t.millis() - 10.0).abs() < 0.1, "completed at {t}");
    }

    #[test]
    fn die_heats_while_running_and_more_at_higher_pstates() {
        let mut hot = Machine::new(quiet_config(), simple_program(2_000_000_000));
        let mut cool = Machine::new(quiet_config(), simple_program(2_000_000_000));
        cool.set_pstate(PStateId::new(0)).unwrap();
        let ambient = hot.temperature();
        for _ in 0..200 {
            hot.tick(Seconds::from_millis(10.0));
            cool.tick(Seconds::from_millis(10.0));
        }
        assert!(hot.temperature() > ambient);
        assert!(hot.temperature() > cool.temperature());
    }

    #[test]
    fn throttling_slows_execution_proportionally() {
        let mut full = Machine::new(quiet_config(), simple_program(50_000_000));
        let mut half = Machine::new(quiet_config(), simple_program(50_000_000));
        half.set_throttle(crate::throttle::ThrottleLevel::new(4).unwrap());
        let t_full = full.run_to_completion(Seconds::from_millis(1.0));
        let t_half = half.run_to_completion(Seconds::from_millis(1.0));
        let ratio = t_half / t_full;
        assert!((ratio - 2.0).abs() < 0.01, "50% duty doubles time, got {ratio}");
    }

    #[test]
    fn throttling_cuts_average_power_but_not_energy() {
        let mut full = Machine::new(quiet_config(), simple_program(50_000_000));
        let mut half = Machine::new(quiet_config(), simple_program(50_000_000));
        half.set_throttle(crate::throttle::ThrottleLevel::new(4).unwrap());
        let t_full = full.run_to_completion(Seconds::from_millis(1.0));
        let t_half = half.run_to_completion(Seconds::from_millis(1.0));
        let p_full = full.true_energy() / t_full;
        let p_half = half.true_energy() / t_half;
        assert!(p_half < p_full, "gating halves the active time per second");
        // No voltage scaling: the same active energy is spent, plus extra
        // leakage over the doubled run time — total energy must not drop.
        assert!(
            half.true_energy() >= full.true_energy(),
            "throttling saves no energy: {} vs {}",
            half.true_energy(),
            full.true_energy()
        );
    }

    #[test]
    fn throttled_counters_scale_with_duty() {
        let mut machine = Machine::new(quiet_config(), simple_program(200_000_000));
        machine.set_throttle(crate::throttle::ThrottleLevel::new(2).unwrap());
        let before = machine.counter_snapshot();
        machine.tick(Seconds::from_millis(10.0));
        let delta = machine.counter_snapshot() - before;
        // At 2 GHz × 10 ms × 2/8 duty, only 5M unhalted cycles elapse…
        assert!((delta.get(HardwareEvent::Cycles) - 5e6).abs() < 1.0);
        // …and per-cycle rates look normal to the counters.
        assert!((delta.ipc() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let config = MachineConfig::pentium_m_755(99);
        let mut m1 = Machine::new(config.clone(), simple_program(30_000_000));
        let mut m2 = Machine::new(config, simple_program(30_000_000));
        let t1 = m1.run_to_completion(Seconds::from_millis(1.0));
        let t2 = m2.run_to_completion(Seconds::from_millis(1.0));
        assert_eq!(t1, t2);
        assert_eq!(m1.true_energy(), m2.true_energy());
    }

    #[test]
    fn different_seeds_vary_execution_time_slightly() {
        let t1 = Machine::new(MachineConfig::pentium_m_755(1), simple_program(200_000_000))
            .run_to_completion(Seconds::from_millis(1.0));
        let t2 = Machine::new(MachineConfig::pentium_m_755(2), simple_program(200_000_000))
            .run_to_completion(Seconds::from_millis(1.0));
        assert_ne!(t1, t2);
        let rel = (t1 / t2 - 1.0).abs();
        assert!(rel < 0.05, "variation should be small, got {rel}");
    }
}
