//! The machine executor: runs a [`PhaseProgram`] under DVFS control.
//!
//! [`Machine`] is the system under test. It advances in continuous time
//! (ticks of any length, typically the 10 ms sampling interval), executing
//! the program's phases at the current p-state, accumulating hardware event
//! counts and true energy. Governors interact with it only through
//! [`Machine::set_pstate`] and the telemetry layer — just as the paper's
//! user-level controller saw the real machine only through the PMC driver
//! and the DAQ.

use crate::config::MachineConfig;
use crate::counters::{CounterBlock, CounterSnapshot};
use crate::dvfs::transition_cost;
use crate::error::{PlatformError, Result};
use crate::events::HardwareEvent;
use crate::noise::NoiseSource;
use crate::phase::PhaseDescriptor;
use crate::pipeline::{evaluate, PhaseRates};
use crate::power::GroundTruthPower;
use crate::program::PhaseProgram;
use crate::requests::{QueueSample, Request, RequestQueue};
use crate::pstate::{PState, PStateId};
use crate::thermal::{Celsius, ThermalModel};
use crate::throttle::ThrottleLevel;
use crate::units::{Joules, Seconds, Watts};

/// Relative instruction-count tolerance for phase completion.
///
/// The boundary rule: a phase is complete as soon as its *remaining*
/// instruction count drops to within `budget × PHASE_END_REL_EPS` of zero.
/// The tolerance is relative because both error sources scale with the
/// budget — the `left / ips × ips` round-trip at an exact boundary loses a
/// few ulps of `left`, and `phase_done_instructions` accumulates one ulp of
/// the budget per sub-step. A relative rule keeps the admitted time error
/// below `1e-9 × phase_time` at any `ips`, where the old absolute `1e-6`
/// residue (machine.rs pre-refactor) was simultaneously too loose for tiny
/// phases and too strict for multi-billion-instruction ones, and the exact
/// float compare it was paired with could fire on one path but not the
/// other, double-advancing a boundary.
pub(crate) const PHASE_END_REL_EPS: f64 = 1e-9;

/// Derived per-segment state, memoized across ticks.
///
/// Everything here is a pure function of the (phase index, p-state,
/// throttle) key plus machine constants, so reusing it across the sub-steps
/// of a segment is bit-identical to recomputing it — the property tests in
/// this module drive a memoized machine against the uncached reference path
/// to prove it. The throttle participates in the key for clarity even
/// though the cached values do not depend on the duty (duty enters `tick`
/// only as an energy/time weight); throttle changes are rare enough that
/// the extra invalidations cost nothing.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SegmentMemo {
    pub(crate) phase_index: usize,
    pub(crate) pstate: PStateId,
    pub(crate) throttle: ThrottleLevel,
    pub(crate) rates: PhaseRates,
    pub(crate) active_power: Watts,
    pub(crate) gated_power: Watts,
    pub(crate) phase_instructions: f64,
}

/// Time to the current phase boundary at `ips` retired instructions per
/// second. Zero when nothing is left; unbounded when the segment retires
/// nothing (a zero-rate segment never reaches its boundary on its own) —
/// the plain `left / ips` division would produce `0/0 = NaN` there. On
/// every reachable rate the result is bit-identical to the division.
fn time_to_phase_end(left_in_phase: f64, ips: f64) -> Seconds {
    if left_in_phase <= 0.0 {
        Seconds::ZERO
    } else if ips <= 0.0 {
        Seconds::new(f64::INFINITY)
    } else {
        Seconds::new(left_in_phase / ips)
    }
}

/// What happened during one [`Machine::tick`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickOutcome {
    /// Simulated time advanced (the requested `dt` for [`Machine::tick`];
    /// the executed segment length for [`Machine::fast_forward`]).
    pub advanced: Seconds,
    /// Instructions retired during the tick.
    pub instructions: f64,
    /// Average true power over the tick.
    pub average_power: Watts,
    /// Whether the program finished during or before this tick.
    pub finished: bool,
}

/// The simulated system under test.
///
/// # Examples
///
/// ```
/// use aapm_platform::config::MachineConfig;
/// use aapm_platform::machine::Machine;
/// use aapm_platform::phase::PhaseDescriptor;
/// use aapm_platform::program::PhaseProgram;
/// use aapm_platform::units::Seconds;
///
/// let phase = PhaseDescriptor::builder("work").instructions(10_000_000).build()?;
/// let mut machine = Machine::new(MachineConfig::default(), PhaseProgram::from_phase(phase));
/// while !machine.finished() {
///     machine.tick(Seconds::from_millis(10.0));
/// }
/// assert!(machine.completion_time().is_some());
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    // The pub(crate) fields below are the hot state the SoA batch stepper
    // (`crate::batch`) loads into its lanes and writes back on sync; they
    // stay private outside the crate.
    pub(crate) power_model: GroundTruthPower,
    program: PhaseProgram,
    current: PStateId,
    phase_index: usize,
    pub(crate) phase_done_instructions: f64,
    pub(crate) phase_jitter: f64,
    pub(crate) counters: CounterBlock,
    pub(crate) elapsed: Seconds,
    pub(crate) true_energy: Joules,
    pub(crate) transition_remaining: Seconds,
    transitions_performed: u64,
    completion_time: Option<Seconds>,
    throttle: ThrottleLevel,
    pub(crate) thermal: ThermalModel,
    noise: NoiseSource,
    memo: Option<SegmentMemo>,
    /// Serve mode: an open-loop request queue drained work-conservingly by
    /// [`Machine::tick`] instead of the batch phase loop. `None` for batch
    /// machines; the batch stepper keys off this to route serve lanes
    /// through the scalar fallback path.
    serve: Option<RequestQueue>,
}

impl Machine {
    /// Creates a machine ready to execute `program` from its first phase.
    pub fn new(config: MachineConfig, program: PhaseProgram) -> Self {
        let mut noise = NoiseSource::seeded(config.seed());
        let phase_jitter = Self::sample_jitter(&mut noise, config.execution_variation());
        let thermal = ThermalModel::new(*config.thermal());
        Machine {
            power_model: *config.power(),
            current: config.initial_pstate(),
            config,
            program,
            phase_index: 0,
            phase_done_instructions: 0.0,
            phase_jitter,
            counters: CounterBlock::new(),
            elapsed: Seconds::ZERO,
            true_energy: Joules::ZERO,
            transition_remaining: Seconds::ZERO,
            transitions_performed: 0,
            completion_time: None,
            throttle: ThrottleLevel::FULL,
            thermal,
            noise,
            memo: None,
            serve: None,
        }
    }

    /// Creates a serve-mode machine: an open-loop server whose work
    /// arrives as [`Request`]s instead of a fixed instruction budget.
    ///
    /// `service` describes the per-request instruction *mix* (CPI, memory
    /// behaviour, activity); its own instruction budget is ignored — each
    /// request carries its demand. A serve-mode machine never finishes:
    /// [`Machine::finished`] stays false and ticking an empty queue idles
    /// at the current p-state's idle power.
    pub fn server(config: MachineConfig, service: PhaseDescriptor) -> Self {
        let mut machine = Machine::new(config, PhaseProgram::from_phase(service));
        machine.serve = Some(RequestQueue::new());
        machine
    }

    fn sample_jitter(noise: &mut NoiseSource, variation: f64) -> f64 {
        if variation == 0.0 {
            1.0
        } else {
            // Clamp to keep throughput positive even in the far tails.
            noise.gaussian(1.0, variation).clamp(0.5, 1.5)
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The program being executed.
    pub fn program(&self) -> &PhaseProgram {
        &self.program
    }

    /// The current p-state id.
    pub fn pstate(&self) -> PStateId {
        self.current
    }

    /// The current operating point.
    pub fn operating_point(&self) -> &PState {
        self.config.pstates().get(self.current).expect("current p-state always valid")
    }

    /// Simulated time since boot.
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// True energy consumed since boot (what a perfect meter would report).
    pub fn true_energy(&self) -> Joules {
        self.true_energy
    }

    /// Whether the program has retired all of its instructions.
    pub fn finished(&self) -> bool {
        self.phase_index >= self.program.len()
    }

    /// Time at which the program finished, if it has.
    pub fn completion_time(&self) -> Option<Seconds> {
        self.completion_time
    }

    /// Number of p-state transitions performed so far.
    pub fn transitions_performed(&self) -> u64 {
        self.transitions_performed
    }

    /// Snapshot of the hardware counters (the PMC driver reads this).
    pub fn counter_snapshot(&self) -> CounterSnapshot {
        self.counters.snapshot()
    }

    /// Whether this machine serves an open-loop request queue.
    pub fn is_serving(&self) -> bool {
        self.serve.is_some()
    }

    /// The request queue, when in serve mode.
    pub fn queue(&self) -> Option<&RequestQueue> {
        self.serve.as_ref()
    }

    /// Offers a request to the serve queue (arrivals may lie in the
    /// future; the server starts them once simulated time reaches them).
    ///
    /// # Panics
    ///
    /// Panics if the machine is not in serve mode, or (debug) if arrivals
    /// regress.
    pub fn offer_request(&mut self, request: Request) {
        self.serve.as_mut().expect("offer_request on a batch machine").offer(request);
    }

    /// Drains the completions since the previous call into a
    /// [`QueueSample`] stamped at the current simulated time. `None` for
    /// batch machines.
    pub fn take_queue_sample(&mut self) -> Option<QueueSample> {
        let now = self.elapsed;
        self.serve.as_mut().map(|q| q.drain_sample(now))
    }

    /// Instantaneous true power right now (idle power if finished or
    /// mid-transition; duty-weighted under clock modulation).
    pub fn instantaneous_power(&self) -> Watts {
        let ps = *self.operating_point();
        if self.finished() || self.transition_remaining.is_positive() {
            return self.power_model.idle_power(&ps);
        }
        // An open-loop server with nothing in the queue draws idle power.
        if self.serve.as_ref().is_some_and(|q| q.head_at(self.elapsed).is_none()) {
            return self.power_model.idle_power(&ps);
        }
        let duty = self.throttle.duty();
        if let Some(m) = &self.memo {
            if m.phase_index == self.phase_index
                && m.pstate == self.current
                && m.throttle == self.throttle
            {
                return m.active_power * duty + m.gated_power * (1.0 - duty);
            }
        }
        let phase = &self.program.phases()[self.phase_index];
        let rates = evaluate(phase, &ps, self.config.timings());
        self.power_model.power(&ps, &rates, phase.activity()) * duty
            + self.power_model.gated_power(&ps) * (1.0 - duty)
    }

    /// The current clock-modulation (throttle) level.
    pub fn throttle(&self) -> ThrottleLevel {
        self.throttle
    }

    /// Sets the clock-modulation duty level, effective immediately. Unlike
    /// DVFS, clock modulation reprograms within microseconds, so no stall
    /// is charged.
    pub fn set_throttle(&mut self, level: ThrottleLevel) {
        self.throttle = level;
    }

    /// Requests a p-state change, effective immediately; the core stalls for
    /// the transition cost before executing further instructions. Requesting
    /// the current p-state is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::PlatformError::UnknownPState`] if `target` is
    /// not in the table.
    pub fn set_pstate(&mut self, target: PStateId) -> Result<()> {
        let to = *self.config.pstates().get(target)?;
        if target == self.current {
            return Ok(());
        }
        let from = *self.operating_point();
        let transition = transition_cost(&from, &to, self.config.dvfs());
        self.current = target;
        self.transition_remaining += transition.stall;
        self.transitions_performed += 1;
        Ok(())
    }

    /// Advances simulated time by `dt`, executing the program.
    ///
    /// The tick is subdivided internally at phase boundaries and DVFS
    /// stalls; counters, energy, and elapsed time always advance by exactly
    /// `dt` worth of simulation.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn tick(&mut self, dt: Seconds) -> TickOutcome {
        if self.serve.is_some() {
            return self.tick_serve(dt);
        }
        assert!(dt.is_positive(), "tick duration must be positive");
        let mut remaining = dt;
        let mut energy = Joules::ZERO;
        let mut instructions = 0.0;

        while remaining.is_positive() {
            let ps = *self.operating_point();

            // 1. DVFS stall: clock halted, idle power, no events.
            if self.transition_remaining.is_positive() {
                let adv = remaining.min(self.transition_remaining);
                energy += self.power_model.idle_power(&ps) * adv;
                self.transition_remaining = (self.transition_remaining - adv).clamp_non_negative();
                remaining = (remaining - adv).clamp_non_negative();
                continue;
            }

            // 2. Program complete: idle spin for the rest of the tick.
            if self.finished() {
                energy += self.power_model.idle_power(&ps) * remaining;
                self.counters.add(HardwareEvent::Cycles, ps.frequency().hz() * remaining.seconds());
                remaining = Seconds::ZERO;
                continue;
            }

            // 3. Execute the current phase. Clock modulation gates the
            // core clock for (1 − duty) of the wall-clock time: work and
            // cycle-counted events scale with the duty, the gated fraction
            // draws leakage only.
            let duty = self.throttle.duty();
            let seg = self.segment(&ps);
            let ips = seg.rates.instructions_per_second * self.phase_jitter * duty;
            let left_in_phase = seg.phase_instructions - self.phase_done_instructions;
            let ttpe = time_to_phase_end(left_in_phase, ips);
            let adv = remaining.min(ttpe);

            let executed = ips * adv.seconds();
            let cycles = ps.frequency().hz() * (adv * duty).seconds();
            self.counters.add_rates(&seg.rates, cycles);
            energy += seg.active_power * (adv * duty) + seg.gated_power * (adv * (1.0 - duty));
            instructions += executed;
            self.phase_done_instructions += executed;
            remaining = (remaining - adv).clamp_non_negative();

            if self.phase_boundary_reached(&seg) {
                self.complete_phase(self.elapsed + (dt - remaining));
            }
        }

        self.elapsed += dt;
        self.true_energy += energy;
        let average_power = energy / dt;
        self.thermal.advance(average_power, dt);
        TickOutcome { advanced: dt, instructions, average_power, finished: self.finished() }
    }

    /// The serve-mode tick: drains the request queue work-conservingly at
    /// the current p-state's throughput.
    ///
    /// The tick subdivides at DVFS stalls, request completions, and future
    /// arrivals: with an arrived head request the core executes the
    /// service phase's rates until the head's demand is met (recording its
    /// sojourn and resampling the execution jitter per request, the serve
    /// analogue of per-phase jitter); with an empty-at-`now` queue it
    /// idles — idle power, halted-clock cycles only — until the next
    /// arrival or the end of the tick. A zero-rate segment (corrupted
    /// jitter) idles through the tick exactly as the batch path does.
    ///
    /// Segment times are tracked on the absolute clock (`now`), not as a
    /// shrinking per-tick remainder: when the core idles up to an arrival
    /// the clock is *assigned* to the arrival time, never advanced by a
    /// `now`-relative difference. A sub-ulp arrival gap (an arrival one ulp
    /// past the derived clock, common once arrivals come from a different
    /// float-summation order than the tick grid) would otherwise vanish
    /// when subtracted from the tick remainder and the loop would spin
    /// forever without advancing.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    fn tick_serve(&mut self, dt: Seconds) -> TickOutcome {
        assert!(dt.is_positive(), "tick duration must be positive");
        let end = self.elapsed + dt;
        let mut now = self.elapsed;
        let mut energy = Joules::ZERO;
        let mut instructions = 0.0;

        while now < end {
            let ps = *self.operating_point();
            let left = (end - now).clamp_non_negative();

            // 1. DVFS stall: clock halted, idle power, no events.
            if self.transition_remaining.is_positive() {
                let adv = left.min(self.transition_remaining);
                energy += self.power_model.idle_power(&ps) * adv;
                self.transition_remaining = (self.transition_remaining - adv).clamp_non_negative();
                now = if adv >= left { end } else { now + adv };
                continue;
            }

            let queue = self.serve.as_mut().expect("tick_serve on a batch machine");

            // 2. Head already within the completion tolerance (a clamped
            //    minimal demand, or a boundary ulp): retire it now.
            if queue.head_at(now).is_some() && queue.head_complete() {
                queue.complete_head(now);
                self.phase_jitter =
                    Self::sample_jitter(&mut self.noise, self.config.execution_variation());
                continue;
            }

            // 3. Idle: nothing has arrived yet. Spin at idle power until
            //    the next arrival or the end of the tick.
            if queue.head_at(now).is_none() {
                let (adv, landing) = match queue.next_arrival_after(now) {
                    Some(at) if at < end => ((at - now).clamp_non_negative(), at),
                    _ => (left, end),
                };
                energy += self.power_model.idle_power(&ps) * adv;
                self.counters.add(HardwareEvent::Cycles, ps.frequency().hz() * adv.seconds());
                now = landing;
                continue;
            }

            // 4. Serve the head request at the service phase's rates.
            let duty = self.throttle.duty();
            let seg = self.segment(&ps);
            let ips = seg.rates.instructions_per_second * self.phase_jitter * duty;
            let head_left = self.serve.as_ref().expect("serve mode").head_remaining();
            let adv = left.min(time_to_phase_end(head_left, ips));

            let executed = ips * adv.seconds();
            let cycles = ps.frequency().hz() * (adv * duty).seconds();
            self.counters.add_rates(&seg.rates, cycles);
            energy += seg.active_power * (adv * duty) + seg.gated_power * (adv * (1.0 - duty));
            instructions += executed;
            now = if adv >= left { end } else { now + adv };

            let queue = self.serve.as_mut().expect("serve mode");
            queue.advance_head(executed);
            if queue.head_complete() {
                queue.complete_head(now);
                self.phase_jitter =
                    Self::sample_jitter(&mut self.noise, self.config.execution_variation());
            }
        }

        self.elapsed = end;
        self.true_energy += energy;
        let average_power = energy / dt;
        self.thermal.advance(average_power, dt);
        TickOutcome { advanced: dt, instructions, average_power, finished: false }
    }

    /// Advances the machine analytically by exactly one *segment*: the
    /// shortest of `max_dt`, the rest of a DVFS stall, or the time to the
    /// current phase boundary — energy, counters, thermal state, and
    /// completion time all advance in one closed-form step.
    ///
    /// Eligibility rule: `fast_forward` produces the same end state as an
    /// equivalent tick loop up to float summation order, but it never
    /// materializes the intermediate states, so it may only drive runs
    /// where nothing samples inside a segment — [`Machine::run_to_completion`],
    /// characterization sweeps, benches. Governed runs must keep calling
    /// [`Machine::tick`] at the sampling cadence: the DAQ/PMC sample and the
    /// governor decides (and noise streams advance) at every tick, so
    /// skipping ticks would change observable history, not just speed.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoForwardProgress`] when `max_dt` is
    /// unbounded and the current segment retires nothing (zeroed phase
    /// rates): no finite advance reaches the phase boundary, so the old
    /// behaviour — booking `0 × ∞ = NaN` instructions and spinning forever
    /// under [`Machine::run_to_completion`] — is replaced by an error. With
    /// a finite `max_dt` the same segment advances boundedly instead: the
    /// full horizon elapses, gated/leakage energy is booked, and zero
    /// instructions retire — exactly what an equivalent [`Machine::tick`]
    /// would do.
    ///
    /// # Panics
    ///
    /// Panics if `max_dt` is not positive, or if the program has finished
    /// and `max_dt` is non-finite (an unbounded idle segment never ends).
    pub fn fast_forward(&mut self, max_dt: Seconds) -> Result<TickOutcome> {
        assert!(max_dt.is_positive(), "fast_forward horizon must be positive");
        // A serve-mode machine has no closed form (arrivals subdivide any
        // span), so a bounded horizon delegates to the tick loop; an
        // unbounded one can never end — an open-loop server never finishes.
        if self.serve.is_some() {
            assert!(
                max_dt.seconds().is_finite(),
                "cannot fast_forward an open-loop server over an unbounded horizon"
            );
            return Ok(self.tick_serve(max_dt));
        }
        let ps = *self.operating_point();

        // DVFS stall segment: clock halted, idle power, no events.
        if self.transition_remaining.is_positive() {
            let adv = max_dt.min(self.transition_remaining);
            self.transition_remaining = (self.transition_remaining - adv).clamp_non_negative();
            let energy = self.power_model.idle_power(&ps) * adv;
            return Ok(self.book_segment(adv, 0.0, energy));
        }

        // Idle segment: the program is done, spin for the whole horizon.
        if self.finished() {
            assert!(
                max_dt.seconds().is_finite(),
                "cannot fast_forward a finished machine over an unbounded horizon"
            );
            self.counters.add(HardwareEvent::Cycles, ps.frequency().hz() * max_dt.seconds());
            let energy = self.power_model.idle_power(&ps) * max_dt;
            return Ok(self.book_segment(max_dt, 0.0, energy));
        }

        // Phase segment: execute up to the phase boundary in one step.
        let duty = self.throttle.duty();
        let seg = self.segment(&ps);
        let ips = seg.rates.instructions_per_second * self.phase_jitter * duty;
        let left_in_phase = seg.phase_instructions - self.phase_done_instructions;
        let ttpe = time_to_phase_end(left_in_phase, ips);
        let adv = max_dt.min(ttpe);
        if !adv.seconds().is_finite() {
            return Err(PlatformError::NoForwardProgress {
                phase: self.program.phases()[self.phase_index].name().to_owned(),
                pending: left_in_phase,
            });
        }

        let executed = ips * adv.seconds();
        let cycles = ps.frequency().hz() * (adv * duty).seconds();
        self.counters.add_rates(&seg.rates, cycles);
        let energy = seg.active_power * (adv * duty) + seg.gated_power * (adv * (1.0 - duty));
        self.phase_done_instructions += executed;

        if self.phase_boundary_reached(&seg) {
            self.complete_phase(self.elapsed + adv);
        }
        Ok(self.book_segment(adv, executed, energy))
    }

    /// Returns the memoized derived state for the current (phase, p-state,
    /// throttle) segment, computing and caching it on a key change.
    pub(crate) fn segment(&mut self, ps: &PState) -> SegmentMemo {
        if let Some(m) = self.memo {
            if m.phase_index == self.phase_index
                && m.pstate == self.current
                && m.throttle == self.throttle
            {
                return m;
            }
        }
        let phase = &self.program.phases()[self.phase_index];
        let rates = evaluate(phase, ps, self.config.timings());
        let m = SegmentMemo {
            phase_index: self.phase_index,
            pstate: self.current,
            throttle: self.throttle,
            rates,
            active_power: self.power_model.power(ps, &rates, phase.activity()),
            gated_power: self.power_model.gated_power(ps),
            phase_instructions: phase.instructions() as f64,
        };
        self.memo = Some(m);
        m
    }

    /// The single phase-completion rule (see [`PHASE_END_REL_EPS`]).
    fn phase_boundary_reached(&self, seg: &SegmentMemo) -> bool {
        seg.phase_instructions - self.phase_done_instructions
            <= seg.phase_instructions * PHASE_END_REL_EPS
    }

    /// Advances to the next phase at simulated time `now`, resampling the
    /// execution jitter and latching the completion time if the program is
    /// done.
    pub(crate) fn complete_phase(&mut self, now: Seconds) {
        self.phase_index += 1;
        self.phase_done_instructions = 0.0;
        self.phase_jitter = Self::sample_jitter(&mut self.noise, self.config.execution_variation());
        if self.finished() {
            self.completion_time = Some(now);
        }
    }

    /// Commits a fast-forwarded segment to elapsed time, energy, and the
    /// thermal model. A zero-length segment (e.g. a zero-instruction phase)
    /// books nothing.
    fn book_segment(&mut self, adv: Seconds, instructions: f64, energy: Joules) -> TickOutcome {
        self.elapsed += adv;
        self.true_energy += energy;
        let average_power = if adv.is_positive() { energy / adv } else { Watts::ZERO };
        if adv.is_positive() {
            self.thermal.advance(average_power, adv);
        }
        TickOutcome { advanced: adv, instructions, average_power, finished: self.finished() }
    }

    /// Current die temperature from the integrated RC thermal model.
    pub fn temperature(&self) -> Celsius {
        self.thermal.temperature()
    }

    /// Runs the machine to completion segment-by-segment (see
    /// [`Machine::fast_forward`]), returning total wall-clock time. For
    /// unobserved runs only — tests, characterization, benches; governed
    /// runs must tick at their sampling cadence instead.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoForwardProgress`] when a segment retires
    /// nothing (zeroed phase rates), since the program can then never
    /// finish.
    pub fn run_to_completion(&mut self) -> Result<Seconds> {
        while !self.finished() {
            self.fast_forward(Seconds::new(f64::INFINITY))?;
        }
        Ok(self.completion_time().expect("finished machines have a completion time"))
    }

    /// Reference implementation of [`Machine::tick`] with no memoization:
    /// rates and powers are re-derived from scratch on every sub-step and
    /// counters advance through per-event dispatched adds. The property
    /// tests drive this against the memoized `tick` on identical inputs to
    /// prove the memo changes nothing, bit for bit.
    #[cfg(test)]
    pub(crate) fn tick_uncached(&mut self, dt: Seconds) -> TickOutcome {
        assert!(dt.is_positive(), "tick duration must be positive");
        let mut remaining = dt;
        let mut energy = Joules::ZERO;
        let mut instructions = 0.0;

        while remaining.is_positive() {
            let ps = *self.operating_point();

            if self.transition_remaining.is_positive() {
                let adv = remaining.min(self.transition_remaining);
                energy += self.power_model.idle_power(&ps) * adv;
                self.transition_remaining = (self.transition_remaining - adv).clamp_non_negative();
                remaining = (remaining - adv).clamp_non_negative();
                continue;
            }

            if self.finished() {
                energy += self.power_model.idle_power(&ps) * remaining;
                self.counters.add(HardwareEvent::Cycles, ps.frequency().hz() * remaining.seconds());
                remaining = Seconds::ZERO;
                continue;
            }

            let duty = self.throttle.duty();
            // Derive everything fresh inside a scoped borrow of the phase,
            // ending the borrow before the counter/energy mutations below.
            let (rates, active_power, gated_power, phase_instructions) = {
                let phase = &self.program.phases()[self.phase_index];
                let rates = evaluate(phase, &ps, self.config.timings());
                (
                    rates,
                    self.power_model.power(&ps, &rates, phase.activity()),
                    self.power_model.gated_power(&ps),
                    phase.instructions() as f64,
                )
            };
            let ips = rates.instructions_per_second * self.phase_jitter * duty;
            let left_in_phase = phase_instructions - self.phase_done_instructions;
            let ttpe = time_to_phase_end(left_in_phase, ips);
            let adv = remaining.min(ttpe);

            let executed = ips * adv.seconds();
            let cycles = ps.frequency().hz() * (adv * duty).seconds();
            let c = &mut self.counters;
            c.add(HardwareEvent::Cycles, cycles);
            c.add(HardwareEvent::InstructionsRetired, rates.ipc * cycles);
            c.add(HardwareEvent::InstructionsDecoded, rates.dpc * cycles);
            c.add(HardwareEvent::DcuMissOutstanding, rates.dcu_outstanding_per_cycle * cycles);
            c.add(HardwareEvent::ResourceStalls, rates.resource_stalls_per_cycle * cycles);
            c.add(HardwareEvent::MemoryRequests, rates.memory_requests_per_cycle * cycles);
            c.add(HardwareEvent::L2Requests, rates.l2_requests_per_cycle * cycles);
            c.add(HardwareEvent::L1DMisses, rates.l1_misses_per_cycle * cycles);
            c.add(HardwareEvent::L2Misses, rates.l2_misses_per_cycle * cycles);
            c.add(HardwareEvent::FpOperations, rates.fp_per_cycle * cycles);
            c.add(HardwareEvent::BranchesRetired, rates.branches_per_cycle * cycles);
            c.add(HardwareEvent::BranchMispredictions, rates.mispredicts_per_cycle * cycles);
            c.add(HardwareEvent::HardwarePrefetches, rates.prefetches_per_cycle * cycles);
            c.add(HardwareEvent::UopsRetired, rates.uops_per_cycle * cycles);
            energy += active_power * (adv * duty) + gated_power * (adv * (1.0 - duty));
            instructions += executed;
            self.phase_done_instructions += executed;
            remaining = (remaining - adv).clamp_non_negative();

            if phase_instructions - self.phase_done_instructions
                <= phase_instructions * PHASE_END_REL_EPS
            {
                self.complete_phase(self.elapsed + (dt - remaining));
            }
        }

        self.elapsed += dt;
        self.true_energy += energy;
        let average_power = energy / dt;
        self.thermal.advance(average_power, dt);
        TickOutcome { advanced: dt, instructions, average_power, finished: self.finished() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseDescriptor;

    fn simple_program(instructions: u64) -> PhaseProgram {
        // Mispredict rate zeroed so total CPI equals core CPI exactly.
        let phase = PhaseDescriptor::builder("work")
            .instructions(instructions)
            .core_cpi(1.0)
            .mispredict_rate(0.0)
            .build()
            .unwrap();
        PhaseProgram::from_phase(phase)
    }

    fn quiet_config() -> MachineConfig {
        let mut builder = MachineConfig::builder();
        builder.execution_variation(0.0).seed(1);
        builder.build().unwrap()
    }

    #[test]
    fn program_completes_in_expected_time() {
        // 20M instructions at CPI 1.0, 2 GHz → 10 ms.
        let mut machine = Machine::new(quiet_config(), simple_program(20_000_000));
        let time = machine.run_to_completion().unwrap();
        assert!((time.millis() - 10.0).abs() < 0.1, "took {time}");
    }

    #[test]
    fn counters_match_analytic_rates() {
        let mut machine = Machine::new(quiet_config(), simple_program(200_000_000));
        let before = machine.counter_snapshot();
        machine.tick(Seconds::from_millis(10.0));
        let delta = machine.counter_snapshot() - before;
        // 2 GHz for 10 ms = 20M cycles; CPI 1.0 → 20M instructions.
        assert!((delta.get(HardwareEvent::Cycles) - 20e6).abs() < 1.0);
        assert!((delta.ipc() - 1.0).abs() < 1e-9);
        assert!((delta.dpc() - 1.1).abs() < 1e-9, "default decode ratio 1.1");
    }

    #[test]
    fn lower_pstate_slows_execution() {
        let config = quiet_config();
        let mut fast = Machine::new(config.clone(), simple_program(50_000_000));
        let mut slow = Machine::new(config, simple_program(50_000_000));
        slow.set_pstate(PStateId::new(0)).unwrap();
        let t_fast = fast.run_to_completion().unwrap();
        let t_slow = slow.run_to_completion().unwrap();
        // Core-bound: time ratio ≈ frequency ratio 2000/600.
        let ratio = t_slow / t_fast;
        assert!((ratio - 2000.0 / 600.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn energy_accumulates_and_scales_with_pstate() {
        let config = quiet_config();
        let mut fast = Machine::new(config.clone(), simple_program(50_000_000));
        let mut slow = Machine::new(config, simple_program(50_000_000));
        slow.set_pstate(PStateId::new(0)).unwrap();
        fast.run_to_completion().unwrap();
        slow.run_to_completion().unwrap();
        assert!(fast.true_energy() > Joules::ZERO);
        // Core-bound work at low V/f takes longer but still wins on energy.
        assert!(slow.true_energy() < fast.true_energy());
    }

    #[test]
    fn transition_stall_consumes_time_without_instructions() {
        let mut machine = Machine::new(quiet_config(), simple_program(100_000_000));
        machine.set_pstate(PStateId::new(0)).unwrap();
        machine.set_pstate(PStateId::new(7)).unwrap(); // long upward ramp
        let before = machine.counter_snapshot();
        // The upward ramp is ~354 µs; tick 100 µs: entirely stalled.
        let outcome = machine.tick(Seconds::from_micros(100.0));
        let delta = machine.counter_snapshot() - before;
        assert_eq!(outcome.instructions, 0.0);
        assert_eq!(delta.get(HardwareEvent::InstructionsRetired), 0.0);
        assert!(outcome.average_power > Watts::ZERO, "idle power still drawn");
    }

    #[test]
    fn setting_same_pstate_is_free() {
        let mut machine = Machine::new(quiet_config(), simple_program(1_000_000));
        let current = machine.pstate();
        machine.set_pstate(current).unwrap();
        assert_eq!(machine.transitions_performed(), 0);
    }

    #[test]
    fn unknown_pstate_rejected() {
        let mut machine = Machine::new(quiet_config(), simple_program(1_000_000));
        assert!(machine.set_pstate(PStateId::new(42)).is_err());
    }

    #[test]
    fn finished_machine_idles() {
        let mut machine = Machine::new(quiet_config(), simple_program(1_000));
        machine.run_to_completion().unwrap();
        let energy_before = machine.true_energy();
        let outcome = machine.tick(Seconds::from_millis(10.0));
        assert!(outcome.finished);
        assert_eq!(outcome.instructions, 0.0);
        assert!(machine.true_energy() > energy_before, "idle power accumulates");
    }

    #[test]
    fn multi_phase_program_advances_through_phases() {
        let a = PhaseDescriptor::builder("a")
            .instructions(10_000_000)
            .mispredict_rate(0.0)
            .build()
            .unwrap();
        let b = PhaseDescriptor::builder("b")
            .instructions(10_000_000)
            .core_cpi(2.0)
            .mispredict_rate(0.0)
            .build()
            .unwrap();
        let program = PhaseProgram::new("ab", vec![a, b]).unwrap();
        let mut machine = Machine::new(quiet_config(), program);
        let time = machine.run_to_completion().unwrap();
        // 10M @ CPI 1 + 10M @ CPI 2 at 2 GHz = 5ms + 10ms.
        assert!((time.millis() - 15.0).abs() < 0.2, "took {time}");
    }

    #[test]
    fn completion_time_is_within_final_tick() {
        let mut machine = Machine::new(quiet_config(), simple_program(20_000_000));
        // Run with a coarse tick so completion lands mid-tick.
        while !machine.finished() {
            machine.tick(Seconds::from_millis(3.0));
        }
        let t = machine.completion_time().unwrap();
        assert!(t <= machine.elapsed());
        assert!((t.millis() - 10.0).abs() < 0.1, "completed at {t}");
    }

    #[test]
    fn die_heats_while_running_and_more_at_higher_pstates() {
        let mut hot = Machine::new(quiet_config(), simple_program(2_000_000_000));
        let mut cool = Machine::new(quiet_config(), simple_program(2_000_000_000));
        cool.set_pstate(PStateId::new(0)).unwrap();
        let ambient = hot.temperature();
        for _ in 0..200 {
            hot.tick(Seconds::from_millis(10.0));
            cool.tick(Seconds::from_millis(10.0));
        }
        assert!(hot.temperature() > ambient);
        assert!(hot.temperature() > cool.temperature());
    }

    #[test]
    fn throttling_slows_execution_proportionally() {
        let mut full = Machine::new(quiet_config(), simple_program(50_000_000));
        let mut half = Machine::new(quiet_config(), simple_program(50_000_000));
        half.set_throttle(crate::throttle::ThrottleLevel::new(4).unwrap());
        let t_full = full.run_to_completion().unwrap();
        let t_half = half.run_to_completion().unwrap();
        let ratio = t_half / t_full;
        assert!((ratio - 2.0).abs() < 0.01, "50% duty doubles time, got {ratio}");
    }

    #[test]
    fn throttling_cuts_average_power_but_not_energy() {
        let mut full = Machine::new(quiet_config(), simple_program(50_000_000));
        let mut half = Machine::new(quiet_config(), simple_program(50_000_000));
        half.set_throttle(crate::throttle::ThrottleLevel::new(4).unwrap());
        let t_full = full.run_to_completion().unwrap();
        let t_half = half.run_to_completion().unwrap();
        let p_full = full.true_energy() / t_full;
        let p_half = half.true_energy() / t_half;
        assert!(p_half < p_full, "gating halves the active time per second");
        // No voltage scaling: the same active energy is spent, plus extra
        // leakage over the doubled run time — total energy must not drop.
        assert!(
            half.true_energy() >= full.true_energy(),
            "throttling saves no energy: {} vs {}",
            half.true_energy(),
            full.true_energy()
        );
    }

    #[test]
    fn throttled_counters_scale_with_duty() {
        let mut machine = Machine::new(quiet_config(), simple_program(200_000_000));
        machine.set_throttle(crate::throttle::ThrottleLevel::new(2).unwrap());
        let before = machine.counter_snapshot();
        machine.tick(Seconds::from_millis(10.0));
        let delta = machine.counter_snapshot() - before;
        // At 2 GHz × 10 ms × 2/8 duty, only 5M unhalted cycles elapse…
        assert!((delta.get(HardwareEvent::Cycles) - 5e6).abs() < 1.0);
        // …and per-cycle rates look normal to the counters.
        assert!((delta.ipc() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let config = MachineConfig::pentium_m_755(99);
        let mut m1 = Machine::new(config.clone(), simple_program(30_000_000));
        let mut m2 = Machine::new(config, simple_program(30_000_000));
        let t1 = m1.run_to_completion().unwrap();
        let t2 = m2.run_to_completion().unwrap();
        assert_eq!(t1, t2);
        assert_eq!(m1.true_energy(), m2.true_energy());
    }

    #[test]
    fn different_seeds_vary_execution_time_slightly() {
        let t1 = Machine::new(MachineConfig::pentium_m_755(1), simple_program(200_000_000))
            .run_to_completion().unwrap();
        let t2 = Machine::new(MachineConfig::pentium_m_755(2), simple_program(200_000_000))
            .run_to_completion().unwrap();
        assert_ne!(t1, t2);
        let rel = (t1 / t2 - 1.0).abs();
        assert!(rel < 0.05, "variation should be small, got {rel}");
    }

    fn two_phase_program(instructions: u64) -> PhaseProgram {
        let a = PhaseDescriptor::builder("a")
            .instructions(instructions)
            .core_cpi(1.0)
            .mispredict_rate(0.0)
            .build()
            .unwrap();
        let b = PhaseDescriptor::builder("b")
            .instructions(instructions)
            .core_cpi(1.0)
            .mispredict_rate(0.0)
            .build()
            .unwrap();
        PhaseProgram::new("ab", vec![a, b]).unwrap()
    }

    #[test]
    fn exact_boundary_tick_advances_phase_exactly_once() {
        // 20M instructions at CPI 1.0, 2 GHz is exactly 10 ms, so a 10 ms
        // tick lands on the phase boundary to within an ulp. The old exact
        // float compare plus the absolute residue could fire twice here and
        // skip phase b entirely; the relative rule must advance exactly one
        // phase per boundary regardless of which side the ulp falls on.
        let mut machine = Machine::new(quiet_config(), two_phase_program(20_000_000));
        let first = machine.tick(Seconds::from_millis(10.0));
        assert!(!first.finished, "phase b must still be pending");
        assert!(
            (first.instructions - 20e6).abs() < 1.0,
            "first tick retires phase a: {}",
            first.instructions
        );
        let second = machine.tick(Seconds::from_millis(10.0));
        assert!(second.finished, "phase b completes in the second tick");
        let t = machine.completion_time().unwrap();
        assert!((t.millis() - 20.0).abs() < 1e-6, "completed at {t}");
    }

    #[test]
    fn sliced_boundary_conserves_instructions_at_tiny_ips() {
        // Cross both phase boundaries in sub-microsecond slices at the
        // slowest p-state with a heavy CPI, where the retired-per-tick
        // count is small and residue accumulates; the relative rule must
        // neither double-advance nor strand instructions.
        let a = PhaseDescriptor::builder("a")
            .instructions(50_000)
            .core_cpi(4.0)
            .mispredict_rate(0.0)
            .build()
            .unwrap();
        let b = PhaseDescriptor::builder("b")
            .instructions(50_000)
            .core_cpi(4.0)
            .mispredict_rate(0.0)
            .build()
            .unwrap();
        let program = PhaseProgram::new("ab", vec![a, b]).unwrap();
        let mut machine = Machine::new(quiet_config(), program);
        machine.set_pstate(PStateId::new(0)).unwrap();
        let mut retired = 0.0;
        let mut guard = 0;
        while !machine.finished() && guard < 5_000_000 {
            retired += machine.tick(Seconds::from_micros(0.37)).instructions;
            guard += 1;
        }
        assert!(machine.finished(), "machine must finish");
        let budget = 100_000.0;
        assert!(
            (retired - budget).abs() / budget < 1e-6,
            "retired {retired} of {budget}"
        );
    }

    #[test]
    fn fast_forward_matches_ticked_physics() {
        // Same seed, same program: the segment-level fast path must agree
        // with a fine tick loop on completion time (analytically exact in
        // both) and on energy up to the ticked run's idle tail.
        let config = MachineConfig::pentium_m_755(7);
        let mut fast = Machine::new(config.clone(), two_phase_program(10_000_000));
        let mut ticked = Machine::new(config, two_phase_program(10_000_000));
        let t_fast = fast.run_to_completion().unwrap();
        while !ticked.finished() {
            ticked.tick(Seconds::from_micros(50.0));
        }
        let t_ticked = ticked.completion_time().unwrap();
        assert!(
            (t_fast.seconds() - t_ticked.seconds()).abs() < 1e-9,
            "completion {t_fast} vs {t_ticked}"
        );
        let e_fast = fast.true_energy().joules();
        let e_ticked = ticked.true_energy().joules();
        // The ticked run idles out the tail of its final 50 µs tick.
        assert!((e_fast - e_ticked).abs() < 13.0 * 50e-6, "energy {e_fast} vs {e_ticked}");
        let i_fast = fast.counter_snapshot().get(HardwareEvent::InstructionsRetired);
        let i_ticked = ticked.counter_snapshot().get(HardwareEvent::InstructionsRetired);
        assert!((i_fast - i_ticked).abs() / i_ticked < 1e-9);
    }

    #[test]
    fn fast_forward_respects_horizon_and_stalls() {
        let mut machine = Machine::new(quiet_config(), simple_program(2_000_000_000));
        let horizon = Seconds::from_millis(1.0);
        let outcome = machine.fast_forward(horizon).unwrap();
        assert_eq!(outcome.advanced, horizon, "segment clipped to the horizon");
        assert!(outcome.instructions > 0.0);
        // A DVFS transition stalls the core: the next segment is the stall
        // itself, retiring nothing.
        machine.set_pstate(PStateId::new(0)).unwrap();
        let stalled = machine.fast_forward(Seconds::new(f64::INFINITY)).unwrap();
        assert_eq!(stalled.instructions, 0.0);
        assert!(stalled.advanced < horizon, "stall is microseconds, not the horizon");
        assert_eq!(machine.elapsed(), horizon + stalled.advanced);
    }

    /// Forces the current segment's effective retire rate to zero. Every
    /// validated phase keeps `ips` strictly positive (finite CPI > 0,
    /// positive frequency, duty ≥ 1/8, jitter clamped to [0.5, 1.5]), so
    /// the degenerate segment is reachable only by corrupting the jitter —
    /// which is exactly what this in-module helper does.
    fn zero_rate(machine: &mut Machine) {
        machine.phase_jitter = 0.0;
    }

    #[test]
    fn zero_rate_segment_fast_forwards_boundedly_on_a_finite_horizon() {
        let mut machine = Machine::new(quiet_config(), simple_program(50_000_000));
        zero_rate(&mut machine);
        let horizon = Seconds::from_millis(10.0);
        let outcome = machine.fast_forward(horizon).unwrap();
        // The whole horizon elapses, zero instructions retire, and the
        // booked quantities stay finite — the old `left / 0` division made
        // `advanced` infinite here.
        assert_eq!(outcome.advanced, horizon);
        assert_eq!(outcome.instructions, 0.0);
        assert!(outcome.average_power.watts().is_finite());
        assert!(machine.true_energy().joules().is_finite());
        assert_eq!(machine.elapsed(), horizon);
        assert!(!machine.finished());
    }

    #[test]
    fn zero_rate_segment_errors_on_an_unbounded_horizon() {
        let mut machine = Machine::new(quiet_config(), simple_program(50_000_000));
        zero_rate(&mut machine);
        let error = machine.fast_forward(Seconds::new(f64::INFINITY)).unwrap_err();
        assert!(
            matches!(
                &error,
                PlatformError::NoForwardProgress { phase, pending }
                    if phase == "work" && *pending == 50_000_000.0
            ),
            "unexpected error: {error}"
        );
        // Nothing was booked: the machine is untouched and usable.
        assert_eq!(machine.elapsed(), Seconds::ZERO);
        assert_eq!(machine.true_energy(), Joules::ZERO);
    }

    #[test]
    fn zero_rate_segment_fails_run_to_completion_instead_of_spinning() {
        // Pre-fix this looped forever: each infinite-horizon fast_forward
        // booked 0 × ∞ = NaN instructions without ever finishing the phase.
        let mut machine = Machine::new(quiet_config(), simple_program(50_000_000));
        zero_rate(&mut machine);
        assert!(matches!(
            machine.run_to_completion(),
            Err(PlatformError::NoForwardProgress { .. })
        ));
    }

    #[test]
    fn zero_rate_segment_ticks_idly_without_nan() {
        // `tick` shares the guarded time-to-phase-end rule: a zero-rate
        // segment idles through the tick (gated energy, no work) instead of
        // poisoning the accumulators with NaN.
        let mut machine = Machine::new(quiet_config(), simple_program(50_000_000));
        zero_rate(&mut machine);
        let outcome = machine.tick(Seconds::from_millis(10.0));
        assert_eq!(outcome.instructions, 0.0);
        assert!(outcome.average_power.watts().is_finite());
        assert!(machine.temperature().degrees().is_finite());
        assert_eq!(machine.elapsed(), Seconds::from_millis(10.0));
    }

    mod serve_mode {
        use super::*;
        use crate::requests::Request;

        fn service_phase() -> PhaseDescriptor {
            // CPI 1.0 at 2 GHz → 2e9 instructions/s at the top p-state.
            PhaseDescriptor::builder("svc")
                .instructions(1) // ignored: demand comes from each request
                .core_cpi(1.0)
                .mispredict_rate(0.0)
                .build()
                .unwrap()
        }

        fn server() -> Machine {
            Machine::server(quiet_config(), service_phase())
        }

        #[test]
        fn serve_machine_never_finishes_and_samples_queues() {
            let mut m = server();
            assert!(m.is_serving());
            assert!(!m.finished());
            m.tick(Seconds::from_millis(10.0));
            assert!(!m.finished(), "an open-loop server never finishes");
            let sample = m.take_queue_sample().unwrap();
            assert_eq!(sample.depth, 0);
            assert_eq!(sample.arrived, 0);
        }

        #[test]
        fn request_completes_at_analytic_service_time() {
            let mut m = server();
            // 20M instructions at 2e9 ips = 10 ms of service.
            m.offer_request(Request::new(Seconds::ZERO, 20e6));
            let outcome = m.tick(Seconds::from_millis(10.0));
            assert!((outcome.instructions - 20e6).abs() < 1.0);
            let sample = m.take_queue_sample().unwrap();
            assert_eq!(sample.completed, 1);
            assert_eq!(sample.sojourns.len(), 1);
            assert!((sample.sojourns[0] - 0.010).abs() < 1e-9, "{}", sample.sojourns[0]);
        }

        #[test]
        fn sojourn_includes_queueing_delay() {
            let mut m = server();
            // Two requests arriving together: the second waits for the
            // first, so its sojourn is service + queueing.
            m.offer_request(Request::new(Seconds::ZERO, 10e6)); // 5 ms service
            m.offer_request(Request::new(Seconds::ZERO, 10e6));
            m.tick(Seconds::from_millis(10.0));
            let sample = m.take_queue_sample().unwrap();
            assert_eq!(sample.completed, 2);
            assert!((sample.sojourns[0] - 0.005).abs() < 1e-9);
            assert!((sample.sojourns[1] - 0.010).abs() < 1e-9, "waited 5 ms");
        }

        #[test]
        fn future_arrival_idles_then_serves() {
            let mut busy = server();
            let mut lazy = server();
            busy.offer_request(Request::new(Seconds::ZERO, 10e6));
            // Same demand arriving 5 ms in: the server idles first, and
            // the sojourn clock starts at the arrival, not the offer.
            lazy.offer_request(Request::new(Seconds::from_millis(5.0), 10e6));
            busy.tick(Seconds::from_millis(10.0));
            lazy.tick(Seconds::from_millis(10.0));
            let b = busy.take_queue_sample().unwrap();
            let l = lazy.take_queue_sample().unwrap();
            assert_eq!(b.completed, 1);
            assert_eq!(l.completed, 1);
            assert!((b.sojourns[0] - l.sojourns[0]).abs() < 1e-9, "equal sojourns");
            // Both spend 5 ms active + 5 ms idle (busy idles after its
            // early completion), just in opposite order — equal energy.
            assert_eq!(lazy.true_energy(), busy.true_energy());
        }

        #[test]
        fn lower_pstate_serves_slower_and_queues_deepen() {
            let mut fast = server();
            let mut slow = server();
            slow.set_pstate(PStateId::new(0)).unwrap();
            slow.tick(Seconds::from_millis(1.0)); // absorb the DVFS stall
            fast.tick(Seconds::from_millis(1.0));
            for i in 0..10 {
                let at = Seconds::from_millis(1.0 + f64::from(i));
                fast.offer_request(Request::new(at, 10e6));
                slow.offer_request(Request::new(at, 10e6));
            }
            for _ in 0..10 {
                fast.tick(Seconds::from_millis(1.0));
                slow.tick(Seconds::from_millis(1.0));
            }
            let f = fast.take_queue_sample().unwrap();
            let s = slow.take_queue_sample().unwrap();
            assert!(s.completed < f.completed, "600 MHz retires fewer: {s:?} vs {f:?}");
            assert!(s.depth > f.depth, "backlog builds at the low p-state");
            let q = slow.queue().unwrap();
            assert_eq!(q.arrived(), q.completed() + q.pending() as u64, "conservation");
        }

        #[test]
        fn empty_queue_draws_idle_power() {
            let mut m = server();
            assert_eq!(
                m.instantaneous_power(),
                m.power_model.idle_power(m.operating_point()),
                "no arrived work → idle power"
            );
            m.tick(Seconds::from_millis(10.0));
            let idle_energy = m.true_energy();
            let mut busy = server();
            busy.offer_request(Request::new(Seconds::ZERO, 100e6));
            busy.tick(Seconds::from_millis(10.0));
            assert!(idle_energy < busy.true_energy());
        }

        #[test]
        fn fast_forward_finite_horizon_matches_tick() {
            let mut a = server();
            let mut b = server();
            for m in [&mut a, &mut b] {
                m.offer_request(Request::new(Seconds::from_millis(2.0), 5e6));
                m.offer_request(Request::new(Seconds::from_millis(4.0), 5e6));
            }
            let ta = a.tick(Seconds::from_millis(10.0));
            let tb = b.fast_forward(Seconds::from_millis(10.0)).unwrap();
            assert_eq!(ta, tb);
            assert_eq!(a.true_energy(), b.true_energy());
            assert_eq!(a.counter_snapshot(), b.counter_snapshot());
        }

        #[test]
        #[should_panic(expected = "unbounded horizon")]
        fn fast_forward_unbounded_horizon_panics() {
            let mut m = server();
            let _ = m.fast_forward(Seconds::new(f64::INFINITY));
        }

        #[test]
        fn zero_rate_serve_segment_idles_without_nan() {
            let mut m = server();
            m.offer_request(Request::new(Seconds::ZERO, 10e6));
            m.phase_jitter = 0.0;
            let outcome = m.tick(Seconds::from_millis(10.0));
            assert_eq!(outcome.instructions, 0.0);
            assert!(outcome.average_power.watts().is_finite());
            assert_eq!(m.elapsed(), Seconds::from_millis(10.0));
            assert_eq!(m.take_queue_sample().unwrap().completed, 0);
        }

        #[test]
        fn serve_runs_are_reproducible_with_same_seeds() {
            let run = || {
                let mut m = Machine::server(MachineConfig::pentium_m_755(3), service_phase());
                for i in 0..50 {
                    m.offer_request(Request::new(Seconds::from_millis(f64::from(i)), 3e6));
                }
                for _ in 0..60 {
                    m.tick(Seconds::from_millis(1.0));
                }
                (m.true_energy(), m.take_queue_sample().unwrap())
            };
            let (e1, s1) = run();
            let (e2, s2) = run();
            assert_eq!(e1, e2);
            assert_eq!(s1, s2);
        }
    }

    mod memo_bit_identity {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Driving the memoized `tick` and the uncached reference path
            /// through an identical script of random tick sizes, p-state
            /// changes, and throttle levels leaves both machines in
            /// bit-identical externally observable state at every step.
            #[test]
            fn memoized_tick_is_bit_identical_to_uncached_reference(
                seed in 0u64..512,
                script in prop::collection::vec((1u32..20_000, 0u8..10, 1u8..9), 1..48),
            ) {
                let config = MachineConfig::pentium_m_755(seed);
                let program = two_phase_program(40_000_000);
                let mut cached = Machine::new(config.clone(), program.clone());
                let mut reference = Machine::new(config, program);
                for (us, ps, steps) in script {
                    if ps < 8 {
                        cached.set_pstate(PStateId::new(ps as usize)).unwrap();
                        reference.set_pstate(PStateId::new(ps as usize)).unwrap();
                    }
                    let level = ThrottleLevel::new(steps).unwrap();
                    cached.set_throttle(level);
                    reference.set_throttle(level);
                    let dt = Seconds::from_micros(f64::from(us));
                    let a = cached.tick(dt);
                    let b = reference.tick_uncached(dt);
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(cached.counter_snapshot(), reference.counter_snapshot());
                    prop_assert_eq!(cached.true_energy(), reference.true_energy());
                    prop_assert_eq!(cached.elapsed(), reference.elapsed());
                    prop_assert_eq!(cached.completion_time(), reference.completion_time());
                    prop_assert_eq!(cached.instantaneous_power(), reference.instantaneous_power());
                    prop_assert_eq!(cached.temperature(), reference.temperature());
                }
            }
        }
    }
}
