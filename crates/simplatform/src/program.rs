//! Workload programs: ordered sequences of phases.
//!
//! A [`PhaseProgram`] is what the [`crate::machine::Machine`] executes. The
//! workload crate builds programs for the MS-Loops microbenchmarks and the
//! synthetic SPEC CPU2000 suite; property tests build random ones.

use std::fmt;

use crate::error::{PlatformError, Result};
use crate::phase::PhaseDescriptor;

/// An ordered sequence of phases executed start to finish.
///
/// # Examples
///
/// ```
/// use aapm_platform::phase::PhaseDescriptor;
/// use aapm_platform::program::PhaseProgram;
///
/// let warm = PhaseDescriptor::builder("warm").instructions(1_000).build()?;
/// let hot = PhaseDescriptor::builder("hot").instructions(9_000).build()?;
/// let program = PhaseProgram::new("demo", vec![warm, hot])?;
/// assert_eq!(program.total_instructions(), 10_000);
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseProgram {
    name: String,
    phases: Vec<PhaseDescriptor>,
}

impl PhaseProgram {
    /// Creates a program from a non-empty list of phases.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidPhase`] if `phases` is empty.
    pub fn new(name: impl Into<String>, phases: Vec<PhaseDescriptor>) -> Result<Self> {
        let name = name.into();
        if phases.is_empty() {
            return Err(PlatformError::InvalidPhase {
                phase: name,
                reason: "program must contain at least one phase".into(),
            });
        }
        Ok(PhaseProgram { name, phases })
    }

    /// Creates a single-phase program named after the phase.
    pub fn from_phase(phase: PhaseDescriptor) -> Self {
        let name = phase.name().to_owned();
        PhaseProgram { name, phases: vec![phase] }
    }

    /// Program name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Always `false`: programs cannot be empty.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The phases in execution order.
    pub fn phases(&self) -> &[PhaseDescriptor] {
        &self.phases
    }

    /// Phase at `index`, if within bounds.
    pub fn phase(&self, index: usize) -> Option<&PhaseDescriptor> {
        self.phases.get(index)
    }

    /// Total retired-instruction budget over all phases.
    pub fn total_instructions(&self) -> u64 {
        self.phases.iter().map(PhaseDescriptor::instructions).sum()
    }

    /// Returns a copy with every phase's instruction budget multiplied by
    /// `factor` (rounded to the nearest instruction, at least 1).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn scaled(&self, factor: f64) -> PhaseProgram {
        assert!(factor.is_finite() && factor > 0.0, "scale factor must be positive");
        let phases = self
            .phases
            .iter()
            .map(|p| {
                let scaled = (p.instructions() as f64 * factor).round().max(1.0) as u64;
                p.with_instructions(scaled)
            })
            .collect();
        PhaseProgram { name: self.name.clone(), phases }
    }

    /// Returns a copy that repeats this program's phase list `times` times,
    /// modelling iterative outer loops (e.g. time steps in `swim`).
    ///
    /// # Panics
    ///
    /// Panics if `times` is zero.
    pub fn repeated(&self, times: usize) -> PhaseProgram {
        assert!(times > 0, "repetition count must be positive");
        let mut phases = Vec::with_capacity(self.phases.len() * times);
        for _ in 0..times {
            phases.extend(self.phases.iter().cloned());
        }
        PhaseProgram { name: self.name.clone(), phases }
    }
}

impl fmt::Display for PhaseProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} phases, {} instructions)",
            self.name,
            self.phases.len(),
            self.total_instructions()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(name: &str, instructions: u64) -> PhaseDescriptor {
        PhaseDescriptor::builder(name).instructions(instructions).build().unwrap()
    }

    #[test]
    fn empty_program_rejected() {
        assert!(PhaseProgram::new("empty", vec![]).is_err());
    }

    #[test]
    fn total_instructions_sums_phases() {
        let program = PhaseProgram::new("p", vec![phase("a", 10), phase("b", 32)]).unwrap();
        assert_eq!(program.total_instructions(), 42);
        assert_eq!(program.len(), 2);
    }

    #[test]
    fn from_phase_inherits_name() {
        let program = PhaseProgram::from_phase(phase("solo", 5));
        assert_eq!(program.name(), "solo");
        assert_eq!(program.len(), 1);
    }

    #[test]
    fn scaling_scales_every_phase() {
        let program = PhaseProgram::new("p", vec![phase("a", 100), phase("b", 50)]).unwrap();
        let scaled = program.scaled(2.0);
        assert_eq!(scaled.total_instructions(), 300);
        assert_eq!(scaled.phase(0).unwrap().instructions(), 200);
    }

    #[test]
    fn scaling_never_drops_a_phase_to_zero() {
        let program = PhaseProgram::from_phase(phase("tiny", 1));
        let scaled = program.scaled(0.001);
        assert_eq!(scaled.total_instructions(), 1);
    }

    #[test]
    fn repetition_multiplies_phases() {
        let program = PhaseProgram::new("p", vec![phase("a", 10), phase("b", 20)]).unwrap();
        let repeated = program.repeated(3);
        assert_eq!(repeated.len(), 6);
        assert_eq!(repeated.total_instructions(), 90);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_repetition_panics() {
        let program = PhaseProgram::from_phase(phase("a", 1));
        let _ = program.repeated(0);
    }

    #[test]
    fn display_mentions_name_and_counts() {
        let program = PhaseProgram::new("demo", vec![phase("a", 7)]).unwrap();
        let text = format!("{program}");
        assert!(text.contains("demo"));
        assert!(text.contains('7'));
    }
}
