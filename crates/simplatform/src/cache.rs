//! Set-associative cache simulator with true-LRU replacement.
//!
//! Used by `aapm-workloads` to *characterize* the MS-Loops microbenchmarks:
//! each loop's address stream is run through a simulated L1/L2 hierarchy to
//! derive per-footprint miss rates, exactly the role the real machine played
//! when the paper's authors measured the loops on hardware.

use crate::error::{PlatformError, Result};

/// Geometry of a single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheGeometry {
    /// The Pentium M 755's 32 KB, 8-way, 64 B-line L1 data cache.
    pub fn pentium_m_l1d() -> Self {
        CacheGeometry { capacity_bytes: 32 * 1024, line_bytes: 64, ways: 8 }
    }

    /// The Pentium M 755 (Dothan)'s 2 MB, 8-way, 64 B-line unified L2.
    pub fn pentium_m_l2() -> Self {
        CacheGeometry { capacity_bytes: 2 * 1024 * 1024, line_bytes: 64, ways: 8 }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (self.line_bytes * self.ways)
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidCacheGeometry`] when any dimension is
    /// zero, not a power of two where required, or inconsistent.
    pub fn validate(&self) -> Result<()> {
        let fail = |reason: String| Err(PlatformError::InvalidCacheGeometry { reason });
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return fail(format!("line size must be a power of two, got {}", self.line_bytes));
        }
        if self.ways == 0 {
            return fail("associativity must be positive".into());
        }
        if self.capacity_bytes == 0 {
            return fail("capacity must be positive".into());
        }
        if !self.capacity_bytes.is_multiple_of(self.line_bytes * self.ways) {
            return fail(format!(
                "capacity {} is not a multiple of line size {} × ways {}",
                self.capacity_bytes, self.line_bytes, self.ways
            ));
        }
        if !self.sets().is_power_of_two() {
            return fail(format!("set count {} must be a power of two", self.sets()));
        }
        Ok(())
    }
}

/// Result of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled (possibly evicting another).
    Miss,
}

impl AccessResult {
    /// Returns `true` for [`AccessResult::Miss`].
    pub fn is_miss(self) -> bool {
        self == AccessResult::Miss
    }
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A single-level set-associative cache with true-LRU replacement.
///
/// Set contents live in two flat arrays rather than per-set `Vec`s: `tags`
/// holds `ways` slots per set, MRU-first within the occupied prefix whose
/// length is `lens[set]`. Characterization pushes hundreds of millions of
/// accesses through this loop, and the flat layout keeps it to one indexed
/// slice scan plus a `copy_within` rotation — no pointer chasing, no
/// allocator traffic.
///
/// # Examples
///
/// ```
/// use aapm_platform::cache::{Cache, CacheGeometry};
///
/// let mut l1 = Cache::new(CacheGeometry::pentium_m_l1d())?;
/// assert!(l1.access(0x1000).is_miss());
/// assert!(!l1.access(0x1000).is_miss()); // same line now resident
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    /// `sets × ways` tag slots; set `s` owns `tags[s*ways .. (s+1)*ways]`,
    /// with the first `lens[s]` slots resident in MRU→LRU order.
    tags: Vec<u64>,
    /// Occupied-slot count per set (`lens[s] <= ways`).
    lens: Vec<u32>,
    stats: CacheStats,
    line_shift: u32,
    set_mask: u64,
}

impl Cache {
    /// Creates a cache with the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidCacheGeometry`] if the geometry fails
    /// [`CacheGeometry::validate`].
    pub fn new(geometry: CacheGeometry) -> Result<Self> {
        geometry.validate()?;
        let sets = geometry.sets();
        Ok(Cache {
            geometry,
            tags: vec![0; sets * geometry.ways],
            lens: vec![0; sets],
            stats: CacheStats::default(),
            line_shift: geometry.line_bytes.trailing_zeros(),
            set_mask: (sets as u64) - 1,
        })
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (contents are kept; use [`Cache::flush`] for both).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Empties the cache and resets statistics.
    pub fn flush(&mut self) {
        self.lens.fill(0);
        self.stats = CacheStats::default();
    }

    /// Accesses the byte address `addr`, returning hit or miss.
    pub fn access(&mut self, addr: u64) -> AccessResult {
        self.access_with_eviction(addr).0
    }

    /// Accesses `addr` and also reports the address of any evicted line
    /// (line-aligned), for inclusive multi-level modelling.
    pub fn access_with_eviction(&mut self, addr: u64) -> (AccessResult, Option<u64>) {
        let line = addr >> self.line_shift;
        let set_index = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let ways = self.geometry.ways;
        let len = self.lens[set_index] as usize;
        let set = &mut self.tags[set_index * ways..(set_index + 1) * ways];

        if let Some(pos) = set[..len].iter().position(|&t| t == tag) {
            // Promote to MRU: slide [0, pos) down one slot.
            set.copy_within(0..pos, 1);
            set[0] = tag;
            self.stats.hits += 1;
            return (AccessResult::Hit, None);
        }

        // Miss: the LRU slot falls off a full set, everything else slides
        // down one, and the new tag lands in the MRU slot.
        let evicted_tag = if len == ways { Some(set[ways - 1]) } else { None };
        set.copy_within(0..len.min(ways - 1), 1);
        set[0] = tag;
        if len < ways {
            self.lens[set_index] = (len + 1) as u32;
        }
        self.stats.misses += 1;
        let evicted_addr = evicted_tag.map(|t| {
            ((t << self.set_mask.count_ones()) | set_index as u64) << self.line_shift
        });
        (AccessResult::Miss, evicted_addr)
    }

    /// Returns `true` if the line containing `addr` is resident, without
    /// disturbing LRU state or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_index = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let ways = self.geometry.ways;
        let len = self.lens[set_index] as usize;
        self.tags[set_index * ways..set_index * ways + len].contains(&tag)
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 4 sets × 2 ways × 64 B lines = 512 B.
        Cache::new(CacheGeometry { capacity_bytes: 512, line_bytes: 64, ways: 2 }).unwrap()
    }

    #[test]
    fn geometry_validation_rejects_bad_shapes() {
        assert!(CacheGeometry { capacity_bytes: 0, line_bytes: 64, ways: 2 }.validate().is_err());
        assert!(CacheGeometry { capacity_bytes: 512, line_bytes: 48, ways: 2 }.validate().is_err());
        assert!(CacheGeometry { capacity_bytes: 512, line_bytes: 64, ways: 0 }.validate().is_err());
        assert!(CacheGeometry { capacity_bytes: 500, line_bytes: 64, ways: 2 }.validate().is_err());
        assert!(CacheGeometry::pentium_m_l1d().validate().is_ok());
        assert!(CacheGeometry::pentium_m_l2().validate().is_ok());
    }

    #[test]
    fn pentium_m_geometries() {
        assert_eq!(CacheGeometry::pentium_m_l1d().sets(), 64);
        assert_eq!(CacheGeometry::pentium_m_l2().sets(), 4096);
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = small_cache();
        assert_eq!(c.access(0x0), AccessResult::Miss);
        assert_eq!(c.access(0x0), AccessResult::Hit);
        assert_eq!(c.access(0x3f), AccessResult::Hit, "same 64B line");
        assert_eq!(c.access(0x40), AccessResult::Miss, "next line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small_cache();
        // Three lines mapping to set 0 in a 2-way cache: set stride is
        // 4 sets × 64 B = 256 B.
        let a = 0x000;
        let b = 0x100;
        let d = 0x200;
        c.access(a);
        c.access(b);
        c.access(a); // a is now MRU, b is LRU
        let (result, evicted) = c.access_with_eviction(d);
        assert!(result.is_miss());
        assert_eq!(evicted, Some(b), "b was least recently used");
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn working_set_within_capacity_converges_to_hits() {
        let mut c = Cache::new(CacheGeometry::pentium_m_l1d()).unwrap();
        let lines = 256; // 16 KB < 32 KB capacity
        for pass in 0..3 {
            for i in 0..lines {
                let result = c.access(i * 64);
                if pass > 0 {
                    assert_eq!(result, AccessResult::Hit, "pass {pass}, line {i}");
                }
            }
        }
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_under_streaming() {
        let mut c = Cache::new(CacheGeometry::pentium_m_l1d()).unwrap();
        let lines = 1024; // 64 KB > 32 KB capacity, sequential sweep
        for _ in 0..3 {
            for i in 0..lines {
                c.access(i * 64);
            }
        }
        // With true LRU and a cyclic sweep of 2× capacity, every access
        // misses after warm-up.
        assert!(c.stats().miss_ratio() > 0.99);
    }

    #[test]
    fn probe_does_not_change_state() {
        let mut c = small_cache();
        c.access(0x0);
        let stats_before = *c.stats();
        assert!(c.probe(0x0));
        assert!(!c.probe(0x40));
        assert_eq!(*c.stats(), stats_before);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = small_cache();
        c.access(0x0);
        c.access(0x40);
        assert_eq!(c.resident_lines(), 2);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.stats().accesses(), 0);
        assert_eq!(c.access(0x0), AccessResult::Miss);
    }

    #[test]
    fn miss_ratio_handles_empty_stats() {
        let stats = CacheStats::default();
        assert_eq!(stats.miss_ratio(), 0.0);
    }

    #[test]
    fn eviction_returns_line_aligned_address() {
        let mut c = small_cache();
        c.access(0x010); // line 0x000
        c.access(0x110); // line 0x100, same set
        let (_, evicted) = c.access_with_eviction(0x210); // evicts line 0x000
        assert_eq!(evicted, Some(0x000));
    }
}
