//! Hardware event-count accumulators.
//!
//! [`CounterBlock`] is the machine-side accumulator: every simulated event
//! increments its (fractional) total. Fractions arise because the analytic
//! machine model advances in continuous time — a tick may execute 12 345.67
//! instructions — and rounding at every tick would bias long-run rates.
//! Snapshots and deltas are what the PMC driver in `aapm-telemetry` reads.

use std::fmt;
use std::ops::{Index, Sub};

use crate::events::HardwareEvent;
use crate::pipeline::PhaseRates;

/// Accumulated event counts for every [`HardwareEvent`].
///
/// # Examples
///
/// ```
/// use aapm_platform::counters::CounterBlock;
/// use aapm_platform::events::HardwareEvent;
///
/// let mut block = CounterBlock::new();
/// block.add(HardwareEvent::Cycles, 1000.0);
/// block.add(HardwareEvent::InstructionsRetired, 750.0);
/// let snap = block.snapshot();
/// block.add(HardwareEvent::Cycles, 500.0);
/// let delta = block.snapshot() - snap;
/// assert_eq!(delta.get(HardwareEvent::Cycles), 500.0);
/// assert_eq!(delta.get(HardwareEvent::InstructionsRetired), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CounterBlock {
    counts: [f64; HardwareEvent::COUNT],
}

impl CounterBlock {
    /// Creates a zeroed counter block.
    pub fn new() -> Self {
        CounterBlock::default()
    }

    /// Adds `amount` occurrences of `event`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `amount` is negative or NaN; event counts
    /// only ever grow.
    pub fn add(&mut self, event: HardwareEvent, amount: f64) {
        debug_assert!(amount >= 0.0 && !amount.is_nan(), "counter increments are non-negative");
        self.counts[event.index()] += amount;
    }

    /// Returns the accumulated count for `event`.
    pub fn get(&self, event: HardwareEvent) -> f64 {
        self.counts[event.index()]
    }

    /// Accumulates one execution segment's events in a single fused update:
    /// every per-cycle rate in `rates` multiplied by the `cycles` that
    /// elapsed. Each slot receives exactly the `rate × cycles` increment the
    /// equivalent 14 [`CounterBlock::add`] calls would have applied, so the
    /// totals are bit-identical to the dispatched path — just without the
    /// per-event enum dispatch on the simulator's hot loop.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `cycles` is negative or NaN.
    pub fn add_rates(&mut self, rates: &PhaseRates, cycles: f64) {
        debug_assert!(cycles >= 0.0 && !cycles.is_nan(), "cycle counts are non-negative");
        let c = &mut self.counts;
        c[HardwareEvent::Cycles.index()] += cycles;
        c[HardwareEvent::InstructionsRetired.index()] += rates.ipc * cycles;
        c[HardwareEvent::InstructionsDecoded.index()] += rates.dpc * cycles;
        c[HardwareEvent::DcuMissOutstanding.index()] += rates.dcu_outstanding_per_cycle * cycles;
        c[HardwareEvent::ResourceStalls.index()] += rates.resource_stalls_per_cycle * cycles;
        c[HardwareEvent::MemoryRequests.index()] += rates.memory_requests_per_cycle * cycles;
        c[HardwareEvent::L2Requests.index()] += rates.l2_requests_per_cycle * cycles;
        c[HardwareEvent::L1DMisses.index()] += rates.l1_misses_per_cycle * cycles;
        c[HardwareEvent::L2Misses.index()] += rates.l2_misses_per_cycle * cycles;
        c[HardwareEvent::FpOperations.index()] += rates.fp_per_cycle * cycles;
        c[HardwareEvent::BranchesRetired.index()] += rates.branches_per_cycle * cycles;
        c[HardwareEvent::BranchMispredictions.index()] += rates.mispredicts_per_cycle * cycles;
        c[HardwareEvent::HardwarePrefetches.index()] += rates.prefetches_per_cycle * cycles;
        c[HardwareEvent::UopsRetired.index()] += rates.uops_per_cycle * cycles;
    }

    /// The raw counter slots in dense [`HardwareEvent::index`] order — the
    /// SoA batch stepper's load/store path (`crate::batch`).
    pub(crate) fn raw(&self) -> &[f64; HardwareEvent::COUNT] {
        &self.counts
    }

    /// Mutable view of the raw counter slots (see [`CounterBlock::raw`]).
    pub(crate) fn raw_mut(&mut self) -> &mut [f64; HardwareEvent::COUNT] {
        &mut self.counts
    }

    /// Takes an immutable copy of the current totals.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot { counts: self.counts }
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        self.counts = [0.0; HardwareEvent::COUNT];
    }
}

impl Index<HardwareEvent> for CounterBlock {
    type Output = f64;
    fn index(&self, event: HardwareEvent) -> &f64 {
        &self.counts[event.index()]
    }
}

/// A point-in-time copy of a [`CounterBlock`].
///
/// Subtracting two snapshots yields a [`CounterDelta`]: the events observed
/// in the interval between them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterSnapshot {
    counts: [f64; HardwareEvent::COUNT],
}

impl CounterSnapshot {
    /// A snapshot with all counters at zero.
    pub fn zero() -> Self {
        CounterSnapshot { counts: [0.0; HardwareEvent::COUNT] }
    }

    /// Builds a snapshot from raw slots in dense [`HardwareEvent::index`]
    /// order (the SoA batch stepper's read path, `crate::batch`).
    pub(crate) fn from_raw(counts: [f64; HardwareEvent::COUNT]) -> Self {
        CounterSnapshot { counts }
    }

    /// Returns the snapshot's total for `event`.
    pub fn get(&self, event: HardwareEvent) -> f64 {
        self.counts[event.index()]
    }
}

impl Default for CounterSnapshot {
    fn default() -> Self {
        CounterSnapshot::zero()
    }
}

impl Sub for CounterSnapshot {
    type Output = CounterDelta;

    /// Events observed between `rhs` (earlier) and `self` (later).
    fn sub(self, rhs: CounterSnapshot) -> CounterDelta {
        let mut counts = [0.0; HardwareEvent::COUNT];
        for (i, slot) in counts.iter_mut().enumerate() {
            *slot = self.counts[i] - rhs.counts[i];
        }
        CounterDelta { counts }
    }
}

/// Event counts observed over an interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterDelta {
    counts: [f64; HardwareEvent::COUNT],
}

impl CounterDelta {
    /// A delta with all counts zero.
    pub fn zero() -> Self {
        CounterDelta { counts: [0.0; HardwareEvent::COUNT] }
    }

    /// Returns the count for `event` over the interval.
    pub fn get(&self, event: HardwareEvent) -> f64 {
        self.counts[event.index()]
    }

    /// Count of `event` per elapsed core cycle over the interval.
    ///
    /// Returns 0 when no cycles elapsed (e.g. a fully-stalled interval),
    /// which is the convention the paper's 10 ms sampling driver uses for
    /// empty samples.
    pub fn per_cycle(&self, event: HardwareEvent) -> f64 {
        let cycles = self.get(HardwareEvent::Cycles);
        if cycles <= 0.0 {
            0.0
        } else {
            self.get(event) / cycles
        }
    }

    /// Retired instructions per cycle over the interval.
    pub fn ipc(&self) -> f64 {
        self.per_cycle(HardwareEvent::InstructionsRetired)
    }

    /// Decoded instructions per cycle over the interval (the paper's DPC).
    pub fn dpc(&self) -> f64 {
        self.per_cycle(HardwareEvent::InstructionsDecoded)
    }

    /// DCU-miss-outstanding cycles per cycle over the interval.
    pub fn dcu(&self) -> f64 {
        self.per_cycle(HardwareEvent::DcuMissOutstanding)
    }
}

impl Default for CounterDelta {
    fn default() -> Self {
        CounterDelta::zero()
    }
}

impl fmt::Display for CounterDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for event in HardwareEvent::ALL {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}={:.0}", event.mnemonic(), self.get(event))?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get_round_trip() {
        let mut block = CounterBlock::new();
        block.add(HardwareEvent::L2Requests, 3.5);
        block.add(HardwareEvent::L2Requests, 1.5);
        assert_eq!(block.get(HardwareEvent::L2Requests), 5.0);
        assert_eq!(block[HardwareEvent::L2Requests], 5.0);
        assert_eq!(block.get(HardwareEvent::L2Misses), 0.0);
    }

    #[test]
    fn snapshot_delta_isolates_interval() {
        let mut block = CounterBlock::new();
        block.add(HardwareEvent::Cycles, 100.0);
        let before = block.snapshot();
        block.add(HardwareEvent::Cycles, 50.0);
        block.add(HardwareEvent::InstructionsRetired, 40.0);
        let delta = block.snapshot() - before;
        assert_eq!(delta.get(HardwareEvent::Cycles), 50.0);
        assert_eq!(delta.get(HardwareEvent::InstructionsRetired), 40.0);
    }

    #[test]
    fn rates_divide_by_cycles() {
        let mut block = CounterBlock::new();
        let before = block.snapshot();
        block.add(HardwareEvent::Cycles, 200.0);
        block.add(HardwareEvent::InstructionsRetired, 100.0);
        block.add(HardwareEvent::InstructionsDecoded, 130.0);
        block.add(HardwareEvent::DcuMissOutstanding, 300.0);
        let delta = block.snapshot() - before;
        assert!((delta.ipc() - 0.5).abs() < 1e-12);
        assert!((delta.dpc() - 0.65).abs() < 1e-12);
        assert!((delta.dcu() - 1.5).abs() < 1e-12, "MLP lets DCU exceed 1/cycle");
    }

    #[test]
    fn zero_cycle_interval_has_zero_rates() {
        let delta = CounterDelta::zero();
        assert_eq!(delta.ipc(), 0.0);
        assert_eq!(delta.dpc(), 0.0);
        assert_eq!(delta.dcu(), 0.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut block = CounterBlock::new();
        block.add(HardwareEvent::FpOperations, 9.0);
        block.reset();
        assert_eq!(block.snapshot(), CounterSnapshot::zero());
    }

    #[test]
    fn add_rates_matches_per_event_adds_bitwise() {
        let rates = PhaseRates {
            cpi: 1.3,
            ipc: 1.0 / 1.3,
            dpc: 0.83,
            dcu_outstanding_per_cycle: 0.41,
            resource_stalls_per_cycle: 0.17,
            memory_requests_per_cycle: 0.013,
            l2_requests_per_cycle: 0.031,
            l1_accesses_per_cycle: 0.29,
            l1_misses_per_cycle: 0.023,
            l2_misses_per_cycle: 0.007,
            fp_per_cycle: 0.11,
            branches_per_cycle: 0.13,
            mispredicts_per_cycle: 0.0013,
            prefetches_per_cycle: 0.019,
            uops_per_cycle: 0.885,
            instructions_per_second: 1.1e9,
        };
        let cycles = 19_876_543.21;
        let mut fused = CounterBlock::new();
        fused.add_rates(&rates, cycles);
        let mut dispatched = CounterBlock::new();
        dispatched.add(HardwareEvent::Cycles, cycles);
        dispatched.add(HardwareEvent::InstructionsRetired, rates.ipc * cycles);
        dispatched.add(HardwareEvent::InstructionsDecoded, rates.dpc * cycles);
        dispatched.add(HardwareEvent::DcuMissOutstanding, rates.dcu_outstanding_per_cycle * cycles);
        dispatched.add(HardwareEvent::ResourceStalls, rates.resource_stalls_per_cycle * cycles);
        dispatched.add(HardwareEvent::MemoryRequests, rates.memory_requests_per_cycle * cycles);
        dispatched.add(HardwareEvent::L2Requests, rates.l2_requests_per_cycle * cycles);
        dispatched.add(HardwareEvent::L1DMisses, rates.l1_misses_per_cycle * cycles);
        dispatched.add(HardwareEvent::L2Misses, rates.l2_misses_per_cycle * cycles);
        dispatched.add(HardwareEvent::FpOperations, rates.fp_per_cycle * cycles);
        dispatched.add(HardwareEvent::BranchesRetired, rates.branches_per_cycle * cycles);
        dispatched.add(HardwareEvent::BranchMispredictions, rates.mispredicts_per_cycle * cycles);
        dispatched.add(HardwareEvent::HardwarePrefetches, rates.prefetches_per_cycle * cycles);
        dispatched.add(HardwareEvent::UopsRetired, rates.uops_per_cycle * cycles);
        assert_eq!(fused.snapshot(), dispatched.snapshot());
    }

    #[test]
    fn delta_display_mentions_every_event() {
        let text = format!("{}", CounterDelta::zero());
        for event in HardwareEvent::ALL {
            assert!(text.contains(event.mnemonic()), "missing {event}");
        }
    }
}
