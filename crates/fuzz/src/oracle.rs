//! The property oracles: run a [`Scenario`] and judge the result.
//!
//! Five properties are checked, each rendering into the stable one-line
//! verdict that corpus fixtures record:
//!
//! - **cap** — fraction of 100 ms (10-sample) trace windows whose mean
//!   *measured* power exceeds the active limit (the paper's adherence
//!   metric). Applicable when the stack carries a power limit. The first
//!   window (startup transient) and windows within 100 ms of a scheduled
//!   limit change are excluded.
//! - **floor** — performance reduction versus a clean unconstrained
//!   baseline of the same program, compared against the lowest floor the
//!   stack or command stream promises, plus the scenario's tolerance.
//! - **liveness** — for watchdog stacks with a scheduled blackout long
//!   enough to trip the loss threshold, the safe p-state must appear in
//!   the trace within `loss_threshold + liveness_slack_intervals`
//!   intervals of the window opening.
//! - **conservation** — trace times strictly increase, measured energy
//!   equals the sum of per-interval sample energy, and energies are
//!   non-negative.
//! - **finite** — every report and trace value is finite.
//!
//! A panic anywhere in the run is caught and recorded as its own outcome;
//! a scenario that fails to build reports the error string instead. A run
//! that is still going after [`REPLAY_STEP_BUDGET`] control intervals is
//! abandoned with a wedged (liveness) verdict — `catch_unwind` can catch a
//! panic but not a hang, so the budget is what keeps a non-terminating
//! scenario from wedging the whole fuzz driver.
//!
//! [`Scenario`]: crate::scenario::Scenario

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use aapm::runtime::{ScheduledCommand, Session, SimulationConfig};
use aapm::spec::{GovernorSpec, SpecModels};
use aapm::watchdog::WatchdogConfig;
use aapm::{Governor, RunReport, Unconstrained};
use aapm_platform::config::MachineConfig;
use aapm_platform::error::Result;
use aapm_telemetry::faults::{FaultKind, FaultStats};

use crate::scenario::{CommandKind, Scenario};

/// The paper's adherence window: 10 samples at the 10 ms control interval.
pub const CAP_WINDOW: usize = 10;

/// Hard ceiling on control intervals per oracle replay: 2,000 simulated
/// seconds at the 10 ms interval, far beyond any committed fixture's
/// `max_samples` (≤ a few thousand), so legitimate scenarios never feel
/// it. A run still going at the budget is wedged — most likely stuck on a
/// state that makes no forward progress — and becomes [`Verdict::Wedged`]
/// instead of hanging `--fuzz` forever.
pub const REPLAY_STEP_BUDGET: usize = 200_000;

/// One property's outcome. `detail` values render with six decimals so the
/// verdict line is byte-stable across runs and job counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Property {
    /// The property does not apply to this scenario.
    Skip,
    /// Held, with an optional measured detail.
    Pass(Option<f64>),
    /// Violated, with an optional measured detail.
    Fail(Option<f64>),
}

impl Property {
    /// Judges a measured value against a pass condition.
    pub fn judged(pass: bool, detail: f64) -> Property {
        if pass { Property::Pass(Some(detail)) } else { Property::Fail(Some(detail)) }
    }

    /// Whether this property failed.
    pub fn is_fail(&self) -> bool {
        matches!(self, Property::Fail(_))
    }

    fn render(&self, out: &mut String) {
        match self {
            Property::Skip => out.push_str("SKIP"),
            Property::Pass(None) => out.push_str("PASS"),
            Property::Pass(Some(detail)) => {
                let _ = write!(out, "PASS({detail:.6})");
            }
            Property::Fail(None) => out.push_str("FAIL"),
            Property::Fail(Some(detail)) => {
                let _ = write!(out, "FAIL({detail:.6})");
            }
        }
    }
}

/// The judged outcome of a completed (non-panicking) run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunVerdict {
    /// Power-cap adherence.
    pub cap: Property,
    /// Performance-floor adherence.
    pub floor: Property,
    /// Watchdog liveness through scheduled blackouts.
    pub liveness: Property,
    /// Simulator conservation invariants.
    pub conservation: Property,
    /// No non-finite value anywhere in the report.
    pub finite: Property,
    /// Trace length in control intervals.
    pub samples: usize,
    /// P-state transitions performed.
    pub transitions: u64,
    /// Measured energy in joules.
    pub energy_j: f64,
    /// Total injected faults (telemetry losses + actuation faults).
    pub faults: u64,
}

/// The full verdict for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The run completed (possibly violating properties).
    Ran(RunVerdict),
    /// The scenario failed to build or the run returned an error.
    Invalid(String),
    /// The run panicked.
    Panicked,
    /// The run exceeded [`REPLAY_STEP_BUDGET`] control intervals without
    /// finishing: the simulation is wedged (a liveness failure of the
    /// scenario itself, caught by the budget rather than an oracle).
    Wedged,
}

impl Verdict {
    /// The stable one-line rendering recorded in corpus fixtures and
    /// byte-compared on replay.
    pub fn render(&self) -> String {
        match self {
            Verdict::Panicked => "panic=FAIL".to_owned(),
            Verdict::Wedged => format!("liveness=FAIL(wedged) budget={REPLAY_STEP_BUDGET}"),
            Verdict::Invalid(reason) => format!("invalid: {reason}"),
            Verdict::Ran(run) => {
                let mut out = String::with_capacity(128);
                for (name, property) in [
                    ("cap", run.cap),
                    ("floor", run.floor),
                    ("liveness", run.liveness),
                    ("conservation", run.conservation),
                    ("finite", run.finite),
                ] {
                    let _ = write!(out, "{name}=");
                    property.render(&mut out);
                    out.push(' ');
                }
                let _ = write!(
                    out,
                    "panic=PASS samples={} transitions={} energy_j={:.6} faults={}",
                    run.samples, run.transitions, run.energy_j, run.faults
                );
                out
            }
        }
    }

    /// Names of every failing property (`"panic"`, `"invalid"`, or the
    /// per-property names).
    pub fn failures(&self) -> Vec<&'static str> {
        match self {
            Verdict::Panicked => vec!["panic"],
            Verdict::Wedged => vec!["liveness"],
            Verdict::Invalid(_) => vec!["invalid"],
            Verdict::Ran(run) => [
                ("cap", run.cap),
                ("floor", run.floor),
                ("liveness", run.liveness),
                ("conservation", run.conservation),
                ("finite", run.finite),
            ]
            .iter()
            .filter(|(_, p)| p.is_fail())
            .map(|(name, _)| *name)
            .collect(),
        }
    }

    /// Failing properties that are *always* bugs: panics, build errors,
    /// broken conservation, non-finite values, and a dead watchdog. Cap
    /// and floor violations are excluded — the paper expects model
    /// deception to produce some (galgel), so the fuzz driver reports
    /// those as findings rather than hard failures.
    pub fn universal_failures(&self) -> Vec<&'static str> {
        self.failures()
            .into_iter()
            .filter(|name| !matches!(*name, "cap" | "floor"))
            .collect()
    }
}

/// A deliberately broken build hook: any power-limited stack becomes a
/// bare [`PerformanceMaximizer`] with a **zero** guardband, giving away
/// the safety margin that absorbs model error. Tests and the acceptance
/// gate use it to prove the cap oracle catches a broken governor; stacks
/// without a limit build normally.
///
/// [`PerformanceMaximizer`]: aapm::pm::PerformanceMaximizer
pub fn build_zero_guardband(
    spec: &GovernorSpec,
    models: &SpecModels,
) -> Result<Box<dyn Governor>> {
    use aapm::limits::PowerLimit;
    use aapm::pm::{PerformanceMaximizer, PmConfig};
    use aapm_platform::units::Watts;

    let Some(limit) = initial_limit(spec) else {
        return spec.build(models);
    };
    let config = PmConfig { guardband: Watts::new(0.0), ..PmConfig::default() };
    Ok(Box::new(PerformanceMaximizer::with_config(
        models.power.clone(),
        PowerLimit::new(limit)?,
        config,
    )))
}

/// How [`evaluate_with`] turns a spec into a governor. The default hook is
/// [`GovernorSpec::build`]; tests substitute sabotaged builds (e.g. a zero
/// guardband) to prove the oracles catch a broken governor.
pub type BuildGovernor<'a> = dyn Fn(&GovernorSpec, &SpecModels) -> Result<Box<dyn Governor>> + 'a;

/// Runs a scenario with the standard spec build and judges it.
pub fn evaluate(scenario: &Scenario) -> Verdict {
    evaluate_with(scenario, &|spec, models| spec.build(models))
}

/// Runs a scenario with a caller-supplied governor build hook.
///
/// The run executes against [`SpecModels::default`] (the paper's published
/// models) so replay needs no training data, under `catch_unwind` so a
/// panicking governor becomes a verdict instead of a crash.
pub fn evaluate_with(scenario: &Scenario, build: &BuildGovernor) -> Verdict {
    let program = match scenario.program.build() {
        Ok(program) => program,
        Err(error) => return Verdict::Invalid(error.to_string()),
    };
    let commands: Vec<ScheduledCommand> = match scenario
        .commands
        .iter()
        .map(crate::scenario::CommandSpec::command)
        .collect()
    {
        Ok(commands) => commands,
        Err(error) => return Verdict::Invalid(format!("{error}")),
    };
    let models = SpecModels::default();
    let governor = match build(&scenario.governor, &models) {
        Ok(governor) => governor,
        Err(error) => return Verdict::Invalid(error.to_string()),
    };
    let windows = scenario.faults.fault_windows();
    let sim = SimulationConfig {
        seed: scenario.seed,
        max_samples: scenario.max_samples,
        faults: scenario.faults.config,
        ..SimulationConfig::default()
    };
    let seed = scenario.seed;
    // Stepping manually (instead of `.run()`) lets the budget abandon a
    // wedged simulation: `catch_unwind` below can turn a panic into a
    // verdict but is powerless against a loop that never exits.
    let outcome = catch_unwind(AssertUnwindSafe(move || -> Result<Option<_>> {
        let mut session = Session::builder(MachineConfig::pentium_m_755(seed), program)
            .config(sim)
            .governor_boxed(governor)
            .commands(&commands)
            .faults(&windows)
            .build()?;
        let mut steps = 0usize;
        while session.step()?.is_running() {
            steps += 1;
            if steps >= REPLAY_STEP_BUDGET {
                return Ok(None);
            }
        }
        Ok(Some(session.finish()))
    }));
    let (report, stats) = match outcome {
        Err(_) => return Verdict::Panicked,
        Ok(Err(error)) => return Verdict::Invalid(error.to_string()),
        Ok(Ok(None)) => return Verdict::Wedged,
        Ok(Ok(Some(run))) => run,
    };
    judge(scenario, &report, &stats)
}

fn judge(scenario: &Scenario, report: &RunReport, stats: &FaultStats) -> Verdict {
    let floor = match floor_property(scenario, report) {
        Ok(floor) => floor,
        Err(error) => return Verdict::Invalid(format!("baseline run failed: {error}")),
    };
    Verdict::Ran(RunVerdict {
        cap: cap_property(scenario, report),
        floor,
        liveness: liveness_property(scenario, report),
        conservation: conservation_property(report),
        finite: finite_property(report),
        samples: report.trace.len(),
        transitions: report.transitions,
        energy_j: report.measured_energy.joules(),
        faults: stats.telemetry_losses() + stats.actuation_faults(),
    })
}

/// The initial power limit the stack promises, if any (wrappers recurse).
pub fn initial_limit(spec: &GovernorSpec) -> Option<f64> {
    match spec {
        GovernorSpec::Pm { limit_w }
        | GovernorSpec::FeedbackPm { limit_w }
        | GovernorSpec::CombinedPm { limit_w }
        | GovernorSpec::PhasePm { limit_w } => Some(*limit_w),
        GovernorSpec::Watchdog { inner }
        | GovernorSpec::ThermalGuard { inner }
        | GovernorSpec::Adaptive { inner, .. } => initial_limit(inner),
        _ => None,
    }
}

/// The performance floor the stack promises, if any (wrappers recurse).
pub fn initial_floor(spec: &GovernorSpec) -> Option<f64> {
    match spec {
        GovernorSpec::Ps { floor } | GovernorSpec::ThrottleSave { floor } => Some(*floor),
        GovernorSpec::Watchdog { inner }
        | GovernorSpec::ThermalGuard { inner }
        | GovernorSpec::Adaptive { inner, .. } => initial_floor(inner),
        _ => None,
    }
}

/// Whether the stack contains a watchdog layer.
pub fn has_watchdog(spec: &GovernorSpec) -> bool {
    match spec {
        GovernorSpec::Watchdog { .. } => true,
        GovernorSpec::ThermalGuard { inner } | GovernorSpec::Adaptive { inner, .. } => {
            has_watchdog(inner)
        }
        _ => false,
    }
}

fn cap_property(scenario: &Scenario, report: &RunReport) -> Property {
    let Some(limit0) = initial_limit(&scenario.governor) else {
        return Property::Skip;
    };
    let mut events: Vec<(f64, f64)> = scenario
        .commands
        .iter()
        .filter(|c| c.set == CommandKind::PowerLimit)
        .map(|c| (c.at, c.value))
        .collect();
    events.sort_by(|a, b| a.0.total_cmp(&b.0));
    let records = report.trace.records();
    let interval = report.trace.interval().seconds();
    // Grace after a limit change: the governor reacts from the next
    // decision, so windows opening inside one full window of the change
    // are not judged.
    let grace = CAP_WINDOW as f64 * interval;
    let mut considered = 0usize;
    let mut violations = 0usize;
    let mut start = CAP_WINDOW; // the first window is startup transient
    while start + CAP_WINDOW <= records.len() {
        let slice = &records[start..start + CAP_WINDOW];
        start += CAP_WINDOW;
        let start_t = slice[0].time.seconds();
        let end_t = slice[CAP_WINDOW - 1].time.seconds();
        let mut limit = limit0;
        let mut settling = false;
        for &(at, value) in &events {
            if at <= start_t {
                limit = value;
                settling = settling || start_t - at < grace;
            } else if at <= end_t {
                settling = true;
            }
        }
        if settling {
            continue;
        }
        considered += 1;
        let mean = slice.iter().map(|r| r.power.watts()).sum::<f64>() / CAP_WINDOW as f64;
        if mean > limit + 1e-9 {
            violations += 1;
        }
    }
    let fraction =
        if considered == 0 { 0.0 } else { violations as f64 / considered as f64 };
    Property::judged(fraction <= scenario.oracles.max_cap_violation + 1e-12, fraction)
}

fn floor_property(scenario: &Scenario, report: &RunReport) -> Result<Property> {
    let Some(spec_floor) = initial_floor(&scenario.governor) else {
        return Ok(Property::Skip);
    };
    let min_floor = scenario
        .commands
        .iter()
        .filter(|c| c.set == CommandKind::PerformanceFloor)
        .map(|c| c.value)
        .fold(spec_floor, f64::min);
    // Clean baseline: same machine and measurement seeds, no governor, no
    // faults, no commands — the denominator of the paper's reduction
    // metric.
    let (baseline, _) = Session::builder(
        MachineConfig::pentium_m_755(scenario.seed),
        scenario.program.build()?,
    )
    .config(SimulationConfig {
        seed: scenario.seed,
        max_samples: scenario.max_samples,
        ..SimulationConfig::default()
    })
    .governor(&mut Unconstrained::new())
    .run()?;
    let reduction = report.performance_reduction_vs(&baseline);
    let allowed = (1.0 - min_floor) + scenario.oracles.floor_tolerance;
    Ok(Property::judged(reduction <= allowed + 1e-12, reduction))
}

fn liveness_property(scenario: &Scenario, report: &RunReport) -> Property {
    if !has_watchdog(&scenario.governor) {
        return Property::Skip;
    }
    let config = WatchdogConfig::default();
    let slack = scenario.oracles.liveness_slack_intervals;
    let deadline_intervals = (config.loss_threshold + slack) as f64;
    let interval = report.trace.interval().seconds();
    let records = report.trace.records();
    let Some(last) = records.last() else {
        return Property::Skip;
    };
    // Stochastic actuation faults can defer the safe-state transition past
    // any fixed deadline, so the check only applies to clean actuation.
    if scenario.faults.config.actuation_ignored_rate != 0.0
        || scenario.faults.config.actuation_stall_rate != 0.0
    {
        return Property::Skip;
    }
    let mut applicable = false;
    let mut worst = 0.0f64;
    for window in &scenario.faults.windows {
        if window.kind != FaultKind::Blackout {
            continue;
        }
        // The outage must be long enough to trip the loss threshold, and
        // the trace must extend past the deadline for the check to mean
        // anything.
        let deadline = window.start + deadline_intervals * interval;
        if window.end < window.start + (config.loss_threshold as f64 + 1.0) * interval
            || last.time.seconds() < deadline
        {
            continue;
        }
        // Blindness must be guaranteed up to the deadline: an overlapping
        // power-stuck window scheduled after the blackout restores a
        // (stale) power sample, so the watchdog legitimately never sees a
        // blind interval; an overlapping actuation-ignored window keeps
        // the safe-state write from landing.
        let occluded = scenario.faults.windows.iter().any(|other| {
            matches!(other.kind, FaultKind::PowerStuck | FaultKind::ActuationIgnored)
                && other.start < deadline
                && other.end > window.start
        });
        if occluded {
            continue;
        }
        applicable = true;
        let engaged = records.iter().find_map(|r| {
            let t = r.time.seconds();
            (t >= window.start && r.pstate == config.safe_pstate)
                .then(|| (t - window.start) / interval)
        });
        match engaged {
            Some(intervals) if intervals <= deadline_intervals + 1e-9 => {
                worst = worst.max(intervals);
            }
            // Engaged too late, or never: detail is the observed latency,
            // or −1 when the safe state never appeared at all.
            Some(intervals) => return Property::judged(false, intervals),
            None => return Property::judged(false, -1.0),
        }
    }
    if applicable { Property::judged(true, worst) } else { Property::Skip }
}

fn conservation_property(report: &RunReport) -> Property {
    let records = report.trace.records();
    let interval = report.trace.interval().seconds();
    for pair in records.windows(2) {
        if pair[1].time <= pair[0].time {
            return Property::Fail(None);
        }
    }
    if let Some(last) = records.last() {
        if last.time.seconds() > report.execution_time.seconds() + interval + 1e-9 {
            return Property::Fail(None);
        }
    }
    if report.measured_energy.joules() < 0.0
        || report.true_energy.joules() < 0.0
        || report.execution_time.seconds() <= 0.0
    {
        return Property::Fail(None);
    }
    // Energy must equal the integral of measured power over the trace.
    let sum: f64 = records.iter().map(|r| r.power.watts() * interval).sum();
    let error =
        (sum - report.measured_energy.joules()).abs() / report.measured_energy.joules().max(1e-12);
    Property::judged(error <= 1e-9, error)
}

fn finite_property(report: &RunReport) -> Property {
    let mut finite = report.execution_time.seconds().is_finite()
        && report.measured_energy.joules().is_finite()
        && report.true_energy.joules().is_finite();
    for record in report.trace.records() {
        finite = finite
            && record.time.seconds().is_finite()
            && record.power.watts().is_finite()
            && record.true_power.watts().is_finite()
            && record.ipc.is_none_or(f64::is_finite)
            && record.dpc.is_none_or(f64::is_finite);
    }
    if finite { Property::Pass(None) } else { Property::Fail(None) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{FaultSpec, OracleParams, ProgramSpec, SegmentSpec, WindowSpec};

    fn segment(name: &str, cpi: f64, activity: f64) -> SegmentSpec {
        SegmentSpec {
            name: name.to_owned(),
            instructions: 900_000_000,
            core_cpi: cpi,
            decode_ratio: 1.1,
            fp_fraction: 0.35,
            mem_fraction: 0.2,
            l1_mpi: 0.012,
            l2_mpi: 0.002,
            overlap: 0.3,
            activity,
            branch_fraction: 0.12,
            mispredict_rate: 0.02,
            prefetch_per_inst: 0.003,
        }
    }

    fn scenario(spec: GovernorSpec) -> Scenario {
        Scenario {
            name: "oracle-test".to_owned(),
            seed: 11,
            max_samples: 3000,
            governor: spec,
            program: ProgramSpec {
                name: "mixed".to_owned(),
                segments: vec![segment("hot", 0.5, 1.3), segment("cool", 1.6, 0.85)],
            },
            faults: FaultSpec::inert(),
            commands: Vec::new(),
            oracles: OracleParams::default(),
        }
    }

    /// A clean PM run passes every applicable property, and the verdict
    /// line is reproducible byte for byte.
    #[test]
    fn clean_pm_run_passes_and_renders_stably() {
        let s = scenario(GovernorSpec::Pm { limit_w: 13.5 });
        let verdict = evaluate(&s);
        assert!(verdict.failures().is_empty(), "clean run must pass: {}", verdict.render());
        let line = verdict.render();
        assert!(line.starts_with("cap=PASS(0.000000) floor=SKIP"), "got: {line}");
        assert_eq!(evaluate(&s).render(), line, "verdicts must be deterministic");
    }

    /// The floor property judges PS against the clean baseline and skips
    /// the cap property.
    #[test]
    fn power_save_run_judges_the_floor() {
        let verdict = evaluate(&scenario(GovernorSpec::Ps { floor: 0.5 }));
        let Verdict::Ran(run) = &verdict else {
            panic!("must run: {}", verdict.render())
        };
        assert_eq!(run.cap, Property::Skip);
        assert!(matches!(run.floor, Property::Pass(Some(_))), "{}", verdict.render());
    }

    /// A blackout long enough to trip the watchdog makes the liveness
    /// property applicable, and the healthy watchdog passes it.
    #[test]
    fn watchdog_blackout_exercises_liveness() {
        let mut s = scenario(GovernorSpec::Watchdog {
            inner: Box::new(GovernorSpec::Pm { limit_w: 30.0 }),
        });
        s.faults.windows.push(WindowSpec { kind: FaultKind::Blackout, start: 0.3, end: 0.9 });
        let verdict = evaluate(&s);
        let Verdict::Ran(run) = &verdict else {
            panic!("must run: {}", verdict.render())
        };
        assert!(matches!(run.liveness, Property::Pass(Some(_))), "{}", verdict.render());
        assert!(run.faults > 0, "the blackout must be counted");
    }

    /// A power-stuck window overlapping the blackout restores a (stale)
    /// power sample, so the watchdog is never blind: the liveness check
    /// must skip rather than blame the governor. Likewise stochastic
    /// actuation faults void the deadline.
    #[test]
    fn occluded_blackouts_skip_the_liveness_check() {
        let mut s = scenario(GovernorSpec::Watchdog {
            inner: Box::new(GovernorSpec::Pm { limit_w: 30.0 }),
        });
        s.faults.windows.push(WindowSpec { kind: FaultKind::Blackout, start: 0.3, end: 0.9 });
        s.faults.windows.push(WindowSpec { kind: FaultKind::PowerStuck, start: 0.25, end: 0.7 });
        let verdict = evaluate(&s);
        let Verdict::Ran(run) = &verdict else {
            panic!("must run: {}", verdict.render())
        };
        assert_eq!(run.liveness, Property::Skip, "{}", verdict.render());

        let mut s = scenario(GovernorSpec::Watchdog {
            inner: Box::new(GovernorSpec::Pm { limit_w: 30.0 }),
        });
        s.faults.windows.push(WindowSpec { kind: FaultKind::Blackout, start: 0.3, end: 0.9 });
        s.faults.config.actuation_stall_rate = 0.05;
        let verdict = evaluate(&s);
        let Verdict::Ran(run) = &verdict else {
            panic!("must run: {}", verdict.render())
        };
        assert_eq!(run.liveness, Property::Skip, "{}", verdict.render());
    }

    /// A sabotaged PM build (zero guardband) is caught by the cap
    /// property: some power limit exists where the stock build holds the
    /// cap and the zero-guardband build violates it. The guardband only
    /// matters when the model estimate lands inside it, so the test scans
    /// limits across the estimate lattice instead of picking one.
    #[test]
    fn zero_guardband_sabotage_is_caught_by_the_cap_property() {
        let mut caught = false;
        for step in 0..32 {
            let limit_w = 12.0 + 0.25 * f64::from(step);
            let mut s = scenario(GovernorSpec::Pm { limit_w });
            s.program.segments = vec![crate::generate::burst_segment(1.0)];
            let stock = evaluate(&s);
            let sabotaged = evaluate_with(&s, &build_zero_guardband);
            if !stock.failures().contains(&"cap") && sabotaged.failures().contains(&"cap") {
                caught = true;
                break;
            }
        }
        assert!(caught, "some limit must separate stock from zero-guardband PM");
    }

    /// A scenario that cannot finish within the step budget is abandoned
    /// with a wedged (liveness) verdict instead of hanging the driver: the
    /// program's instruction budget dwarfs what 2,000 simulated seconds
    /// can retire, and `max_samples` sits past the replay budget so the
    /// sample cap never rescues the run first.
    #[test]
    fn wedged_scenario_fails_fast_with_a_liveness_verdict() {
        let mut s = scenario(GovernorSpec::Unconstrained);
        let mut endless = segment("endless", 0.5, 1.0);
        endless.instructions = u64::MAX / 4;
        s.program.segments = vec![endless];
        s.max_samples = REPLAY_STEP_BUDGET + 10;
        let verdict = evaluate(&s);
        assert_eq!(verdict, Verdict::Wedged);
        assert_eq!(verdict.render(), "liveness=FAIL(wedged) budget=200000");
        assert_eq!(verdict.failures(), vec!["liveness"]);
        assert_eq!(
            verdict.universal_failures(),
            vec!["liveness"],
            "a wedged run is always a bug, never excused like cap/floor findings"
        );
    }

    /// A panicking governor becomes a verdict, not a crash.
    #[test]
    fn panicking_governor_is_caught() {
        struct Bomb;
        impl Governor for Bomb {
            fn name(&self) -> &str {
                "bomb"
            }
            fn events(&self) -> Vec<aapm_platform::events::HardwareEvent> {
                Vec::new()
            }
            fn decide(
                &mut self,
                _context: &aapm::SampleContext<'_>,
            ) -> aapm_platform::pstate::PStateId {
                panic!("boom")
            }
        }
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let verdict = evaluate_with(&scenario(GovernorSpec::Unconstrained), &|_, _| {
            Ok(Box::new(Bomb))
        });
        std::panic::set_hook(hook);
        assert_eq!(verdict, Verdict::Panicked);
        assert_eq!(verdict.render(), "panic=FAIL");
        assert_eq!(verdict.universal_failures(), vec!["panic"]);
    }
}
