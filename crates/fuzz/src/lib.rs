//! Property-based adversarial harness for the AAPM governor stack.
//!
//! The crate has four layers, each usable on its own:
//!
//! - [`scenario`] — the serializable adversarial scenario (governor spec +
//!   phase program + fault plan + command stream + oracle thresholds) and
//!   its JSON fixture codec.
//! - [`generate`] — proptest [`Strategy`]s that draw random scenarios:
//!   segment mixes through the full [`PhaseDescriptor`] validation
//!   envelope, governor stacks from the spec registry (including nested
//!   watchdog/thermal-guard wrappers), stochastic fault rates, scheduled
//!   outage windows, and command streams.
//! - [`oracle`] — runs a scenario through [`Session`] and judges it
//!   against the properties: power-cap adherence over 100 ms windows,
//!   performance-floor adherence, watchdog liveness through blackouts,
//!   simulator conservation invariants, and no panic / no non-finite
//!   metric. The result is a [`Verdict`] with a stable one-line rendering
//!   that corpus fixtures record and the replay runner byte-compares.
//! - [`minimize`] — a deterministic greedy shrinker that reduces a failing
//!   scenario (fewer segments, fewer windows/commands, zeroed rates,
//!   unwrapped layers) while a caller-supplied predicate keeps failing.
//! - [`corpus`] — the committed fixture format (`corpus/*.json`): scenario
//!   plus recorded verdict, replayed deterministically in CI.
//!
//! [`Strategy`]: proptest::strategy::Strategy
//! [`PhaseDescriptor`]: aapm_platform::phase::PhaseDescriptor
//! [`Session`]: aapm::runtime::Session
//! [`Verdict`]: oracle::Verdict

pub mod corpus;
pub mod generate;
pub mod minimize;
pub mod oracle;
pub mod scenario;
