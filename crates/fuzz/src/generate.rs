//! Proptest strategies over adversarial scenarios.
//!
//! Every strategy here draws through the platform's validation envelope:
//! segments satisfy all [`PhaseDescriptor`] builder invariants by
//! construction (dependent parameters are scaled, not rejection-sampled),
//! governor specs come from the same kinds the registry exposes, and
//! fault windows are non-empty by construction. [`draw_scenarios`] is the
//! deterministic entry point the fuzz driver uses: one seed, `count`
//! scenarios, byte-reproducible.
//!
//! [`PhaseDescriptor`]: aapm_platform::phase::PhaseDescriptor

use aapm::spec::GovernorSpec;
use aapm_telemetry::faults::{FaultConfig, FaultKind};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::select;
use proptest::strategy::BoxedStrategy;
use proptest::test_runner::TestRng;

use crate::scenario::{
    CommandKind, CommandSpec, FaultSpec, OracleParams, ProgramSpec, Scenario, SegmentSpec,
    WindowSpec,
};

/// Number of p-states in the simulated machine's table (Pentium M 755).
const PSTATES: usize = 8;

/// One program segment. Dependent knobs (`l1_mpi` ≤ `mem_fraction`,
/// `l2_mpi` ≤ `l1_mpi`) are drawn as fractions of their bound so every
/// draw passes phase validation.
pub fn segment() -> impl Strategy<Value = SegmentSpec> {
    (
        20_000_000u64..160_000_000,
        0.4f64..2.0,   // core_cpi
        1.0f64..1.6,   // decode_ratio
        0.0f64..0.8,   // fp_fraction
        0.05f64..0.6,  // mem_fraction
        0.0f64..0.25,  // l1_mpi as a fraction of mem_fraction
        0.0f64..1.0,   // l2_mpi as a fraction of l1_mpi
        0.0f64..0.95,  // overlap
        0.7f64..1.35,  // activity
        0.0f64..0.3,   // branch_fraction
        0.0f64..0.1,   // mispredict_rate
        0.0f64..0.02,  // prefetch_per_inst
    )
        .prop_map(
            |(
                instructions,
                core_cpi,
                decode_ratio,
                fp_fraction,
                mem_fraction,
                l1_frac,
                l2_frac,
                overlap,
                activity,
                branch_fraction,
                mispredict_rate,
                prefetch_per_inst,
            )| {
                let l1_mpi = l1_frac * mem_fraction;
                SegmentSpec {
                    name: "seg".to_owned(),
                    instructions,
                    core_cpi,
                    decode_ratio,
                    fp_fraction,
                    mem_fraction,
                    l1_mpi,
                    l2_mpi: l2_frac * l1_mpi,
                    overlap,
                    activity,
                    branch_fraction,
                    mispredict_rate,
                    prefetch_per_inst,
                }
            },
        )
}

/// A 1–8 segment program; segments are named by position.
pub fn program() -> impl Strategy<Value = ProgramSpec> {
    vec(segment(), 1..9).prop_map(|segments| ProgramSpec {
        name: "fuzz-program".to_owned(),
        segments: segments
            .into_iter()
            .enumerate()
            .map(|(i, mut segment)| {
                segment.name = format!("seg{i}");
                segment
            })
            .collect(),
    })
}

/// A base (unwrapped) governor spec, drawn across every registry kind.
pub fn base_governor() -> impl Strategy<Value = GovernorSpec> {
    prop_oneof![
        Just(GovernorSpec::Unconstrained),
        (0usize..PSTATES).prop_map(|pstate| GovernorSpec::StaticClock { pstate }),
        (0.5f64..0.95).prop_map(|target_utilization| GovernorSpec::Dbs { target_utilization }),
        (8.0f64..25.0).prop_map(|limit_w| GovernorSpec::Pm { limit_w }),
        (8.0f64..25.0).prop_map(|limit_w| GovernorSpec::FeedbackPm { limit_w }),
        (8.0f64..25.0).prop_map(|limit_w| GovernorSpec::CombinedPm { limit_w }),
        (8.0f64..25.0).prop_map(|limit_w| GovernorSpec::PhasePm { limit_w }),
        (0.4f64..0.95).prop_map(|floor| GovernorSpec::Ps { floor }),
        (0.4f64..0.95).prop_map(|floor| GovernorSpec::ThrottleSave { floor }),
        (20.0f64..200.0).prop_map(|slo_ms| GovernorSpec::SloSave { slo_ms }),
    ]
}

/// A governor stack: a base spec under zero, one, or two wrapper layers
/// (watchdog, thermal guard, adaptive refit, or a wrapper pair). Adaptive
/// parameters are drawn across both counter bases and the forgetting and
/// window ranges the registry accepts.
pub fn governor() -> impl Strategy<Value = GovernorSpec> {
    (base_governor(), 0u64..6, 0.9f64..0.999, 20usize..80, 1usize..3).prop_map(
        |(base, wrap, forgetting, window, counters)| match wrap {
            0 => base,
            1 => GovernorSpec::Watchdog { inner: Box::new(base) },
            2 => GovernorSpec::ThermalGuard { inner: Box::new(base) },
            3 => GovernorSpec::ThermalGuard {
                inner: Box::new(GovernorSpec::Watchdog { inner: Box::new(base) }),
            },
            4 => GovernorSpec::Adaptive { forgetting, window, counters, inner: Box::new(base) },
            _ => GovernorSpec::Watchdog {
                inner: Box::new(GovernorSpec::Adaptive {
                    forgetting,
                    window,
                    counters,
                    inner: Box::new(base),
                }),
            },
        },
    )
}

/// One stochastic fault rate: usually zero (so most scenarios isolate one
/// or two fault modes), otherwise 1–15 %.
fn rate() -> BoxedStrategy<f64> {
    prop_oneof![3 => Just(0.0), 1 => 0.01f64..0.15].boxed()
}

/// A scheduled outage window (non-empty by construction).
pub fn window() -> impl Strategy<Value = WindowSpec> {
    (select(FaultKind::ALL.to_vec()), 0.0f64..2.0, 0.05f64..1.0).prop_map(
        |(kind, start, duration)| WindowSpec { kind, start, end: start + duration },
    )
}

/// A full fault plan: seed, six independent rates, and 0–3 windows.
pub fn fault_spec() -> impl Strategy<Value = FaultSpec> {
    (
        0u64..0x1_0000_0000,
        rate(),
        rate(),
        rate(),
        rate(),
        rate(),
        rate(),
        vec(window(), 0..4),
    )
        .prop_map(
            |(seed, power_dropout, power_stuck, thermal, pmc, ignored, stall, windows)| {
                FaultSpec {
                    config: FaultConfig {
                        seed,
                        power_dropout_rate: power_dropout,
                        power_stuck_rate: power_stuck,
                        thermal_dropout_rate: thermal,
                        pmc_missed_rate: pmc,
                        actuation_ignored_rate: ignored,
                        actuation_stall_rate: stall,
                        ..FaultConfig::default()
                    },
                    windows,
                }
            },
        )
}

/// One scheduled command: a power limit or a performance floor, delivered
/// somewhere in the first three simulated seconds.
pub fn command() -> impl Strategy<Value = CommandSpec> {
    prop_oneof![
        (0.0f64..3.0, 6.0f64..30.0).prop_map(|(at, value)| CommandSpec {
            at,
            set: CommandKind::PowerLimit,
            value,
        }),
        (0.0f64..3.0, 0.3f64..0.95).prop_map(|(at, value)| CommandSpec {
            at,
            set: CommandKind::PerformanceFloor,
            value,
        }),
    ]
}

/// A complete adversarial scenario with default oracle thresholds.
pub fn scenario() -> impl Strategy<Value = Scenario> {
    (0u64..0x1_0000_0000, governor(), program(), fault_spec(), vec(command(), 0..5)).prop_map(
        |(seed, governor, program, faults, commands)| Scenario {
            name: "fuzz".to_owned(),
            seed,
            max_samples: 3000,
            governor,
            program,
            faults,
            commands,
            oracles: OracleParams::default(),
        },
    )
}

/// A memory-light, low-issue segment whose true power sits comfortably
/// below the paper model's estimate — benign padding for adversarial
/// programs.
pub fn quiet_segment() -> SegmentSpec {
    SegmentSpec {
        name: "quiet".to_owned(),
        instructions: 850_000_000,
        core_cpi: 1.2,
        decode_ratio: 1.2,
        fp_fraction: 0.2,
        mem_fraction: 0.1,
        l1_mpi: 0.002,
        l2_mpi: 0.0005,
        overlap: 0.3,
        activity: 1.0,
        branch_fraction: 0.1,
        mispredict_rate: 0.01,
        prefetch_per_inst: 0.001,
    }
}

/// A high-issue floating-point burst. At `activity` 1.0 its true power
/// lands just above the paper model's estimate at the p-state boundary —
/// enough to separate a zero guardband from the stock 0.5 W one. At 1.3+
/// it overshoots the model by watts: the galgel-style deception that
/// violates the cap even under the stock guardband.
pub fn burst_segment(activity: f64) -> SegmentSpec {
    SegmentSpec {
        name: "burst".to_owned(),
        instructions: 2_000_000_000,
        core_cpi: 0.45,
        decode_ratio: 1.3,
        fp_fraction: 0.7,
        mem_fraction: 0.05,
        l1_mpi: 0.001,
        l2_mpi: 0.0002,
        overlap: 0.3,
        activity,
        branch_fraction: 0.05,
        mispredict_rate: 0.005,
        prefetch_per_inst: 0.001,
    }
}

/// The galgel-style exemplar: quiet/burst alternation whose bursts
/// deceive the paper power model (EXPERIMENTS.md: >18 W bursts, ~8 %
/// cap violation at 13.5 W). Corpus entry #1 records its verdict.
pub fn galgel_like_program() -> ProgramSpec {
    let mut segments = Vec::with_capacity(4);
    for (index, hot) in [false, true, false, true].into_iter().enumerate() {
        let mut segment = if hot {
            let mut burst = burst_segment(1.3);
            burst.instructions = 900_000_000;
            burst
        } else {
            let mut quiet = quiet_segment();
            quiet.instructions = 500_000_000;
            quiet
        };
        segment.name = format!("{}{index}", segment.name);
        segments.push(segment);
    }
    ProgramSpec { name: "galgel-like".to_owned(), segments }
}

/// Draws `count` scenarios deterministically from one seed. Scenario `i`
/// is named `fuzz-{seed}-{i}`; the same `(seed, count)` always yields the
/// same scenarios, which is what makes the fuzz smoke gate reproducible.
pub fn draw_scenarios(seed: u64, count: usize) -> Vec<Scenario> {
    let mut rng = TestRng::for_test(&format!("aapm-fuzz::{seed}"));
    let strategy = scenario();
    (0..count)
        .map(|index| {
            let mut drawn = strategy.generate(&mut rng);
            drawn.name = format!("fuzz-{seed}-{index}");
            drawn
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every drawn scenario builds its platform objects, serializes, and
    /// round-trips through the fixture codec unchanged.
    #[test]
    fn drawn_scenarios_build_and_round_trip() {
        let scenarios = draw_scenarios(7, 64);
        assert_eq!(scenarios.len(), 64);
        for scenario in &scenarios {
            scenario.program.build().expect("generated program must validate");
            for command in &scenario.commands {
                command.command().expect("generated command must validate");
            }
            scenario.faults.config.validate().expect("generated rates must validate");
            let rendered = scenario.to_json();
            let parsed = Scenario::from_json(&rendered)
                .expect("generated scenario must parse back");
            assert_eq!(&parsed, scenario);
            assert_eq!(parsed.to_json(), rendered);
        }
    }

    /// Generation is deterministic in the seed and varies across seeds.
    #[test]
    fn drawing_is_deterministic_per_seed() {
        let a = draw_scenarios(3, 8);
        let b = draw_scenarios(3, 8);
        assert_eq!(a, b);
        let c = draw_scenarios(4, 8);
        assert_ne!(a, c, "different seeds must draw different scenarios");
    }

    /// The governor strategy reaches bare, wrapped, and adaptive stacks.
    #[test]
    fn governor_strategy_reaches_wrappers() {
        let mut rng = TestRng::for_test("governor-coverage");
        let strategy = governor();
        let mut wrapped = 0usize;
        let mut adaptive = 0usize;
        let mut bare = 0usize;
        for _ in 0..300 {
            match strategy.generate(&mut rng) {
                GovernorSpec::Adaptive { .. } => adaptive += 1,
                GovernorSpec::Watchdog { inner, .. }
                    if matches!(*inner, GovernorSpec::Adaptive { .. }) =>
                {
                    adaptive += 1;
                }
                GovernorSpec::Watchdog { .. } | GovernorSpec::ThermalGuard { .. } => wrapped += 1,
                _ => bare += 1,
            }
        }
        assert!(wrapped > 20, "plain wrappers must appear, got {wrapped}");
        assert!(adaptive > 20, "adaptive stacks must appear, got {adaptive}");
        assert!(bare > 20, "bare stacks must appear, got {bare}");
    }
}
