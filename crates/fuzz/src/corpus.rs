//! The committed regression corpus: fixture files under `corpus/`.
//!
//! A fixture is one shrunk adversarial scenario plus the verdict line it
//! produced when it was committed. The replay runner re-evaluates the
//! scenario and byte-compares the fresh verdict against the recorded one,
//! so any behavioral drift in a governor, the simulator, or the fault
//! plumbing shows up as a one-line diff against the corpus. Fixture files
//! are named `NNN-name.json` and replayed in filename order.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use aapm::json::{self, Json};

use crate::oracle;
use crate::scenario::Scenario;

/// Fixture format version; bump on incompatible schema changes.
pub const FORMAT: u64 = 1;

/// One corpus fixture: a scenario and its recorded verdict line.
#[derive(Debug, Clone, PartialEq)]
pub struct Fixture {
    /// The verdict line recorded when the fixture was committed (see
    /// [`oracle::Verdict::render`]).
    pub verdict: String,
    /// The scenario to replay.
    pub scenario: Scenario,
}

impl Fixture {
    /// Captures a scenario together with its freshly evaluated verdict.
    pub fn record(scenario: Scenario) -> Fixture {
        let verdict = oracle::evaluate(&scenario).render();
        Fixture { verdict, scenario }
    }

    /// Re-evaluates the scenario; replay passes iff this equals
    /// [`Fixture::verdict`] byte for byte.
    pub fn replay(&self) -> String {
        oracle::evaluate(&self.scenario).render()
    }

    /// Renders the fixture file contents.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        let _ = write!(out, "{{\n\"format\": {FORMAT},\n\"verdict\": ");
        json::write_string(&mut out, &self.verdict);
        let _ = write!(out, ",\n\"scenario\": {}\n}}\n", self.scenario.to_json());
        out
    }

    /// Parses a fixture file.
    ///
    /// # Errors
    ///
    /// Reports malformed JSON, a wrong or missing format version, unknown
    /// keys, or an invalid embedded scenario.
    pub fn from_json(text: &str) -> Result<Fixture, String> {
        let value = json::parse(text)?;
        let fields =
            value.as_object().ok_or_else(|| "fixture must be a JSON object".to_owned())?;
        for (key, _) in fields {
            if !matches!(key.as_str(), "format" | "verdict" | "scenario") {
                return Err(format!("unexpected fixture key \"{key}\""));
            }
        }
        let format = value
            .get("format")
            .and_then(Json::as_number)
            .ok_or_else(|| "fixture requires number \"format\"".to_owned())?;
        if format != FORMAT as f64 {
            return Err(format!("unsupported fixture format {format} (expected {FORMAT})"));
        }
        let verdict = value
            .get("verdict")
            .and_then(Json::as_str)
            .ok_or_else(|| "fixture requires string \"verdict\"".to_owned())?
            .to_owned();
        let scenario = Scenario::from_value(
            value.get("scenario").ok_or_else(|| "fixture requires \"scenario\"".to_owned())?,
        )
        .map_err(|error| error.to_string())?;
        Ok(Fixture { verdict, scenario })
    }
}

/// One corpus file: its filename (the replay ordering key) and fixture.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// The fixture's filename within the corpus directory.
    pub file: String,
    /// The parsed fixture.
    pub fixture: Fixture,
}

/// Loads every `*.json` fixture in `dir`, sorted by filename.
///
/// # Errors
///
/// Reports an unreadable directory or file, or a fixture that fails to
/// parse (with the offending filename).
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let entries = fs::read_dir(dir)
        .map_err(|error| format!("cannot read corpus directory {}: {error}", dir.display()))?;
    let mut files: Vec<String> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|error| format!("cannot list {}: {error}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".json") {
            files.push(name);
        }
    }
    files.sort();
    files
        .into_iter()
        .map(|file| {
            let path = dir.join(&file);
            let text = fs::read_to_string(&path)
                .map_err(|error| format!("cannot read {}: {error}", path.display()))?;
            let fixture =
                Fixture::from_json(&text).map_err(|error| format!("{file}: {error}"))?;
            Ok(CorpusEntry { file, fixture })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::draw_scenarios;

    /// Fixture render → parse → render is an identity and replay matches
    /// the recorded verdict.
    #[test]
    fn fixture_round_trips_and_replays() {
        let mut scenario = draw_scenarios(31, 1).remove(0);
        scenario.max_samples = 1500;
        let fixture = Fixture::record(scenario);
        let rendered = fixture.to_json();
        let parsed = Fixture::from_json(&rendered).unwrap();
        assert_eq!(parsed, fixture);
        assert_eq!(parsed.to_json(), rendered);
        assert_eq!(parsed.replay(), fixture.verdict, "replay must be deterministic");
    }

    /// Corrupted fixtures are rejected with explicit reasons.
    #[test]
    fn malformed_fixtures_are_rejected() {
        let fixture = Fixture::record(draw_scenarios(32, 1).remove(0));
        let good = fixture.to_json();
        for (bad, why) in [
            (good.replace("\"format\": 1", "\"format\": 2"), "wrong format"),
            (good.replace("\"format\": 1", "\"formats\": 1"), "unknown key"),
            (good.replace("\"verdict\": ", "\"verdict\": 3, \"scenario2\": "), "non-string verdict"),
        ] {
            assert!(Fixture::from_json(&bad).is_err(), "accepted fixture with {why}");
        }
    }

    /// `load_dir` parses every fixture in filename order.
    #[test]
    fn load_dir_sorts_by_filename() {
        let dir = std::env::temp_dir()
            .join(format!("aapm-fuzz-corpus-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let fixture = Fixture::record(draw_scenarios(33, 1).remove(0));
        fs::write(dir.join("002-b.json"), fixture.to_json()).unwrap();
        fs::write(dir.join("001-a.json"), fixture.to_json()).unwrap();
        fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let loaded = load_dir(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].file, "001-a.json");
        assert_eq!(loaded[1].file, "002-b.json");
        assert_eq!(loaded[0].fixture, fixture);
    }
}
