//! Greedy deterministic scenario shrinking.
//!
//! The vendored proptest subset generates but does not shrink, so the
//! harness shrinks at the scenario level instead: [`minimize`] applies a
//! fixed sequence of reduction passes (drop segments, drop windows, drop
//! commands, zero stochastic rates, unwrap governor layers, halve
//! instruction budgets) and keeps any reduction under which the
//! caller-supplied predicate still fails, repeating until a full sweep
//! makes no progress. The passes and their order are deterministic, so
//! the same failing scenario always shrinks to the same fixture — which
//! is what makes "commit your shrunk failure" reproducible.

use aapm::spec::GovernorSpec;

use crate::scenario::Scenario;

/// Smallest instruction budget the halving pass will produce.
const MIN_INSTRUCTIONS: u64 = 2_000_000;

/// Shrinks `scenario` while `still_fails` holds.
///
/// The input must itself fail the predicate; the result is the smallest
/// scenario the greedy passes reach, and it still fails.
pub fn minimize<F>(scenario: &Scenario, still_fails: F) -> Scenario
where
    F: Fn(&Scenario) -> bool,
{
    let mut current = scenario.clone();
    debug_assert!(still_fails(&current), "minimize requires a failing scenario");
    loop {
        let mut progressed = false;
        progressed |= drop_list_items(
            &mut current,
            &still_fails,
            |s| s.program.segments.len(),
            |s, i| {
                if s.program.segments.len() > 1 {
                    s.program.segments.remove(i);
                    true
                } else {
                    false
                }
            },
        );
        progressed |= drop_list_items(
            &mut current,
            &still_fails,
            |s| s.faults.windows.len(),
            |s, i| {
                s.faults.windows.remove(i);
                true
            },
        );
        progressed |= drop_list_items(
            &mut current,
            &still_fails,
            |s| s.commands.len(),
            |s, i| {
                s.commands.remove(i);
                true
            },
        );
        // Zero each nonzero stochastic rate independently.
        for (name, value) in current.faults.config.rates() {
            if value == 0.0 {
                continue;
            }
            let mut candidate = current.clone();
            candidate.faults.config.set_rate(name, 0.0);
            if still_fails(&candidate) {
                current = candidate;
                progressed = true;
            }
        }
        // Peel wrapper layers off the governor stack.
        while let Some(inner) = unwrap_governor(&current.governor) {
            let mut candidate = current.clone();
            candidate.governor = inner;
            if still_fails(&candidate) {
                current = candidate;
                progressed = true;
            } else {
                break;
            }
        }
        // Halve every segment's instruction budget while the failure
        // survives (bounded: budgets only shrink, down to the floor).
        loop {
            let mut candidate = current.clone();
            let mut changed = false;
            for segment in &mut candidate.program.segments {
                if segment.instructions >= 2 * MIN_INSTRUCTIONS {
                    segment.instructions /= 2;
                    changed = true;
                }
            }
            if !changed || !still_fails(&candidate) {
                break;
            }
            current = candidate;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    current
}

/// One element-dropping pass over a list-valued scenario field: tries to
/// remove each index in turn, keeping removals the predicate survives.
fn drop_list_items<F, L, R>(
    current: &mut Scenario,
    still_fails: &F,
    len: L,
    remove: R,
) -> bool
where
    F: Fn(&Scenario) -> bool,
    L: Fn(&Scenario) -> usize,
    R: Fn(&mut Scenario, usize) -> bool,
{
    let mut progressed = false;
    let mut index = 0;
    while index < len(current) {
        let mut candidate = current.clone();
        if remove(&mut candidate, index) && still_fails(&candidate) {
            *current = candidate;
            progressed = true;
        } else {
            index += 1;
        }
    }
    progressed
}

fn unwrap_governor(spec: &GovernorSpec) -> Option<GovernorSpec> {
    match spec {
        GovernorSpec::Watchdog { inner }
        | GovernorSpec::ThermalGuard { inner }
        | GovernorSpec::Adaptive { inner, .. } => Some((**inner).clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::draw_scenarios;
    use crate::scenario::{CommandKind, CommandSpec, WindowSpec};
    use aapm_telemetry::faults::FaultKind;

    /// A synthetic predicate: fails while the scenario keeps at least one
    /// hot segment (activity > 1.2) and at least one blackout window. The
    /// minimizer must strip everything else.
    #[test]
    fn minimizer_reaches_the_predicate_core() {
        let mut scenario = draw_scenarios(21, 1).remove(0);
        // Force the trigger conditions in.
        scenario.program.segments[0].activity = 1.3;
        scenario
            .faults
            .windows
            .push(WindowSpec { kind: FaultKind::Blackout, start: 0.1, end: 0.5 });
        scenario
            .commands
            .push(CommandSpec { at: 0.2, set: CommandKind::PowerLimit, value: 10.0 });
        let fails = |s: &Scenario| {
            s.program.segments.iter().any(|seg| seg.activity > 1.2)
                && s.faults.windows.iter().any(|w| w.kind == FaultKind::Blackout)
        };
        assert!(fails(&scenario));
        let shrunk = minimize(&scenario, fails);
        assert!(fails(&shrunk), "the shrunk scenario must still fail");
        assert_eq!(shrunk.program.segments.len(), 1, "only the hot segment survives");
        assert!(shrunk.program.segments[0].activity > 1.2);
        assert_eq!(shrunk.faults.windows.len(), 1, "only one blackout survives");
        assert!(shrunk.commands.is_empty(), "irrelevant commands are dropped");
        assert!(
            shrunk.faults.config.rates().iter().all(|(_, rate)| *rate == 0.0),
            "irrelevant rates are zeroed"
        );
        assert!(
            shrunk.program.segments[0].instructions < scenario.program.segments[0].instructions,
            "instruction budgets are halved down"
        );
        assert_eq!(
            minimize(&scenario, fails),
            shrunk,
            "shrinking is deterministic"
        );
    }

    /// Acceptance: an intentionally broken governor (zero guardband) is
    /// caught by the cap oracle, and the greedy shrinker reduces the
    /// counterexample to a handful of segments (well under the 12-segment
    /// budget) that still separates stock from sabotaged.
    #[test]
    fn sabotaged_governor_shrinks_to_a_small_counterexample() {
        use crate::generate::{burst_segment, quiet_segment};
        use crate::oracle::{build_zero_guardband, evaluate, evaluate_with};
        use crate::scenario::{FaultSpec, OracleParams, ProgramSpec};

        let mut segments: Vec<_> = (0..7)
            .map(|i| {
                let mut pad = quiet_segment();
                pad.name = format!("pad{i}");
                pad.instructions = 300_000_000;
                pad
            })
            .collect();
        segments.push(burst_segment(1.0));
        let fails = |s: &Scenario| {
            !evaluate(s).failures().contains(&"cap")
                && evaluate_with(s, &build_zero_guardband).failures().contains(&"cap")
        };
        let mut found = None;
        for step in 0..32 {
            let limit_w = 12.0 + 0.25 * f64::from(step);
            let candidate = Scenario {
                name: "sabotage-hunt".to_owned(),
                seed: 17,
                max_samples: 3000,
                governor: aapm::spec::GovernorSpec::Pm { limit_w },
                program: ProgramSpec { name: "padded".to_owned(), segments: segments.clone() },
                faults: FaultSpec::inert(),
                commands: Vec::new(),
                oracles: OracleParams::default(),
            };
            if fails(&candidate) {
                found = Some(candidate);
                break;
            }
        }
        let scenario = found.expect("a limit separating stock from zero-guardband PM exists");
        let shrunk = minimize(&scenario, fails);
        assert!(fails(&shrunk), "the shrunk counterexample must still separate the builds");
        assert!(
            shrunk.program.segments.len() <= 12,
            "counterexample must shrink to <= 12 segments, got {}",
            shrunk.program.segments.len()
        );
        assert_eq!(
            shrunk.program.segments.len(),
            1,
            "only the deceptive burst should survive shrinking"
        );
        assert_eq!(shrunk.program.segments[0].name, "burst");
    }

    /// Wrapper layers irrelevant to the failure are peeled off.
    #[test]
    fn minimizer_unwraps_irrelevant_layers() {
        let mut scenario = draw_scenarios(22, 1).remove(0);
        scenario.governor = aapm::spec::GovernorSpec::ThermalGuard {
            inner: Box::new(aapm::spec::GovernorSpec::Watchdog {
                inner: Box::new(aapm::spec::GovernorSpec::Pm { limit_w: 11.0 }),
            }),
        };
        let fails =
            |s: &Scenario| crate::oracle::initial_limit(&s.governor).is_some_and(|l| l < 12.0);
        let shrunk = minimize(&scenario, fails);
        assert_eq!(shrunk.governor, aapm::spec::GovernorSpec::Pm { limit_w: 11.0 });
    }
}
