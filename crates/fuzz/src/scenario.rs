//! The serializable adversarial scenario: spec + program + faults +
//! commands, with a hand-rolled JSON codec over [`aapm::json`].
//!
//! A [`Scenario`] is everything needed to reproduce one adversarial
//! session bit-for-bit: the governor stack (as a [`GovernorSpec`]), the
//! phase program (as explicit segment parameters, not a workload name, so
//! fixtures survive suite changes), the fault plan (stochastic rates plus
//! scheduled windows), the scheduled command stream, and the oracle
//! thresholds its verdict is judged against. The JSON form is the corpus
//! fixture format documented in `corpus/README.md`; the round-trip
//! `to_json` → `from_json` → `to_json` is an identity.

use aapm::json::{self, Json};
use aapm::runtime::ScheduledCommand;
use aapm::spec::GovernorSpec;
use aapm::GovernorCommand;
use aapm::limits::{PerformanceFloor, PowerLimit};
use aapm_platform::error::{PlatformError, Result};
use aapm_platform::phase::PhaseDescriptor;
use aapm_platform::program::PhaseProgram;
use aapm_platform::units::Seconds;
use aapm_telemetry::faults::{FaultConfig, FaultKind, FaultWindow};

/// One program segment, as raw phase parameters (the 12 knobs of
/// [`PhaseDescriptor`] plus the instruction budget).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentSpec {
    /// Segment name (reports and error messages only).
    pub name: String,
    /// Instruction budget.
    pub instructions: u64,
    /// Core cycles per instruction, memory aside.
    pub core_cpi: f64,
    /// Decoded-per-retired instruction ratio (≥ 1).
    pub decode_ratio: f64,
    /// Floating-point fraction of the mix.
    pub fp_fraction: f64,
    /// Memory-access fraction of the mix.
    pub mem_fraction: f64,
    /// L1 misses per instruction (≤ `mem_fraction`).
    pub l1_mpi: f64,
    /// L2 misses per instruction (≤ `l1_mpi` + prefetches).
    pub l2_mpi: f64,
    /// Memory/compute overlap in [0, 1).
    pub overlap: f64,
    /// Switching-activity factor.
    pub activity: f64,
    /// Branch fraction of the mix.
    pub branch_fraction: f64,
    /// Branch mispredict rate.
    pub mispredict_rate: f64,
    /// Hardware prefetches per instruction.
    pub prefetch_per_inst: f64,
}

impl SegmentSpec {
    /// Captures a platform phase as a serializable segment.
    pub fn from_phase(phase: &PhaseDescriptor) -> SegmentSpec {
        SegmentSpec {
            name: phase.name().to_owned(),
            instructions: phase.instructions(),
            core_cpi: phase.core_cpi(),
            decode_ratio: phase.decode_ratio(),
            fp_fraction: phase.fp_fraction(),
            mem_fraction: phase.mem_fraction(),
            l1_mpi: phase.l1_mpi(),
            l2_mpi: phase.l2_mpi(),
            overlap: phase.overlap(),
            activity: phase.activity(),
            branch_fraction: phase.branch_fraction(),
            mispredict_rate: phase.mispredict_rate(),
            prefetch_per_inst: phase.prefetch_per_inst(),
        }
    }

    /// Builds the platform phase, re-running all phase validation.
    ///
    /// # Errors
    ///
    /// Propagates [`PhaseDescriptor`] builder validation.
    pub fn build(&self) -> Result<PhaseDescriptor> {
        PhaseDescriptor::builder(self.name.clone())
            .instructions(self.instructions)
            .core_cpi(self.core_cpi)
            .decode_ratio(self.decode_ratio)
            .fp_fraction(self.fp_fraction)
            .mem_fraction(self.mem_fraction)
            .l1_mpi(self.l1_mpi)
            .l2_mpi(self.l2_mpi)
            .overlap(self.overlap)
            .activity(self.activity)
            .branch_fraction(self.branch_fraction)
            .mispredict_rate(self.mispredict_rate)
            .prefetch_per_inst(self.prefetch_per_inst)
            .build()
    }
}

/// A serializable phase program: named segment list.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramSpec {
    /// Program name.
    pub name: String,
    /// The segments, run back to back.
    pub segments: Vec<SegmentSpec>,
}

impl ProgramSpec {
    /// Captures a platform program as a serializable spec.
    pub fn from_program(program: &PhaseProgram) -> ProgramSpec {
        ProgramSpec {
            name: program.name().to_owned(),
            segments: program.phases().iter().map(SegmentSpec::from_phase).collect(),
        }
    }

    /// Builds the platform program.
    ///
    /// # Errors
    ///
    /// Propagates segment validation; an empty segment list is rejected by
    /// [`PhaseProgram::new`].
    pub fn build(&self) -> Result<PhaseProgram> {
        let phases: Result<Vec<PhaseDescriptor>> =
            self.segments.iter().map(SegmentSpec::build).collect();
        PhaseProgram::new(self.name.clone(), phases?)
    }
}

/// A scheduled outage window in the serializable form.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSpec {
    /// What fails (serialized via [`FaultKind::as_str`]).
    pub kind: FaultKind,
    /// Start of the outage in simulated seconds (inclusive).
    pub start: f64,
    /// End of the outage in simulated seconds (exclusive).
    pub end: f64,
}

impl WindowSpec {
    /// The platform fault window.
    pub fn window(&self) -> FaultWindow {
        FaultWindow {
            start: Seconds::new(self.start),
            end: Seconds::new(self.end),
            kind: self.kind,
        }
    }
}

/// The fault plan: stochastic rates plus scheduled windows.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Stochastic rates, the plan seed, and the stall/retry knobs.
    pub config: FaultConfig,
    /// Scheduled outage windows.
    pub windows: Vec<WindowSpec>,
}

impl FaultSpec {
    /// A fault-free plan.
    pub fn inert() -> FaultSpec {
        FaultSpec { config: FaultConfig::default(), windows: Vec::new() }
    }

    /// The platform fault windows.
    pub fn fault_windows(&self) -> Vec<FaultWindow> {
        self.windows.iter().map(WindowSpec::window).collect()
    }
}

/// Which governor knob a scheduled command sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// [`GovernorCommand::SetPowerLimit`].
    PowerLimit,
    /// [`GovernorCommand::SetPerformanceFloor`].
    PerformanceFloor,
}

impl CommandKind {
    /// The stable serialized name.
    pub fn as_str(self) -> &'static str {
        match self {
            CommandKind::PowerLimit => "power-limit",
            CommandKind::PerformanceFloor => "performance-floor",
        }
    }

    /// Parses a serialized name; `None` for unknown names.
    pub fn from_name(name: &str) -> Option<CommandKind> {
        match name {
            "power-limit" => Some(CommandKind::PowerLimit),
            "performance-floor" => Some(CommandKind::PerformanceFloor),
            _ => None,
        }
    }
}

/// One scheduled command in the serializable form.
#[derive(Debug, Clone, PartialEq)]
pub struct CommandSpec {
    /// Delivery time in simulated seconds.
    pub at: f64,
    /// Which knob is set.
    pub set: CommandKind,
    /// The new value (watts for limits, fraction for floors).
    pub value: f64,
}

impl CommandSpec {
    /// The runtime command.
    ///
    /// # Errors
    ///
    /// Propagates [`PowerLimit::new`] / [`PerformanceFloor::new`]
    /// validation.
    pub fn command(&self) -> Result<ScheduledCommand> {
        let command = match self.set {
            CommandKind::PowerLimit => {
                GovernorCommand::SetPowerLimit(PowerLimit::new(self.value)?)
            }
            CommandKind::PerformanceFloor => {
                GovernorCommand::SetPerformanceFloor(PerformanceFloor::new(self.value)?)
            }
        };
        Ok(ScheduledCommand { at: Seconds::new(self.at), command })
    }
}

/// Oracle thresholds a scenario's verdict is judged against. Committing
/// the thresholds with the scenario makes each fixture self-contained:
/// the replay runner needs no out-of-band expectations.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleParams {
    /// Maximum tolerated cap-violation fraction (paper metric: fraction of
    /// 100 ms windows whose mean measured power exceeds the active limit).
    /// `0.0` demands strict adherence; the galgel-style fixture records a
    /// deliberate failure against `0.0`.
    pub max_cap_violation: f64,
    /// Slack added to the floor's allowed performance reduction before the
    /// floor property fails (absorbs eq.-3 model error, paper §5.2).
    pub floor_tolerance: f64,
    /// Extra intervals (beyond the watchdog's loss threshold) the liveness
    /// property allows before the safe p-state must appear in the trace.
    pub liveness_slack_intervals: usize,
}

impl Default for OracleParams {
    fn default() -> Self {
        OracleParams {
            max_cap_violation: 0.0,
            floor_tolerance: 0.05,
            liveness_slack_intervals: 10,
        }
    }
}

/// A complete adversarial scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (fixture file stem by convention).
    pub name: String,
    /// Machine + simulation seed.
    pub seed: u64,
    /// Safety cap on control intervals.
    pub max_samples: usize,
    /// The governor stack under test.
    pub governor: GovernorSpec,
    /// The phase program.
    pub program: ProgramSpec,
    /// The fault plan.
    pub faults: FaultSpec,
    /// The scheduled command stream.
    pub commands: Vec<CommandSpec>,
    /// Verdict thresholds.
    pub oracles: OracleParams,
}

fn invalid(reason: String) -> PlatformError {
    PlatformError::InvalidConfig { parameter: "scenario", reason }
}

fn write_f64(out: &mut String, value: f64) {
    use std::fmt::Write as _;
    debug_assert!(value.is_finite(), "scenario numbers are finite by construction");
    let _ = write!(out, "{value}");
}

impl Scenario {
    /// Renders the scenario as pretty-printed JSON (the fixture format).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"name\": ");
        json::write_string(&mut out, &self.name);
        let _ = write!(out, ",\n  \"seed\": {},\n  \"max_samples\": {}", self.seed, self.max_samples);
        let _ = write!(out, ",\n  \"governor\": {}", self.governor.to_json());
        out.push_str(",\n  \"oracles\": {\"max_cap_violation\": ");
        write_f64(&mut out, self.oracles.max_cap_violation);
        out.push_str(", \"floor_tolerance\": ");
        write_f64(&mut out, self.oracles.floor_tolerance);
        let _ = write!(
            out,
            ", \"liveness_slack_intervals\": {}}}",
            self.oracles.liveness_slack_intervals
        );
        // Faults: seed + knobs + every stochastic rate, explicitly.
        let config = &self.faults.config;
        let _ = write!(
            out,
            ",\n  \"faults\": {{\"seed\": {}, \"stall_intervals\": {}, \"retry_limit\": {}",
            config.seed, config.stall_intervals, config.retry_limit
        );
        for (name, value) in config.rates() {
            let _ = write!(out, ", \"{name}\": ");
            write_f64(&mut out, value);
        }
        out.push('}');
        out.push_str(",\n  \"windows\": [");
        for (i, window) in self.faults.windows.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(out, "    {{\"kind\": \"{}\", \"start\": ", window.kind.as_str());
            write_f64(&mut out, window.start);
            out.push_str(", \"end\": ");
            write_f64(&mut out, window.end);
            out.push('}');
        }
        out.push_str(if self.faults.windows.is_empty() { "]" } else { "\n  ]" });
        out.push_str(",\n  \"commands\": [");
        for (i, command) in self.commands.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(out, "    {{\"at\": ");
            write_f64(&mut out, command.at);
            let _ = write!(out, ", \"set\": \"{}\", \"value\": ", command.set.as_str());
            write_f64(&mut out, command.value);
            out.push('}');
        }
        out.push_str(if self.commands.is_empty() { "]" } else { "\n  ]" });
        out.push_str(",\n  \"program\": {\"name\": ");
        json::write_string(&mut out, &self.program.name);
        out.push_str(", \"segments\": [");
        for (i, segment) in self.program.segments.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": ");
            json::write_string(&mut out, &segment.name);
            let _ = write!(out, ", \"instructions\": {}", segment.instructions);
            for (key, value) in [
                ("core_cpi", segment.core_cpi),
                ("decode_ratio", segment.decode_ratio),
                ("fp_fraction", segment.fp_fraction),
                ("mem_fraction", segment.mem_fraction),
                ("l1_mpi", segment.l1_mpi),
                ("l2_mpi", segment.l2_mpi),
                ("overlap", segment.overlap),
                ("activity", segment.activity),
                ("branch_fraction", segment.branch_fraction),
                ("mispredict_rate", segment.mispredict_rate),
                ("prefetch_per_inst", segment.prefetch_per_inst),
            ] {
                let _ = write!(out, ", \"{key}\": ");
                write_f64(&mut out, value);
            }
            out.push('}');
        }
        out.push_str(if self.program.segments.is_empty() { "]}" } else { "\n  ]}" });
        out.push_str("\n}");
        out
    }

    /// Parses a scenario from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidConfig`] on malformed JSON
    /// (duplicate keys and non-finite numbers included), unknown keys or
    /// kind names, or out-of-range values.
    pub fn from_json(text: &str) -> Result<Scenario> {
        let value = json::parse(text).map_err(invalid)?;
        Scenario::from_value(&value)
    }

    /// Parses a scenario from an already-parsed [`Json`] value.
    ///
    /// # Errors
    ///
    /// See [`Scenario::from_json`].
    pub fn from_value(value: &Json) -> Result<Scenario> {
        let fields = value
            .as_object()
            .ok_or_else(|| invalid("scenario must be a JSON object".to_owned()))?;
        for (key, _) in fields {
            if !matches!(
                key.as_str(),
                "name" | "seed" | "max_samples" | "governor" | "oracles" | "faults"
                    | "windows" | "commands" | "program"
            ) {
                return Err(invalid(format!("unexpected scenario key \"{key}\"")));
            }
        }
        let name = expect_string(value, "name", "scenario")?;
        let seed = expect_u64(value, "seed", "scenario")?;
        let max_samples = usize::try_from(expect_u64(value, "max_samples", "scenario")?)
            .map_err(|_| invalid("\"max_samples\" out of range".to_owned()))?;
        let governor = GovernorSpec::from_value(
            value.get("governor").ok_or_else(|| invalid("scenario requires \"governor\"".into()))?,
        )?;
        let oracles = parse_oracles(
            value.get("oracles").ok_or_else(|| invalid("scenario requires \"oracles\"".into()))?,
        )?;
        let config = parse_fault_config(
            value.get("faults").ok_or_else(|| invalid("scenario requires \"faults\"".into()))?,
        )?;
        let windows = parse_windows(
            value.get("windows").ok_or_else(|| invalid("scenario requires \"windows\"".into()))?,
        )?;
        let commands = parse_commands(
            value.get("commands").ok_or_else(|| invalid("scenario requires \"commands\"".into()))?,
        )?;
        let program = parse_program(
            value.get("program").ok_or_else(|| invalid("scenario requires \"program\"".into()))?,
        )?;
        Ok(Scenario {
            name,
            seed,
            max_samples,
            governor,
            program,
            faults: FaultSpec { config, windows },
            commands,
            oracles,
        })
    }
}

fn expect_string(value: &Json, key: &str, context: &str) -> Result<String> {
    value
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| invalid(format!("{context} requires string \"{key}\"")))
}

fn expect_f64(value: &Json, key: &str, context: &str) -> Result<f64> {
    value
        .get(key)
        .and_then(Json::as_number)
        .ok_or_else(|| invalid(format!("{context} requires number \"{key}\"")))
}

fn expect_u64(value: &Json, key: &str, context: &str) -> Result<u64> {
    let raw = expect_f64(value, key, context)?;
    if raw < 0.0 || raw.fract() != 0.0 || raw > 2f64.powi(53) {
        return Err(invalid(format!(
            "\"{key}\" must be a non-negative integer, got {raw}"
        )));
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Ok(raw as u64)
}

fn parse_oracles(value: &Json) -> Result<OracleParams> {
    for (key, _) in value
        .as_object()
        .ok_or_else(|| invalid("\"oracles\" must be an object".to_owned()))?
    {
        if !matches!(
            key.as_str(),
            "max_cap_violation" | "floor_tolerance" | "liveness_slack_intervals"
        ) {
            return Err(invalid(format!("unexpected oracle key \"{key}\"")));
        }
    }
    Ok(OracleParams {
        max_cap_violation: expect_f64(value, "max_cap_violation", "oracles")?,
        floor_tolerance: expect_f64(value, "floor_tolerance", "oracles")?,
        liveness_slack_intervals: usize::try_from(expect_u64(
            value,
            "liveness_slack_intervals",
            "oracles",
        )?)
        .map_err(|_| invalid("\"liveness_slack_intervals\" out of range".to_owned()))?,
    })
}

fn parse_fault_config(value: &Json) -> Result<FaultConfig> {
    let fields = value
        .as_object()
        .ok_or_else(|| invalid("\"faults\" must be an object".to_owned()))?;
    let mut config = FaultConfig {
        seed: expect_u64(value, "seed", "faults")?,
        stall_intervals: usize::try_from(expect_u64(value, "stall_intervals", "faults")?)
            .map_err(|_| invalid("\"stall_intervals\" out of range".to_owned()))?,
        retry_limit: usize::try_from(expect_u64(value, "retry_limit", "faults")?)
            .map_err(|_| invalid("\"retry_limit\" out of range".to_owned()))?,
        ..FaultConfig::default()
    };
    for (key, entry) in fields {
        if matches!(key.as_str(), "seed" | "stall_intervals" | "retry_limit") {
            continue;
        }
        let rate = entry
            .as_number()
            .ok_or_else(|| invalid(format!("fault rate \"{key}\" must be a number")))?;
        if !config.set_rate(key, rate) {
            return Err(invalid(format!("unknown fault key \"{key}\"")));
        }
    }
    config.validate()?;
    Ok(config)
}

fn parse_windows(value: &Json) -> Result<Vec<WindowSpec>> {
    let items = value
        .as_array()
        .ok_or_else(|| invalid("\"windows\" must be an array".to_owned()))?;
    items
        .iter()
        .map(|item| {
            for (key, _) in item
                .as_object()
                .ok_or_else(|| invalid("each window must be an object".to_owned()))?
            {
                if !matches!(key.as_str(), "kind" | "start" | "end") {
                    return Err(invalid(format!("unexpected window key \"{key}\"")));
                }
            }
            let kind_name = expect_string(item, "kind", "window")?;
            let kind = FaultKind::from_name(&kind_name).ok_or_else(|| {
                let known: Vec<&str> = FaultKind::ALL.iter().map(|k| k.as_str()).collect();
                invalid(format!(
                    "unknown fault kind \"{kind_name}\" (known: {})",
                    known.join(", ")
                ))
            })?;
            let spec = WindowSpec {
                kind,
                start: expect_f64(item, "start", "window")?,
                end: expect_f64(item, "end", "window")?,
            };
            if spec.start >= spec.end {
                return Err(invalid(format!(
                    "window [{}, {}) must be non-empty",
                    spec.start, spec.end
                )));
            }
            Ok(spec)
        })
        .collect()
}

fn parse_commands(value: &Json) -> Result<Vec<CommandSpec>> {
    let items = value
        .as_array()
        .ok_or_else(|| invalid("\"commands\" must be an array".to_owned()))?;
    items
        .iter()
        .map(|item| {
            for (key, _) in item
                .as_object()
                .ok_or_else(|| invalid("each command must be an object".to_owned()))?
            {
                if !matches!(key.as_str(), "at" | "set" | "value") {
                    return Err(invalid(format!("unexpected command key \"{key}\"")));
                }
            }
            let set_name = expect_string(item, "set", "command")?;
            let set = CommandKind::from_name(&set_name).ok_or_else(|| {
                invalid(format!(
                    "unknown command target \"{set_name}\" \
                     (known: power-limit, performance-floor)"
                ))
            })?;
            let spec = CommandSpec {
                at: expect_f64(item, "at", "command")?,
                set,
                value: expect_f64(item, "value", "command")?,
            };
            // Fail early with a scenario-level message; the runtime would
            // reject these at build time anyway.
            spec.command()?;
            Ok(spec)
        })
        .collect()
}

fn parse_program(value: &Json) -> Result<ProgramSpec> {
    for (key, _) in value
        .as_object()
        .ok_or_else(|| invalid("\"program\" must be an object".to_owned()))?
    {
        if !matches!(key.as_str(), "name" | "segments") {
            return Err(invalid(format!("unexpected program key \"{key}\"")));
        }
    }
    let name = expect_string(value, "name", "program")?;
    let items = value
        .get("segments")
        .and_then(Json::as_array)
        .ok_or_else(|| invalid("program requires array \"segments\"".to_owned()))?;
    let segments: Result<Vec<SegmentSpec>> = items
        .iter()
        .map(|item| {
            for (key, _) in item
                .as_object()
                .ok_or_else(|| invalid("each segment must be an object".to_owned()))?
            {
                if !matches!(
                    key.as_str(),
                    "name" | "instructions" | "core_cpi" | "decode_ratio" | "fp_fraction"
                        | "mem_fraction" | "l1_mpi" | "l2_mpi" | "overlap" | "activity"
                        | "branch_fraction" | "mispredict_rate" | "prefetch_per_inst"
                ) {
                    return Err(invalid(format!("unexpected segment key \"{key}\"")));
                }
            }
            let segment = SegmentSpec {
                name: expect_string(item, "name", "segment")?,
                instructions: expect_u64(item, "instructions", "segment")?,
                core_cpi: expect_f64(item, "core_cpi", "segment")?,
                decode_ratio: expect_f64(item, "decode_ratio", "segment")?,
                fp_fraction: expect_f64(item, "fp_fraction", "segment")?,
                mem_fraction: expect_f64(item, "mem_fraction", "segment")?,
                l1_mpi: expect_f64(item, "l1_mpi", "segment")?,
                l2_mpi: expect_f64(item, "l2_mpi", "segment")?,
                overlap: expect_f64(item, "overlap", "segment")?,
                activity: expect_f64(item, "activity", "segment")?,
                branch_fraction: expect_f64(item, "branch_fraction", "segment")?,
                mispredict_rate: expect_f64(item, "mispredict_rate", "segment")?,
                prefetch_per_inst: expect_f64(item, "prefetch_per_inst", "segment")?,
            };
            // Validate eagerly so corrupted fixtures fail at parse time.
            segment.build()?;
            Ok(segment)
        })
        .collect();
    Ok(ProgramSpec { name, segments: segments? })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scenario() -> Scenario {
        Scenario {
            name: "sample".to_owned(),
            seed: 42,
            max_samples: 3000,
            governor: GovernorSpec::Watchdog {
                inner: Box::new(GovernorSpec::Pm { limit_w: 13.5 }),
            },
            program: ProgramSpec {
                name: "two-phase".to_owned(),
                segments: vec![
                    SegmentSpec {
                        name: "burst".to_owned(),
                        instructions: 80_000_000,
                        core_cpi: 0.5,
                        decode_ratio: 1.15,
                        fp_fraction: 0.4,
                        mem_fraction: 0.2,
                        l1_mpi: 0.01,
                        l2_mpi: 0.001,
                        overlap: 0.3,
                        activity: 1.25,
                        branch_fraction: 0.1,
                        mispredict_rate: 0.02,
                        prefetch_per_inst: 0.002,
                    },
                    SegmentSpec {
                        name: "quiet".to_owned(),
                        instructions: 40_000_000,
                        core_cpi: 1.8,
                        decode_ratio: 1.05,
                        fp_fraction: 0.05,
                        mem_fraction: 0.45,
                        l1_mpi: 0.09,
                        l2_mpi: 0.03,
                        overlap: 0.1,
                        activity: 0.8,
                        branch_fraction: 0.15,
                        mispredict_rate: 0.05,
                        prefetch_per_inst: 0.01,
                    },
                ],
            },
            faults: FaultSpec {
                config: FaultConfig {
                    seed: 7,
                    power_dropout_rate: 0.05,
                    ..FaultConfig::default()
                },
                windows: vec![WindowSpec {
                    kind: FaultKind::Blackout,
                    start: 0.5,
                    end: 1.0,
                }],
            },
            commands: vec![CommandSpec { at: 0.8, set: CommandKind::PowerLimit, value: 9.0 }],
            oracles: OracleParams::default(),
        }
    }

    /// JSON → scenario → JSON is an identity, and the parsed scenario is
    /// structurally equal.
    #[test]
    fn json_round_trip_is_identity() {
        let scenario = sample_scenario();
        let rendered = scenario.to_json();
        let parsed = Scenario::from_json(&rendered).unwrap();
        assert_eq!(parsed, scenario);
        assert_eq!(parsed.to_json(), rendered, "second render must match the first");
    }

    /// Empty windows/commands render as empty arrays and round-trip.
    #[test]
    fn minimal_scenario_round_trips() {
        let scenario = Scenario {
            faults: FaultSpec::inert(),
            commands: Vec::new(),
            ..sample_scenario()
        };
        let parsed = Scenario::from_json(&scenario.to_json()).unwrap();
        assert_eq!(parsed, scenario);
    }

    #[test]
    fn builds_platform_objects() {
        let scenario = sample_scenario();
        let program = scenario.program.build().unwrap();
        assert_eq!(program.len(), 2);
        assert_eq!(program.total_instructions(), 120_000_000);
        assert_eq!(scenario.faults.fault_windows().len(), 1);
        let command = scenario.commands[0].command().unwrap();
        assert_eq!(command.at, Seconds::new(0.8));
    }

    #[test]
    fn malformed_scenarios_are_rejected() {
        let good = sample_scenario().to_json();
        for (bad, why) in [
            (good.replace("\"seed\": 42", "\"seed\": -1"), "negative seed"),
            (good.replace("\"kind\": \"blackout\"", "\"kind\": \"gamma\""), "unknown fault kind"),
            (good.replace("\"set\": \"power-limit\"", "\"set\": \"voltage\""), "unknown command"),
            (good.replace("\"core_cpi\": 0.5", "\"core_cpi\": -0.5"), "invalid phase"),
            (good.replace("\"max_samples\": 3000", "\"max_samples\": 3000, \"zzz\": 1"), "extra key"),
            (good.replace("\"start\": 0.5", "\"start\": 2.5"), "empty window"),
            (good.replace("\"value\": 9", "\"value\": -9"), "invalid limit"),
        ] {
            assert!(Scenario::from_json(&bad).is_err(), "accepted scenario with {why}");
        }
    }
}
