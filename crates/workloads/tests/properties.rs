//! Property-based tests of workload construction and characterization.

use aapm_platform::pipeline::{evaluate, MemoryTimings};
use aapm_platform::pstate::PStateTable;
use aapm_workloads::characterize::characterize_with_budget;
use aapm_workloads::footprint::Footprint;
use aapm_workloads::loops::MicroLoop;
use aapm_workloads::spec;
use aapm_workloads::synth::random_program;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random programs always build, carry positive budgets, and scale
    /// consistently.
    #[test]
    fn random_programs_scale_consistently(seed in 0u64..10_000, factor in 0.1f64..3.0) {
        let program = random_program(seed, 5);
        let scaled = program.scaled(factor);
        prop_assert_eq!(program.len(), scaled.len());
        let expected: u64 = program
            .phases()
            .iter()
            .map(|p| ((p.instructions() as f64 * factor).round().max(1.0)) as u64)
            .sum();
        prop_assert_eq!(scaled.total_instructions(), expected);
    }

    /// Every random program executes at a positive, finite rate at every
    /// p-state.
    #[test]
    fn random_programs_have_finite_rates(seed in 0u64..10_000) {
        let program = random_program(seed, 5);
        let table = PStateTable::pentium_m_755();
        let timings = MemoryTimings::pentium_m_755();
        for phase in program.phases() {
            for (_, state) in table.iter() {
                let rates = evaluate(phase, state, &timings);
                prop_assert!(rates.instructions_per_second.is_finite());
                prop_assert!(rates.instructions_per_second > 0.0);
                prop_assert!(rates.ipc > 0.0 && rates.ipc < 4.0);
                prop_assert!(rates.dpc >= rates.ipc);
            }
        }
    }

    /// Characterization budgets flow through to programs for any loop and
    /// footprint.
    #[test]
    fn characterization_budget_is_respected(
        loop_index in 0usize..4,
        footprint_index in 0usize..3,
        budget in 1_000u64..10_000_000,
    ) {
        let microloop = MicroLoop::ALL[loop_index];
        let footprint = Footprint::ALL[footprint_index];
        let c = characterize_with_budget(microloop, footprint, budget).unwrap();
        prop_assert_eq!(c.phase.instructions(), budget);
        // Derived miss rates respect the nesting invariants by construction.
        prop_assert!(c.phase.l2_mpi() <= c.phase.l1_mpi() + c.phase.prefetch_per_inst() + 1e-12);
        prop_assert!(c.phase.l1_mpi() <= c.phase.mem_fraction() + 1e-12);
    }
}

#[test]
fn every_spec_benchmark_is_well_formed_at_every_pstate() {
    let table = PStateTable::pentium_m_755();
    let timings = MemoryTimings::pentium_m_755();
    for bench in spec::suite() {
        for phase in bench.program().phases() {
            for (_, state) in table.iter() {
                let rates = evaluate(phase, state, &timings);
                assert!(
                    rates.ipc > 0.05 && rates.ipc < 3.0,
                    "{}/{}: IPC {} out of plausible range",
                    bench.name(),
                    phase.name(),
                    rates.ipc
                );
                assert!(rates.dcu_outstanding_per_cycle >= 0.0);
            }
        }
    }
}
