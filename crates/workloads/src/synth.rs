//! Random workload generation for property-based testing.
//!
//! Generates valid-by-construction [`PhaseDescriptor`]s and
//! [`PhaseProgram`]s across the whole plausible space of workload
//! behaviour, so property tests can check governor invariants (never exceed
//! the p-state table, respect limits, …) on workloads nobody hand-crafted.

use aapm_platform::noise::NoiseSource;
use aapm_platform::phase::PhaseDescriptor;
use aapm_platform::program::PhaseProgram;

/// Bounds for random phase generation.
#[derive(Debug, Clone, Copy)]
pub struct SynthBounds {
    /// Minimum and maximum instructions per phase.
    pub instructions: (u64, u64),
    /// Range of core CPI.
    pub core_cpi: (f64, f64),
    /// Range of decode ratio.
    pub decode_ratio: (f64, f64),
    /// Maximum L1 misses per instruction.
    pub max_l1_mpi: f64,
    /// Maximum activity factor.
    pub max_activity: f64,
}

impl Default for SynthBounds {
    fn default() -> Self {
        SynthBounds {
            instructions: (1_000_000, 2_000_000_000),
            core_cpi: (0.4, 2.0),
            decode_ratio: (1.0, 1.6),
            max_l1_mpi: 0.12,
            max_activity: 1.35,
        }
    }
}

/// Generates one random, always-valid phase.
pub fn random_phase(noise: &mut NoiseSource, index: usize, bounds: &SynthBounds) -> PhaseDescriptor {
    let mem_fraction = noise.uniform(0.1, 0.55);
    let l1_mpi = noise.uniform(0.0, bounds.max_l1_mpi.min(mem_fraction));
    let l2_mpi = noise.uniform(0.0, l1_mpi.max(1e-9));
    PhaseDescriptor::builder(format!("synth-{index}"))
        .instructions(
            bounds.instructions.0 + noise.below(bounds.instructions.1 - bounds.instructions.0),
        )
        .core_cpi(noise.uniform(bounds.core_cpi.0, bounds.core_cpi.1))
        .decode_ratio(noise.uniform(bounds.decode_ratio.0, bounds.decode_ratio.1))
        .fp_fraction(noise.uniform(0.0, 0.4))
        .mem_fraction(mem_fraction)
        .l1_mpi(l1_mpi)
        .l2_mpi(l2_mpi)
        .overlap(noise.uniform(0.0, 0.9))
        .activity(noise.uniform(0.7, bounds.max_activity))
        .branch_fraction(noise.uniform(0.03, 0.25))
        .mispredict_rate(noise.uniform(0.0, 0.1))
        .build()
        .expect("generated phase respects all invariants by construction")
}

/// Generates a random program of 1–`max_phases` phases.
///
/// # Panics
///
/// Panics if `max_phases` is zero.
pub fn random_program(seed: u64, max_phases: usize) -> PhaseProgram {
    assert!(max_phases > 0, "max_phases must be positive");
    let mut noise = NoiseSource::seeded(seed);
    let bounds = SynthBounds::default();
    let count = 1 + noise.below(max_phases as u64) as usize;
    let phases = (0..count).map(|i| random_phase(&mut noise, i, &bounds)).collect();
    PhaseProgram::new(format!("synth-program-{seed}"), phases)
        .expect("at least one phase generated")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_programs_are_valid_and_deterministic() {
        for seed in 0..50 {
            let a = random_program(seed, 6);
            let b = random_program(seed, 6);
            assert_eq!(a, b);
            assert!(a.len() >= 1 && a.len() <= 6);
            assert!(a.total_instructions() > 0);
        }
    }

    #[test]
    fn different_seeds_give_different_programs() {
        assert_ne!(random_program(1, 4), random_program(2, 4));
    }

    #[test]
    fn generated_phases_respect_bounds() {
        let mut noise = NoiseSource::seeded(3);
        let bounds = SynthBounds::default();
        for i in 0..200 {
            let p = random_phase(&mut noise, i, &bounds);
            assert!(p.l1_mpi() <= p.mem_fraction());
            assert!(p.l2_mpi() <= p.l1_mpi() + 1e-12);
            assert!(p.core_cpi() >= bounds.core_cpi.0 && p.core_cpi() <= bounds.core_cpi.1);
            assert!(p.activity() <= bounds.max_activity);
        }
    }
}
