//! The MS-Loops microbenchmarks (paper Table I).
//!
//! Four simple array-access loops used both to study platform
//! characteristics and as the training set for the counter-based models:
//!
//! | Loop | Behaviour |
//! |---|---|
//! | `DAXPY` | Linpack's daxpy: `y[i] += a * x[i]` over two FP arrays |
//! | `FMA` | dot-product of adjacent pairs of one array, accumulated in a register; exercises the hardware prefetcher hardest |
//! | `MCOPY` | sequential array copy; bandwidth test |
//! | `MLOAD_RAND` | random loads over an array; latency test |
//!
//! Each loop is described by its per-element instruction mix (known from its
//! inner-loop code) plus a generated *address stream*. Miss rates are not
//! assumed — they are measured by running the stream through the simulated
//! cache hierarchy (see [`crate::characterize`]).

use aapm_platform::noise::NoiseSource;

use crate::footprint::Footprint;

/// One of the four MS-Loops microbenchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MicroLoop {
    /// Linpack daxpy: scale-and-add over two arrays.
    Daxpy,
    /// Floating-point multiply-add over adjacent pairs, register-accumulated.
    Fma,
    /// Sequential memory copy between two arrays.
    Mcopy,
    /// Random memory loads over one array.
    MloadRand,
}

/// Per-element instruction mix of a loop's inner body, fixed by its code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopMix {
    /// Retired instructions per loop element.
    pub instructions_per_element: f64,
    /// Memory accesses (loads + stores) per element.
    pub mem_accesses_per_element: f64,
    /// Floating-point operations per element.
    pub fp_per_element: f64,
    /// Branch instructions per element.
    pub branches_per_element: f64,
    /// Mispredictions per branch (loop-closing branches predict well).
    pub mispredict_rate: f64,
    /// Cycles per instruction with a perfect memory system.
    pub core_cpi: f64,
    /// Decoded-to-retired ratio.
    pub decode_ratio: f64,
    /// Fraction of memory latency the loop's access pattern lets the core
    /// overlap (independent iterations ⇒ high; pointer-chase ⇒ none).
    pub overlap: f64,
    /// Switching-activity factor relative to nominal.
    pub activity: f64,
}

impl MicroLoop {
    /// All four loops in Table I order.
    pub const ALL: [MicroLoop; 4] =
        [MicroLoop::Daxpy, MicroLoop::Fma, MicroLoop::Mcopy, MicroLoop::MloadRand];

    /// The loop's name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            MicroLoop::Daxpy => "DAXPY",
            MicroLoop::Fma => "FMA",
            MicroLoop::Mcopy => "MCOPY",
            MicroLoop::MloadRand => "MLOAD_RAND",
        }
    }

    /// One-line description (paper Table I).
    pub fn description(self) -> &'static str {
        match self {
            MicroLoop::Daxpy => {
                "Linpack daxpy: traverses two floating-point arrays, scaling each element \
                 of the first by a constant and adding it to the second"
            }
            MicroLoop::Fma => {
                "floating-point multiply-add: reads adjacent element pairs of one array, \
                 accumulating their dot product in a register; exercises hardware \
                 prefetching hardest"
            }
            MicroLoop::Mcopy => {
                "sequentially copies all elements of one array to a second; tests the \
                 bandwidth limits of the accessed hierarchy level"
            }
            MicroLoop::MloadRand => {
                "random memory loads over an array; determines the latency of a memory \
                 hierarchy level"
            }
        }
    }

    /// The loop's per-element instruction mix.
    pub fn mix(self) -> LoopMix {
        match self {
            // ld x[i]; ld y[i]; mul; add; st y[i]; inc; cmp+branch ≈ 8 inst.
            MicroLoop::Daxpy => LoopMix {
                instructions_per_element: 8.0,
                mem_accesses_per_element: 3.0,
                fp_per_element: 2.0,
                branches_per_element: 1.0,
                mispredict_rate: 0.002,
                core_cpi: 0.62,
                decode_ratio: 1.02,
                overlap: 0.55,
                activity: 1.0,
            },
            // ld a[2i]; ld a[2i+1]; mul; add-accumulate; inc; cmp+branch ≈ 6.
            // Activity calibrated so the L2-resident FMA lands at the
            // paper's Table III worst case (≈17.8 W at 2 GHz).
            MicroLoop::Fma => LoopMix {
                instructions_per_element: 6.0,
                mem_accesses_per_element: 2.0,
                fp_per_element: 2.0,
                branches_per_element: 1.0,
                mispredict_rate: 0.002,
                core_cpi: 0.48,
                decode_ratio: 1.05,
                overlap: 0.85,
                activity: 0.89,
            },
            // ld a[i]; st b[i]; inc; cmp+branch ≈ 5 inst.
            MicroLoop::Mcopy => LoopMix {
                instructions_per_element: 5.0,
                mem_accesses_per_element: 2.0,
                fp_per_element: 0.0,
                branches_per_element: 1.0,
                mispredict_rate: 0.002,
                core_cpi: 0.60,
                decode_ratio: 1.02,
                overlap: 0.70,
                activity: 0.90,
            },
            // compute index; ld a[idx]; consume; cmp+branch ≈ 5 inst.
            MicroLoop::MloadRand => LoopMix {
                instructions_per_element: 5.0,
                mem_accesses_per_element: 1.0,
                fp_per_element: 0.0,
                branches_per_element: 1.0,
                mispredict_rate: 0.01,
                core_cpi: 0.80,
                decode_ratio: 1.05,
                overlap: 0.02,
                activity: 0.85,
            },
        }
    }

    /// Number of loop elements in one pass over `footprint` bytes of data.
    ///
    /// Element size is 8 bytes (doubles); loops that touch two arrays split
    /// the footprint between them, and FMA consumes two elements per
    /// iteration.
    pub fn elements_per_pass(self, footprint: Footprint) -> u64 {
        let bytes = footprint.bytes();
        match self {
            // Two arrays share the footprint; one element of each per iter.
            MicroLoop::Daxpy | MicroLoop::Mcopy => bytes / 16,
            // One array, two adjacent elements per iteration.
            MicroLoop::Fma => bytes / 16,
            // One array, one element per iteration.
            MicroLoop::MloadRand => bytes / 8,
        }
    }

    /// Visits the byte addresses of one pass over the data, in access
    /// order, without materializing the stream. `seed` only affects
    /// `MLOAD_RAND`. Characterization drives hundreds of millions of
    /// addresses per suite; the visitor form keeps that O(1) in memory
    /// where [`MicroLoop::stream`] would allocate multi-megabyte vectors.
    pub fn for_each_address(
        self,
        footprint: Footprint,
        seed: u64,
        mut visit: impl FnMut(u64),
    ) {
        let bytes = footprint.bytes();
        let elements = self.elements_per_pass(footprint);
        match self {
            MicroLoop::Daxpy => {
                // x array at 0, y array at bytes/2; per element: ld x, ld y,
                // st y (same address as the load).
                let half = bytes / 2;
                for i in 0..elements {
                    let y = half + i * 8;
                    visit(i * 8);
                    visit(y);
                    visit(y);
                }
            }
            MicroLoop::Fma => {
                // Single array; adjacent pair per iteration.
                for i in 0..elements {
                    visit(i * 16);
                    visit(i * 16 + 8);
                }
            }
            MicroLoop::Mcopy => {
                // Source at 0, destination at bytes/2.
                let half = bytes / 2;
                for i in 0..elements {
                    visit(i * 8);
                    visit(half + i * 8);
                }
            }
            MicroLoop::MloadRand => {
                let mut noise = NoiseSource::seeded(seed);
                let slots = bytes / 8;
                for _ in 0..elements {
                    visit(noise.below(slots) * 8);
                }
            }
        }
    }

    /// Generates the byte addresses of one pass over the data, in access
    /// order. `seed` only affects `MLOAD_RAND`. Prefer
    /// [`MicroLoop::for_each_address`] on hot paths.
    pub fn stream(self, footprint: Footprint, seed: u64) -> Vec<u64> {
        let mix = self.mix();
        let capacity = self.elements_per_pass(footprint) as f64 * mix.mem_accesses_per_element;
        let mut out = Vec::with_capacity(capacity as usize);
        self.for_each_address(footprint, seed, |addr| out.push(addr));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_table_i() {
        let names: Vec<_> = MicroLoop::ALL.iter().map(|l| l.name()).collect();
        assert_eq!(names, vec!["DAXPY", "FMA", "MCOPY", "MLOAD_RAND"]);
    }

    #[test]
    fn mixes_are_internally_consistent() {
        for l in MicroLoop::ALL {
            let m = l.mix();
            assert!(m.mem_accesses_per_element <= m.instructions_per_element);
            assert!(m.fp_per_element <= m.instructions_per_element);
            assert!(m.branches_per_element <= m.instructions_per_element);
            assert!(m.core_cpi > 0.0);
            assert!(m.decode_ratio >= 1.0);
            assert!((0.0..1.0).contains(&m.overlap));
        }
    }

    #[test]
    fn fma_has_highest_overlap_mload_lowest() {
        let overlaps: Vec<_> = MicroLoop::ALL.iter().map(|l| l.mix().overlap).collect();
        let fma = MicroLoop::Fma.mix().overlap;
        let mload = MicroLoop::MloadRand.mix().overlap;
        assert!(overlaps.iter().all(|&o| o <= fma));
        assert!(overlaps.iter().all(|&o| o >= mload));
    }

    #[test]
    fn streams_stay_within_footprint() {
        for l in MicroLoop::ALL {
            for fp in Footprint::ALL {
                let stream = l.stream(fp, 1);
                assert!(!stream.is_empty());
                let max = stream.iter().max().unwrap();
                assert!(*max < fp.bytes(), "{l:?} {fp} touched {max} >= {}", fp.bytes());
            }
        }
    }

    #[test]
    fn stream_lengths_match_mix() {
        for l in MicroLoop::ALL {
            let fp = Footprint::L1;
            let stream = l.stream(fp, 1);
            let per_element = l.mix().mem_accesses_per_element;
            let expected = l.elements_per_pass(fp) as f64 * per_element;
            assert_eq!(stream.len() as f64, expected, "{l:?}");
        }
    }

    #[test]
    fn sequential_loops_are_deterministic_random_loop_is_seeded() {
        for l in [MicroLoop::Daxpy, MicroLoop::Fma, MicroLoop::Mcopy] {
            assert_eq!(l.stream(Footprint::L1, 1), l.stream(Footprint::L1, 2));
        }
        let a = MicroLoop::MloadRand.stream(Footprint::L1, 1);
        let b = MicroLoop::MloadRand.stream(Footprint::L1, 1);
        let c = MicroLoop::MloadRand.stream(Footprint::L1, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn descriptions_are_nonempty() {
        for l in MicroLoop::ALL {
            assert!(!l.description().is_empty());
        }
    }
}
