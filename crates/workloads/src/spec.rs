//! Synthetic SPEC CPU2000 suite.
//!
//! SPEC CPU2000 binaries and reference inputs cannot ship with this
//! reproduction, so each of the 26 benchmarks is modelled as a phase program
//! whose intrinsics are crafted from the paper's own per-benchmark
//! observations:
//!
//! * `swim`, `lucas`, `equake`, `mcf`, `applu`, `art` — high DCU-miss
//!   outstanding and memory-request rates; execution time barely improves
//!   with frequency (left end of the paper's Figure 7).
//! * `perlbmk`, `mesa`, `eon`, `crafty`, `sixtrack` — low stall rates; they
//!   scale almost linearly with frequency (right end of Figure 7).
//! * `crafty` and `perlbmk` have the highest average power, followed by
//!   `galgel`; `bzip2` slightly lower (Figure 7 discussion).
//! * `galgel` is bursty, alternating low-power and >18 W phases with
//!   switching activity above anything in the model's training set — the
//!   reason PM's static model underestimates it.
//! * `ammp` alternates memory-bound and core-bound regions (Figures 5, 8).
//! * `art` and `mcf` sit *between* the classes: their DCU counters report
//!   heavily-overlapped misses, so the counter-based performance model
//!   misclassifies how their throughput scales — the paper's PS
//!   floor-violation cases.
//!
//! Durations are scaled to a few seconds at 2 GHz so a full-suite experiment
//! stays fast; all paper metrics are relative (speedups, savings), so the
//! absolute scale is immaterial.

use aapm_platform::error::Result;
use aapm_platform::phase::PhaseDescriptor;
use aapm_platform::pipeline::{evaluate, MemoryTimings};
use aapm_platform::program::PhaseProgram;
use aapm_platform::pstate::PStateTable;

/// Integer or floating-point half of the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecCategory {
    /// CINT2000.
    Int,
    /// CFP2000.
    Fp,
}

/// One synthetic SPEC CPU2000 benchmark.
#[derive(Debug, Clone)]
pub struct SpecBenchmark {
    name: &'static str,
    category: SpecCategory,
    program: PhaseProgram,
}

impl SpecBenchmark {
    /// Benchmark name (`"swim"`, `"crafty"`, …).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// CINT2000 or CFP2000.
    pub fn category(&self) -> SpecCategory {
        self.category
    }

    /// The executable phase program.
    pub fn program(&self) -> &PhaseProgram {
        &self.program
    }
}

/// The 26 benchmark names, CINT2000 first, in SPEC's customary order.
pub const NAMES: [&str; 26] = [
    "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk", "gap", "vortex", "bzip2",
    "twolf", "wupwise", "swim", "mgrid", "applu", "mesa", "galgel", "art", "equake", "facerec",
    "ammp", "lucas", "fma3d", "sixtrack", "apsi",
];

/// Frequency-independent intrinsics of one synthetic phase, in compact form.
#[derive(Debug, Clone, Copy)]
struct Traits {
    core_cpi: f64,
    decode: f64,
    fp: f64,
    mem: f64,
    l1_mpi: f64,
    l2_mpi: f64,
    overlap: f64,
    activity: f64,
    branch: f64,
    mispredict: f64,
}

/// Builds a phase whose instruction budget makes it run `secs_at_2ghz`
/// seconds at the top p-state.
fn phase(name: &str, secs_at_2ghz: f64, t: Traits) -> PhaseDescriptor {
    let table = PStateTable::pentium_m_755();
    let top = table.get(table.highest()).expect("table has a top state");
    let timings = MemoryTimings::pentium_m_755();
    // Provisional phase (budget 1) to learn the throughput at 2 GHz.
    let proto = PhaseDescriptor::builder(name)
        .instructions(1)
        .core_cpi(t.core_cpi)
        .decode_ratio(t.decode)
        .fp_fraction(t.fp)
        .mem_fraction(t.mem)
        .l1_mpi(t.l1_mpi)
        .l2_mpi(t.l2_mpi)
        .overlap(t.overlap)
        .activity(t.activity)
        .branch_fraction(t.branch)
        .mispredict_rate(t.mispredict)
        .build()
        .unwrap_or_else(|e| panic!("built-in phase `{name}` invalid: {e}"));
    let ips = evaluate(&proto, top, &timings).instructions_per_second;
    proto.with_instructions((ips * secs_at_2ghz).round().max(1.0) as u64)
}

/// Builds a single-phase benchmark.
fn mono(
    name: &'static str,
    category: SpecCategory,
    secs_at_2ghz: f64,
    t: Traits,
) -> SpecBenchmark {
    SpecBenchmark { name, category, program: PhaseProgram::from_phase(phase(name, secs_at_2ghz, t)) }
}

/// Builds an alternating two-phase benchmark repeated `repeats` times.
fn alternating(
    name: &'static str,
    category: SpecCategory,
    a: (&str, f64, Traits),
    b: (&str, f64, Traits),
    repeats: usize,
) -> SpecBenchmark {
    let phases = vec![phase(a.0, a.1, a.2), phase(b.0, b.1, b.2)];
    let program = PhaseProgram::new(name, phases)
        .expect("two-phase program is non-empty")
        .repeated(repeats);
    SpecBenchmark { name, category, program }
}

/// Builds a benchmark from an arbitrary phase pattern repeated `repeats`
/// times (for irregular bursty workloads like `galgel`).
fn patterned(
    name: &'static str,
    category: SpecCategory,
    pattern: Vec<(&str, f64, Traits)>,
    repeats: usize,
) -> SpecBenchmark {
    let phases = pattern.into_iter().map(|(n, secs, t)| phase(n, secs, t)).collect();
    let program = PhaseProgram::new(name, phases)
        .expect("pattern is non-empty")
        .repeated(repeats);
    SpecBenchmark { name, category, program }
}

/// Builds the full 26-benchmark suite, in [`NAMES`] order.
pub fn suite() -> Vec<SpecBenchmark> {
    use SpecCategory::{Fp, Int};
    vec![
        // ---------------- CINT2000 ----------------
        mono("gzip", Int, 3.6, Traits {
            core_cpi: 0.60, decode: 1.20, fp: 0.0, mem: 0.40, l1_mpi: 0.040, l2_mpi: 0.0020,
            overlap: 0.35, activity: 1.00, branch: 0.15, mispredict: 0.040,
        }),
        mono("vpr", Int, 3.8, Traits {
            core_cpi: 0.70, decode: 1.25, fp: 0.05, mem: 0.40, l1_mpi: 0.035, l2_mpi: 0.0022,
            overlap: 0.30, activity: 0.95, branch: 0.14, mispredict: 0.050,
        }),
        mono("gcc", Int, 3.4, Traits {
            core_cpi: 0.65, decode: 1.35, fp: 0.0, mem: 0.42, l1_mpi: 0.050, l2_mpi: 0.0028,
            overlap: 0.40, activity: 1.00, branch: 0.18, mispredict: 0.050,
        }),
        // mcf: memory-bound by the DCU counter, but half its miss latency
        // overlaps — the counter model over-predicts how gently it slows.
        mono("mcf", Int, 4.6, Traits {
            core_cpi: 0.85, decode: 1.10, fp: 0.0, mem: 0.35, l1_mpi: 0.080, l2_mpi: 0.0340,
            overlap: 0.35, activity: 0.90, branch: 0.20, mispredict: 0.080,
        }),
        // crafty: highest SPEC power (dense speculation, hot datapath).
        mono("crafty", Int, 3.5, Traits {
            core_cpi: 0.45, decode: 1.50, fp: 0.0, mem: 0.35, l1_mpi: 0.015, l2_mpi: 0.0003,
            overlap: 0.20, activity: 1.30, branch: 0.20, mispredict: 0.040,
        }),
        mono("parser", Int, 4.0, Traits {
            core_cpi: 0.70, decode: 1.30, fp: 0.0, mem: 0.40, l1_mpi: 0.040, l2_mpi: 0.0022,
            overlap: 0.35, activity: 0.95, branch: 0.17, mispredict: 0.050,
        }),
        mono("eon", Int, 3.3, Traits {
            core_cpi: 0.55, decode: 1.30, fp: 0.15, mem: 0.35, l1_mpi: 0.004, l2_mpi: 0.0002,
            overlap: 0.20, activity: 0.95, branch: 0.12, mispredict: 0.020,
        }),
        // perlbmk: with crafty, the hottest of the suite.
        mono("perlbmk", Int, 3.7, Traits {
            core_cpi: 0.48, decode: 1.48, fp: 0.0, mem: 0.40, l1_mpi: 0.010, l2_mpi: 0.0004,
            overlap: 0.20, activity: 1.28, branch: 0.18, mispredict: 0.030,
        }),
        mono("gap", Int, 3.9, Traits {
            core_cpi: 0.65, decode: 1.20, fp: 0.05, mem: 0.40, l1_mpi: 0.045, l2_mpi: 0.0025,
            overlap: 0.40, activity: 0.95, branch: 0.13, mispredict: 0.030,
        }),
        mono("vortex", Int, 3.6, Traits {
            core_cpi: 0.60, decode: 1.30, fp: 0.0, mem: 0.42, l1_mpi: 0.045, l2_mpi: 0.0020,
            overlap: 0.35, activity: 1.05, branch: 0.15, mispredict: 0.030,
        }),
        // bzip2: a notch below crafty/perlbmk — its compression inner loop
        // is hot enough to get throttled at tight limits, but only part of
        // the time, so both its power and its PM speedup sit slightly lower.
        alternating(
            "bzip2",
            Int,
            ("bzip2-compress", 0.30, Traits {
                core_cpi: 0.45, decode: 1.45, fp: 0.0, mem: 0.40, l1_mpi: 0.010, l2_mpi: 0.0005,
                overlap: 0.20, activity: 1.15, branch: 0.16, mispredict: 0.030,
            }),
            ("bzip2-scan", 0.65, Traits {
                core_cpi: 0.55, decode: 1.25, fp: 0.0, mem: 0.40, l1_mpi: 0.030, l2_mpi: 0.0020,
                overlap: 0.30, activity: 1.10, branch: 0.14, mispredict: 0.030,
            }),
            4,
        ),
        mono("twolf", Int, 4.1, Traits {
            core_cpi: 0.60, decode: 1.30, fp: 0.03, mem: 0.40, l1_mpi: 0.030, l2_mpi: 0.0010,
            overlap: 0.20, activity: 1.00, branch: 0.14, mispredict: 0.040,
        }),
        // ---------------- CFP2000 ----------------
        mono("wupwise", Fp, 4.2, Traits {
            core_cpi: 0.60, decode: 1.10, fp: 0.30, mem: 0.40, l1_mpi: 0.050, l2_mpi: 0.0025,
            overlap: 0.45, activity: 1.00, branch: 0.08, mispredict: 0.010,
        }),
        // swim: the suite's most memory-bound member; execution time is
        // essentially flat across p-states (paper Figure 2).
        mono("swim", Fp, 4.8, Traits {
            core_cpi: 0.40, decode: 1.05, fp: 0.30, mem: 0.45, l1_mpi: 0.060, l2_mpi: 0.0500,
            overlap: 0.05, activity: 1.00, branch: 0.06, mispredict: 0.010,
        }),
        mono("mgrid", Fp, 4.3, Traits {
            core_cpi: 0.60, decode: 1.05, fp: 0.35, mem: 0.45, l1_mpi: 0.060, l2_mpi: 0.0028,
            overlap: 0.50, activity: 1.00, branch: 0.05, mispredict: 0.010,
        }),
        mono("applu", Fp, 4.5, Traits {
            core_cpi: 0.50, decode: 1.05, fp: 0.30, mem: 0.45, l1_mpi: 0.060, l2_mpi: 0.0320,
            overlap: 0.15, activity: 0.95, branch: 0.05, mispredict: 0.010,
        }),
        mono("mesa", Fp, 3.4, Traits {
            core_cpi: 0.55, decode: 1.20, fp: 0.25, mem: 0.35, l1_mpi: 0.006, l2_mpi: 0.0005,
            overlap: 0.20, activity: 1.00, branch: 0.10, mispredict: 0.020,
        }),
        // galgel: bursty — short (< 100 ms) hot FP phases whose switching
        // activity exceeds anything in the model's training set, separated
        // by quiet stretches of irregular length. PM's static model
        // underestimates the bursts; quiet stretches longer than PM's
        // 100 ms raise window lure the frequency back up just before the
        // next burst lands (the paper's only power-limit violations; its
        // 100 ms moving average peaks near 16.6 W while 10 ms samples
        // exceed 18 W).
        patterned(
            "galgel",
            Fp,
            {
                let burst = Traits {
                    core_cpi: 0.58, decode: 1.30, fp: 0.30, mem: 0.45, l1_mpi: 0.020,
                    l2_mpi: 0.0003, overlap: 0.20, activity: 1.39, branch: 0.08,
                    mispredict: 0.010,
                };
                // The quiet phase must classify core-bound to the DCU
                // counter, or PS would mistake galgel for a deep saver.
                let quiet = Traits {
                    core_cpi: 0.70, decode: 1.10, fp: 0.25, mem: 0.40, l1_mpi: 0.050,
                    l2_mpi: 0.0008, overlap: 0.40, activity: 1.00, branch: 0.08,
                    mispredict: 0.020,
                };
                vec![
                    ("galgel-burst", 0.08, burst),
                    ("galgel-quiet", 0.12, quiet),
                    ("galgel-burst", 0.06, burst),
                    ("galgel-quiet", 0.04, quiet),
                    ("galgel-burst", 0.08, burst),
                    ("galgel-quiet", 0.20, quiet),
                ]
            },
            8,
        ),
        // art: reported memory-bound by the DCU counter, yet 72% of its
        // miss latency overlaps — its throughput scales far more steeply
        // than the `0.81` model exponent predicts (PS violation case).
        mono("art", Fp, 4.4, Traits {
            core_cpi: 0.60, decode: 1.10, fp: 0.25, mem: 0.40, l1_mpi: 0.060, l2_mpi: 0.0090,
            overlap: 0.45, activity: 0.95, branch: 0.08, mispredict: 0.010,
        }),
        mono("equake", Fp, 4.6, Traits {
            core_cpi: 0.50, decode: 1.10, fp: 0.30, mem: 0.42, l1_mpi: 0.060, l2_mpi: 0.0440,
            overlap: 0.08, activity: 0.95, branch: 0.07, mispredict: 0.010,
        }),
        mono("facerec", Fp, 4.0, Traits {
            core_cpi: 0.60, decode: 1.10, fp: 0.30, mem: 0.40, l1_mpi: 0.050, l2_mpi: 0.0060,
            overlap: 0.45, activity: 1.00, branch: 0.07, mispredict: 0.010,
        }),
        // ammp: alternates memory-bound and core-bound regions; the
        // workload behind the paper's PM and PS time-series figures.
        alternating(
            "ammp",
            Fp,
            ("ammp-mem", 0.35, Traits {
                core_cpi: 0.55, decode: 1.10, fp: 0.20, mem: 0.42, l1_mpi: 0.050, l2_mpi: 0.0300,
                overlap: 0.20, activity: 0.95, branch: 0.08, mispredict: 0.015,
            }),
            ("ammp-core", 0.30, Traits {
                core_cpi: 0.55, decode: 1.20, fp: 0.25, mem: 0.35, l1_mpi: 0.010, l2_mpi: 0.0008,
                overlap: 0.20, activity: 1.05, branch: 0.10, mispredict: 0.020,
            }),
            8,
        ),
        mono("lucas", Fp, 4.7, Traits {
            core_cpi: 0.45, decode: 1.05, fp: 0.30, mem: 0.42, l1_mpi: 0.050, l2_mpi: 0.0420,
            overlap: 0.08, activity: 0.95, branch: 0.05, mispredict: 0.010,
        }),
        mono("fma3d", Fp, 4.1, Traits {
            core_cpi: 0.60, decode: 1.15, fp: 0.30, mem: 0.40, l1_mpi: 0.040, l2_mpi: 0.0022,
            overlap: 0.40, activity: 1.00, branch: 0.08, mispredict: 0.020,
        }),
        // sixtrack: the pure core-bound extreme; performance scales
        // linearly with frequency (paper Figure 2).
        mono("sixtrack", Fp, 3.2, Traits {
            core_cpi: 0.50, decode: 1.05, fp: 0.30, mem: 0.30, l1_mpi: 0.002, l2_mpi: 0.0001,
            overlap: 0.10, activity: 0.88, branch: 0.10, mispredict: 0.010,
        }),
        mono("apsi", Fp, 4.2, Traits {
            core_cpi: 0.60, decode: 1.15, fp: 0.30, mem: 0.40, l1_mpi: 0.050, l2_mpi: 0.0025,
            overlap: 0.40, activity: 1.00, branch: 0.08, mispredict: 0.015,
        }),
    ]
}

/// Looks up one benchmark by name.
pub fn by_name(name: &str) -> Option<SpecBenchmark> {
    suite().into_iter().find(|b| b.name == name)
}

/// Total wall-clock time of `program` run uninterrupted at one p-state
/// (analytic; no jitter). The static-clocking baseline in the experiments is
/// built on this.
pub fn program_time_at(
    program: &PhaseProgram,
    pstate: &aapm_platform::pstate::PState,
    timings: &MemoryTimings,
) -> f64 {
    program
        .phases()
        .iter()
        .map(|p| aapm_platform::pipeline::phase_time_seconds(p, pstate, timings))
        .sum()
}

/// Convenience: returns the suite as (name, program) pairs.
///
/// # Errors
///
/// Never fails today; kept fallible for future data-driven suites.
pub fn suite_programs() -> Result<Vec<(String, PhaseProgram)>> {
    Ok(suite().into_iter().map(|b| (b.name.to_owned(), b.program)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapm_platform::power::GroundTruthPower;
    use aapm_platform::pstate::PStateTable;
    use std::collections::HashMap;

    fn top_state() -> aapm_platform::pstate::PState {
        let table = PStateTable::pentium_m_755();
        *table.get(table.highest()).unwrap()
    }

    fn state_1800() -> aapm_platform::pstate::PState {
        let table = PStateTable::pentium_m_755();
        let id = table.id_of_frequency(aapm_platform::units::MegaHertz::new(1800)).unwrap();
        *table.get(id).unwrap()
    }

    /// Instruction-weighted mean power of a program at a p-state.
    fn mean_power(b: &SpecBenchmark, ps: &aapm_platform::pstate::PState) -> f64 {
        let timings = MemoryTimings::pentium_m_755();
        let power = GroundTruthPower::calibrated();
        let mut energy = 0.0;
        let mut time = 0.0;
        for phase in b.program().phases() {
            let t = aapm_platform::pipeline::phase_time_seconds(phase, ps, &timings);
            let rates = evaluate(phase, ps, &timings);
            energy += power.power(ps, &rates, phase.activity()).watts() * t;
            time += t;
        }
        energy / time
    }

    fn speedup_2000_over_1800(b: &SpecBenchmark) -> f64 {
        let timings = MemoryTimings::pentium_m_755();
        let t2000 = program_time_at(b.program(), &top_state(), &timings);
        let t1800 = program_time_at(b.program(), &state_1800(), &timings);
        t1800 / t2000
    }

    #[test]
    fn suite_has_26_unique_benchmarks() {
        let s = suite();
        assert_eq!(s.len(), 26);
        let names: std::collections::HashSet<_> = s.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 26);
        for b in &s {
            assert!(NAMES.contains(&b.name()));
        }
    }

    #[test]
    fn category_split_is_12_int_14_fp() {
        let s = suite();
        let ints = s.iter().filter(|b| b.category() == SpecCategory::Int).count();
        assert_eq!(ints, 12);
        assert_eq!(s.len() - ints, 14);
    }

    #[test]
    fn by_name_round_trips() {
        for name in NAMES {
            let b = by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(b.name(), name);
        }
        assert!(by_name("doom3").is_none());
    }

    #[test]
    fn durations_at_2ghz_are_a_few_seconds() {
        let timings = MemoryTimings::pentium_m_755();
        for b in suite() {
            let t = program_time_at(b.program(), &top_state(), &timings);
            assert!((2.0..8.0).contains(&t), "{}: {t:.2} s at 2 GHz", b.name());
        }
    }

    #[test]
    fn sixtrack_scales_linearly_swim_barely() {
        let sixtrack = speedup_2000_over_1800(&by_name("sixtrack").unwrap());
        let swim = speedup_2000_over_1800(&by_name("swim").unwrap());
        // Frequency ratio is 1.111.
        assert!(sixtrack > 1.10, "sixtrack speedup {sixtrack:.3} should be near 1.111");
        assert!(swim < 1.03, "swim speedup {swim:.3} should be near 1.0");
    }

    #[test]
    fn figure7_extremes_order_correctly() {
        let speedups: HashMap<&str, f64> =
            suite().iter().map(|b| (b.name(), speedup_2000_over_1800(b))).collect();
        // Memory-bound group below every core-bound benchmark.
        for slow in ["swim", "lucas", "equake", "applu"] {
            for fast in ["perlbmk", "mesa", "eon", "crafty", "sixtrack"] {
                assert!(
                    speedups[slow] < speedups[fast],
                    "{slow} ({}) should speed up less than {fast} ({})",
                    speedups[slow],
                    speedups[fast]
                );
            }
        }
    }

    #[test]
    fn crafty_and_perlbmk_are_hottest_galgel_bursts_higher() {
        let s = suite();
        let powers: HashMap<&str, f64> = s.iter().map(|b| (b.name(), mean_power(b, &top_state()))).collect();
        let crafty = powers["crafty"];
        let perlbmk = powers["perlbmk"];
        for (name, p) in &powers {
            if !["crafty", "perlbmk", "galgel"].contains(name) {
                assert!(
                    *p < crafty.max(perlbmk),
                    "{name} ({p:.1} W) should be below crafty/perlbmk ({crafty:.1}/{perlbmk:.1} W)"
                );
            }
        }
        // galgel's burst phase alone exceeds 17.5 W even though its average
        // sits below the crafty/perlbmk pair.
        let galgel = by_name("galgel").unwrap();
        let burst = galgel
            .program()
            .phases()
            .iter()
            .find(|p| p.name() == "galgel-burst")
            .unwrap()
            .clone();
        let timings = MemoryTimings::pentium_m_755();
        let rates = evaluate(&burst, &top_state(), &timings);
        let p = GroundTruthPower::calibrated()
            .power(&top_state(), &rates, burst.activity())
            .watts();
        assert!(p > 17.5, "galgel burst should exceed 17.5 W, got {p:.1}");
    }

    #[test]
    fn power_range_at_2ghz_spans_over_35_percent_of_peak() {
        // Paper Figure 1: the suite's power range at 2 GHz exceeds 35% of
        // peak operating power (~21 W class part).
        let powers: Vec<f64> = suite().iter().map(|b| mean_power(b, &top_state())).collect();
        let max = powers.iter().cloned().fold(f64::MIN, f64::max);
        let min = powers.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min > 0.35 * 21.0, "range {:.1} W too narrow", max - min);
        assert!(max < 21.0, "no SPEC average should exceed the TDP class");
    }

    #[test]
    fn memory_bound_group_is_dcu_classified_memory_bound() {
        // The paper's eq-3 threshold: DCU/IPC >= 1.21 → memory-bound.
        let timings = MemoryTimings::pentium_m_755();
        for name in ["swim", "lucas", "equake", "mcf", "applu", "art"] {
            let b = by_name(name).unwrap();
            let phase = &b.program().phases()[0];
            let r = evaluate(phase, &top_state(), &timings);
            let dcu_per_inst = r.dcu_outstanding_per_cycle / r.ipc;
            assert!(dcu_per_inst >= 1.21, "{name}: DCU/IPC {dcu_per_inst:.2} < 1.21");
        }
        for name in ["sixtrack", "crafty", "eon", "mesa", "perlbmk"] {
            let b = by_name(name).unwrap();
            let phase = &b.program().phases()[0];
            let r = evaluate(phase, &top_state(), &timings);
            let dcu_per_inst = r.dcu_outstanding_per_cycle / r.ipc;
            assert!(dcu_per_inst < 1.21, "{name}: DCU/IPC {dcu_per_inst:.2} >= 1.21");
        }
    }

    #[test]
    fn art_scales_steeper_than_its_dcu_class_suggests() {
        // art is DCU-classified memory-bound (previous test) yet speeds up
        // substantially with frequency — the PS violation mechanism.
        let art = speedup_2000_over_1800(&by_name("art").unwrap());
        let swim = speedup_2000_over_1800(&by_name("swim").unwrap());
        assert!(art > swim + 0.02, "art {art:.3} vs swim {swim:.3}");
        assert!(art > 1.05, "art should recover most of the frequency ratio, got {art:.3}");
    }

    #[test]
    fn multi_phase_benchmarks_alternate() {
        for name in ["ammp", "galgel"] {
            let b = by_name(name).unwrap();
            assert!(b.program().len() >= 8, "{name} should have many phases");
            let first = &b.program().phases()[0];
            let second = &b.program().phases()[1];
            assert_ne!(first.name(), second.name());
        }
    }

    #[test]
    fn suite_programs_match_suite() {
        let pairs = suite_programs().unwrap();
        assert_eq!(pairs.len(), 26);
        assert_eq!(pairs[0].0, "gzip");
    }
}
