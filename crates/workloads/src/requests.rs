//! Open-loop request workloads: diurnal rate curves × Poisson/burst
//! arrivals × heavy-tailed service demands.
//!
//! This is the production-serving workload family of ROADMAP item 2: a
//! [`RequestWorkload`] is a seeded, deterministic arrival process that
//! implements [`WorkloadSource`], so a session (or a fleet cohort) can run
//! it exactly like a batch program — except the machine is built in serve
//! mode and work arrives continuously instead of being fixed up front.
//!
//! The generator composes three classical ingredients:
//!
//! * a **diurnal rate curve** — a raised-cosine day between `base_rps`
//!   (midnight trough at `t = 0`) and `peak_rps` (midday), cyclic in the
//!   configured day length so multi-day runs repeat the pattern;
//! * **burst windows** — multiplicative rate spikes (the `serve`
//!   experiment's lunchtime burst) layered on the curve;
//! * **heavy-tailed service demands** — bounded-Pareto instruction counts
//!   (shape `alpha`, scale `mean_instructions`, cap `tail_cap × xmin`),
//!   the textbook model for web-request service times.
//!
//! Arrivals are drawn by *thinning*: candidate gaps are exponential at the
//! envelope rate `peak_rps × max(burst multipliers)` and accepted with
//! probability `rate(t) / envelope`, which samples the nonhomogeneous
//! Poisson process exactly. Everything flows from one
//! [`NoiseSource`], so the stream is a pure function of the seed and the
//! window sequence — byte-identical across runs and pool widths.

use aapm_platform::config::MachineConfig;
use aapm_platform::error::{PlatformError, Result};
use aapm_platform::machine::Machine;
use aapm_platform::noise::NoiseSource;
use aapm_platform::phase::PhaseDescriptor;
use aapm_platform::requests::Request;
use aapm_platform::units::Seconds;
use aapm_platform::workload::WorkloadSource;

/// A multiplicative rate spike over `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Spike start (simulated seconds).
    pub start: Seconds,
    /// Spike end (exclusive).
    pub end: Seconds,
    /// Rate multiplier (≥ 1 for a spike; < 1 models a partial outage).
    pub multiplier: f64,
}

/// Configuration for a [`RequestWorkload`]. Construct with
/// [`RequestWorkload::builder`].
#[derive(Debug, Clone)]
pub struct RequestWorkloadBuilder {
    name: String,
    seed: u64,
    day: Seconds,
    base_rps: f64,
    peak_rps: f64,
    bursts: Vec<Burst>,
    mean_instructions: f64,
    tail_alpha: f64,
    tail_cap: f64,
    service: Option<PhaseDescriptor>,
}

impl RequestWorkloadBuilder {
    /// Seed for the arrival/demand stream (default 0).
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Length of one diurnal cycle (default 86.4 s — a 1000× compressed
    /// day, so a full day simulates in minutes of machine time).
    pub fn day(&mut self, day: Seconds) -> &mut Self {
        self.day = day;
        self
    }

    /// Trough and peak arrival rates in requests per second (defaults
    /// 40 / 160).
    pub fn rates(&mut self, base_rps: f64, peak_rps: f64) -> &mut Self {
        self.base_rps = base_rps;
        self.peak_rps = peak_rps;
        self
    }

    /// Adds a burst window on top of the diurnal curve.
    pub fn burst(&mut self, start: Seconds, end: Seconds, multiplier: f64) -> &mut Self {
        self.bursts.push(Burst { start, end, multiplier });
        self
    }

    /// Service-demand distribution: mean instructions per request, Pareto
    /// tail shape, and the tail cap as a multiple of the minimum demand
    /// (defaults 2e6 instructions, α = 1.5, cap 50×).
    pub fn demand(&mut self, mean_instructions: f64, alpha: f64, cap: f64) -> &mut Self {
        self.mean_instructions = mean_instructions;
        self.tail_alpha = alpha;
        self.tail_cap = cap;
        self
    }

    /// Overrides the per-request instruction mix (default: a web-serving
    /// blend — moderate CPI, some memory traffic, branchy).
    pub fn service(&mut self, service: PhaseDescriptor) -> &mut Self {
        self.service = Some(service);
        self
    }

    /// Validates and builds the workload.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidConfig`] for non-finite or
    /// non-positive rates/day/demand parameters, `peak < base`, or burst
    /// windows with `end <= start` or a non-positive multiplier.
    pub fn build(&self) -> Result<RequestWorkload> {
        let invalid = |parameter: &'static str, reason: String| PlatformError::InvalidConfig {
            parameter,
            reason,
        };
        if !(self.day.seconds().is_finite() && self.day.is_positive()) {
            return Err(invalid("day", format!("day length {} must be positive", self.day)));
        }
        if !(self.base_rps.is_finite() && self.base_rps > 0.0) {
            return Err(invalid("base_rps", format!("base rate {} must be positive", self.base_rps)));
        }
        if !(self.peak_rps.is_finite() && self.peak_rps >= self.base_rps) {
            return Err(invalid(
                "peak_rps",
                format!("peak rate {} must be ≥ base rate {}", self.peak_rps, self.base_rps),
            ));
        }
        for b in &self.bursts {
            if !(b.start.seconds().is_finite() && b.end.seconds().is_finite() && b.end > b.start) {
                return Err(invalid(
                    "bursts",
                    format!("burst window [{}, {}) must be non-empty", b.start, b.end),
                ));
            }
            if !(b.multiplier.is_finite() && b.multiplier > 0.0) {
                return Err(invalid(
                    "bursts",
                    format!("burst multiplier {} must be positive", b.multiplier),
                ));
            }
        }
        if !(self.mean_instructions.is_finite() && self.mean_instructions >= 1.0) {
            return Err(invalid(
                "mean_instructions",
                format!("mean demand {} must be ≥ 1 instruction", self.mean_instructions),
            ));
        }
        if !(self.tail_alpha.is_finite() && self.tail_alpha > 1.0) {
            return Err(invalid(
                "tail_alpha",
                format!("Pareto shape {} must exceed 1 (finite mean)", self.tail_alpha),
            ));
        }
        if !(self.tail_cap.is_finite() && self.tail_cap > 1.0) {
            return Err(invalid(
                "tail_cap",
                format!("tail cap {} must exceed 1", self.tail_cap),
            ));
        }
        let service = match &self.service {
            Some(phase) => phase.clone(),
            None => default_service_phase()?,
        };
        // Envelope for thinning: the diurnal peak times the strongest
        // burst amplification (multipliers < 1 cannot raise the rate).
        let amplification =
            self.bursts.iter().map(|b| b.multiplier.max(1.0)).fold(1.0f64, f64::max);
        // Bounded Pareto with mean `mean_instructions`: solve for xmin
        // from E[X] = xmin × α/(α−1) × (1 − r^(α−1)) / (1 − r^α) with
        // r = 1/cap.
        let a = self.tail_alpha;
        let r = 1.0 / self.tail_cap;
        let mean_over_xmin = a / (a - 1.0) * (1.0 - r.powf(a - 1.0)) / (1.0 - r.powf(a));
        let xmin = (self.mean_instructions / mean_over_xmin).max(1.0);
        Ok(RequestWorkload {
            name: self.name.clone(),
            seed: self.seed,
            day: self.day,
            base_rps: self.base_rps,
            peak_rps: self.peak_rps,
            bursts: self.bursts.clone(),
            envelope_rps: self.peak_rps * amplification,
            xmin,
            xmax: xmin * self.tail_cap,
            alpha: a,
            service,
            rng: NoiseSource::seeded(self.seed ^ 0x005E_27EA_FF1C),
            cursor: Seconds::ZERO,
            staged: None,
        })
    }
}

/// The default per-request instruction mix: a web-serving blend.
fn default_service_phase() -> Result<PhaseDescriptor> {
    PhaseDescriptor::builder("serve-request")
        .instructions(1) // demand comes from each request
        .core_cpi(1.1)
        .decode_ratio(1.2)
        .mem_fraction(0.3)
        .l1_mpi(0.02)
        .l2_mpi(0.004)
        .branch_fraction(0.18)
        .mispredict_rate(0.01)
        .activity(0.85)
        .build()
}

/// A seeded open-loop request workload (see the module docs).
///
/// # Examples
///
/// ```
/// use aapm_platform::units::Seconds;
/// use aapm_platform::workload::WorkloadSource;
/// use aapm_workloads::requests::RequestWorkload;
///
/// let mut load = RequestWorkload::builder("front-end")
///     .seed(7)
///     .rates(50.0, 200.0)
///     .burst(Seconds::new(40.0), Seconds::new(50.0), 3.0)
///     .build()?;
/// let mut out = Vec::new();
/// load.arrivals_into(Seconds::ZERO, Seconds::new(10.0), &mut out);
/// assert!(!out.is_empty());
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RequestWorkload {
    name: String,
    seed: u64,
    day: Seconds,
    base_rps: f64,
    peak_rps: f64,
    bursts: Vec<Burst>,
    envelope_rps: f64,
    xmin: f64,
    xmax: f64,
    alpha: f64,
    service: PhaseDescriptor,
    rng: NoiseSource,
    /// Last candidate arrival time drawn (the thinning clock).
    cursor: Seconds,
    /// An accepted arrival beyond the last window's end, carried into the
    /// next window so no draw is ever discarded.
    staged: Option<Request>,
}

impl RequestWorkload {
    /// Starts configuring a request workload named `name`.
    pub fn builder(name: impl Into<String>) -> RequestWorkloadBuilder {
        RequestWorkloadBuilder {
            name: name.into(),
            seed: 0,
            day: Seconds::new(86.4),
            base_rps: 40.0,
            peak_rps: 160.0,
            bursts: Vec::new(),
            mean_instructions: 2e6,
            tail_alpha: 1.5,
            tail_cap: 50.0,
            service: None,
        }
    }

    /// The instantaneous arrival rate at simulated time `t`: the diurnal
    /// raised cosine (trough at `t = 0`, peak at half a day, cyclic) times
    /// any burst multipliers covering `t`.
    pub fn rate_at(&self, t: Seconds) -> f64 {
        let phase = (t.seconds() / self.day.seconds()).rem_euclid(1.0);
        let diurnal = self.base_rps
            + (self.peak_rps - self.base_rps)
                * 0.5
                * (1.0 - (2.0 * std::f64::consts::PI * phase).cos());
        let burst: f64 = self
            .bursts
            .iter()
            .filter(|b| b.start <= t && t < b.end)
            .map(|b| b.multiplier)
            .product();
        diurnal * burst
    }

    /// The seed this workload draws from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A copy of this workload with a different seed and a reset stream
    /// (for per-lane fleet cohorts drawing independent traffic).
    pub fn reseeded(&self, seed: u64) -> RequestWorkload {
        let mut copy = self.clone();
        copy.seed = seed;
        copy.rng = NoiseSource::seeded(seed ^ 0x005E_27EA_FF1C);
        copy.cursor = Seconds::ZERO;
        copy.staged = None;
        copy
    }

    /// Draws the next accepted arrival strictly after the cursor.
    fn next_request(&mut self) -> Request {
        loop {
            // Exponential gap at the envelope rate.
            let u = self.rng.uniform(f64::MIN_POSITIVE, 1.0);
            self.cursor += Seconds::new(-u.ln() / self.envelope_rps);
            let accept = self.rate_at(self.cursor) / self.envelope_rps;
            if self.rng.chance(accept.clamp(0.0, 1.0)) {
                let demand = self.draw_demand();
                return Request::new(self.cursor, demand);
            }
        }
    }

    /// Bounded-Pareto demand by inverse-CDF.
    fn draw_demand(&mut self) -> f64 {
        let u = self.rng.uniform(0.0, 1.0);
        let ratio = (self.xmin / self.xmax).powf(self.alpha);
        let x = self.xmin / (1.0 - u * (1.0 - ratio)).powf(1.0 / self.alpha);
        x.clamp(self.xmin, self.xmax)
    }
}

impl WorkloadSource for RequestWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn machine(&self, config: MachineConfig) -> Machine {
        Machine::server(config, self.service.clone())
    }

    fn arrivals_into(&mut self, _start: Seconds, end: Seconds, out: &mut Vec<Request>) {
        loop {
            let staged = match self.staged.take() {
                Some(r) => r,
                None => self.next_request(),
            };
            if staged.arrival >= end {
                self.staged = Some(staged);
                return;
            }
            out.push(staged);
        }
    }

    fn open_loop(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(seed: u64) -> RequestWorkload {
        RequestWorkload::builder("t").seed(seed).build().unwrap()
    }

    fn drain(load: &mut RequestWorkload, start: f64, end: f64) -> Vec<Request> {
        let mut out = Vec::new();
        load.arrivals_into(Seconds::new(start), Seconds::new(end), &mut out);
        out
    }

    #[test]
    fn same_seed_same_stream_across_window_splits() {
        let mut whole = workload(9);
        let mut split = workload(9);
        let all = drain(&mut whole, 0.0, 30.0);
        let mut stitched = Vec::new();
        for w in 0..30 {
            stitched.extend(drain(&mut split, w as f64, (w + 1) as f64));
        }
        assert_eq!(all, stitched, "window boundaries must not perturb the stream");
        assert!(!all.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = drain(&mut workload(1), 0.0, 10.0);
        let b = drain(&mut workload(2), 0.0, 10.0);
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_ordered_and_in_window() {
        let mut load = workload(3);
        let out = drain(&mut load, 0.0, 20.0);
        for pair in out.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
        assert!(out.iter().all(|r| r.arrival < Seconds::new(20.0)));
        assert!(out.iter().all(|r| r.instructions >= 1.0));
    }

    #[test]
    fn diurnal_curve_peaks_mid_day_and_wraps() {
        let load = workload(0);
        let trough = load.rate_at(Seconds::ZERO);
        let peak = load.rate_at(Seconds::new(43.2));
        assert!((trough - 40.0).abs() < 1e-9);
        assert!((peak - 160.0).abs() < 1e-9);
        assert!((load.rate_at(Seconds::new(86.4)) - trough).abs() < 1e-9, "cyclic");
    }

    #[test]
    fn burst_multiplies_the_rate_inside_its_window() {
        let mut b = RequestWorkload::builder("b");
        b.burst(Seconds::new(10.0), Seconds::new(20.0), 3.0);
        let load = b.build().unwrap();
        let plain = workload(0);
        let inside = Seconds::new(15.0);
        assert!((load.rate_at(inside) - 3.0 * plain.rate_at(inside)).abs() < 1e-9);
        let outside = Seconds::new(25.0);
        assert!((load.rate_at(outside) - plain.rate_at(outside)).abs() < 1e-9);
    }

    #[test]
    fn empirical_rate_tracks_the_curve() {
        // Count arrivals over the peak hour vs the trough hour of one
        // compressed day; the ratio should approximate peak/base = 4.
        let mut load = workload(11);
        let all = drain(&mut load, 0.0, 86.4);
        let near_trough =
            all.iter().filter(|r| r.arrival.seconds() < 8.0).count() as f64;
        let near_peak = all
            .iter()
            .filter(|r| (39.0..47.0).contains(&r.arrival.seconds()))
            .count() as f64;
        assert!(near_peak > 2.0 * near_trough, "peak {near_peak} vs trough {near_trough}");
    }

    #[test]
    fn demands_are_heavy_tailed_with_the_configured_mean() {
        let mut load = workload(5);
        let all = drain(&mut load, 0.0, 86.4);
        assert!(all.len() > 1000, "one day yields thousands of requests");
        let mean = all.iter().map(|r| r.instructions).sum::<f64>() / all.len() as f64;
        assert!((mean / 2e6 - 1.0).abs() < 0.25, "mean demand {mean} ≈ 2e6");
        let max = all.iter().map(|r| r.instructions).fold(0.0, f64::max);
        assert!(max > 5.0 * mean, "tail requests dwarf the mean: {max} vs {mean}");
        assert!(max <= load.xmax, "bounded tail");
    }

    #[test]
    fn reseeded_stream_is_independent_but_reproducible() {
        let proto = workload(1);
        let a = drain(&mut proto.reseeded(77), 0.0, 10.0);
        let b = drain(&mut proto.reseeded(77), 0.0, 10.0);
        let c = drain(&mut proto.reseeded(78), 0.0, 10.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn source_builds_a_serving_machine() {
        let load = workload(0);
        assert!(load.open_loop());
        let machine = load.machine(MachineConfig::default());
        assert!(machine.is_serving());
    }

    #[test]
    fn builder_rejects_bad_parameters() {
        assert!(RequestWorkload::builder("x").rates(0.0, 10.0).build().is_err());
        assert!(RequestWorkload::builder("x").rates(10.0, 5.0).build().is_err());
        assert!(RequestWorkload::builder("x").day(Seconds::ZERO).build().is_err());
        assert!(RequestWorkload::builder("x").demand(2e6, 1.0, 50.0).build().is_err());
        assert!(RequestWorkload::builder("x").demand(2e6, 1.5, 0.5).build().is_err());
        let mut b = RequestWorkload::builder("x");
        b.burst(Seconds::new(5.0), Seconds::new(5.0), 2.0);
        assert!(b.build().is_err());
    }
}
