//! A small text format for defining workloads without recompiling.
//!
//! Downstream users of the reproduction (and `aapm-sim --workload-file`)
//! can describe phase programs in a line-based format:
//!
//! ```text
//! # comments start with '#'
//! name = my-workload
//! repeat = 2                      # repeat the phase list (default 1)
//!
//! [phase warmup]
//! seconds_at_2ghz = 0.5           # or: instructions = 1000000000
//! core_cpi = 0.8
//! decode_ratio = 1.2
//! mem_fraction = 0.4
//! l1_mpi = 0.03
//! l2_mpi = 0.004
//! overlap = 0.3
//!
//! [phase hot]
//! instructions = 2000000000
//! core_cpi = 0.5
//! activity = 1.25
//! ```
//!
//! Every phase key except the budget (`instructions` or `seconds_at_2ghz`)
//! is optional and falls back to the [`PhaseDescriptor`] builder defaults.
//! Parsing validates through the same builder as programmatic construction,
//! so a file can never express an invalid phase.

use std::error::Error as StdError;
use std::fmt;

use aapm_platform::phase::{PhaseDescriptor, PhaseDescriptorBuilder};
use aapm_platform::pipeline::{evaluate, MemoryTimings};
use aapm_platform::program::PhaseProgram;
use aapm_platform::pstate::PStateTable;

/// A parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct DslError {
    /// 1-based line the error was detected on (0 for file-level errors).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl DslError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        DslError { line, message: message.into() }
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "workload file: {}", self.message)
        } else {
            write!(f, "workload file line {}: {}", self.line, self.message)
        }
    }
}

impl StdError for DslError {}

/// One phase under construction.
struct PendingPhase {
    name: String,
    line: usize,
    builder: PhaseDescriptorBuilder,
    instructions: Option<u64>,
    seconds_at_2ghz: Option<f64>,
}

impl PendingPhase {
    fn new(name: &str, line: usize) -> Self {
        PendingPhase {
            name: name.to_owned(),
            line,
            builder: PhaseDescriptor::builder(name),
            instructions: None,
            seconds_at_2ghz: None,
        }
    }

    fn finish(mut self) -> Result<PhaseDescriptor, DslError> {
        let budget = match (self.instructions, self.seconds_at_2ghz) {
            (Some(_), Some(_)) => {
                return Err(DslError::at(
                    self.line,
                    format!(
                        "phase `{}` sets both `instructions` and `seconds_at_2ghz`; pick one",
                        self.name
                    ),
                ))
            }
            (Some(instructions), None) => instructions,
            (None, Some(seconds)) => {
                // Convert wall-clock at the top p-state to an instruction
                // budget using the analytic model, exactly as the built-in
                // SPEC suite does.
                let proto = self
                    .builder
                    .instructions(1)
                    .build()
                    .map_err(|e| DslError::at(self.line, e.to_string()))?;
                let table = PStateTable::pentium_m_755();
                let top = table.get(table.highest()).expect("table non-empty");
                let ips = evaluate(&proto, top, &MemoryTimings::pentium_m_755())
                    .instructions_per_second;
                (ips * seconds).round().max(1.0) as u64
            }
            (None, None) => {
                return Err(DslError::at(
                    self.line,
                    format!(
                        "phase `{}` needs `instructions` or `seconds_at_2ghz`",
                        self.name
                    ),
                ))
            }
        };
        self.builder
            .instructions(budget)
            .build()
            .map_err(|e| DslError::at(self.line, e.to_string()))
    }

    fn set(&mut self, key: &str, value: &str, line: usize) -> Result<(), DslError> {
        let float = |v: &str| {
            v.parse::<f64>()
                .map_err(|e| DslError::at(line, format!("`{key}`: {e}")))
        };
        match key {
            "instructions" => {
                let parsed = value
                    .parse::<f64>()
                    .map_err(|e| DslError::at(line, format!("`instructions`: {e}")))?;
                if !(parsed.is_finite() && parsed >= 1.0) {
                    return Err(DslError::at(line, "`instructions` must be >= 1"));
                }
                self.instructions = Some(parsed as u64);
            }
            "seconds_at_2ghz" => self.seconds_at_2ghz = Some(float(value)?),
            "core_cpi" => {
                self.builder.core_cpi(float(value)?);
            }
            "decode_ratio" => {
                self.builder.decode_ratio(float(value)?);
            }
            "fp_fraction" => {
                self.builder.fp_fraction(float(value)?);
            }
            "mem_fraction" => {
                self.builder.mem_fraction(float(value)?);
            }
            "l1_mpi" => {
                self.builder.l1_mpi(float(value)?);
            }
            "l2_mpi" => {
                self.builder.l2_mpi(float(value)?);
            }
            "overlap" => {
                self.builder.overlap(float(value)?);
            }
            "activity" => {
                self.builder.activity(float(value)?);
            }
            "branch_fraction" => {
                self.builder.branch_fraction(float(value)?);
            }
            "mispredict_rate" => {
                self.builder.mispredict_rate(float(value)?);
            }
            "prefetch_per_inst" => {
                self.builder.prefetch_per_inst(float(value)?);
            }
            other => {
                return Err(DslError::at(line, format!("unknown phase key `{other}`")))
            }
        }
        Ok(())
    }
}

/// Parses a workload definition into a [`PhaseProgram`].
///
/// # Errors
///
/// Returns a [`DslError`] with the offending line for syntax errors,
/// unknown keys, missing budgets, or phase-invariant violations.
///
/// # Examples
///
/// ```
/// use aapm_workloads::dsl::parse_program;
///
/// let program = parse_program(
///     "name = demo\n\
///      [phase only]\n\
///      instructions = 1000\n\
///      core_cpi = 0.9\n",
/// )?;
/// assert_eq!(program.name(), "demo");
/// assert_eq!(program.total_instructions(), 1000);
/// # Ok::<(), aapm_workloads::dsl::DslError>(())
/// ```
pub fn parse_program(text: &str) -> Result<PhaseProgram, DslError> {
    let mut name: Option<String> = None;
    let mut repeat: usize = 1;
    let mut phases: Vec<PhaseDescriptor> = Vec::new();
    let mut pending: Option<PendingPhase> = None;

    for (index, raw) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(section) = line.strip_prefix('[') {
            let section = section
                .strip_suffix(']')
                .ok_or_else(|| DslError::at(line_no, "unterminated section header"))?
                .trim();
            let phase_name = section
                .strip_prefix("phase")
                .ok_or_else(|| {
                    DslError::at(line_no, format!("unknown section `[{section}]`"))
                })?
                .trim();
            if phase_name.is_empty() {
                return Err(DslError::at(line_no, "phase sections need a name: [phase NAME]"));
            }
            if let Some(done) = pending.take() {
                phases.push(done.finish()?);
            }
            pending = Some(PendingPhase::new(phase_name, line_no));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(DslError::at(line_no, format!("expected `key = value`, got `{line}`")));
        };
        let (key, value) = (key.trim(), value.trim());
        match &mut pending {
            Some(phase) => phase.set(key, value, line_no)?,
            None => match key {
                "name" => name = Some(value.to_owned()),
                "repeat" => {
                    repeat = value
                        .parse::<usize>()
                        .map_err(|e| DslError::at(line_no, format!("`repeat`: {e}")))?;
                    if repeat == 0 {
                        return Err(DslError::at(line_no, "`repeat` must be at least 1"));
                    }
                }
                other => {
                    return Err(DslError::at(
                        line_no,
                        format!("unknown top-level key `{other}` (phases start with [phase NAME])"),
                    ))
                }
            },
        }
    }
    if let Some(done) = pending.take() {
        phases.push(done.finish()?);
    }
    if phases.is_empty() {
        return Err(DslError::at(0, "no phases defined"));
    }
    let name = name.unwrap_or_else(|| "custom-workload".to_owned());
    let program = PhaseProgram::new(name, phases)
        .map_err(|e| DslError::at(0, e.to_string()))?;
    Ok(if repeat > 1 { program.repeated(repeat) } else { program })
}

/// Serializes a program back into the text format (instruction budgets are
/// written explicitly; `repeat` folding is not reconstructed).
pub fn format_program(program: &PhaseProgram) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "name = {}", program.name());
    for phase in program.phases() {
        let _ = writeln!(out);
        let _ = writeln!(out, "[phase {}]", phase.name());
        let _ = writeln!(out, "instructions = {}", phase.instructions());
        let _ = writeln!(out, "core_cpi = {}", phase.core_cpi());
        let _ = writeln!(out, "decode_ratio = {}", phase.decode_ratio());
        let _ = writeln!(out, "fp_fraction = {}", phase.fp_fraction());
        let _ = writeln!(out, "mem_fraction = {}", phase.mem_fraction());
        let _ = writeln!(out, "l1_mpi = {}", phase.l1_mpi());
        let _ = writeln!(out, "l2_mpi = {}", phase.l2_mpi());
        let _ = writeln!(out, "overlap = {}", phase.overlap());
        let _ = writeln!(out, "activity = {}", phase.activity());
        let _ = writeln!(out, "branch_fraction = {}", phase.branch_fraction());
        let _ = writeln!(out, "mispredict_rate = {}", phase.mispredict_rate());
        let _ = writeln!(out, "prefetch_per_inst = {}", phase.prefetch_per_inst());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = "\
# demo workload
name = demo
repeat = 2

[phase warm]            # comment after header
seconds_at_2ghz = 0.1
core_cpi = 0.8

[phase hot]
instructions = 5000
core_cpi = 0.5
activity = 1.2
";

    #[test]
    fn example_parses() {
        let program = parse_program(EXAMPLE).unwrap();
        assert_eq!(program.name(), "demo");
        assert_eq!(program.len(), 4, "two phases repeated twice");
        assert_eq!(program.phases()[1].instructions(), 5000);
        assert!((program.phases()[1].activity() - 1.2).abs() < 1e-12);
        // seconds_at_2ghz converts via the analytic model: 0.1 s at 2 GHz
        // with CPI 0.8 + default mispredicts ≈ 238 M instructions.
        let warm = &program.phases()[0];
        assert!(warm.instructions() > 200_000_000 && warm.instructions() < 260_000_000);
    }

    #[test]
    fn round_trip_through_format() {
        let program = parse_program(EXAMPLE).unwrap();
        let text = format_program(&program);
        let reparsed = parse_program(&text).unwrap();
        assert_eq!(program, reparsed);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_program("name = x\nbogus line\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("key = value"));

        let err = parse_program("[phase p]\nnot_a_key = 1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown phase key"));

        let err = parse_program("[phase p]\ncore_cpi = fast\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn missing_budget_is_rejected() {
        let err = parse_program("[phase p]\ncore_cpi = 0.5\n").unwrap_err();
        assert!(err.message.contains("needs `instructions` or `seconds_at_2ghz`"));
    }

    #[test]
    fn both_budgets_rejected() {
        let err =
            parse_program("[phase p]\ninstructions = 10\nseconds_at_2ghz = 1\n").unwrap_err();
        assert!(err.message.contains("pick one"));
    }

    #[test]
    fn invalid_phase_parameters_surface_builder_errors() {
        let err = parse_program("[phase p]\ninstructions = 10\ndecode_ratio = 0.5\n")
            .unwrap_err();
        assert!(err.message.contains("decode ratio"), "{}", err.message);
    }

    #[test]
    fn empty_file_is_an_error() {
        let err = parse_program("name = empty\n").unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.message.contains("no phases"));
    }

    #[test]
    fn unknown_sections_and_top_level_keys_rejected() {
        assert!(parse_program("[stage x]\n").is_err());
        assert!(parse_program("colour = blue\n").is_err());
        assert!(parse_program("repeat = 0\n[phase p]\ninstructions = 1\n").is_err());
    }
}
