//! Data footprints used to exercise each memory-hierarchy level.
//!
//! The paper configures each MS-Loops microbenchmark with multiple data
//! footprints "to intensively exercise each of the memory hierarchy levels
//! (L1 and L2 on-chip caches, and off-chip DRAM main memory)". Three
//! footprints per loop × four loops gives the 12-point training set.

use std::fmt;

/// A working-set size targeting one level of the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Footprint {
    /// 16 KB — comfortably inside the 32 KB L1 data cache.
    L1,
    /// 256 KB — beyond L1, comfortably inside the 2 MB L2.
    L2,
    /// 8 MB — beyond L2; every pass streams from DRAM.
    Dram,
}

impl Footprint {
    /// All three footprints, smallest first.
    pub const ALL: [Footprint; 3] = [Footprint::L1, Footprint::L2, Footprint::Dram];

    /// Total data size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Footprint::L1 => 16 * 1024,
            Footprint::L2 => 256 * 1024,
            Footprint::Dram => 8 * 1024 * 1024,
        }
    }

    /// Human-readable size label used in tables ("16KB", "256KB", "8MB").
    pub fn label(self) -> &'static str {
        match self {
            Footprint::L1 => "16KB",
            Footprint::L2 => "256KB",
            Footprint::Dram => "8MB",
        }
    }
}

impl fmt::Display for Footprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapm_platform::cache::CacheGeometry;

    #[test]
    fn footprints_straddle_the_pentium_m_hierarchy() {
        let l1 = CacheGeometry::pentium_m_l1d().capacity_bytes as u64;
        let l2 = CacheGeometry::pentium_m_l2().capacity_bytes as u64;
        assert!(Footprint::L1.bytes() < l1);
        assert!(Footprint::L2.bytes() > l1 && Footprint::L2.bytes() < l2);
        assert!(Footprint::Dram.bytes() > l2);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<_> = Footprint::ALL.iter().map(|f| f.label()).collect();
        assert_eq!(labels, vec!["16KB", "256KB", "8MB"]);
    }

    #[test]
    fn ordering_is_by_size() {
        assert!(Footprint::L1 < Footprint::L2);
        assert!(Footprint::L2 < Footprint::Dram);
    }
}
