//! Microbenchmark characterization: address stream → phase descriptor.
//!
//! The paper's authors ran the MS-Loops on the instrumented Pentium M to
//! obtain stable counter and power samples. Here the equivalent step drives
//! each loop's address stream through the simulated cache hierarchy (with
//! the hardware prefetcher enabled, as on the real part) and converts the
//! measured demand-miss and prefetch rates into a [`PhaseDescriptor`] the
//! machine model can execute.

use aapm_platform::error::Result;
use aapm_platform::hierarchy::{HierarchyStats, MemoryHierarchy, PrefetchConfig};
use aapm_platform::phase::PhaseDescriptor;
use aapm_platform::program::PhaseProgram;

use crate::footprint::Footprint;
use crate::loops::MicroLoop;

/// Default retired-instruction budget for a characterized loop program:
/// long enough for hundreds of 10 ms samples at any p-state.
pub const DEFAULT_LOOP_INSTRUCTIONS: u64 = 2_000_000_000;

/// A characterized microbenchmark: the derived phase plus the raw hierarchy
/// measurements it came from.
#[derive(Debug, Clone)]
pub struct CharacterizedLoop {
    /// Which loop was characterized.
    pub microloop: MicroLoop,
    /// At which footprint.
    pub footprint: Footprint,
    /// The derived frequency-independent phase.
    pub phase: PhaseDescriptor,
    /// Raw measurements from the cache-hierarchy run.
    pub measurements: HierarchyStats,
}

impl CharacterizedLoop {
    /// Canonical name, e.g. `FMA-256KB`.
    pub fn name(&self) -> String {
        format!("{}-{}", self.microloop.name(), self.footprint)
    }

    /// A single-phase program executing this loop for the default budget.
    pub fn program(&self) -> PhaseProgram {
        PhaseProgram::from_phase(self.phase.clone())
    }
}

/// Characterizes `microloop` at `footprint` by cache simulation.
///
/// One warm-up pass populates the caches; two measured passes provide
/// steady-state demand miss rates and prefetch traffic. The returned phase
/// carries [`DEFAULT_LOOP_INSTRUCTIONS`] instructions.
///
/// # Errors
///
/// Propagates platform errors from hierarchy construction or phase
/// validation (neither occurs for the built-in loops).
pub fn characterize(microloop: MicroLoop, footprint: Footprint) -> Result<CharacterizedLoop> {
    characterize_with_budget(microloop, footprint, DEFAULT_LOOP_INSTRUCTIONS)
}

/// [`characterize`] with an explicit instruction budget.
///
/// # Errors
///
/// See [`characterize`].
pub fn characterize_with_budget(
    microloop: MicroLoop,
    footprint: Footprint,
    instructions: u64,
) -> Result<CharacterizedLoop> {
    let mut hierarchy =
        MemoryHierarchy::pentium_m_755()?.with_prefetcher(PrefetchConfig::pentium_m());

    // Warm-up pass: populate caches and train the prefetcher.
    microloop.for_each_address(footprint, 1, |addr| {
        hierarchy.access(addr);
    });
    hierarchy.reset_stats();

    // Measured passes (different seed per pass for the random loop).
    let mut accesses_measured = 0u64;
    for pass in 0..2u64 {
        microloop.for_each_address(footprint, 2 + pass, |addr| {
            accesses_measured += 1;
            hierarchy.access(addr);
        });
    }
    let stats = *hierarchy.stats();
    debug_assert_eq!(stats.accesses, accesses_measured);

    let mix = microloop.mix();
    let mem_per_inst = mix.mem_accesses_per_element / mix.instructions_per_element;

    // Demand misses per instruction, from measured per-access miss rates.
    let l1_mpi = stats.l1_miss_rate() * mem_per_inst;
    // All bus traffic (demand DRAM accesses + prefetch fills) costs power
    // and shows up on the MemoryRequests counter; the stall it causes is
    // discounted by the loop's overlap factor.
    let demand_dram_per_inst = stats.l2_miss_rate() * mem_per_inst;
    let prefetch_fills_per_access = if stats.accesses == 0 {
        0.0
    } else {
        stats.prefetch_dram_fills as f64 / stats.accesses as f64
    };
    let l2_mpi = demand_dram_per_inst + prefetch_fills_per_access * mem_per_inst;
    let prefetch_per_inst = if stats.accesses == 0 {
        0.0
    } else {
        (stats.prefetches_issued as f64 / stats.accesses as f64) * mem_per_inst
    };

    let phase = PhaseDescriptor::builder(format!("{}-{}", microloop.name(), footprint))
        .instructions(instructions)
        .core_cpi(mix.core_cpi)
        .decode_ratio(mix.decode_ratio)
        .fp_fraction(mix.fp_per_element / mix.instructions_per_element)
        .mem_fraction(mem_per_inst)
        .l1_mpi(l1_mpi)
        .l2_mpi(l2_mpi)
        .overlap(mix.overlap)
        .activity(mix.activity)
        .branch_fraction(mix.branches_per_element / mix.instructions_per_element)
        .mispredict_rate(mix.mispredict_rate)
        .prefetch_per_inst(prefetch_per_inst)
        .build()?;

    Ok(CharacterizedLoop { microloop, footprint, phase, measurements: stats })
}

/// Characterizes the full 12-point training set (4 loops × 3 footprints),
/// in Table I order then footprint order.
///
/// # Errors
///
/// Propagates any characterization failure.
pub fn training_set() -> Result<Vec<CharacterizedLoop>> {
    let mut out = Vec::with_capacity(12);
    for microloop in MicroLoop::ALL {
        for footprint in Footprint::ALL {
            out.push(characterize(microloop, footprint)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_footprint_has_negligible_misses() {
        for microloop in MicroLoop::ALL {
            let c = characterize(microloop, Footprint::L1).unwrap();
            assert!(
                c.phase.l1_mpi() < 0.002,
                "{}: l1_mpi {} should be ~0 for a 16KB set",
                c.name(),
                c.phase.l1_mpi()
            );
            assert!(c.phase.l2_mpi() < 1e-3);
        }
    }

    #[test]
    fn l2_footprint_misses_l1_not_l2() {
        for microloop in MicroLoop::ALL {
            let c = characterize(microloop, Footprint::L2).unwrap();
            assert!(
                c.phase.l2_mpi() < 0.002,
                "{}: 256KB fits in L2, l2_mpi {}",
                c.name(),
                c.phase.l2_mpi()
            );
        }
        // The random loop cannot be prefetched, so its L1 misses are real.
        let mload = characterize(MicroLoop::MloadRand, Footprint::L2).unwrap();
        assert!(mload.phase.l1_mpi() > 0.1, "random 256KB loads thrash L1");
    }

    #[test]
    fn dram_footprint_reaches_memory() {
        for microloop in MicroLoop::ALL {
            let c = characterize(microloop, Footprint::Dram).unwrap();
            assert!(
                c.phase.l2_mpi() > 0.005,
                "{}: 8MB must generate DRAM traffic, l2_mpi {}",
                c.name(),
                c.phase.l2_mpi()
            );
        }
    }

    #[test]
    fn sequential_loops_get_prefetch_coverage_random_does_not() {
        let fma = characterize(MicroLoop::Fma, Footprint::L2).unwrap();
        assert!(fma.phase.prefetch_per_inst() > 0.0, "FMA streams trigger the prefetcher");
        assert!(
            fma.phase.l1_mpi() < 0.02,
            "prefetches cover most of FMA's demand misses, got {}",
            fma.phase.l1_mpi()
        );
        let mload = characterize(MicroLoop::MloadRand, Footprint::Dram).unwrap();
        assert!(mload.phase.prefetch_per_inst() < 0.01);
    }

    #[test]
    fn training_set_has_twelve_points() {
        let set = training_set().unwrap();
        assert_eq!(set.len(), 12);
        let mut names: Vec<_> = set.iter().map(CharacterizedLoop::name).collect();
        names.dedup();
        assert_eq!(names.len(), 12, "all 12 points distinct");
    }

    #[test]
    fn characterization_is_deterministic() {
        let a = characterize(MicroLoop::MloadRand, Footprint::L2).unwrap();
        let b = characterize(MicroLoop::MloadRand, Footprint::L2).unwrap();
        assert_eq!(a.phase, b.phase);
    }

    #[test]
    fn budget_flows_into_phase() {
        let c = characterize_with_budget(MicroLoop::Daxpy, Footprint::L1, 1234).unwrap();
        assert_eq!(c.phase.instructions(), 1234);
        assert_eq!(c.program().total_instructions(), 1234);
    }
}
