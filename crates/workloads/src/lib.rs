//! # aapm-workloads — workloads for the AAPM reproduction
//!
//! Three workload families for driving the simulated Pentium M platform:
//!
//! * **MS-Loops microbenchmarks** ([`loops`], paper Table I): DAXPY, FMA,
//!   MCOPY and MLOAD_RAND, each at L1/L2/DRAM footprints ([`footprint`]).
//!   Their address streams are run through the platform's cache simulator to
//!   derive executable phases ([`characterize`]) — the 12-point training set
//!   for the counter-based models.
//! * **A synthetic SPEC CPU2000 suite** ([`spec`]): 26 phase programs whose
//!   characteristics encode the paper's per-benchmark observations
//!   (memory-bound vs core-bound scaling, power ordering, galgel's bursts,
//!   ammp's phase alternation, art/mcf's deceptive DCU profiles).
//! * **Random workloads** ([`synth`]) for property-based testing, and a
//!   text format for user-defined workloads ([`dsl`]).
//! * **Open-loop request workloads** ([`requests`]): seeded diurnal ×
//!   Poisson/burst arrival processes with heavy-tailed service demands,
//!   the serve-traffic family for latency-SLO experiments.
//!
//! # Examples
//!
//! ```
//! use aapm_workloads::{characterize, footprint::Footprint, loops::MicroLoop};
//!
//! let fma = characterize::characterize(MicroLoop::Fma, Footprint::L2)?;
//! assert_eq!(fma.name(), "FMA-256KB");
//! # Ok::<(), aapm_platform::error::PlatformError>(())
//! ```

pub mod characterize;
pub mod dsl;
pub mod footprint;
pub mod loops;
pub mod requests;
pub mod spec;
pub mod synth;

pub use characterize::{characterize as characterize_loop, training_set, CharacterizedLoop};
pub use footprint::Footprint;
pub use loops::MicroLoop;
pub use requests::{Burst, RequestWorkload};
pub use spec::{by_name, suite, SpecBenchmark, SpecCategory};
