//! Fixed-capacity moving windows over samples.
//!
//! PM enforces its power limit over a moving window of ten 10 ms samples
//! (100 ms); this module provides the window arithmetic.

use std::collections::VecDeque;

/// A moving window over the most recent `capacity` values.
///
/// # Examples
///
/// ```
/// use aapm_telemetry::window::MovingWindow;
///
/// let mut w = MovingWindow::new(3);
/// w.push(1.0);
/// w.push(2.0);
/// w.push(3.0);
/// w.push(4.0); // evicts 1.0
/// assert_eq!(w.mean(), Some(3.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MovingWindow {
    values: VecDeque<f64>,
    capacity: usize,
}

impl MovingWindow {
    /// Creates an empty window holding up to `capacity` values.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        MovingWindow { values: VecDeque::with_capacity(capacity), capacity }
    }

    /// Appends a value, evicting the oldest if full.
    pub fn push(&mut self, value: f64) {
        if self.values.len() == self.capacity {
            self.values.pop_front();
        }
        self.values.push_back(value);
    }

    /// Number of values currently held.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the window holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.values.len() == self.capacity
    }

    /// Maximum capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Mean of the held values, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Largest held value, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().cloned().fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Smallest held value, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().cloned().fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Linear-interpolation percentile of the held values (`p` in
    /// `[0, 100]`); `None` when the window is empty or `p` is out of range
    /// (see [`crate::stats::percentile`]). This is the tail-latency probe
    /// for SLO governors: `window.percentile(99.0)` over a window of
    /// sojourn times is the moving p99. NaNs among the held values sort
    /// after `+inf`, so a few poisoned samples inflate the tail (fail-safe
    /// toward "SLO violated") rather than panicking.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        let values: Vec<f64> = self.values.iter().copied().collect();
        crate::stats::percentile(&values, p)
    }

    /// Whether every held value satisfies `predicate`. `false` when the
    /// window is not yet full (PM requires a *full* window of good samples
    /// before raising frequency).
    pub fn full_and_all(&self, mut predicate: impl FnMut(f64) -> bool) -> bool {
        self.is_full() && self.values.iter().all(|&v| predicate(v))
    }

    /// Clears the window.
    pub fn clear(&mut self) {
        self.values.clear();
    }

    /// Iterates over held values, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_keeps_most_recent() {
        let mut w = MovingWindow::new(2);
        w.push(1.0);
        w.push(2.0);
        w.push(3.0);
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![2.0, 3.0]);
    }

    #[test]
    fn empty_window_has_no_statistics() {
        let w = MovingWindow::new(4);
        assert!(w.is_empty());
        assert_eq!(w.mean(), None);
        assert_eq!(w.max(), None);
        assert_eq!(w.min(), None);
    }

    #[test]
    fn statistics_over_partial_window() {
        let mut w = MovingWindow::new(10);
        w.push(2.0);
        w.push(4.0);
        assert_eq!(w.mean(), Some(3.0));
        assert_eq!(w.max(), Some(4.0));
        assert_eq!(w.min(), Some(2.0));
        assert!(!w.is_full());
    }

    #[test]
    fn full_and_all_requires_full_window() {
        let mut w = MovingWindow::new(3);
        w.push(1.0);
        w.push(1.0);
        assert!(!w.full_and_all(|v| v < 2.0), "not full yet");
        w.push(1.0);
        assert!(w.full_and_all(|v| v < 2.0));
        w.push(5.0);
        assert!(!w.full_and_all(|v| v < 2.0));
    }

    #[test]
    fn percentile_over_window_tracks_eviction() {
        let mut w = MovingWindow::new(5);
        assert_eq!(w.percentile(99.0), None, "empty window has no percentile");
        for v in [10.0, 20.0, 30.0, 40.0, 50.0] {
            w.push(v);
        }
        assert_eq!(w.percentile(50.0), Some(30.0));
        assert_eq!(w.percentile(100.0), Some(50.0));
        w.push(60.0); // evicts 10.0 → window is [20, 60]
        assert_eq!(w.percentile(0.0), Some(20.0));
        assert_eq!(w.percentile(100.0), Some(60.0));
    }

    #[test]
    fn percentile_survives_non_finite_values() {
        let mut w = MovingWindow::new(4);
        for v in [1.0, f64::NAN, 2.0, f64::INFINITY] {
            w.push(v);
        }
        // NaN sorts after +inf: the tail is poisoned (inflated), the
        // lower order statistics are intact, and nothing panics.
        assert_eq!(w.percentile(0.0), Some(1.0));
        assert!(w.percentile(99.0).unwrap().is_nan() || w.percentile(99.0).unwrap().is_infinite());
        assert!(w.percentile(100.0).unwrap().is_nan());
        // Out-of-range ranks degrade to None, not a panic.
        assert_eq!(w.percentile(101.0), None);
        assert_eq!(w.percentile(f64::NAN), None);
    }

    #[test]
    fn clear_resets() {
        let mut w = MovingWindow::new(2);
        w.push(1.0);
        w.clear();
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = MovingWindow::new(0);
    }
}
