//! Lightweight metrics registry and structured event log for the control
//! loop.
//!
//! The paper's methodology is Monitor → Estimate → Control, but until now
//! the runtime recorded only the plotted power/p-state trace — governor
//! internals (hold-window activations, actuator retries, projection errors)
//! were invisible. This module is the observability backbone a production
//! power-management stack would ship with (cf. Mazzola et al.'s
//! counter-stream telemetry): a registry of **counters**, **gauges**, and
//! **histogram summaries** keyed by `&'static str` names, plus a stream of
//! structured [`Event`]s stamped with *simulated* time.
//!
//! Design contract (DESIGN.md §9):
//!
//! * **Zero overhead when disabled.** A [`Metrics`] handle is either
//!   *installed* (backed by a shared registry) or *disabled* (the default).
//!   Every recording call on a disabled handle is a single `Option` check;
//!   no allocation, no formatting.
//! * **Determinism.** Recording must never perturb simulation state. All
//!   values recorded are pure observations of state the control loop
//!   already computes, and events carry simulated (not wall-clock)
//!   timestamps, so a run with metrics installed is bit-identical to one
//!   without.
//! * **Single-threaded by design.** One handle instruments one simulation
//!   run, which executes on one thread (experiment cells are isolated).
//!   The cross-run aggregation layer lives in `aapm-experiments`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use aapm_platform::units::Seconds;

/// Summary statistics of an observed value stream — a histogram without
/// buckets, which is all the deterministic assertions and JSON exports
/// need: count, sum (hence mean), min, and max.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (0.0 when empty).
    pub min: f64,
    /// Largest observed value (0.0 when empty).
    pub max: f64,
}

impl Summary {
    /// Folds one observation in.
    pub fn observe(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Merges another summary in (used by cross-run aggregation).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean of the observed values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A structured control-loop event. The taxonomy covers everything the
/// runtime and governors do that the plotted trace cannot show.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// The governor asked for a different p-state than the interval ran at.
    /// (Steady-state intervals emit no event to bound trace volume.)
    Decision {
        /// P-state index the interval ran at.
        from: usize,
        /// P-state index the governor chose for the next interval.
        to: usize,
    },
    /// A governor entered its stale-telemetry hold window (first stale
    /// counter sample of a streak).
    HoldEntered {
        /// Governor short name (`"pm"`, `"ps"`).
        governor: &'static str,
    },
    /// A governor left its hold window (fresh telemetry returned).
    HoldExited {
        /// Governor short name.
        governor: &'static str,
        /// Consecutive stale intervals the streak lasted.
        stale_intervals: u64,
    },
    /// A governor's hold window expired and it took one fail-safe step
    /// (PM steps down; PS steps toward the peak).
    FailSafeStep {
        /// Governor short name.
        governor: &'static str,
    },
    /// A p-state write was silently ignored (initial attempt or a failed
    /// in-interval retry). One event per ignored attempt, so the event
    /// count matches `FaultStats::actuations_ignored` exactly.
    ActuatorIgnored {
        /// 1 for the initial write, 2.. for failed retries.
        attempt: u64,
    },
    /// An in-interval retry landed after earlier ignored attempts.
    ActuatorRecovered {
        /// Total attempts including the successful one.
        attempts: u64,
    },
    /// A p-state write stalled; it lands `intervals` control intervals
    /// later unless superseded.
    ActuatorStalled {
        /// Configured stall latency in intervals.
        intervals: u64,
    },
    /// Every in-interval retry failed; the runtime absorbed the loss and
    /// the machine kept its p-state.
    ActuationFailed {
        /// Attempts made before giving up.
        attempts: u64,
    },
    /// A telemetry fault was injected this interval.
    FaultInjected {
        /// `"power_dropped"`, `"power_stuck"`, `"thermal_dropped"`, or
        /// `"pmc_missed"`.
        kind: &'static str,
    },
    /// A scheduled command reached the governor.
    CommandDelivered {
        /// `"set_power_limit"` or `"set_performance_floor"`.
        command: &'static str,
    },
    /// The telemetry watchdog engaged and overrode the inner governor.
    WatchdogEngaged {
        /// Consecutive blind intervals that tripped it.
        blind_intervals: u64,
    },
    /// The watchdog released control back to the inner governor.
    WatchdogReleased,
    /// A thermal guard lowered its p-state ceiling (hot die or a sustained
    /// sensor outage forcing the fail-safe ratchet).
    ThermalCeilingLowered {
        /// P-state index of the new ceiling.
        ceiling: usize,
    },
    /// A thermal guard relaxed its ceiling one state upward, or dropped it
    /// entirely (then `ceiling` is the table's highest state).
    ThermalCeilingRaised {
        /// P-state index of the new ceiling.
        ceiling: usize,
    },
    /// The adaptive layer pushed an online refit of one p-state's power
    /// coefficients into its inner governor.
    ModelRefit {
        /// P-state index whose coefficients were replaced.
        pstate: usize,
    },
    /// The adaptive layer abandoned its online fit and restored the
    /// offline seed model.
    ModelReseeded {
        /// `"degenerate_window"` or `"telemetry_outage"`.
        reason: &'static str,
    },
}

impl EventKind {
    /// The event's wire name (the `"event"` field of its JSONL record).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Decision { .. } => "decision",
            EventKind::HoldEntered { .. } => "hold_entered",
            EventKind::HoldExited { .. } => "hold_exited",
            EventKind::FailSafeStep { .. } => "fail_safe_step",
            EventKind::ActuatorIgnored { .. } => "actuator_ignored",
            EventKind::ActuatorRecovered { .. } => "actuator_recovered",
            EventKind::ActuatorStalled { .. } => "actuator_stalled",
            EventKind::ActuationFailed { .. } => "actuation_failed",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::CommandDelivered { .. } => "command_delivered",
            EventKind::WatchdogEngaged { .. } => "watchdog_engaged",
            EventKind::WatchdogReleased => "watchdog_released",
            EventKind::ThermalCeilingLowered { .. } => "thermal_ceiling_lowered",
            EventKind::ThermalCeilingRaised { .. } => "thermal_ceiling_raised",
            EventKind::ModelRefit { .. } => "model_refit",
            EventKind::ModelReseeded { .. } => "model_reseeded",
        }
    }
}

/// One structured event, stamped with simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulated time at which the event occurred (interval end for
    /// per-interval events).
    pub t: Seconds,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut line = String::with_capacity(64);
        let _ = write!(
            line,
            "{{\"t\":{:.6},\"event\":\"{}\"",
            self.t.seconds(),
            self.kind.name()
        );
        match self.kind {
            EventKind::Decision { from, to } => {
                let _ = write!(line, ",\"from\":{from},\"to\":{to}");
            }
            EventKind::HoldEntered { governor } | EventKind::FailSafeStep { governor } => {
                let _ = write!(line, ",\"governor\":\"{governor}\"");
            }
            EventKind::HoldExited { governor, stale_intervals } => {
                let _ = write!(
                    line,
                    ",\"governor\":\"{governor}\",\"stale_intervals\":{stale_intervals}"
                );
            }
            EventKind::ActuatorIgnored { attempt } => {
                let _ = write!(line, ",\"attempt\":{attempt}");
            }
            EventKind::ActuatorRecovered { attempts } | EventKind::ActuationFailed { attempts } => {
                let _ = write!(line, ",\"attempts\":{attempts}");
            }
            EventKind::ActuatorStalled { intervals } => {
                let _ = write!(line, ",\"intervals\":{intervals}");
            }
            EventKind::FaultInjected { kind } => {
                let _ = write!(line, ",\"kind\":\"{kind}\"");
            }
            EventKind::CommandDelivered { command } => {
                let _ = write!(line, ",\"command\":\"{command}\"");
            }
            EventKind::WatchdogEngaged { blind_intervals } => {
                let _ = write!(line, ",\"blind_intervals\":{blind_intervals}");
            }
            EventKind::WatchdogReleased => {}
            EventKind::ThermalCeilingLowered { ceiling }
            | EventKind::ThermalCeilingRaised { ceiling } => {
                let _ = write!(line, ",\"ceiling\":{ceiling}");
            }
            EventKind::ModelRefit { pstate } => {
                let _ = write!(line, ",\"pstate\":{pstate}");
            }
            EventKind::ModelReseeded { reason } => {
                let _ = write!(line, ",\"reason\":\"{reason}\"");
            }
        }
        line.push('}');
        line
    }
}

/// The backing store of an installed [`Metrics`] handle.
#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Summary>,
    events: Vec<Event>,
}

/// An immutable end-of-run snapshot of a registry, sorted by name. Plain
/// data (`Send`), carried by `RunReport` so tests can assert on
/// governor-internal behaviour instead of eyeballing traces.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Last-written gauge values, sorted by name.
    pub gauges: Vec<(&'static str, f64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<(&'static str, Summary)>,
    /// Number of events the run emitted.
    pub events: usize,
}

impl MetricsSnapshot {
    /// Looks a counter up by name (0 when absent — an uninstalled registry
    /// and a counter that never fired are indistinguishable by design).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Looks a gauge up by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// Looks a histogram summary up by name.
    pub fn histogram(&self, name: &str) -> Option<Summary> {
        self.histograms.iter().find(|(n, _)| *n == name).map(|(_, s)| *s)
    }

    /// Whether nothing was recorded (also true for disabled handles).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.events == 0
    }
}

/// A cheap, cloneable handle to a metrics registry.
///
/// `Metrics::default()` is **disabled**: every recording call is a no-op
/// behind one `Option` check, so un-instrumented runs pay nothing.
/// [`Metrics::enabled`] installs a registry; clones share it (the runtime
/// hands clones to the governor chain so all layers record into one
/// registry).
///
/// # Examples
///
/// ```
/// use aapm_platform::units::Seconds;
/// use aapm_telemetry::metrics::{EventKind, Metrics};
///
/// let metrics = Metrics::enabled();
/// metrics.inc("actuator.ignored");
/// metrics.observe("pm.guardband_margin_w", 1.25);
/// metrics.event(Seconds::new(0.01), EventKind::HoldEntered { governor: "pm" });
/// let snap = metrics.snapshot();
/// assert_eq!(snap.counter("actuator.ignored"), 1);
/// assert_eq!(snap.events, 1);
///
/// let disabled = Metrics::default();
/// disabled.inc("actuator.ignored");
/// assert!(disabled.snapshot().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Option<Rc<RefCell<Registry>>>,
}

impl Metrics {
    /// A handle with an installed (shared, initially empty) registry.
    pub fn enabled() -> Self {
        Metrics { inner: Some(Rc::new(RefCell::new(Registry::default()))) }
    }

    /// A disabled handle; identical to `Metrics::default()`.
    pub fn disabled() -> Self {
        Metrics::default()
    }

    /// Whether a registry is installed.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with<R>(&self, record: impl FnOnce(&mut Registry) -> R) -> Option<R> {
        self.inner.as_ref().map(|cell| record(&mut cell.borrow_mut()))
    }

    /// Increments a counter by 1.
    pub fn inc(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increments a counter by `delta`.
    pub fn add(&self, name: &'static str, delta: u64) {
        self.with(|r| *r.counters.entry(name).or_insert(0) += delta);
    }

    /// Sets a gauge to `value` (last write wins).
    pub fn gauge(&self, name: &'static str, value: f64) {
        self.with(|r| {
            r.gauges.insert(name, value);
        });
    }

    /// Folds `value` into a histogram summary.
    pub fn observe(&self, name: &'static str, value: f64) {
        self.with(|r| r.histograms.entry(name).or_default().observe(value));
    }

    /// Appends a structured event stamped with simulated time `t`.
    pub fn event(&self, t: Seconds, kind: EventKind) {
        self.with(|r| r.events.push(Event { t, kind }));
    }

    /// A sorted snapshot of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.with(|r| MetricsSnapshot {
            counters: r.counters.iter().map(|(&n, &v)| (n, v)).collect(),
            gauges: r.gauges.iter().map(|(&n, &v)| (n, v)).collect(),
            histograms: r.histograms.iter().map(|(&n, &s)| (n, s)).collect(),
            events: r.events.len(),
        })
        .unwrap_or_default()
    }

    /// A copy of the event stream in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.with(|r| r.events.clone()).unwrap_or_default()
    }

    /// Renders the event stream as JSONL (one event per line, trailing
    /// newline after each).
    pub fn events_jsonl(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 64);
        for event in &events {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let metrics = Metrics::default();
        assert!(!metrics.is_enabled());
        metrics.inc("a");
        metrics.add("a", 10);
        metrics.gauge("g", 1.0);
        metrics.observe("h", 2.0);
        metrics.event(Seconds::new(0.5), EventKind::WatchdogReleased);
        assert!(metrics.snapshot().is_empty());
        assert!(metrics.events().is_empty());
        assert!(metrics.events_jsonl().is_empty());
    }

    #[test]
    fn clones_share_one_registry() {
        let metrics = Metrics::enabled();
        let clone = metrics.clone();
        metrics.inc("runtime.intervals");
        clone.inc("runtime.intervals");
        clone.gauge("pm.margin", -0.5);
        assert_eq!(metrics.snapshot().counter("runtime.intervals"), 2);
        assert_eq!(metrics.snapshot().gauge("pm.margin"), Some(-0.5));
    }

    #[test]
    fn summary_tracks_count_sum_min_max() {
        let mut s = Summary::default();
        for v in [3.0, -1.0, 2.0] {
            s.observe(v);
        }
        assert_eq!(s.count, 3);
        assert!((s.sum - 4.0).abs() < 1e-12);
        assert!((s.min - -1.0).abs() < 1e-12);
        assert!((s.max - 3.0).abs() < 1e-12);
        assert!((s.mean() - 4.0 / 3.0).abs() < 1e-12);

        let mut other = Summary::default();
        other.observe(10.0);
        s.merge(&other);
        assert_eq!(s.count, 4);
        assert!((s.max - 10.0).abs() < 1e-12);
        // Merging an empty summary is a no-op; merging into one adopts.
        s.merge(&Summary::default());
        assert_eq!(s.count, 4);
        let mut empty = Summary::default();
        empty.merge(&s);
        assert_eq!(empty, s);
    }

    #[test]
    fn events_render_as_valid_single_line_json() {
        let metrics = Metrics::enabled();
        let t = Seconds::new(0.12);
        let kinds = [
            EventKind::Decision { from: 7, to: 5 },
            EventKind::HoldEntered { governor: "pm" },
            EventKind::HoldExited { governor: "pm", stale_intervals: 3 },
            EventKind::FailSafeStep { governor: "ps" },
            EventKind::ActuatorIgnored { attempt: 2 },
            EventKind::ActuatorRecovered { attempts: 3 },
            EventKind::ActuatorStalled { intervals: 3 },
            EventKind::ActuationFailed { attempts: 4 },
            EventKind::FaultInjected { kind: "pmc_missed" },
            EventKind::CommandDelivered { command: "set_power_limit" },
            EventKind::WatchdogEngaged { blind_intervals: 10 },
            EventKind::WatchdogReleased,
            EventKind::ThermalCeilingLowered { ceiling: 4 },
            EventKind::ThermalCeilingRaised { ceiling: 5 },
        ];
        for kind in kinds {
            metrics.event(t, kind);
        }
        let jsonl = metrics.events_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), kinds.len());
        for (line, kind) in lines.iter().zip(kinds) {
            assert!(line.starts_with("{\"t\":0.120000,\"event\":\""), "{line}");
            assert!(line.ends_with('}'), "{line}");
            assert!(line.contains(kind.name()), "{line} missing {}", kind.name());
            // Single-line, no raw control characters: parseable as JSONL.
            assert!(!line.contains('\n'));
        }
        assert_eq!(metrics.snapshot().events, kinds.len());
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let metrics = Metrics::enabled();
        metrics.inc("z.last");
        metrics.inc("a.first");
        metrics.observe("h", 1.0);
        metrics.observe("h", 5.0);
        let snap = metrics.snapshot();
        assert_eq!(snap.counters[0].0, "a.first");
        assert_eq!(snap.counters[1].0, "z.last");
        assert_eq!(snap.counter("missing"), 0);
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert!((h.max - 5.0).abs() < 1e-12);
        assert_eq!(snap.histogram("absent"), None);
    }
}
