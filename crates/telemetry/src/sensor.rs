//! On-die thermal sensor.
//!
//! Real thermal diodes report coarsely (≈1 °C steps on parts of this era)
//! with a calibration offset; governors that guard a thermal envelope see
//! the quantized reading, never the model's exact temperature.

use aapm_platform::machine::Machine;
use aapm_platform::noise::NoiseSource;
use aapm_platform::thermal::Celsius;

/// Configuration of the thermal sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalSensorConfig {
    /// Reading quantization step in °C.
    pub quantization_c: f64,
    /// Fixed calibration offset in °C (device-to-device variation).
    pub offset_c: f64,
    /// Per-reading noise standard deviation in °C.
    pub noise_std_c: f64,
}

impl ThermalSensorConfig {
    /// A thermal-diode class sensor: 1 °C steps, ±0.5 °C class offset,
    /// mild reading noise.
    pub fn thermal_diode() -> Self {
        ThermalSensorConfig { quantization_c: 1.0, offset_c: 0.0, noise_std_c: 0.2 }
    }

    /// A perfect sensor (for tests).
    pub fn ideal() -> Self {
        ThermalSensorConfig { quantization_c: 0.0, offset_c: 0.0, noise_std_c: 0.0 }
    }
}

impl Default for ThermalSensorConfig {
    fn default() -> Self {
        ThermalSensorConfig::thermal_diode()
    }
}

/// The sampling thermal sensor.
///
/// # Examples
///
/// ```
/// use aapm_platform::{config::MachineConfig, machine::Machine};
/// use aapm_platform::phase::PhaseDescriptor;
/// use aapm_platform::program::PhaseProgram;
/// use aapm_platform::units::Seconds;
/// use aapm_telemetry::sensor::{ThermalSensor, ThermalSensorConfig};
///
/// let phase = PhaseDescriptor::builder("w").instructions(100_000_000).build()?;
/// let mut machine = Machine::new(MachineConfig::default(), PhaseProgram::from_phase(phase));
/// let mut sensor = ThermalSensor::new(ThermalSensorConfig::default(), 7);
/// machine.tick(Seconds::from_millis(10.0));
/// let reading = sensor.read(&machine);
/// assert!(reading.degrees() >= 30.0);
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ThermalSensor {
    config: ThermalSensorConfig,
    noise: NoiseSource,
}

impl ThermalSensor {
    /// Creates a sensor with its own noise stream.
    pub fn new(config: ThermalSensorConfig, seed: u64) -> Self {
        ThermalSensor { config, noise: NoiseSource::seeded(seed ^ 0x7E4F_0001) }
    }

    /// The sensor configuration.
    pub fn config(&self) -> &ThermalSensorConfig {
        &self.config
    }

    /// Reads the die temperature (quantized, offset, noisy).
    pub fn read(&mut self, machine: &Machine) -> Celsius {
        let mut value = machine.temperature().degrees()
            + self.config.offset_c
            + self.noise.gaussian(0.0, self.config.noise_std_c);
        if self.config.quantization_c > 0.0 {
            value = (value / self.config.quantization_c).round() * self.config.quantization_c;
        }
        Celsius::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapm_platform::config::MachineConfig;
    use aapm_platform::phase::PhaseDescriptor;
    use aapm_platform::program::PhaseProgram;
    use aapm_platform::units::Seconds;

    fn machine() -> Machine {
        let phase = PhaseDescriptor::builder("w")
            .instructions(10_000_000_000)
            .build()
            .unwrap();
        Machine::new(MachineConfig::pentium_m_755(1), PhaseProgram::from_phase(phase))
    }

    #[test]
    fn ideal_sensor_reports_model_temperature() {
        let mut m = machine();
        let mut sensor = ThermalSensor::new(ThermalSensorConfig::ideal(), 1);
        for _ in 0..100 {
            m.tick(Seconds::from_millis(10.0));
        }
        assert_eq!(sensor.read(&m), m.temperature());
    }

    #[test]
    fn diode_sensor_quantizes_to_whole_degrees() {
        let mut m = machine();
        let mut sensor = ThermalSensor::new(ThermalSensorConfig::thermal_diode(), 1);
        m.tick(Seconds::from_millis(10.0));
        let reading = sensor.read(&m).degrees();
        assert!((reading - reading.round()).abs() < 1e-9);
    }

    #[test]
    fn offset_biases_readings() {
        let mut m = machine();
        m.tick(Seconds::from_millis(10.0));
        let mut biased = ThermalSensor::new(
            ThermalSensorConfig { quantization_c: 0.0, offset_c: 2.5, noise_std_c: 0.0 },
            1,
        );
        let expected = m.temperature().degrees() + 2.5;
        assert!((biased.read(&m).degrees() - expected).abs() < 1e-9);
    }

    #[test]
    fn sensors_are_deterministic_per_seed() {
        let mut m = machine();
        m.tick(Seconds::from_millis(10.0));
        let mut a = ThermalSensor::new(ThermalSensorConfig::default(), 9);
        let mut b = ThermalSensor::new(ThermalSensorConfig::default(), 9);
        assert_eq!(a.read(&m), b.read(&m));
    }
}
