//! # aapm-telemetry — the measurement infrastructure, simulated
//!
//! The paper's experimental rig consisted of (a) a sense-resistor power
//! measurement chain sampled at 10 ms and (b) a low-overhead driver reading
//! the Pentium M's two performance counters every 10 ms, synchronized by a
//! GPIO line. Governors in `aapm` observe the platform *only* through this
//! crate:
//!
//! * [`daq`] — the power meter: gain error, noise, quantization;
//! * [`pmc`] — the counter driver: two programmable counters, event
//!   multiplexing when oversubscribed;
//! * [`sensor`] — the on-die thermal diode (quantized temperature);
//! * [`gpio`] — run-boundary markers;
//! * [`trace`] — power/p-state time series, moving-average violation
//!   metrics, energy summation (the paper's energy metric);
//! * [`window`] — moving windows (PM's 100 ms enforcement window);
//! * [`stats`] — summaries, medians (the paper's three-run median);
//! * [`faults`] — seeded fault injection for the whole chain (sample
//!   dropouts, stuck readings, missed counter reads, ignored/stalled
//!   actuator writes);
//! * [`metrics`] — the observability layer: a counters/gauges/histograms
//!   registry plus structured control-loop events stamped with simulated
//!   time (zero-overhead when no registry is installed).

pub mod daq;
pub mod derived;
pub mod faults;
pub mod gpio;
pub mod metrics;
pub mod pmc;
pub mod sensor;
pub mod stats;
pub mod trace;
pub mod window;

pub use daq::{DaqConfig, PowerDaq, PowerSample};
pub use derived::{derive, DerivedMetrics};
pub use faults::{
    ActuationFault, FaultConfig, FaultKind, FaultPlan, FaultStats, FaultWindow, IntervalFaults,
    PowerFault,
};
pub use metrics::{Event, EventKind, Metrics, MetricsSnapshot, Summary};
pub use pmc::{CounterSample, PmcDriver, PROGRAMMABLE_COUNTERS};
pub use sensor::{ThermalSensor, ThermalSensorConfig};
pub use trace::{RunTrace, TraceRecord};
pub use window::MovingWindow;
