//! Performance-monitoring-counter driver.
//!
//! The Pentium M has **two** general-purpose counters selectable among 92
//! events, plus the free-running timestamp counter. The paper's driver reads
//! them every 10 ms with negligible overhead. This module reproduces that
//! interface: a governor declares which events it needs; if they fit the two
//! programmable slots they are measured exactly every interval, otherwise
//! the driver *rotates* event pairs across intervals (the standard
//! multiplexing technique) and scales the counts, introducing realistic
//! estimation error for greedy event sets.

use aapm_platform::counters::CounterSnapshot;
use aapm_platform::events::HardwareEvent;
use aapm_platform::machine::Machine;
use aapm_platform::units::Seconds;

/// Number of programmable counters on the simulated PMU.
pub const PROGRAMMABLE_COUNTERS: usize = 2;

/// Pentium M performance counters are 40 bits wide; totals wrap modulo this.
pub const COUNTER_WRAP: f64 = (1u64 << 40) as f64;

/// Count accumulated between two reads of a 40-bit register.
///
/// Totals are reduced modulo the register width before differencing and a
/// negative difference means exactly one wrap occurred between reads (the
/// 10 ms cadence makes multiple wraps impossible: even at 2 GHz a register
/// gains < 2^28 counts per interval). When both totals sit in the same wrap
/// epoch this is bit-identical to plain subtraction, because `f64 % 2^40`
/// is exact for values below 2^53.
///
/// Public so boundary tests (and the fuzz harness's conservation oracle)
/// can exercise the wrap arithmetic directly.
pub fn wrapped_delta(now_total: f64, last_total: f64) -> f64 {
    let delta = now_total % COUNTER_WRAP - last_total % COUNTER_WRAP;
    if delta < 0.0 {
        delta + COUNTER_WRAP
    } else {
        delta
    }
}

/// One counter sample: estimated event counts over an interval.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Start of the interval.
    pub start: Seconds,
    /// End of the interval.
    pub end: Seconds,
    /// Core cycles elapsed in the interval (free-running, always exact).
    pub cycles: f64,
    /// `(event, estimated_count, measured_exactly)` for each requested
    /// event. Counts for events not scheduled this interval are estimated
    /// from their most recent measured rate.
    pub counts: Vec<(HardwareEvent, f64, bool)>,
}

impl CounterSample {
    /// Interval length.
    pub fn duration(&self) -> Seconds {
        self.end - self.start
    }

    /// Estimated count for `event`, if it was requested.
    pub fn count(&self, event: HardwareEvent) -> Option<f64> {
        if event == HardwareEvent::Cycles {
            return Some(self.cycles);
        }
        self.counts.iter().find(|(e, _, _)| *e == event).map(|(_, c, _)| *c)
    }

    /// Per-cycle rate for `event`, if it was requested. Zero if no cycles
    /// elapsed.
    pub fn rate(&self, event: HardwareEvent) -> Option<f64> {
        let count = self.count(event)?;
        Some(if self.cycles > 0.0 { count / self.cycles } else { 0.0 })
    }

    /// Whether `event` was measured exactly this interval (vs estimated
    /// from a previous rotation slot).
    pub fn measured_exactly(&self, event: HardwareEvent) -> bool {
        event == HardwareEvent::Cycles
            || self.counts.iter().any(|(e, _, exact)| *e == event && *exact)
    }

    /// Retired IPC over the interval, if instructions were requested.
    pub fn ipc(&self) -> Option<f64> {
        self.rate(HardwareEvent::InstructionsRetired)
    }

    /// Decoded instructions per cycle (the paper's DPC), if requested.
    pub fn dpc(&self) -> Option<f64> {
        self.rate(HardwareEvent::InstructionsDecoded)
    }

    /// DCU-miss-outstanding cycles per cycle, if requested.
    pub fn dcu(&self) -> Option<f64> {
        self.rate(HardwareEvent::DcuMissOutstanding)
    }

    /// Whether this sample carries at least one exactly-measured count.
    ///
    /// A normal read is always fresh (even under multiplexing the two
    /// scheduled slots are exact); a sample reconstructed after a missed
    /// driver read ([`PmcDriver::sample_missed`]) is entirely estimated and
    /// therefore stale. A sample with no programmable events requested is
    /// vacuously fresh.
    pub fn is_fresh(&self) -> bool {
        self.counts.is_empty() || self.counts.iter().any(|(_, _, exact)| *exact)
    }

    /// Whether this sample carries positive evidence of a live counter
    /// driver: at least one event was requested *and* measured exactly.
    ///
    /// Unlike [`CounterSample::is_fresh`] — which answers "is this data
    /// usable?" and is therefore vacuously true with no events requested —
    /// this answers "did the PMC channel demonstrably work this interval?".
    /// Health monitors (the watchdog) must use this form: a governor that
    /// monitors no counters provides no evidence either way, and treating
    /// its empty sample as proof of life masks real outages.
    pub fn has_fresh_counts(&self) -> bool {
        self.counts.iter().any(|(_, _, exact)| *exact)
    }
}

/// The sampling driver.
///
/// # Examples
///
/// ```
/// use aapm_platform::{config::MachineConfig, machine::Machine};
/// use aapm_platform::events::HardwareEvent;
/// use aapm_platform::phase::PhaseDescriptor;
/// use aapm_platform::program::PhaseProgram;
/// use aapm_platform::units::Seconds;
/// use aapm_telemetry::pmc::PmcDriver;
///
/// let phase = PhaseDescriptor::builder("w").instructions(100_000_000).build()?;
/// let mut machine = Machine::new(MachineConfig::default(), PhaseProgram::from_phase(phase));
/// let mut pmc = PmcDriver::new(vec![HardwareEvent::InstructionsDecoded]);
/// machine.tick(Seconds::from_millis(10.0));
/// let sample = pmc.sample(&machine);
/// assert!(sample.dpc().unwrap() > 0.0);
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PmcDriver {
    requested: Vec<HardwareEvent>,
    rotation_offset: usize,
    last_snapshot: CounterSnapshot,
    last_time: Seconds,
    last_rates: Vec<(HardwareEvent, f64)>,
    last_cycle_rate: f64,
}

impl PmcDriver {
    /// Creates a driver monitoring `events`.
    ///
    /// [`HardwareEvent::Cycles`] is free-running and need not be listed;
    /// duplicates are removed. If more than [`PROGRAMMABLE_COUNTERS`]
    /// programmable events are requested, the driver multiplexes.
    pub fn new(events: Vec<HardwareEvent>) -> Self {
        let mut requested: Vec<HardwareEvent> = Vec::new();
        for e in events {
            if !e.is_free_running() && !requested.contains(&e) {
                requested.push(e);
            }
        }
        PmcDriver {
            requested,
            rotation_offset: 0,
            last_snapshot: CounterSnapshot::zero(),
            last_time: Seconds::ZERO,
            last_rates: Vec::new(),
            last_cycle_rate: 0.0,
        }
    }

    /// The programmable events being monitored.
    pub fn events(&self) -> &[HardwareEvent] {
        &self.requested
    }

    /// Whether the request overcommits the two counters (multiplexing on).
    pub fn is_multiplexing(&self) -> bool {
        self.requested.len() > PROGRAMMABLE_COUNTERS
    }

    /// Reads the counters, returning estimated counts since the last call.
    ///
    /// # Panics
    ///
    /// Panics if the machine's clock has not advanced since the last sample.
    pub fn sample(&mut self, machine: &Machine) -> CounterSample {
        let now = machine.elapsed();
        let snapshot = machine.counter_snapshot();
        let dt = now - self.last_time;
        assert!(dt.is_positive(), "machine must advance between PMC samples");
        // The hardware registers are 40 bits wide, so every delta is taken
        // modulo the register width (handles wraps between reads — including
        // the longer gap after missed reads).
        let cycles = wrapped_delta(
            snapshot.get(HardwareEvent::Cycles),
            self.last_snapshot.get(HardwareEvent::Cycles),
        );

        // Which requested events occupy the two slots this interval?
        let scheduled: Vec<HardwareEvent> = if self.is_multiplexing() {
            (0..PROGRAMMABLE_COUNTERS)
                .map(|k| self.requested[(self.rotation_offset + k) % self.requested.len()])
                .collect()
        } else {
            self.requested.clone()
        };

        let mut counts = Vec::with_capacity(self.requested.len());
        let requested = self.requested.clone();
        for event in requested {
            if scheduled.contains(&event) {
                let count = wrapped_delta(snapshot.get(event), self.last_snapshot.get(event));
                let rate = if cycles > 0.0 { count / cycles } else { 0.0 };
                self.record_rate(event, rate);
                counts.push((event, count, true));
            } else {
                // Estimate from the last measured rate of this event.
                let rate = self.rate_of(event).unwrap_or(0.0);
                counts.push((event, rate * cycles, false));
            }
        }

        if self.is_multiplexing() {
            self.rotation_offset =
                (self.rotation_offset + PROGRAMMABLE_COUNTERS) % self.requested.len();
        }
        self.last_snapshot = snapshot;
        self.last_time = now;
        self.last_cycle_rate = cycles / dt.seconds();
        CounterSample { start: now - dt, end: now, cycles, counts }
    }

    /// Reconstructs a sample for an interval whose driver read was missed.
    ///
    /// The driver's state does not advance: the next successful [`sample`]
    /// call integrates across the gap. The returned sample estimates every
    /// count from the most recent measured rates (all marked inexact, so
    /// [`CounterSample::is_fresh`] is `false` for non-empty requests).
    ///
    /// [`sample`]: PmcDriver::sample
    pub fn sample_missed(&self, machine: &Machine, nominal_interval: Seconds) -> CounterSample {
        let now = machine.elapsed();
        let cycles = self.last_cycle_rate * nominal_interval.seconds();
        let counts = self
            .requested
            .iter()
            .map(|&event| (event, self.rate_of(event).unwrap_or(0.0) * cycles, false))
            .collect();
        CounterSample { start: now - nominal_interval, end: now, cycles, counts }
    }

    fn record_rate(&mut self, event: HardwareEvent, rate: f64) {
        if let Some(slot) = self.last_rates.iter_mut().find(|(e, _)| *e == event) {
            slot.1 = rate;
        } else {
            self.last_rates.push((event, rate));
        }
    }

    fn rate_of(&self, event: HardwareEvent) -> Option<f64> {
        self.last_rates.iter().find(|(e, _)| *e == event).map(|(_, r)| *r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapm_platform::config::MachineConfig;
    use aapm_platform::phase::PhaseDescriptor;
    use aapm_platform::program::PhaseProgram;

    fn machine() -> Machine {
        let phase = PhaseDescriptor::builder("w")
            .instructions(100_000_000_000)
            .core_cpi(1.0)
            .mispredict_rate(0.0)
            .mem_fraction(0.4)
            .l1_mpi(0.02)
            .l2_mpi(0.001)
            .build()
            .unwrap();
        let mut builder = MachineConfig::builder();
        builder.execution_variation(0.0);
        Machine::new(builder.build().unwrap(), PhaseProgram::from_phase(phase))
    }

    #[test]
    fn two_events_are_measured_exactly_every_interval() {
        let mut m = machine();
        let mut pmc = PmcDriver::new(vec![
            HardwareEvent::InstructionsRetired,
            HardwareEvent::DcuMissOutstanding,
        ]);
        assert!(!pmc.is_multiplexing());
        for _ in 0..5 {
            m.tick(Seconds::from_millis(10.0));
            let s = pmc.sample(&m);
            assert!(s.measured_exactly(HardwareEvent::InstructionsRetired));
            assert!(s.measured_exactly(HardwareEvent::DcuMissOutstanding));
            assert!(s.ipc().unwrap() > 0.0);
            assert!(s.dcu().unwrap() > 0.0);
        }
    }

    #[test]
    fn cycles_are_free_and_exact() {
        let mut m = machine();
        let mut pmc = PmcDriver::new(vec![HardwareEvent::InstructionsDecoded]);
        m.tick(Seconds::from_millis(10.0));
        let s = pmc.sample(&m);
        // 2 GHz × 10 ms = 20M cycles.
        assert!((s.cycles - 20e6).abs() < 1.0);
        assert_eq!(s.count(HardwareEvent::Cycles), Some(s.cycles));
    }

    #[test]
    fn rates_match_machine_model() {
        let mut m = machine();
        let mut pmc = PmcDriver::new(vec![HardwareEvent::InstructionsRetired]);
        m.tick(Seconds::from_millis(10.0));
        let s = pmc.sample(&m);
        // CPI = 1.0 core + 0.02·10·0.8 L2 stall + 0.001·220·1.0 DRAM = 1.38.
        let expected_ipc = 1.0 / (1.0 + 0.16 + 0.22);
        assert!((s.ipc().unwrap() - expected_ipc).abs() < 1e-6);
    }

    #[test]
    fn four_events_multiplex_and_still_estimate_all() {
        let mut m = machine();
        let mut pmc = PmcDriver::new(vec![
            HardwareEvent::InstructionsRetired,
            HardwareEvent::InstructionsDecoded,
            HardwareEvent::DcuMissOutstanding,
            HardwareEvent::MemoryRequests,
        ]);
        assert!(pmc.is_multiplexing());
        // First interval: only the first pair is exact.
        m.tick(Seconds::from_millis(10.0));
        let s1 = pmc.sample(&m);
        assert!(s1.measured_exactly(HardwareEvent::InstructionsRetired));
        assert!(!s1.measured_exactly(HardwareEvent::DcuMissOutstanding));
        // Second interval: rotation brings the other pair in.
        m.tick(Seconds::from_millis(10.0));
        let s2 = pmc.sample(&m);
        assert!(s2.measured_exactly(HardwareEvent::DcuMissOutstanding));
        assert!(!s2.measured_exactly(HardwareEvent::InstructionsRetired));
        // Estimates exist for every requested event in both intervals.
        for s in [&s1, &s2] {
            for e in [
                HardwareEvent::InstructionsRetired,
                HardwareEvent::InstructionsDecoded,
                HardwareEvent::DcuMissOutstanding,
                HardwareEvent::MemoryRequests,
            ] {
                assert!(s.count(e).is_some());
            }
        }
        // On a steady phase the estimated rate converges to the exact one.
        assert!((s2.ipc().unwrap() - s1.ipc().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn unscheduled_event_with_no_history_estimates_zero() {
        let mut m = machine();
        let mut pmc = PmcDriver::new(vec![
            HardwareEvent::InstructionsRetired,
            HardwareEvent::InstructionsDecoded,
            HardwareEvent::DcuMissOutstanding,
        ]);
        m.tick(Seconds::from_millis(10.0));
        let s = pmc.sample(&m);
        assert_eq!(s.count(HardwareEvent::DcuMissOutstanding), Some(0.0));
    }

    #[test]
    fn duplicates_and_cycles_are_dropped_from_request() {
        let pmc = PmcDriver::new(vec![
            HardwareEvent::Cycles,
            HardwareEvent::InstructionsRetired,
            HardwareEvent::InstructionsRetired,
        ]);
        assert_eq!(pmc.events(), &[HardwareEvent::InstructionsRetired]);
    }

    #[test]
    fn unrequested_event_reads_none() {
        let mut m = machine();
        let mut pmc = PmcDriver::new(vec![HardwareEvent::InstructionsRetired]);
        m.tick(Seconds::from_millis(10.0));
        let s = pmc.sample(&m);
        assert_eq!(s.count(HardwareEvent::FpOperations), None);
        assert_eq!(s.dpc(), None);
    }

    #[test]
    fn wrapped_delta_reconstructs_counts_across_a_40_bit_wrap() {
        // Same epoch: identical to plain subtraction, bit for bit.
        assert_eq!(wrapped_delta(20e6, 0.0), 20e6);
        assert_eq!(wrapped_delta(123_456.75, 456.25), 123_000.5);
        let near_top = COUNTER_WRAP - 5e6;
        assert_eq!(wrapped_delta(near_top + 1e6, near_top), 1e6);
        // One wrap between reads: the register rolled over.
        assert_eq!(wrapped_delta(3e6, near_top), 8e6);
        // A register that wrapped exactly back to a smaller total.
        assert_eq!(wrapped_delta(COUNTER_WRAP + 7.0, COUNTER_WRAP - 3.0), 10.0);
    }

    #[test]
    fn sampling_across_a_wrap_matches_the_true_rate() {
        // Drive ~560 s of 2 GHz execution in big ticks so the cycle total
        // passes 2^40 ≈ 1.1e12, then check IPC is still the model's value.
        // The default test program would retire out after ~69 s, so give
        // this one enough instructions to stay busy past the wrap.
        let phase = PhaseDescriptor::builder("w")
            .instructions(10_000_000_000_000)
            .core_cpi(1.0)
            .mispredict_rate(0.0)
            .mem_fraction(0.4)
            .l1_mpi(0.02)
            .l2_mpi(0.001)
            .build()
            .unwrap();
        let mut builder = MachineConfig::builder();
        builder.execution_variation(0.0);
        let mut m = Machine::new(builder.build().unwrap(), PhaseProgram::from_phase(phase));
        let mut pmc = PmcDriver::new(vec![HardwareEvent::InstructionsRetired]);
        for _ in 0..56 {
            m.tick(Seconds::new(10.0));
            pmc.sample(&m);
        }
        assert!(m.counter_snapshot().get(HardwareEvent::Cycles) > COUNTER_WRAP);
        m.tick(Seconds::from_millis(10.0));
        let s = pmc.sample(&m);
        let expected_ipc = 1.0 / (1.0 + 0.16 + 0.22);
        assert!((s.ipc().unwrap() - expected_ipc).abs() < 1e-6);
    }

    #[test]
    fn missed_read_is_stale_and_next_read_integrates_the_gap() {
        let interval = Seconds::from_millis(10.0);
        let mut m = machine();
        let mut pmc = PmcDriver::new(vec![HardwareEvent::InstructionsRetired]);
        m.tick(interval);
        let first = pmc.sample(&m);
        assert!(first.is_fresh());

        // The driver misses the next read: its state must not advance, and
        // the reconstructed sample extrapolates the last measured rates.
        m.tick(interval);
        let missed = pmc.sample_missed(&m, interval);
        assert!(!missed.is_fresh());
        assert!((missed.cycles - first.cycles).abs() < 1.0);
        assert!((missed.ipc().unwrap() - first.ipc().unwrap()).abs() < 1e-9);

        // The next successful read covers both intervals.
        m.tick(interval);
        let recovered = pmc.sample(&m);
        assert!(recovered.is_fresh());
        assert!((recovered.cycles - 2.0 * first.cycles).abs() < 1.0);
        assert!((recovered.duration().seconds() - 0.02).abs() < 1e-9);
    }

    #[test]
    fn empty_request_is_vacuously_fresh() {
        let mut m = machine();
        let mut pmc = PmcDriver::new(vec![]);
        m.tick(Seconds::from_millis(10.0));
        assert!(pmc.sample(&m).is_fresh());
        m.tick(Seconds::from_millis(10.0));
        assert!(pmc.sample_missed(&m, Seconds::from_millis(10.0)).is_fresh());
    }
}
