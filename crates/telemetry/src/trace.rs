//! Time-series traces of power, p-state, and counter activity.
//!
//! Traces are what experiments plot (the paper's Figures 1, 5 and 8 are all
//! traces) and what violation/energy statistics are computed from.

use aapm_platform::pstate::PStateId;
use aapm_platform::units::{Joules, Seconds, Watts};

use crate::daq::PowerSample;

/// One record of a run trace: a sampling interval with everything observed
/// in it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// End of the sampling interval.
    pub time: Seconds,
    /// Measured average power over the interval.
    pub power: Watts,
    /// True average power over the interval.
    pub true_power: Watts,
    /// P-state in effect at the end of the interval.
    pub pstate: PStateId,
    /// Retired instructions per cycle over the interval (if monitored).
    pub ipc: Option<f64>,
    /// Decoded instructions per cycle over the interval (if monitored).
    pub dpc: Option<f64>,
}

/// A full run trace: records at the sampling cadence.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunTrace {
    records: Vec<TraceRecord>,
    interval: Seconds,
}

impl RunTrace {
    /// Creates an empty trace for samples of length `interval`.
    pub fn new(interval: Seconds) -> Self {
        RunTrace { records: Vec::new(), interval }
    }

    /// The sampling interval.
    pub fn interval(&self) -> Seconds {
        self.interval
    }

    /// Appends a record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// Convenience: appends a record built from a power sample.
    pub fn push_sample(
        &mut self,
        sample: &PowerSample,
        pstate: PStateId,
        ipc: Option<f64>,
        dpc: Option<f64>,
    ) {
        self.push(TraceRecord {
            time: sample.end,
            power: sample.power,
            true_power: sample.true_power,
            pstate,
            ipc,
            dpc,
        });
    }

    /// All records in time order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total measured energy: Σ (power × interval). This is the paper's
    /// energy metric ("summing energy values computed from each 10 ms power
    /// sample").
    pub fn measured_energy(&self) -> Joules {
        self.records.iter().map(|r| r.power * self.interval).sum()
    }

    /// Mean measured power over the whole trace, `None` when empty.
    pub fn mean_power(&self) -> Option<Watts> {
        if self.records.is_empty() {
            return None;
        }
        let total: f64 = self.records.iter().map(|r| r.power.watts()).sum();
        Some(Watts::new(total / self.records.len() as f64))
    }

    /// Maximum single-sample measured power, `None` when empty.
    pub fn max_power(&self) -> Option<Watts> {
        self.records.iter().map(|r| r.power).fold(None, |acc, p| Some(acc.map_or(p, |a| a.max(p))))
    }

    /// Moving-average power over windows of `window` consecutive samples,
    /// one value per trailing position (empty if fewer records than
    /// `window`).
    pub fn moving_average_power(&self, window: usize) -> Vec<f64> {
        if window == 0 || self.records.len() < window {
            return Vec::new();
        }
        let powers: Vec<f64> = self.records.iter().map(|r| r.power.watts()).collect();
        powers.windows(window).map(|w| w.iter().sum::<f64>() / window as f64).collect()
    }

    /// Fraction of `window`-sample moving averages that exceed `limit`
    /// (the paper's power-limit adherence metric over 100 ms windows).
    pub fn violation_fraction(&self, limit: Watts, window: usize) -> f64 {
        let averages = self.moving_average_power(window);
        if averages.is_empty() {
            return 0.0;
        }
        let violations = averages.iter().filter(|&&p| p > limit.watts()).count();
        violations as f64 / averages.len() as f64
    }

    /// Fraction of run time spent in each p-state (by sample count).
    pub fn pstate_residency(&self) -> Vec<(PStateId, f64)> {
        let mut counts: Vec<(PStateId, usize)> = Vec::new();
        for r in &self.records {
            if let Some(slot) = counts.iter_mut().find(|(id, _)| *id == r.pstate) {
                slot.1 += 1;
            } else {
                counts.push((r.pstate, 1));
            }
        }
        let total = self.records.len().max(1) as f64;
        counts.sort_by_key(|(id, _)| *id);
        counts.into_iter().map(|(id, n)| (id, n as f64 / total)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(t_ms: f64, power: f64, pstate: usize) -> TraceRecord {
        TraceRecord {
            time: Seconds::from_millis(t_ms),
            power: Watts::new(power),
            true_power: Watts::new(power),
            pstate: PStateId::new(pstate),
            ipc: None,
            dpc: None,
        }
    }

    fn trace(powers: &[f64]) -> RunTrace {
        let mut t = RunTrace::new(Seconds::from_millis(10.0));
        for (i, &p) in powers.iter().enumerate() {
            t.push(record(10.0 * (i + 1) as f64, p, 7));
        }
        t
    }

    #[test]
    fn measured_energy_sums_samples() {
        let t = trace(&[10.0, 12.0, 14.0]);
        // (10+12+14) W × 10 ms = 0.36 J
        assert!((t.measured_energy().joules() - 0.36).abs() < 1e-12);
    }

    #[test]
    fn mean_and_max_power() {
        let t = trace(&[10.0, 12.0, 14.0]);
        assert_eq!(t.mean_power(), Some(Watts::new(12.0)));
        assert_eq!(t.max_power(), Some(Watts::new(14.0)));
        assert_eq!(RunTrace::new(Seconds::from_millis(10.0)).mean_power(), None);
    }

    #[test]
    fn moving_average_has_expected_length_and_values() {
        let t = trace(&[10.0, 20.0, 30.0, 40.0]);
        let ma = t.moving_average_power(2);
        assert_eq!(ma, vec![15.0, 25.0, 35.0]);
        assert!(t.moving_average_power(5).is_empty());
        assert!(t.moving_average_power(0).is_empty());
    }

    #[test]
    fn violation_fraction_counts_window_averages() {
        // Windows of 2: averages 15, 25, 35 against limit 20 → 2/3 violate.
        let t = trace(&[10.0, 20.0, 30.0, 40.0]);
        let f = t.violation_fraction(Watts::new(20.0), 2);
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
        // A single 40 W sample does not violate the windowed limit per se:
        let f10 = t.violation_fraction(Watts::new(26.0), 4);
        assert_eq!(f10, 0.0, "4-sample average is 25 W");
    }

    #[test]
    fn residency_fractions_sum_to_one() {
        let mut t = RunTrace::new(Seconds::from_millis(10.0));
        t.push(record(10.0, 10.0, 7));
        t.push(record(20.0, 10.0, 6));
        t.push(record(30.0, 10.0, 7));
        t.push(record(40.0, 10.0, 7));
        let res = t.pstate_residency();
        let total: f64 = res.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(res.len(), 2);
        let p7 = res.iter().find(|(id, _)| *id == PStateId::new(7)).unwrap().1;
        assert!((p7 - 0.75).abs() < 1e-12);
    }
}
