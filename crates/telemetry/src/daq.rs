//! Power-measurement chain: sense resistors → amplifier → ADC → samples.
//!
//! Models the paper's rig: a Radisys board with high-precision sense
//! resistors between the voltage regulators and the processor, filtered,
//! amplified and digitized by a National Instruments SCXI-1125 + PCI-6052E
//! pair. The chain is non-intrusive: it reads the machine's true energy
//! counter (what the resistors integrate physically) and corrupts it with
//! gain error, additive noise, and ADC quantization.

use aapm_platform::machine::Machine;
use aapm_platform::noise::NoiseSource;
use aapm_platform::units::{Joules, Seconds, Watts};

/// Configuration of the measurement chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaqConfig {
    /// Multiplicative gain error of the analog front-end (1.0 = perfect).
    pub gain: f64,
    /// Standard deviation of additive noise per sample, in watts.
    pub noise_std_watts: f64,
    /// ADC quantization step in watts (0 disables quantization).
    pub quantization_watts: f64,
}

impl DaqConfig {
    /// The paper's instrument class: 16-bit ADC over a ~25 W range
    /// (≈ 0.4 mW LSB — negligible), mild front-end noise, sub-percent gain
    /// error.
    pub fn ni_scxi_1125() -> Self {
        DaqConfig { gain: 1.0, noise_std_watts: 0.12, quantization_watts: 0.0004 }
    }

    /// A perfect meter (for tests that need exact power).
    pub fn ideal() -> Self {
        DaqConfig { gain: 1.0, noise_std_watts: 0.0, quantization_watts: 0.0 }
    }
}

impl Default for DaqConfig {
    fn default() -> Self {
        DaqConfig::ni_scxi_1125()
    }
}

/// One power sample: the average measured power over `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Start of the averaging interval.
    pub start: Seconds,
    /// End of the averaging interval.
    pub end: Seconds,
    /// Measured average power (noisy, quantized).
    pub power: Watts,
    /// True average power over the same interval (for model-error studies;
    /// the paper's governors never see this).
    pub true_power: Watts,
}

impl PowerSample {
    /// Interval length.
    pub fn duration(&self) -> Seconds {
        self.end - self.start
    }

    /// Energy implied by the measured power over the interval.
    pub fn energy(&self) -> Joules {
        self.power * self.duration()
    }
}

/// The sampling power meter.
///
/// Call [`PowerDaq::sample`] once per sampling interval *after* advancing
/// the machine; each call reports the average power since the previous call.
///
/// # Examples
///
/// ```
/// use aapm_platform::{config::MachineConfig, machine::Machine};
/// use aapm_platform::phase::PhaseDescriptor;
/// use aapm_platform::program::PhaseProgram;
/// use aapm_platform::units::Seconds;
/// use aapm_telemetry::daq::{DaqConfig, PowerDaq};
///
/// let phase = PhaseDescriptor::builder("w").instructions(100_000_000).build()?;
/// let mut machine = Machine::new(MachineConfig::default(), PhaseProgram::from_phase(phase));
/// let mut daq = PowerDaq::new(DaqConfig::default(), 7);
/// machine.tick(Seconds::from_millis(10.0));
/// let sample = daq.sample(&machine);
/// assert!(sample.power.watts() > 0.0);
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PowerDaq {
    config: DaqConfig,
    noise: NoiseSource,
    last_time: Seconds,
    last_energy: Joules,
}

impl PowerDaq {
    /// Creates a meter with its own noise stream.
    pub fn new(config: DaqConfig, seed: u64) -> Self {
        PowerDaq {
            config,
            noise: NoiseSource::seeded(seed ^ 0xDA0_0001),
            last_time: Seconds::ZERO,
            last_energy: Joules::ZERO,
        }
    }

    /// The chain configuration.
    pub fn config(&self) -> &DaqConfig {
        &self.config
    }

    /// Measures the average power since the previous sample (or since boot
    /// for the first sample).
    ///
    /// # Panics
    ///
    /// Panics if the machine's clock has not advanced since the last sample.
    pub fn sample(&mut self, machine: &Machine) -> PowerSample {
        let now = machine.elapsed();
        let energy = machine.true_energy();
        let dt = now - self.last_time;
        assert!(dt.is_positive(), "machine must advance between DAQ samples");
        let true_power = (energy - self.last_energy) / dt;
        let mut measured =
            true_power.watts() * self.config.gain + self.noise.gaussian(0.0, self.config.noise_std_watts);
        if self.config.quantization_watts > 0.0 {
            measured = (measured / self.config.quantization_watts).round()
                * self.config.quantization_watts;
        }
        let sample = PowerSample {
            start: self.last_time,
            end: now,
            power: Watts::new(measured).clamp_non_negative(),
            true_power,
        };
        self.last_time = now;
        self.last_energy = energy;
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapm_platform::config::MachineConfig;
    use aapm_platform::phase::PhaseDescriptor;
    use aapm_platform::program::PhaseProgram;

    fn machine() -> Machine {
        let phase = PhaseDescriptor::builder("w")
            .instructions(10_000_000_000)
            .core_cpi(0.8)
            .build()
            .unwrap();
        let mut builder = MachineConfig::builder();
        builder.execution_variation(0.0);
        Machine::new(builder.build().unwrap(), PhaseProgram::from_phase(phase))
    }

    #[test]
    fn ideal_daq_reports_true_power() {
        let mut m = machine();
        let mut daq = PowerDaq::new(DaqConfig::ideal(), 1);
        m.tick(Seconds::from_millis(10.0));
        let s = daq.sample(&m);
        assert_eq!(s.power, s.true_power);
        assert!(s.power.watts() > 5.0);
    }

    #[test]
    fn consecutive_samples_tile_the_timeline() {
        let mut m = machine();
        let mut daq = PowerDaq::new(DaqConfig::default(), 1);
        let mut prev_end = Seconds::ZERO;
        for _ in 0..5 {
            m.tick(Seconds::from_millis(10.0));
            let s = daq.sample(&m);
            assert_eq!(s.start, prev_end);
            assert!((s.duration().millis() - 10.0).abs() < 1e-9);
            prev_end = s.end;
        }
    }

    #[test]
    fn noisy_samples_scatter_around_truth() {
        let mut m = machine();
        let mut daq = PowerDaq::new(
            DaqConfig { gain: 1.0, noise_std_watts: 0.2, quantization_watts: 0.0 },
            42,
        );
        let mut errors = Vec::new();
        for _ in 0..500 {
            m.tick(Seconds::from_millis(10.0));
            let s = daq.sample(&m);
            errors.push(s.power.watts() - s.true_power.watts());
        }
        let mean: f64 = errors.iter().sum::<f64>() / errors.len() as f64;
        let std =
            (errors.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / errors.len() as f64)
                .sqrt();
        assert!(mean.abs() < 0.05, "noise should be zero-mean, got {mean}");
        assert!((std - 0.2).abs() < 0.04, "std should match config, got {std}");
    }

    #[test]
    fn gain_error_biases_readings() {
        let mut m = machine();
        let mut daq =
            PowerDaq::new(DaqConfig { gain: 1.02, noise_std_watts: 0.0, quantization_watts: 0.0 }, 1);
        m.tick(Seconds::from_millis(10.0));
        let s = daq.sample(&m);
        assert!((s.power.watts() / s.true_power.watts() - 1.02).abs() < 1e-9);
    }

    #[test]
    fn quantization_snaps_to_grid() {
        let mut m = machine();
        let step = 0.5;
        let mut daq =
            PowerDaq::new(DaqConfig { gain: 1.0, noise_std_watts: 0.0, quantization_watts: step }, 1);
        m.tick(Seconds::from_millis(10.0));
        let s = daq.sample(&m);
        let remainder = (s.power.watts() / step).fract();
        assert!(remainder.abs() < 1e-9 || (1.0 - remainder).abs() < 1e-9);
    }

    #[test]
    fn identical_seeds_reproduce_samples() {
        let mut m1 = machine();
        let mut m2 = machine();
        let mut d1 = PowerDaq::new(DaqConfig::default(), 5);
        let mut d2 = PowerDaq::new(DaqConfig::default(), 5);
        for _ in 0..10 {
            m1.tick(Seconds::from_millis(10.0));
            m2.tick(Seconds::from_millis(10.0));
            assert_eq!(d1.sample(&m1), d2.sample(&m2));
        }
    }
}
