//! Small statistics helpers used across experiments.

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of values.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
}

/// Computes summary statistics; `None` for an empty slice.
pub fn summarize(values: &[f64]) -> Option<Summary> {
    if values.is_empty() {
        return None;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Some(Summary { count: values.len(), mean, std_dev: var.sqrt(), min, max })
}

/// Median of the values (mean of the middle pair for even counts);
/// `None` for an empty slice. Used for the paper's "three runs, report the
/// median" methodology.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in medians"));
    let mid = sorted.len() / 2;
    Some(if sorted.len() % 2 == 1 { sorted[mid] } else { (sorted[mid - 1] + sorted[mid]) / 2.0 })
}

/// Linear-interpolation percentile (`p` in `[0, 100]`); `None` for an empty
/// slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must lie in [0, 100]");
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in percentiles"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(summarize(&[]), None);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(50.0));
        assert_eq!(percentile(&v, 50.0), Some(30.0));
        assert_eq!(percentile(&v, 25.0), Some(20.0));
        assert_eq!(percentile(&v, 90.0), Some(46.0));
    }

    #[test]
    #[should_panic(expected = "[0, 100]")]
    fn percentile_out_of_range_panics() {
        let _ = percentile(&[1.0], 101.0);
    }
}
