//! Small statistics helpers used across experiments.

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of values.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// **Population** standard deviation (divisor `n`, not `n − 1`). The
    /// intended inputs are complete populations — e.g. the paper's three
    /// fixed-seed runs behind every reported median — where the values
    /// *are* the whole set, not a sample from one. Callers estimating the
    /// spread of a larger population should apply Bessel's correction
    /// themselves (`std_dev * sqrt(n / (n − 1))`; ~22 % larger at n = 3).
    pub std_dev: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
}

/// Computes summary statistics; `None` for an empty slice.
pub fn summarize(values: &[f64]) -> Option<Summary> {
    if values.is_empty() {
        return None;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Some(Summary { count: values.len(), mean, std_dev: var.sqrt(), min, max })
}

/// Median of the values (mean of the middle pair for even counts);
/// `None` for an empty slice. Used for the paper's "three runs, report the
/// median" methodology.
///
/// NaNs sort after `+inf` (IEEE 754 total order), so they never panic and
/// only reach the result when they crowd past the midpoint — a NaN result
/// is an honest "your samples were NaN", not a crash.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    Some(if sorted.len() % 2 == 1 { sorted[mid] } else { (sorted[mid - 1] + sorted[mid]) / 2.0 })
}

/// Linear-interpolation percentile (`p` in `[0, 100]`); `None` for an empty
/// slice **or an out-of-range `p`** (including NaN). An invalid rank is a
/// caller bug either way, but governors compute ranks from live telemetry —
/// a poisoned rank must degrade like missing telemetry does everywhere
/// else in the stack, not panic the control loop.
///
/// NaNs in `values` sort after `+inf` (IEEE 754 total order) instead of
/// panicking. The interpolation rank is clamped to the slice, and exact
/// ranks (p = 0, p = 100, single element) return the element directly
/// rather than interpolating — `inf * 0.0` would manufacture a NaN.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if !(0.0..=100.0).contains(&p) {
        return None;
    }
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).clamp(0.0, (sorted.len() - 1) as f64);
    let lo = rank.floor() as usize;
    let hi = (rank.ceil() as usize).min(sorted.len() - 1);
    let frac = rank - lo as f64;
    Some(if frac == 0.0 { sorted[lo] } else { sorted[lo] * (1.0 - frac) + sorted[hi] * frac })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(summarize(&[]), None);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(50.0));
        assert_eq!(percentile(&v, 50.0), Some(30.0));
        assert_eq!(percentile(&v, 25.0), Some(20.0));
        assert_eq!(percentile(&v, 90.0), Some(46.0));
    }

    #[test]
    fn percentile_out_of_range_is_none() {
        assert_eq!(percentile(&[1.0], 101.0), None);
        assert_eq!(percentile(&[1.0], -0.5), None);
        assert_eq!(percentile(&[1.0], f64::NAN), None);
        assert_eq!(percentile(&[1.0], f64::INFINITY), None);
    }

    #[test]
    fn median_and_percentile_survive_non_finite_input() {
        // NaN sorts last, so a single NaN among finite values leaves the
        // lower order statistics intact.
        let v = [f64::NAN, 1.0, 2.0, 3.0];
        assert_eq!(median(&v), Some(2.5));
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert!(percentile(&v, 100.0).unwrap().is_nan());
        // Infinities at the boundaries return exactly, not `inf * 0 = NaN`.
        let w = [f64::NEG_INFINITY, 0.0, f64::INFINITY];
        assert_eq!(percentile(&w, 0.0), Some(f64::NEG_INFINITY));
        assert_eq!(percentile(&w, 100.0), Some(f64::INFINITY));
        assert_eq!(percentile(&w, 50.0), Some(0.0));
        assert_eq!(median(&[f64::NAN]).map(f64::is_nan), Some(true));
    }

    #[test]
    fn percentile_of_single_element_is_that_element() {
        for p in [0.0, 37.5, 100.0] {
            assert_eq!(percentile(&[42.0], p), Some(42.0));
        }
    }
}
