//! Deterministic fault injection for the measurement and actuation chain.
//!
//! The paper's governors ran against a physical rig — sense resistors and an
//! NI SCXI-1125 DAQ, a kernel PMC driver, ACPI p-state writes — where
//! samples drop, counters saturate, and DVFS writes occasionally stall. The
//! reproduction's telemetry is perfectly cadenced unless told otherwise;
//! this module is the "told otherwise": a seeded [`FaultPlan`] that decides,
//! per 10 ms control interval, which telemetry channels fail and whether the
//! actuator honors the governor's write.
//!
//! Two fault sources compose:
//!
//! * **stochastic rates** ([`FaultConfig`]) — independent per-interval
//!   Bernoulli faults, drawn from the plan's own seeded noise stream so an
//!   all-zero config leaves every other stream (DAQ, sensor, machine)
//!   bit-identical to a fault-free run;
//! * **scheduled windows** ([`FaultWindow`]) — deterministic outages
//!   (e.g. a two-second DAQ blackout) for reproducible degradation studies.
//!
//! The runtime threads the resulting [`IntervalFaults`] through the control
//! loop; governors see `None` power/temperature and stale counter samples
//! and must degrade gracefully rather than panic.

use aapm_platform::error::{PlatformError, Result};
use aapm_platform::noise::NoiseSource;
use aapm_platform::units::Seconds;

/// Stochastic fault rates, all per control interval.
///
/// The default config is all-zero and provably inert: [`FaultPlan`] draws
/// nothing from its noise stream when every rate is zero and no windows are
/// scheduled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault plan's private noise stream.
    pub seed: u64,
    /// P(power sample dropped — DAQ returns nothing this interval).
    pub power_dropout_rate: f64,
    /// P(power reading stuck at the last delivered value).
    pub power_stuck_rate: f64,
    /// P(thermal-sensor read dropped).
    pub thermal_dropout_rate: f64,
    /// P(PMC read missed — the driver's state does not advance and the
    /// governor sees a rate-estimated, stale sample).
    pub pmc_missed_rate: f64,
    /// P(a `set_pstate` write is silently ignored).
    pub actuation_ignored_rate: f64,
    /// P(a `set_pstate` write stalls and lands `stall_intervals` later).
    pub actuation_stall_rate: f64,
    /// Latency of a stalled write, in control intervals (bounded).
    pub stall_intervals: usize,
    /// In-interval retries attempted after an ignored write before the
    /// runtime gives up until the next interval (capped backoff).
    pub retry_limit: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            power_dropout_rate: 0.0,
            power_stuck_rate: 0.0,
            thermal_dropout_rate: 0.0,
            pmc_missed_rate: 0.0,
            actuation_ignored_rate: 0.0,
            actuation_stall_rate: 0.0,
            stall_intervals: 3,
            retry_limit: 3,
        }
    }
}

impl FaultConfig {
    /// The stochastic rates as stable `(name, value)` pairs, in the
    /// declaration order above. This is the serialization surface: the
    /// fuzz harness's scenario codec writes these names as JSON keys and
    /// reads them back through [`FaultConfig::set_rate`].
    pub fn rates(&self) -> [(&'static str, f64); 6] {
        [
            ("power_dropout_rate", self.power_dropout_rate),
            ("power_stuck_rate", self.power_stuck_rate),
            ("thermal_dropout_rate", self.thermal_dropout_rate),
            ("pmc_missed_rate", self.pmc_missed_rate),
            ("actuation_ignored_rate", self.actuation_ignored_rate),
            ("actuation_stall_rate", self.actuation_stall_rate),
        ]
    }

    /// Sets the rate named `name` (one of the [`FaultConfig::rates`]
    /// names). Returns `false` when the name is unknown, so codecs can
    /// report the bad key instead of silently dropping it.
    pub fn set_rate(&mut self, name: &str, value: f64) -> bool {
        match name {
            "power_dropout_rate" => self.power_dropout_rate = value,
            "power_stuck_rate" => self.power_stuck_rate = value,
            "thermal_dropout_rate" => self.thermal_dropout_rate = value,
            "pmc_missed_rate" => self.pmc_missed_rate = value,
            "actuation_ignored_rate" => self.actuation_ignored_rate = value,
            "actuation_stall_rate" => self.actuation_stall_rate = value,
            _ => return false,
        }
        true
    }

    /// Whether every stochastic rate is zero (no faults will ever fire from
    /// this config alone).
    pub fn is_inert(&self) -> bool {
        self.power_dropout_rate == 0.0
            && self.power_stuck_rate == 0.0
            && self.thermal_dropout_rate == 0.0
            && self.pmc_missed_rate == 0.0
            && self.actuation_ignored_rate == 0.0
            && self.actuation_stall_rate == 0.0
    }

    /// Validates all rates are finite probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidConfig`] naming the offending rate.
    pub fn validate(&self) -> Result<()> {
        let rates = [
            ("power_dropout_rate", self.power_dropout_rate),
            ("power_stuck_rate", self.power_stuck_rate),
            ("thermal_dropout_rate", self.thermal_dropout_rate),
            ("pmc_missed_rate", self.pmc_missed_rate),
            ("actuation_ignored_rate", self.actuation_ignored_rate),
            ("actuation_stall_rate", self.actuation_stall_rate),
        ];
        for (name, rate) in rates {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(PlatformError::InvalidConfig {
                    parameter: name,
                    reason: format!("fault rate {rate} must be a probability in [0, 1]"),
                });
            }
        }
        if self.actuation_stall_rate > 0.0 && self.stall_intervals == 0 {
            return Err(PlatformError::InvalidConfig {
                parameter: "stall_intervals",
                reason: "stalled writes need a latency of at least one interval".into(),
            });
        }
        Ok(())
    }
}

/// What a scheduled outage window breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// DAQ delivers no power samples.
    PowerDropout,
    /// DAQ repeats the last delivered power value.
    PowerStuck,
    /// Thermal sensor delivers no readings.
    ThermalDropout,
    /// PMC reads are missed (driver state frozen; samples estimated).
    PmcMissed,
    /// `set_pstate` writes are ignored.
    ActuationIgnored,
    /// Power, PMC, and thermal all lost at once (e.g. the measurement rig's
    /// sync GPIO line detached).
    Blackout,
}

impl FaultKind {
    /// Every kind, in a stable order (for generators and docs).
    pub const ALL: [FaultKind; 6] = [
        FaultKind::PowerDropout,
        FaultKind::PowerStuck,
        FaultKind::ThermalDropout,
        FaultKind::PmcMissed,
        FaultKind::ActuationIgnored,
        FaultKind::Blackout,
    ];

    /// The kind's stable serialized name (kebab-case, mirroring the
    /// governor registry's kind discriminators).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::PowerDropout => "power-dropout",
            FaultKind::PowerStuck => "power-stuck",
            FaultKind::ThermalDropout => "thermal-dropout",
            FaultKind::PmcMissed => "pmc-missed",
            FaultKind::ActuationIgnored => "actuation-ignored",
            FaultKind::Blackout => "blackout",
        }
    }

    /// Parses a serialized kind name; `None` for unknown names.
    pub fn from_name(name: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|kind| kind.as_str() == name)
    }
}

/// A deterministic outage over `[start, end)` of simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// Start of the outage (inclusive).
    pub start: Seconds,
    /// End of the outage (exclusive).
    pub end: Seconds,
    /// What fails during the outage.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: Seconds) -> bool {
        self.start <= t && t < self.end
    }

    fn validate(&self) -> Result<()> {
        let (start, end) = (self.start.seconds(), self.end.seconds());
        if !start.is_finite() || !end.is_finite() || start >= end {
            return Err(PlatformError::InvalidConfig {
                parameter: "fault_windows",
                reason: format!("window [{start}, {end}) must be finite and non-empty"),
            });
        }
        Ok(())
    }
}

/// How one interval's power sample is corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PowerFault {
    /// Sample delivered normally.
    #[default]
    Intact,
    /// Sample lost; the governor sees `None`.
    Dropped,
    /// Reading stuck at the last delivered value.
    Stuck,
}

/// How one interval's p-state write is corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActuationFault {
    /// Write applied normally.
    #[default]
    Intact,
    /// Write silently dropped.
    Ignored,
    /// Write lands after a bounded delay.
    Stalled,
}

/// The faults in effect for one control interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntervalFaults {
    /// Power-sample fate.
    pub power: PowerFault,
    /// Whether the thermal read is lost.
    pub thermal_dropped: bool,
    /// Whether the PMC read is missed.
    pub pmc_missed: bool,
    /// P-state-write fate.
    pub actuation: ActuationFault,
}

impl IntervalFaults {
    /// An interval with no faults.
    pub const CLEAN: IntervalFaults = IntervalFaults {
        power: PowerFault::Intact,
        thermal_dropped: false,
        pmc_missed: false,
        actuation: ActuationFault::Intact,
    };
}

/// Counters of every fault the runtime actually injected or absorbed during
/// a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Power samples dropped.
    pub power_dropouts: u64,
    /// Power samples stuck at the previous value.
    pub power_stuck: u64,
    /// Thermal reads dropped.
    pub thermal_dropouts: u64,
    /// PMC reads missed.
    pub pmc_missed: u64,
    /// `set_pstate` writes ignored (including failed retries).
    pub actuations_ignored: u64,
    /// `set_pstate` writes that stalled.
    pub actuations_stalled: u64,
    /// Intervals where every retry of a write failed and the runtime
    /// absorbed an `ActuationFailed` error instead of propagating it.
    pub actuation_failures: u64,
}

impl FaultStats {
    /// Total telemetry samples lost or corrupted.
    pub fn telemetry_losses(&self) -> u64 {
        self.power_dropouts + self.power_stuck + self.thermal_dropouts + self.pmc_missed
    }

    /// Total actuator misbehaviors.
    pub fn actuation_faults(&self) -> u64 {
        self.actuations_ignored + self.actuations_stalled
    }

    /// Whether nothing at all was injected.
    pub fn is_clean(&self) -> bool {
        self == &FaultStats::default()
    }
}

/// The seeded, deterministic fault schedule for one run.
///
/// # Examples
///
/// ```
/// use aapm_platform::units::Seconds;
/// use aapm_telemetry::faults::{FaultConfig, FaultPlan};
///
/// let config = FaultConfig { seed: 7, power_dropout_rate: 0.5, ..FaultConfig::default() };
/// let mut a = FaultPlan::new(config)?;
/// let mut b = FaultPlan::new(config)?;
/// for i in 0..100 {
///     let t = Seconds::new(0.01 * i as f64);
///     assert_eq!(a.next_interval(t), b.next_interval(t));
/// }
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    windows: Vec<FaultWindow>,
    noise: NoiseSource,
    inert: bool,
}

impl FaultPlan {
    /// A plan with stochastic faults only.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidConfig`] on out-of-range rates.
    pub fn new(config: FaultConfig) -> Result<Self> {
        FaultPlan::with_windows(config, &[])
    }

    /// A plan combining stochastic rates and scheduled outage windows.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidConfig`] on out-of-range rates or
    /// non-finite/empty windows.
    pub fn with_windows(config: FaultConfig, windows: &[FaultWindow]) -> Result<Self> {
        config.validate()?;
        for window in windows {
            window.validate()?;
        }
        let inert = config.is_inert() && windows.is_empty();
        Ok(FaultPlan {
            config,
            windows: windows.to_vec(),
            noise: NoiseSource::seeded(config.seed ^ 0x00FA_017F_A017),
            inert,
        })
    }

    /// Whether this plan can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.inert
    }

    /// The configured stochastic rates.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Decides the faults for the control interval ending at `now`.
    ///
    /// Draws a fixed number of deviates from the plan's private stream per
    /// call (zero when the plan is inert), so a given `(config, windows)`
    /// pair yields the same fault sequence on every run.
    pub fn next_interval(&mut self, now: Seconds) -> IntervalFaults {
        if self.inert {
            return IntervalFaults::CLEAN;
        }
        // Stochastic draws happen unconditionally and in a fixed order so
        // scheduled windows never perturb the stream.
        let dropout = self.noise.chance(self.config.power_dropout_rate);
        let stuck = self.noise.chance(self.config.power_stuck_rate);
        let thermal = self.noise.chance(self.config.thermal_dropout_rate);
        let pmc = self.noise.chance(self.config.pmc_missed_rate);
        let ignored = self.noise.chance(self.config.actuation_ignored_rate);
        let stalled = self.noise.chance(self.config.actuation_stall_rate);

        let mut faults = IntervalFaults {
            power: if dropout {
                PowerFault::Dropped
            } else if stuck {
                PowerFault::Stuck
            } else {
                PowerFault::Intact
            },
            thermal_dropped: thermal,
            pmc_missed: pmc,
            actuation: if ignored {
                ActuationFault::Ignored
            } else if stalled {
                ActuationFault::Stalled
            } else {
                ActuationFault::Intact
            },
        };
        for window in &self.windows {
            if !window.contains(now) {
                continue;
            }
            match window.kind {
                FaultKind::PowerDropout => faults.power = PowerFault::Dropped,
                FaultKind::PowerStuck => faults.power = PowerFault::Stuck,
                FaultKind::ThermalDropout => faults.thermal_dropped = true,
                FaultKind::PmcMissed => faults.pmc_missed = true,
                FaultKind::ActuationIgnored => faults.actuation = ActuationFault::Ignored,
                FaultKind::Blackout => {
                    faults.power = PowerFault::Dropped;
                    faults.thermal_dropped = true;
                    faults.pmc_missed = true;
                }
            }
        }
        faults
    }

    /// Whether one in-interval retry of an ignored write also fails.
    ///
    /// Scheduled [`FaultKind::ActuationIgnored`] windows fail all retries
    /// deterministically; otherwise this is a fresh Bernoulli draw at the
    /// configured ignore rate.
    pub fn retry_fails(&mut self, now: Seconds) -> bool {
        if self.inert {
            return false;
        }
        if self
            .windows
            .iter()
            .any(|w| w.kind == FaultKind::ActuationIgnored && w.contains(now))
        {
            return true;
        }
        self.noise.chance(self.config.actuation_ignored_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(n: usize) -> impl Iterator<Item = Seconds> {
        (0..n).map(|i| Seconds::new(0.01 * (i + 1) as f64))
    }

    #[test]
    fn default_config_is_inert_and_draws_nothing() {
        let mut plan = FaultPlan::new(FaultConfig::default()).unwrap();
        assert!(plan.is_inert());
        for t in times(1000) {
            assert_eq!(plan.next_interval(t), IntervalFaults::CLEAN);
            assert!(!plan.retry_fails(t));
        }
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let config = FaultConfig {
            seed: 42,
            power_dropout_rate: 0.1,
            power_stuck_rate: 0.05,
            thermal_dropout_rate: 0.08,
            pmc_missed_rate: 0.1,
            actuation_ignored_rate: 0.06,
            actuation_stall_rate: 0.04,
            ..FaultConfig::default()
        };
        let mut a = FaultPlan::new(config).unwrap();
        let mut b = FaultPlan::new(config).unwrap();
        for t in times(2000) {
            assert_eq!(a.next_interval(t), b.next_interval(t));
        }
    }

    #[test]
    fn different_seeds_give_different_sequences() {
        let base = FaultConfig { power_dropout_rate: 0.3, ..FaultConfig::default() };
        let mut a = FaultPlan::new(FaultConfig { seed: 1, ..base }).unwrap();
        let mut b = FaultPlan::new(FaultConfig { seed: 2, ..base }).unwrap();
        let differing = times(500)
            .filter(|&t| a.next_interval(t) != b.next_interval(t))
            .count();
        assert!(differing > 0, "distinct seeds must produce distinct plans");
    }

    #[test]
    fn rates_are_approximately_honored() {
        let config = FaultConfig { seed: 9, power_dropout_rate: 0.1, ..FaultConfig::default() };
        let mut plan = FaultPlan::new(config).unwrap();
        let n = 20_000;
        let dropped = times(n)
            .filter(|&t| plan.next_interval(t).power == PowerFault::Dropped)
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "observed dropout rate {rate}");
    }

    #[test]
    fn windows_fire_exactly_inside_their_span() {
        let window = FaultWindow {
            start: Seconds::new(0.5),
            end: Seconds::new(1.0),
            kind: FaultKind::Blackout,
        };
        let mut plan = FaultPlan::with_windows(FaultConfig::default(), &[window]).unwrap();
        assert!(!plan.is_inert());
        for t in times(150) {
            let faults = plan.next_interval(t);
            if window.contains(t) {
                assert_eq!(faults.power, PowerFault::Dropped, "at {t}");
                assert!(faults.thermal_dropped && faults.pmc_missed, "at {t}");
            } else {
                assert_eq!(faults, IntervalFaults::CLEAN, "at {t}");
            }
        }
    }

    #[test]
    fn actuation_window_fails_retries_deterministically() {
        let window = FaultWindow {
            start: Seconds::ZERO,
            end: Seconds::new(10.0),
            kind: FaultKind::ActuationIgnored,
        };
        let mut plan = FaultPlan::with_windows(FaultConfig::default(), &[window]).unwrap();
        for t in times(10) {
            assert_eq!(plan.next_interval(t).actuation, ActuationFault::Ignored);
            assert!(plan.retry_fails(t));
        }
    }

    #[test]
    fn invalid_rates_and_windows_are_rejected() {
        let bad_rate = FaultConfig { power_dropout_rate: 1.5, ..FaultConfig::default() };
        assert!(matches!(
            FaultPlan::new(bad_rate),
            Err(PlatformError::InvalidConfig { parameter: "power_dropout_rate", .. })
        ));
        let nan_rate = FaultConfig { pmc_missed_rate: f64::NAN, ..FaultConfig::default() };
        assert!(FaultPlan::new(nan_rate).is_err());
        let no_latency = FaultConfig {
            actuation_stall_rate: 0.1,
            stall_intervals: 0,
            ..FaultConfig::default()
        };
        assert!(FaultPlan::new(no_latency).is_err());
        let empty_window = FaultWindow {
            start: Seconds::new(1.0),
            end: Seconds::new(1.0),
            kind: FaultKind::PowerDropout,
        };
        assert!(FaultPlan::with_windows(FaultConfig::default(), &[empty_window]).is_err());
    }

    /// The serialization surface round-trips: every kind name parses back
    /// to itself, and every rate written through `rates()` is readable
    /// through `set_rate`.
    #[test]
    fn serialization_helpers_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::from_name(kind.as_str()), Some(kind));
        }
        assert_eq!(FaultKind::from_name("gamma-rays"), None);

        let source = FaultConfig {
            seed: 11,
            power_dropout_rate: 0.1,
            power_stuck_rate: 0.2,
            thermal_dropout_rate: 0.3,
            pmc_missed_rate: 0.4,
            actuation_ignored_rate: 0.5,
            actuation_stall_rate: 0.6,
            ..FaultConfig::default()
        };
        let mut rebuilt = FaultConfig { seed: 11, ..FaultConfig::default() };
        for (name, value) in source.rates() {
            assert!(rebuilt.set_rate(name, value), "unknown rate name {name}");
        }
        assert_eq!(rebuilt, source);
        assert!(!rebuilt.set_rate("not_a_rate", 0.5));
    }

    #[test]
    fn stats_roll_up() {
        let stats = FaultStats {
            power_dropouts: 3,
            power_stuck: 1,
            thermal_dropouts: 2,
            pmc_missed: 4,
            actuations_ignored: 5,
            actuations_stalled: 6,
            actuation_failures: 1,
        };
        assert_eq!(stats.telemetry_losses(), 10);
        assert_eq!(stats.actuation_faults(), 11);
        assert!(!stats.is_clean());
        assert!(FaultStats::default().is_clean());
    }
}
