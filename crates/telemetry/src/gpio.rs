//! GPIO synchronization markers.
//!
//! The paper raises a 3.3 V GPIO line at the start and end of each benchmark
//! run so the external power-capture can be aligned with application
//! execution. The simulated equivalent records labelled timestamps that
//! experiments use to slice traces per benchmark.

use aapm_platform::units::Seconds;

/// Edge direction of a marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Benchmark (or region) start.
    Rising,
    /// Benchmark (or region) end.
    Falling,
}

/// A labelled synchronization event.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncMarker {
    /// Time the line toggled.
    pub time: Seconds,
    /// Edge direction.
    pub edge: Edge,
    /// Label of the region (benchmark name).
    pub label: String,
}

/// Recorder for synchronization markers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SyncChannel {
    markers: Vec<SyncMarker>,
}

impl SyncChannel {
    /// Creates an empty channel.
    pub fn new() -> Self {
        SyncChannel::default()
    }

    /// Records a region start.
    pub fn rise(&mut self, time: Seconds, label: impl Into<String>) {
        self.markers.push(SyncMarker { time, edge: Edge::Rising, label: label.into() });
    }

    /// Records a region end.
    pub fn fall(&mut self, time: Seconds, label: impl Into<String>) {
        self.markers.push(SyncMarker { time, edge: Edge::Falling, label: label.into() });
    }

    /// All markers in record order.
    pub fn markers(&self) -> &[SyncMarker] {
        &self.markers
    }

    /// The `[start, end)` interval of the first region named `label`, if
    /// both edges were recorded.
    pub fn region(&self, label: &str) -> Option<(Seconds, Seconds)> {
        let start = self
            .markers
            .iter()
            .find(|m| m.edge == Edge::Rising && m.label == label)?
            .time;
        let end = self
            .markers
            .iter()
            .find(|m| m.edge == Edge::Falling && m.label == label && m.time >= start)?
            .time;
        Some((start, end))
    }

    /// Duration of the first region named `label`.
    pub fn region_duration(&self, label: &str) -> Option<Seconds> {
        self.region(label).map(|(s, e)| e - s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_extraction() {
        let mut ch = SyncChannel::new();
        ch.rise(Seconds::new(1.0), "swim");
        ch.fall(Seconds::new(5.5), "swim");
        ch.rise(Seconds::new(6.0), "mcf");
        let (s, e) = ch.region("swim").unwrap();
        assert_eq!(s, Seconds::new(1.0));
        assert_eq!(e, Seconds::new(5.5));
        assert_eq!(ch.region_duration("swim"), Some(Seconds::new(4.5)));
        assert_eq!(ch.region("mcf"), None, "no falling edge yet");
        assert_eq!(ch.region("gzip"), None);
    }

    #[test]
    fn falling_edge_before_rise_is_ignored() {
        let mut ch = SyncChannel::new();
        ch.fall(Seconds::new(0.5), "x");
        ch.rise(Seconds::new(1.0), "x");
        ch.fall(Seconds::new(2.0), "x");
        assert_eq!(ch.region("x"), Some((Seconds::new(1.0), Seconds::new(2.0))));
    }
}
