//! Derived metrics from counter samples.
//!
//! Governors consume raw per-cycle rates; humans and analysis tools prefer
//! the conventional derived metrics (MPKI, memory-boundedness, speculation
//! waste, bus utilization). This module computes them from a
//! [`CounterSample`] when the underlying events were monitored.

use aapm_platform::events::HardwareEvent;
use aapm_platform::units::MegaHertz;

use crate::pmc::CounterSample;

/// Conventional derived metrics for one sampling interval.
///
/// Every field is `None` when the events it needs were not monitored in
/// the interval.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DerivedMetrics {
    /// Retired instructions per cycle.
    pub ipc: Option<f64>,
    /// L1 data misses per thousand instructions.
    pub l1_mpki: Option<f64>,
    /// L2 misses per thousand instructions.
    pub l2_mpki: Option<f64>,
    /// DCU-miss-outstanding cycles per retired instruction — the paper's
    /// memory-boundedness measure (eq.-3 threshold: 1.21).
    pub memory_boundedness: Option<f64>,
    /// Decoded-but-not-retired fraction: speculative waste.
    pub speculation_waste: Option<f64>,
    /// Branch misprediction rate (mispredictions per branch).
    pub mispredict_rate: Option<f64>,
    /// DRAM bus traffic in bytes per second (64 B per request).
    pub bus_bytes_per_sec: Option<f64>,
}

/// Computes derived metrics for a sample taken at `frequency`.
pub fn derive(sample: &CounterSample, frequency: MegaHertz) -> DerivedMetrics {
    let instructions = sample.count(HardwareEvent::InstructionsRetired);
    let per_kilo_inst = |count: Option<f64>| match (count, instructions) {
        (Some(c), Some(i)) if i > 0.0 => Some(c / i * 1000.0),
        _ => None,
    };
    let memory_boundedness = match (sample.count(HardwareEvent::DcuMissOutstanding), instructions)
    {
        (Some(dcu), Some(i)) if i > 0.0 => Some(dcu / i),
        _ => None,
    };
    let speculation_waste =
        match (sample.count(HardwareEvent::InstructionsDecoded), instructions) {
            (Some(decoded), Some(retired)) if decoded > 0.0 => {
                Some(((decoded - retired) / decoded).max(0.0))
            }
            _ => None,
        };
    let mispredict_rate = match (
        sample.count(HardwareEvent::BranchMispredictions),
        sample.count(HardwareEvent::BranchesRetired),
    ) {
        (Some(missed), Some(branches)) if branches > 0.0 => Some(missed / branches),
        _ => None,
    };
    let bus_bytes_per_sec = sample.rate(HardwareEvent::MemoryRequests).map(|per_cycle| {
        per_cycle * 64.0 * frequency.hz()
    });
    DerivedMetrics {
        ipc: sample.ipc(),
        l1_mpki: per_kilo_inst(sample.count(HardwareEvent::L1DMisses)),
        l2_mpki: per_kilo_inst(sample.count(HardwareEvent::L2Misses)),
        memory_boundedness,
        speculation_waste,
        mispredict_rate,
        bus_bytes_per_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapm_platform::units::Seconds;

    fn sample(counts: Vec<(HardwareEvent, f64)>) -> CounterSample {
        CounterSample {
            start: Seconds::ZERO,
            end: Seconds::from_millis(10.0),
            cycles: 20e6,
            counts: counts.into_iter().map(|(e, c)| (e, c, true)).collect(),
        }
    }

    #[test]
    fn full_event_set_yields_all_metrics() {
        let s = sample(vec![
            (HardwareEvent::InstructionsRetired, 10e6),
            (HardwareEvent::InstructionsDecoded, 12.5e6),
            (HardwareEvent::DcuMissOutstanding, 15e6),
            (HardwareEvent::L1DMisses, 200e3),
            (HardwareEvent::L2Misses, 50e3),
            (HardwareEvent::BranchesRetired, 1e6),
            (HardwareEvent::BranchMispredictions, 40e3),
            (HardwareEvent::MemoryRequests, 50e3),
        ]);
        let m = derive(&s, MegaHertz::new(2000));
        assert!((m.ipc.unwrap() - 0.5).abs() < 1e-12);
        assert!((m.l1_mpki.unwrap() - 20.0).abs() < 1e-9);
        assert!((m.l2_mpki.unwrap() - 5.0).abs() < 1e-9);
        assert!((m.memory_boundedness.unwrap() - 1.5).abs() < 1e-12);
        assert!((m.speculation_waste.unwrap() - 0.2).abs() < 1e-12);
        assert!((m.mispredict_rate.unwrap() - 0.04).abs() < 1e-12);
        // 50e3 requests / 20e6 cycles × 64 B × 2e9 Hz = 320 MB/s.
        assert!((m.bus_bytes_per_sec.unwrap() - 320e6).abs() < 1.0);
    }

    #[test]
    fn missing_events_yield_none_not_garbage() {
        let s = sample(vec![(HardwareEvent::InstructionsRetired, 10e6)]);
        let m = derive(&s, MegaHertz::new(2000));
        assert!(m.ipc.is_some());
        assert_eq!(m.l1_mpki, None);
        assert_eq!(m.memory_boundedness, None);
        assert_eq!(m.mispredict_rate, None);
        assert_eq!(m.bus_bytes_per_sec, None);
    }

    #[test]
    fn zero_instruction_interval_is_safe() {
        let s = sample(vec![
            (HardwareEvent::InstructionsRetired, 0.0),
            (HardwareEvent::L1DMisses, 100.0),
        ]);
        let m = derive(&s, MegaHertz::new(2000));
        assert_eq!(m.l1_mpki, None, "no instructions: MPKI undefined");
    }

    #[test]
    fn speculation_waste_clamps_at_zero() {
        // Multiplexing estimates can transiently report retired > decoded.
        let s = sample(vec![
            (HardwareEvent::InstructionsRetired, 11e6),
            (HardwareEvent::InstructionsDecoded, 10e6),
        ]);
        let m = derive(&s, MegaHertz::new(2000));
        assert_eq!(m.speculation_waste, Some(0.0));
    }
}
