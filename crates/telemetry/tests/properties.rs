//! Property-based tests of the telemetry layer.

use aapm_platform::pstate::PStateId;
use aapm_platform::units::{Seconds, Watts};
use aapm_telemetry::stats::{median, percentile, summarize};
use aapm_telemetry::trace::{RunTrace, TraceRecord};
use aapm_telemetry::window::MovingWindow;
use proptest::prelude::*;

/// Any f64, including the non-finite values the stats helpers must survive
/// (one third of draws are NaN or ±inf).
fn any_sample() -> impl Strategy<Value = f64> {
    (0usize..9, -50.0f64..50.0).prop_map(|(kind, v)| match kind {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => v,
    })
}

fn trace_from(powers: &[f64]) -> RunTrace {
    let mut trace = RunTrace::new(Seconds::from_millis(10.0));
    for (i, &p) in powers.iter().enumerate() {
        trace.push(TraceRecord {
            time: Seconds::from_millis(10.0 * (i + 1) as f64),
            power: Watts::new(p),
            true_power: Watts::new(p),
            pstate: PStateId::new(i % 8),
            ipc: None,
            dpc: None,
        });
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A moving window's mean always lies between its min and max, and its
    /// length never exceeds capacity.
    #[test]
    fn window_statistics_bounded(
        capacity in 1usize..20,
        values in prop::collection::vec(-100.0f64..100.0, 0..100),
    ) {
        let mut window = MovingWindow::new(capacity);
        for &v in &values {
            window.push(v);
            prop_assert!(window.len() <= capacity);
            let (mean, min, max) =
                (window.mean().unwrap(), window.min().unwrap(), window.max().unwrap());
            prop_assert!(min <= mean + 1e-12 && mean <= max + 1e-12);
        }
    }

    /// The window retains exactly the most recent `capacity` values.
    #[test]
    fn window_retains_most_recent(
        capacity in 1usize..10,
        values in prop::collection::vec(-100.0f64..100.0, 1..60),
    ) {
        let mut window = MovingWindow::new(capacity);
        for &v in &values {
            window.push(v);
        }
        let expected: Vec<f64> =
            values.iter().rev().take(capacity).rev().copied().collect();
        prop_assert_eq!(window.iter().collect::<Vec<_>>(), expected);
    }

    /// Trace energy equals the sum of sample powers times the interval, and
    /// the mean power lies within the sample range.
    #[test]
    fn trace_energy_additivity(powers in prop::collection::vec(0.0f64..25.0, 1..300)) {
        let trace = trace_from(&powers);
        let expected: f64 = powers.iter().map(|p| p * 0.01).sum();
        prop_assert!((trace.measured_energy().joules() - expected).abs() < 1e-9);
        let mean = trace.mean_power().unwrap().watts();
        let max = trace.max_power().unwrap().watts();
        prop_assert!(mean <= max + 1e-12);
    }

    /// Violation fraction is a probability, zero when the limit clears the
    /// max sample, one when the limit is below the min window average.
    #[test]
    fn violation_fraction_bounds(
        powers in prop::collection::vec(1.0f64..25.0, 10..200),
        limit in 0.5f64..30.0,
        window in 1usize..15,
    ) {
        let trace = trace_from(&powers);
        let fraction = trace.violation_fraction(Watts::new(limit), window);
        prop_assert!((0.0..=1.0).contains(&fraction));
        let max = powers.iter().cloned().fold(f64::MIN, f64::max);
        let min = powers.iter().cloned().fold(f64::MAX, f64::min);
        if limit >= max {
            prop_assert_eq!(fraction, 0.0);
        }
        if limit < min && powers.len() >= window {
            prop_assert_eq!(fraction, 1.0);
        }
    }

    /// Moving averages are bounded by the sample extremes and there are
    /// exactly `n − window + 1` of them.
    #[test]
    fn moving_average_count_and_bounds(
        powers in prop::collection::vec(0.0f64..25.0, 1..200),
        window in 1usize..20,
    ) {
        let trace = trace_from(&powers);
        let averages = trace.moving_average_power(window);
        if powers.len() >= window {
            prop_assert_eq!(averages.len(), powers.len() - window + 1);
            let max = powers.iter().cloned().fold(f64::MIN, f64::max);
            let min = powers.iter().cloned().fold(f64::MAX, f64::min);
            for a in averages {
                prop_assert!(a >= min - 1e-12 && a <= max + 1e-12);
            }
        } else {
            prop_assert!(averages.is_empty());
        }
    }

    /// P-state residency fractions sum to one and each lies in (0, 1].
    #[test]
    fn residency_is_a_distribution(powers in prop::collection::vec(1.0f64..25.0, 1..100)) {
        let trace = trace_from(&powers);
        let residency = trace.pstate_residency();
        let total: f64 = residency.iter().map(|(_, f)| f).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for (_, f) in residency {
            prop_assert!(f > 0.0 && f <= 1.0);
        }
    }

    /// Median and percentiles are order statistics: bounded by min/max and
    /// monotone in p.
    #[test]
    fn percentiles_are_order_statistics(values in prop::collection::vec(-50.0f64..50.0, 1..100)) {
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        let med = median(&values).unwrap();
        prop_assert!(med >= min - 1e-12 && med <= max + 1e-12);
        let mut last = min;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let value = percentile(&values, p).unwrap();
            prop_assert!(value >= last - 1e-12);
            last = value;
        }
        let summary = summarize(&values).unwrap();
        prop_assert!(summary.mean >= min - 1e-12 && summary.mean <= max + 1e-12);
        prop_assert!(summary.std_dev >= 0.0);
    }

    /// The stats helpers are total over *any* floats: NaN and ±inf never
    /// panic, and the exact-rank percentiles return the total-order
    /// extremes instead of manufacturing `inf * 0` NaNs.
    #[test]
    fn median_and_percentile_total_over_non_finite(
        values in prop::collection::vec(any_sample(), 1..60),
        p in 0.0f64..100.0,
    ) {
        prop_assert!(median(&values).is_some());
        prop_assert!(percentile(&values, p).is_some());
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let lo = percentile(&values, 0.0).unwrap();
        let hi = percentile(&values, 100.0).unwrap();
        prop_assert_eq!(lo.total_cmp(&sorted[0]), std::cmp::Ordering::Equal);
        prop_assert_eq!(
            hi.total_cmp(&sorted[sorted.len() - 1]),
            std::cmp::Ordering::Equal
        );
        // All-finite input keeps the helpers finite and in range.
        if values.iter().all(|v| v.is_finite()) {
            let med = median(&values).unwrap();
            prop_assert!(med.is_finite());
            prop_assert!((sorted[0]..=sorted[sorted.len() - 1]).contains(&med));
            prop_assert!(percentile(&values, p).unwrap().is_finite());
        }
    }
}
