//! # aapm-models — counter-based power & performance estimation
//!
//! The paper's distinguishing capability: from a handful of performance
//! counters observed at the *current* p-state, predict both **power** and
//! **performance** at *every* p-state, cheaply enough to run every 10 ms.
//!
//! * [`power_model`] — `Power = α·DPC + β` per p-state (paper eq. 2 /
//!   Table II), driven by decoded (speculative) instruction counts;
//! * [`dpc_projection`] — conservative DPC projection across p-states
//!   (paper eq. 4);
//! * [`perf_model`] — two-class IPC projection split on DCU/IPC
//!   memory-boundedness (paper eq. 3, threshold 1.21, exponents 0.81/0.59);
//! * [`training`] — the microbenchmark training pipeline that produces both
//!   models from simulated measurements (our analogue of Table II);
//! * [`fit`] — least-absolute-error linear fitting;
//! * [`online`] — recursive (forgetting-factor) refit of the power model
//!   from the live counter stream, with a Mazzola-style multi-counter
//!   basis (feeds the `adaptive` governor layer);
//! * [`eval`] — per-sample accuracy scoring.
//!
//! # Examples
//!
//! Estimate power at a lower p-state from a sample taken at 2 GHz:
//!
//! ```
//! use aapm_models::{dpc_projection::project_dpc, power_model::PowerModel};
//! use aapm_platform::pstate::{PStateId, PStateTable};
//!
//! let table = PStateTable::pentium_m_755();
//! let model = PowerModel::paper_table_ii();
//! let observed_dpc = 1.4; // at 2 GHz (P7)
//! let target = PStateId::new(5); // 1.6 GHz
//! let projected = project_dpc(
//!     observed_dpc,
//!     table.get(table.highest())?.frequency(),
//!     table.get(target)?.frequency(),
//! );
//! let watts = model.estimate(target, projected)?;
//! assert!(watts.watts() > 0.0);
//! # Ok::<(), aapm_platform::error::PlatformError>(())
//! ```

pub mod dpc_projection;
pub mod eval;
pub mod fit;
pub mod online;
pub mod perf_model;
pub mod phase_detect;
pub mod power_model;
pub mod training;

pub use dpc_projection::project_dpc;
pub use online::{OnlineModel, Rls, RunningMean};
pub use perf_model::{PerfModel, PerfModelParams, WorkloadClass};
pub use phase_detect::PhaseDetector;
pub use power_model::{PowerModel, PStateCoefficients};
pub use training::{collect_training_data, train_perf_model, train_power_model, TrainingConfig};
