//! Online phase-change detection on a counter stream.
//!
//! The paper notes that anticipating a p-state's effect is "especially
//! useful to fine-tune p-states to rapidly changing program behavior". PM's
//! asymmetric policy is deliberately slow to raise frequency (ten agreeing
//! samples); a phase detector lets a governor distinguish "the workload
//! genuinely changed" from "one noisy sample" and re-evaluate immediately.
//!
//! [`PhaseDetector`] tracks an EWMA baseline of any per-sample rate (DPC
//! for PM) and reports a phase change when a sample departs from the
//! baseline by more than a relative threshold; the baseline then restarts
//! at the new level.

/// EWMA-based relative-change detector.
///
/// # Examples
///
/// ```
/// use aapm_models::phase_detect::PhaseDetector;
///
/// let mut detector = PhaseDetector::new(0.3, 0.2);
/// for _ in 0..20 {
///     assert!(!detector.observe(1.0)); // steady phase
/// }
/// assert!(detector.observe(2.0), "a 2× jump is a phase change");
/// assert!(!detector.observe(2.02), "the new level is now the baseline");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseDetector {
    /// Relative departure from the baseline that signals a change.
    threshold: f64,
    /// EWMA smoothing factor per sample, in `(0, 1]`.
    smoothing: f64,
    baseline: Option<f64>,
}

impl PhaseDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics unless `threshold > 0` and `0 < smoothing ≤ 1`.
    pub fn new(threshold: f64, smoothing: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        assert!(smoothing > 0.0 && smoothing <= 1.0, "smoothing must lie in (0, 1]");
        PhaseDetector { threshold, smoothing, baseline: None }
    }

    /// A detector tuned for 10 ms DPC streams: 30 % departures count as
    /// phase changes, baseline adapts with a 0.2 factor.
    pub fn for_dpc() -> Self {
        PhaseDetector::new(0.3, 0.2)
    }

    /// The current baseline, if any sample has been observed.
    pub fn baseline(&self) -> Option<f64> {
        self.baseline
    }

    /// Feeds one sample; returns `true` if it starts a new phase.
    pub fn observe(&mut self, value: f64) -> bool {
        match self.baseline {
            None => {
                self.baseline = Some(value);
                false
            }
            Some(baseline) => {
                let scale = baseline.abs().max(1e-6);
                if (value - baseline).abs() / scale > self.threshold {
                    self.baseline = Some(value);
                    true
                } else {
                    self.baseline =
                        Some(baseline + self.smoothing * (value - baseline));
                    false
                }
            }
        }
    }

    /// Forgets the baseline (e.g. after an actuation that changes the
    /// meaning of the monitored rate).
    pub fn reset(&mut self) {
        self.baseline = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_establishes_baseline_silently() {
        let mut d = PhaseDetector::for_dpc();
        assert!(!d.observe(1.5));
        assert_eq!(d.baseline(), Some(1.5));
    }

    #[test]
    fn drift_within_threshold_is_tracked_not_flagged() {
        let mut d = PhaseDetector::new(0.3, 0.5);
        d.observe(1.0);
        // Slow drift upward, each step < 30% of the baseline.
        for step in 1..=10 {
            let value = 1.0 + step as f64 * 0.05;
            assert!(!d.observe(value), "step {step} should track, not flag");
        }
        assert!(d.baseline().unwrap() > 1.2, "baseline followed the drift");
    }

    #[test]
    fn jumps_flag_once_then_settle() {
        let mut d = PhaseDetector::for_dpc();
        for _ in 0..5 {
            d.observe(0.5);
        }
        assert!(d.observe(1.8));
        assert!(!d.observe(1.75), "second sample of the new phase is quiet");
        assert!(d.observe(0.5), "dropping back is another phase change");
    }

    #[test]
    fn zero_baseline_does_not_divide_by_zero() {
        let mut d = PhaseDetector::for_dpc();
        d.observe(0.0);
        assert!(d.observe(0.1), "any departure from zero is a change");
    }

    #[test]
    fn reset_forgets_history() {
        let mut d = PhaseDetector::for_dpc();
        d.observe(1.0);
        d.reset();
        assert!(!d.observe(5.0), "first sample after reset is a baseline");
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn invalid_threshold_panics() {
        let _ = PhaseDetector::new(0.0, 0.5);
    }
}
