//! Linear-fit primitives for model training.
//!
//! The paper constructs its power model "as a linear fit of measured DPC,
//! minimizing the absolute-value error between the measured power and
//! estimated power". [`least_absolute`] implements that L1 criterion via
//! iteratively reweighted least squares (IRLS); [`least_squares`] provides
//! the ordinary L2 fit for comparison.

/// A fitted line `y = slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
}

impl LinearFit {
    /// Evaluates the fit at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least-squares fit. Returns `None` with fewer than two points or
/// zero x-variance.
pub fn least_squares(points: &[(f64, f64)]) -> Option<LinearFit> {
    weighted_least_squares(points, None)
}

fn weighted_least_squares(points: &[(f64, f64)], weights: Option<&[f64]>) -> Option<LinearFit> {
    if points.len() < 2 {
        return None;
    }
    let w = |i: usize| weights.map_or(1.0, |w| w[i]);
    let sw: f64 = (0..points.len()).map(w).sum();
    if sw <= 0.0 {
        return None;
    }
    let mx = points.iter().enumerate().map(|(i, p)| w(i) * p.0).sum::<f64>() / sw;
    let my = points.iter().enumerate().map(|(i, p)| w(i) * p.1).sum::<f64>() / sw;
    let sxx: f64 = points.iter().enumerate().map(|(i, p)| w(i) * (p.0 - mx) * (p.0 - mx)).sum();
    let sxy: f64 = points.iter().enumerate().map(|(i, p)| w(i) * (p.0 - mx) * (p.1 - my)).sum();
    // Degeneracy must be judged relative to the x magnitude: an x-spread
    // below ~1e-12 of the raw x scale is indistinguishable from rounding
    // noise, while an absolute cutoff misreads genuinely tiny scales as
    // degenerate and (symmetrically) trusts spreads that huge scales cannot
    // actually resolve. A non-finite moment means the inputs were unusable.
    let sqx: f64 = points.iter().enumerate().map(|(i, p)| w(i) * p.0 * p.0).sum();
    if !sxx.is_finite() || sxx <= sqx * 1e-24 {
        return None;
    }
    let slope = sxy / sxx;
    Some(LinearFit { slope, intercept: my - slope * mx })
}

/// Relative slope/intercept movement below which an IRLS step counts as
/// converged. Tight enough that early exit cannot shift a trained model at
/// any magnitude the fit reports.
const IRLS_CONVERGENCE: f64 = 1e-12;

/// Least-absolute-deviations fit via IRLS (the paper's fitting criterion).
///
/// Starts from the L2 solution and reweights each point by the inverse of
/// its current absolute residual, stopping early once an iteration moves
/// both coefficients by less than [`IRLS_CONVERGENCE`] (relative): from a
/// fixed point the reweighting reproduces the same solution, so further
/// iterations are pure waste. `iterations` is the cap for fits that keep
/// oscillating. Returns `None` under the same conditions as
/// [`least_squares`].
pub fn least_absolute(points: &[(f64, f64)], iterations: usize) -> Option<LinearFit> {
    let mut fit = least_squares(points)?;
    let mut weights = vec![1.0; points.len()];
    for _ in 0..iterations {
        for (i, &(x, y)) in points.iter().enumerate() {
            let residual = (y - fit.predict(x)).abs();
            // Huber-style floor keeps weights finite near zero residual.
            weights[i] = 1.0 / residual.max(1e-6);
        }
        match weighted_least_squares(points, Some(&weights)) {
            Some(next) => {
                let slope_moved = (next.slope - fit.slope).abs()
                    > IRLS_CONVERGENCE * fit.slope.abs().max(1.0);
                let intercept_moved = (next.intercept - fit.intercept).abs()
                    > IRLS_CONVERGENCE * fit.intercept.abs().max(1.0);
                fit = next;
                if !slope_moved && !intercept_moved {
                    break;
                }
            }
            None => break,
        }
    }
    Some(fit)
}

/// Mean absolute error of `fit` over `points`.
pub fn mean_absolute_error(fit: &LinearFit, points: &[(f64, f64)]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    points.iter().map(|&(x, y)| (y - fit.predict(x)).abs()).sum::<f64>() / points.len() as f64
}

/// Largest absolute error of `fit` over `points`.
///
/// Ordered by `total_cmp` so a non-finite residual propagates to the
/// result instead of being silently dropped (`f64::max` discards NaN):
/// `NaN.abs()` is the positive NaN, which `total_cmp` places above every
/// finite value and +∞.
pub fn max_absolute_error(fit: &LinearFit, points: &[(f64, f64)]) -> f64 {
    points
        .iter()
        .map(|&(x, y)| (y - fit.predict(x)).abs())
        .max_by(|a, b| a.total_cmp(b))
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let points: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let l2 = least_squares(&points).unwrap();
        assert!((l2.slope - 3.0).abs() < 1e-9);
        assert!((l2.intercept - 2.0).abs() < 1e-9);
        let l1 = least_absolute(&points, 20).unwrap();
        assert!((l1.slope - 3.0).abs() < 1e-6);
        assert!((l1.intercept - 2.0).abs() < 1e-6);
    }

    #[test]
    fn l1_fit_resists_outliers_better_than_l2() {
        // 9 points on y = 2x, one wild outlier at the high-leverage end.
        let mut points: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 2.0 * i as f64)).collect();
        points.push((9.0, 100.0));
        let l2 = least_squares(&points).unwrap();
        let l1 = least_absolute(&points, 50).unwrap();
        assert!((l1.slope - 2.0).abs() < (l2.slope - 2.0).abs());
        assert!(
            mean_absolute_error(&l1, &points) <= mean_absolute_error(&l2, &points) + 1e-9,
            "L1 fit should not have worse MAE"
        );
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(least_squares(&[]).is_none());
        assert!(least_squares(&[(1.0, 1.0)]).is_none());
        assert!(least_squares(&[(2.0, 1.0), (2.0, 3.0)]).is_none(), "zero x-variance");
        assert!(least_absolute(&[(2.0, 1.0), (2.0, 3.0)], 5).is_none());
    }

    #[test]
    fn max_absolute_error_propagates_non_finite_residuals() {
        let fit = LinearFit { slope: 1.0, intercept: 0.0 };
        // A NaN observation must surface as NaN, not vanish under a
        // finite competitor on either side of it.
        assert!(max_absolute_error(&fit, &[(0.0, 5.0), (1.0, f64::NAN), (2.0, 9.0)]).is_nan());
        assert!(max_absolute_error(&fit, &[(1.0, f64::NAN)]).is_nan());
        // Infinite residuals dominate finite ones.
        assert_eq!(max_absolute_error(&fit, &[(0.0, f64::INFINITY), (1.0, 2.0)]), f64::INFINITY);
        // Finite data is unaffected by the total ordering.
        assert_eq!(max_absolute_error(&fit, &[(0.0, 1.0), (3.0, 3.0)]), 1.0);
        assert_eq!(max_absolute_error(&fit, &[]), 0.0);
    }

    #[test]
    fn degeneracy_is_judged_relative_to_x_scale() {
        // Tiny scale: an absolute 1e-12 cutoff would misread this genuine
        // micro-scale spread (sxx ≈ 5e-13) as degenerate.
        let tiny: Vec<(f64, f64)> =
            (0..8).map(|i| (1e-6 + 5e-7 * i as f64, 3.0 * (1e-6 + 5e-7 * i as f64) + 2.0)).collect();
        let fit = least_squares(&tiny).expect("micro-scale spread is a real fit");
        assert!((fit.slope - 3.0).abs() < 1e-6);
        // Huge scale: a unit spread at x ≈ 1e9 is far above rounding noise
        // and must fit (large-DPC-window analogue).
        let huge: Vec<(f64, f64)> =
            (0..8).map(|i| (1e9 + i as f64, 2.0 * i as f64 + 7.0)).collect();
        let fit = least_squares(&huge).expect("unit spread at 1e9 is a real fit");
        assert!((fit.slope - 2.0).abs() < 1e-4);
        // Zero spread stays degenerate at every magnitude.
        assert!(least_squares(&[(1e-6, 1.0), (1e-6, 3.0)]).is_none());
        assert!(least_squares(&[(1e9, 1.0), (1e9, 3.0)]).is_none());
        // Spread below the representable resolution of the magnitude is
        // rounding noise, not signal.
        assert!(least_squares(&[(1e9, 1.0), (1e9 + 1e-7, 3.0), (1e9, 2.0)]).is_none());
    }

    #[test]
    fn non_finite_inputs_are_degenerate() {
        assert!(least_squares(&[(f64::NAN, 1.0), (2.0, 3.0)]).is_none());
        assert!(least_squares(&[(f64::INFINITY, 1.0), (2.0, 3.0)]).is_none());
    }

    #[test]
    fn converged_irls_is_unchanged_by_extra_iterations() {
        let mut points: Vec<(f64, f64)> = (1..12).map(|i| (i as f64, 2.0 * i as f64)).collect();
        points.push((11.0, 60.0));
        let short = least_absolute(&points, 50).unwrap();
        let long = least_absolute(&points, 5000).unwrap();
        // Bit-identical, not merely close: after convergence the
        // reweighting is a fixed point, so the iteration cap is inert.
        assert_eq!(short.slope.to_bits(), long.slope.to_bits());
        assert_eq!(short.intercept.to_bits(), long.intercept.to_bits());
    }

    #[test]
    fn error_metrics() {
        let fit = LinearFit { slope: 1.0, intercept: 0.0 };
        let points = [(0.0, 1.0), (1.0, 1.0), (2.0, 2.0)];
        assert!((mean_absolute_error(&fit, &points) - (1.0 + 0.0 + 0.0) / 3.0).abs() < 1e-12);
        assert_eq!(max_absolute_error(&fit, &points), 1.0);
        assert_eq!(mean_absolute_error(&fit, &[]), 0.0);
    }
}
