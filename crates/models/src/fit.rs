//! Linear-fit primitives for model training.
//!
//! The paper constructs its power model "as a linear fit of measured DPC,
//! minimizing the absolute-value error between the measured power and
//! estimated power". [`least_absolute`] implements that L1 criterion via
//! iteratively reweighted least squares (IRLS); [`least_squares`] provides
//! the ordinary L2 fit for comparison.

/// A fitted line `y = slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
}

impl LinearFit {
    /// Evaluates the fit at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least-squares fit. Returns `None` with fewer than two points or
/// zero x-variance.
pub fn least_squares(points: &[(f64, f64)]) -> Option<LinearFit> {
    weighted_least_squares(points, None)
}

fn weighted_least_squares(points: &[(f64, f64)], weights: Option<&[f64]>) -> Option<LinearFit> {
    if points.len() < 2 {
        return None;
    }
    let w = |i: usize| weights.map_or(1.0, |w| w[i]);
    let sw: f64 = (0..points.len()).map(w).sum();
    if sw <= 0.0 {
        return None;
    }
    let mx = points.iter().enumerate().map(|(i, p)| w(i) * p.0).sum::<f64>() / sw;
    let my = points.iter().enumerate().map(|(i, p)| w(i) * p.1).sum::<f64>() / sw;
    let sxx: f64 = points.iter().enumerate().map(|(i, p)| w(i) * (p.0 - mx) * (p.0 - mx)).sum();
    let sxy: f64 = points.iter().enumerate().map(|(i, p)| w(i) * (p.0 - mx) * (p.1 - my)).sum();
    if sxx.abs() < 1e-12 {
        return None;
    }
    let slope = sxy / sxx;
    Some(LinearFit { slope, intercept: my - slope * mx })
}

/// Least-absolute-deviations fit via IRLS (the paper's fitting criterion).
///
/// Starts from the L2 solution and reweights each point by the inverse of
/// its current absolute residual. Returns `None` under the same conditions
/// as [`least_squares`].
pub fn least_absolute(points: &[(f64, f64)], iterations: usize) -> Option<LinearFit> {
    let mut fit = least_squares(points)?;
    let mut weights = vec![1.0; points.len()];
    for _ in 0..iterations {
        for (i, &(x, y)) in points.iter().enumerate() {
            let residual = (y - fit.predict(x)).abs();
            // Huber-style floor keeps weights finite near zero residual.
            weights[i] = 1.0 / residual.max(1e-6);
        }
        match weighted_least_squares(points, Some(&weights)) {
            Some(next) => fit = next,
            None => break,
        }
    }
    Some(fit)
}

/// Mean absolute error of `fit` over `points`.
pub fn mean_absolute_error(fit: &LinearFit, points: &[(f64, f64)]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    points.iter().map(|&(x, y)| (y - fit.predict(x)).abs()).sum::<f64>() / points.len() as f64
}

/// Largest absolute error of `fit` over `points`.
pub fn max_absolute_error(fit: &LinearFit, points: &[(f64, f64)]) -> f64 {
    points.iter().map(|&(x, y)| (y - fit.predict(x)).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let points: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let l2 = least_squares(&points).unwrap();
        assert!((l2.slope - 3.0).abs() < 1e-9);
        assert!((l2.intercept - 2.0).abs() < 1e-9);
        let l1 = least_absolute(&points, 20).unwrap();
        assert!((l1.slope - 3.0).abs() < 1e-6);
        assert!((l1.intercept - 2.0).abs() < 1e-6);
    }

    #[test]
    fn l1_fit_resists_outliers_better_than_l2() {
        // 9 points on y = 2x, one wild outlier at the high-leverage end.
        let mut points: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 2.0 * i as f64)).collect();
        points.push((9.0, 100.0));
        let l2 = least_squares(&points).unwrap();
        let l1 = least_absolute(&points, 50).unwrap();
        assert!((l1.slope - 2.0).abs() < (l2.slope - 2.0).abs());
        assert!(
            mean_absolute_error(&l1, &points) <= mean_absolute_error(&l2, &points) + 1e-9,
            "L1 fit should not have worse MAE"
        );
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(least_squares(&[]).is_none());
        assert!(least_squares(&[(1.0, 1.0)]).is_none());
        assert!(least_squares(&[(2.0, 1.0), (2.0, 3.0)]).is_none(), "zero x-variance");
        assert!(least_absolute(&[(2.0, 1.0), (2.0, 3.0)], 5).is_none());
    }

    #[test]
    fn error_metrics() {
        let fit = LinearFit { slope: 1.0, intercept: 0.0 };
        let points = [(0.0, 1.0), (1.0, 1.0), (2.0, 2.0)];
        assert!((mean_absolute_error(&fit, &points) - (1.0 + 0.0 + 0.0) / 3.0).abs() < 1e-12);
        assert_eq!(max_absolute_error(&fit, &points), 1.0);
        assert_eq!(mean_absolute_error(&fit, &[]), 0.0);
    }
}
