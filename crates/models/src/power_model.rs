//! The per-p-state linear DPC power model (paper eq. 2, Table II).
//!
//! `Power = α(p) · DPC + β(p)` — one (α, β) pair per p-state, because
//! voltage and frequency dominate both the slope and the floor. DPC is the
//! *decoded*-instructions-per-cycle rate, capturing speculative pipeline
//! activity that retired-instruction counts miss.

use std::fmt;

use aapm_platform::error::{PlatformError, Result};
use aapm_platform::pstate::{PStateId, PStateTable};
use aapm_platform::units::Watts;

/// Coefficients of one p-state's linear model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PStateCoefficients {
    /// Watts per unit DPC.
    pub alpha: f64,
    /// Watts at zero DPC (idle pipeline floor).
    pub beta: f64,
}

impl PStateCoefficients {
    /// Evaluates the model at a DPC value.
    pub fn estimate(&self, dpc: f64) -> Watts {
        Watts::new(self.alpha * dpc + self.beta)
    }
}

/// A complete DPC power model: one coefficient pair per p-state.
///
/// # Examples
///
/// ```
/// use aapm_models::power_model::PowerModel;
/// use aapm_platform::pstate::{PStateId, PStateTable};
///
/// let model = PowerModel::paper_table_ii();
/// let table = PStateTable::pentium_m_755();
/// let top = table.highest();
/// // Paper Table II at 2 GHz: 2.93·DPC + 12.11.
/// let p = model.estimate(top, 1.0)?;
/// assert!((p.watts() - 15.04).abs() < 1e-9);
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    coefficients: Vec<PStateCoefficients>,
}

impl PowerModel {
    /// Builds a model from per-p-state coefficients (index = p-state id).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidConfig`] if `coefficients` is empty.
    pub fn new(coefficients: Vec<PStateCoefficients>) -> Result<Self> {
        if coefficients.is_empty() {
            return Err(PlatformError::InvalidConfig {
                parameter: "coefficients",
                reason: "power model needs at least one p-state".into(),
            });
        }
        Ok(PowerModel { coefficients })
    }

    /// The coefficients published in the paper's Table II for the
    /// Pentium M 755's eight p-states (600 MHz → 2 GHz).
    pub fn paper_table_ii() -> Self {
        let pairs: [(f64, f64); 8] = [
            (0.34, 2.58),
            (0.54, 3.56),
            (0.77, 4.49),
            (1.06, 5.60),
            (1.42, 6.95),
            (1.82, 8.44),
            (2.36, 10.18),
            (2.93, 12.11),
        ];
        PowerModel {
            coefficients: pairs
                .iter()
                .map(|&(alpha, beta)| PStateCoefficients { alpha, beta })
                .collect(),
        }
    }

    /// Number of p-states the model covers.
    pub fn len(&self) -> usize {
        self.coefficients.len()
    }

    /// Whether the model covers no p-states (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.coefficients.is_empty()
    }

    /// Whether the model covers every state of `table`.
    pub fn covers(&self, table: &PStateTable) -> bool {
        self.coefficients.len() == table.len()
    }

    /// Coefficients for one p-state.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownPState`] for out-of-range ids.
    pub fn coefficients(&self, id: PStateId) -> Result<&PStateCoefficients> {
        self.coefficients.get(id.index()).ok_or(PlatformError::UnknownPState {
            index: id.index(),
            table_len: self.coefficients.len(),
        })
    }

    /// Estimated power at `id` for an observed DPC.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownPState`] for out-of-range ids.
    pub fn estimate(&self, id: PStateId, dpc: f64) -> Result<Watts> {
        Ok(self.coefficients(id)?.estimate(dpc))
    }

    /// Replaces one p-state's coefficients (online refit path).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownPState`] for out-of-range ids and
    /// [`PlatformError::InvalidConfig`] for non-finite coefficients — a
    /// refit may be rejected, but the installed model must stay total.
    pub fn set_coefficients(&mut self, id: PStateId, coeffs: PStateCoefficients) -> Result<()> {
        if !coeffs.alpha.is_finite() || !coeffs.beta.is_finite() {
            return Err(PlatformError::InvalidConfig {
                parameter: "coefficients",
                reason: format!(
                    "non-finite coefficients for {id}: alpha={}, beta={}",
                    coeffs.alpha, coeffs.beta
                ),
            });
        }
        let table_len = self.coefficients.len();
        match self.coefficients.get_mut(id.index()) {
            Some(slot) => {
                *slot = coeffs;
                Ok(())
            }
            None => Err(PlatformError::UnknownPState { index: id.index(), table_len }),
        }
    }

    /// Iterates `(id, coefficients)` from the lowest p-state up.
    pub fn iter(&self) -> impl Iterator<Item = (PStateId, &PStateCoefficients)> {
        self.coefficients.iter().enumerate().map(|(i, c)| (PStateId::new(i), c))
    }
}

impl fmt::Display for PowerModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DPC power model ({} p-states):", self.coefficients.len())?;
        for (id, c) in self.iter() {
            writeln!(f, "  {id}: P = {:.3}·DPC + {:.3} W", c.alpha, c.beta)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_ii_values() {
        let model = PowerModel::paper_table_ii();
        assert_eq!(model.len(), 8);
        let lowest = model.coefficients(PStateId::new(0)).unwrap();
        assert_eq!((lowest.alpha, lowest.beta), (0.34, 2.58));
        let highest = model.coefficients(PStateId::new(7)).unwrap();
        assert_eq!((highest.alpha, highest.beta), (2.93, 12.11));
    }

    #[test]
    fn estimates_are_linear_in_dpc() {
        let model = PowerModel::paper_table_ii();
        let id = PStateId::new(7);
        let p0 = model.estimate(id, 0.0).unwrap();
        let p1 = model.estimate(id, 1.0).unwrap();
        let p2 = model.estimate(id, 2.0).unwrap();
        assert!((p1.watts() - p0.watts() - 2.93).abs() < 1e-12);
        assert!((p2.watts() - p1.watts() - 2.93).abs() < 1e-12);
    }

    #[test]
    fn coefficients_grow_with_pstate() {
        // Both slope and floor rise with voltage·frequency.
        let model = PowerModel::paper_table_ii();
        let mut last = (0.0, 0.0);
        for (_, c) in model.iter() {
            assert!(c.alpha > last.0 && c.beta > last.1);
            last = (c.alpha, c.beta);
        }
    }

    #[test]
    fn out_of_range_pstate_errors() {
        let model = PowerModel::paper_table_ii();
        assert!(model.estimate(PStateId::new(8), 1.0).is_err());
    }

    #[test]
    fn empty_model_rejected() {
        assert!(PowerModel::new(vec![]).is_err());
    }

    #[test]
    fn set_coefficients_replaces_one_state() {
        let mut model = PowerModel::paper_table_ii();
        let refit = PStateCoefficients { alpha: 3.1, beta: 12.5 };
        model.set_coefficients(PStateId::new(7), refit).unwrap();
        assert_eq!(*model.coefficients(PStateId::new(7)).unwrap(), refit);
        // Neighbours untouched.
        assert_eq!(model.coefficients(PStateId::new(6)).unwrap().alpha, 2.36);
        // Out-of-range and non-finite refits are rejected without mutation.
        assert!(model.set_coefficients(PStateId::new(8), refit).is_err());
        let bad = PStateCoefficients { alpha: f64::NAN, beta: 1.0 };
        assert!(model.set_coefficients(PStateId::new(0), bad).is_err());
        assert_eq!(model.coefficients(PStateId::new(0)).unwrap().alpha, 0.34);
    }

    #[test]
    fn covers_checks_length() {
        let model = PowerModel::paper_table_ii();
        assert!(model.covers(&PStateTable::pentium_m_755()));
    }

    #[test]
    fn display_lists_all_states() {
        let text = PowerModel::paper_table_ii().to_string();
        assert!(text.contains("P0") && text.contains("P7"));
    }
}
