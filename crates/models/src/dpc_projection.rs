//! DPC projection across p-states (paper eq. 4).
//!
//! PM observes DPC at the *current* frequency but must estimate power at
//! every other p-state. The paper's projection is deliberately conservative:
//!
//! * Lowering frequency (`f' ≤ f`): assume decode throughput per *second*
//!   stays constant (memory-bound worst case), so decodes per cycle scale up
//!   by `f / f'`.
//! * Raising frequency (`f' > f`): assume DPC stays the same (core-bound
//!   worst case — activity does not dilute), so the power estimate at the
//!   higher state is not optimistic.
//!
//! Both branches bias the *power estimate upward*, which is the safe
//! direction for a power-capping governor.

use aapm_platform::units::MegaHertz;

/// Projects an observed DPC at frequency `from` to frequency `to`
/// (paper eq. 4).
///
/// # Examples
///
/// ```
/// use aapm_models::dpc_projection::project_dpc;
/// use aapm_platform::units::MegaHertz;
///
/// let dpc = 1.0;
/// // Downward: decode rate per second conserved → per-cycle rate rises.
/// let down = project_dpc(dpc, MegaHertz::new(2000), MegaHertz::new(1000));
/// assert!((down - 2.0).abs() < 1e-12);
/// // Upward: per-cycle rate conserved.
/// let up = project_dpc(dpc, MegaHertz::new(1000), MegaHertz::new(2000));
/// assert!((up - 1.0).abs() < 1e-12);
/// ```
pub fn project_dpc(dpc: f64, from: MegaHertz, to: MegaHertz) -> f64 {
    if to <= from {
        dpc * from.ratio(to)
    } else {
        dpc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_frequency_is_identity() {
        let f = MegaHertz::new(1400);
        assert_eq!(project_dpc(1.3, f, f), 1.3);
    }

    #[test]
    fn downward_scales_by_frequency_ratio() {
        let projected = project_dpc(0.9, MegaHertz::new(1800), MegaHertz::new(600));
        assert!((projected - 2.7).abs() < 1e-12);
    }

    #[test]
    fn upward_is_conservative_identity() {
        assert_eq!(project_dpc(0.9, MegaHertz::new(600), MegaHertz::new(2000)), 0.9);
    }

    #[test]
    fn projection_is_monotone_nonincreasing_in_target_frequency() {
        // Lower targets always project at least as much per-cycle activity.
        let from = MegaHertz::new(1400);
        let targets = [600u32, 800, 1000, 1200, 1400, 1600, 1800, 2000];
        let mut last = f64::INFINITY;
        for mhz in targets {
            let p = project_dpc(1.0, from, MegaHertz::new(mhz));
            assert!(p <= last + 1e-12);
            last = p;
        }
    }

    #[test]
    fn round_trip_down_then_up_returns_projected_value() {
        // Down-projection then up-projection is *not* an inverse pair —
        // up-projection is the identity — mirroring the paper's asymmetric
        // conservatism.
        let f_hi = MegaHertz::new(2000);
        let f_lo = MegaHertz::new(1000);
        let down = project_dpc(1.0, f_hi, f_lo);
        assert_eq!(project_dpc(down, f_lo, f_hi), down);
    }
}
