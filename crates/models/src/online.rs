//! Online recursive refit of the power model (ROADMAP item 3).
//!
//! The paper trains its Table II coefficients once, offline, on MS-Loops;
//! the model-error experiment shows exactly where that breaks (art/mcf
//! miss-overlap). This module provides the estimator half of the fix: a
//! recursive-least-squares fit with a forgetting factor, seeded from the
//! offline coefficients, that tracks the live counter stream one sample at
//! a time in O(D²) per update — cheap enough for the 10 ms loop.
//!
//! Two bases are supported:
//!
//! * [`OnlineModel::Dpc`] — the paper's own `Power = α·DPC + β` basis;
//! * [`OnlineModel::DpcDcu`] — a multi-counter variant in the spirit of
//!   Mazzola et al. (data-driven PMC power modeling): `Power = α·DPC +
//!   γ·DCU + β`, which separates pipeline activity from memory-overlap
//!   draw. Because the governor stack consumes two-coefficient
//!   [`PStateCoefficients`], the three-term fit is *collapsed* around the
//!   exponentially-weighted mean DCU before being pushed into the model —
//!   the best local linear-in-DPC approximation for the current regime.
//!
//! Degeneracy policy: a non-finite observation is rejected without
//! touching the state, and [`OnlineModel::coefficients`] returns `None`
//! whenever the collapsed pair is not finite — callers (the `adaptive`
//! governor layer) fall back to the offline seed in that case.

use crate::power_model::PStateCoefficients;

/// Recursive least squares over a `D`-dimensional regressor.
///
/// Standard exponentially-forgetting RLS: for each observation `(x, y)`
///
/// ```text
/// k = P·x / (λ + xᵀ·P·x)
/// θ ← θ + k·(y − xᵀ·θ)
/// P ← (P − k·(xᵀP)) / λ
/// ```
///
/// `λ ∈ (0, 1]` is the forgetting factor (1 = infinite memory, smaller =
/// faster tracking of regime changes). The covariance `P` is kept
/// symmetric after every update for numerical hygiene.
#[derive(Debug, Clone, PartialEq)]
pub struct Rls<const D: usize> {
    theta: [f64; D],
    p: [[f64; D]; D],
    forgetting: f64,
    samples: u64,
}

impl<const D: usize> Rls<D> {
    /// Creates an estimator seeded at `theta` with covariance `gain·I`.
    ///
    /// A large `gain` means low confidence in the seed (fast initial
    /// adaptation); a small one anchors early updates near the seed.
    pub fn seeded(theta: [f64; D], forgetting: f64, gain: f64) -> Self {
        assert!(
            forgetting > 0.0 && forgetting <= 1.0,
            "forgetting factor must be in (0, 1], got {forgetting}"
        );
        assert!(gain.is_finite() && gain > 0.0, "covariance gain must be positive, got {gain}");
        let mut p = [[0.0; D]; D];
        for (i, row) in p.iter_mut().enumerate() {
            row[i] = gain;
        }
        Rls { theta, p, forgetting, samples: 0 }
    }

    /// Incorporates one observation; returns whether it was accepted.
    ///
    /// Rejected (state untouched): non-finite inputs, or an update whose
    /// innovation denominator is not positive and finite.
    pub fn observe(&mut self, x: [f64; D], y: f64) -> bool {
        if !y.is_finite() || x.iter().any(|v| !v.is_finite()) {
            return false;
        }
        // P is symmetric, so xᵀP = (P·x)ᵀ and one matrix-vector product
        // serves both the gain and the covariance update.
        let mut px = [0.0; D];
        for (pxi, row) in px.iter_mut().zip(&self.p) {
            *pxi = row.iter().zip(&x).map(|(a, b)| a * b).sum();
        }
        let denom = self.forgetting + x.iter().zip(&px).map(|(a, b)| a * b).sum::<f64>();
        if !denom.is_finite() || denom <= 0.0 {
            return false;
        }
        let mut k = [0.0; D];
        for (ki, pxi) in k.iter_mut().zip(&px) {
            *ki = pxi / denom;
        }
        let predicted: f64 = x.iter().zip(&self.theta).map(|(a, b)| a * b).sum();
        let innovation = y - predicted;
        let mut theta = self.theta;
        let mut p = self.p;
        for ((ti, row), ki) in theta.iter_mut().zip(&mut p).zip(&k) {
            *ti += ki * innovation;
            for (pij, pxj) in row.iter_mut().zip(&px) {
                *pij = (*pij - ki * pxj) / self.forgetting;
            }
        }
        // Re-symmetrize: floating-point drift would otherwise accumulate
        // asymmetry across updates.
        for i in 1..D {
            let (head, tail) = p.split_at_mut(i);
            let row_i = &mut tail[0];
            for (j, row_j) in head.iter_mut().enumerate() {
                let mean = 0.5 * (row_i[j] + row_j[i]);
                row_i[j] = mean;
                row_j[i] = mean;
            }
        }
        if !theta.iter().all(|v| v.is_finite()) || !p.iter().flatten().all(|v| v.is_finite()) {
            return false;
        }
        self.theta = theta;
        self.p = p;
        self.samples += 1;
        true
    }

    /// Current coefficient estimate.
    pub fn theta(&self) -> [f64; D] {
        self.theta
    }

    /// Observations accepted since the last seed/reset.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Prediction at a regressor value.
    pub fn predict(&self, x: [f64; D]) -> f64 {
        x.iter().zip(&self.theta).map(|(a, b)| a * b).sum()
    }
}

/// Exponentially-weighted running mean with the same forgetting factor as
/// the estimator it accompanies.
#[derive(Debug, Clone, PartialEq)]
pub struct RunningMean {
    mean: f64,
    weight: f64,
    forgetting: f64,
}

impl RunningMean {
    /// Creates an empty mean with forgetting factor `forgetting`.
    pub fn new(forgetting: f64) -> Self {
        RunningMean { mean: 0.0, weight: 0.0, forgetting }
    }

    /// Incorporates a value (non-finite values are ignored).
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.weight = self.forgetting * self.weight + 1.0;
        self.mean += (value - self.mean) / self.weight;
    }

    /// The current mean (0 when nothing has been observed).
    pub fn value(&self) -> f64 {
        self.mean
    }
}

/// One p-state's online power fit in either counter basis.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineModel {
    /// Paper basis: `Power = α·DPC + β`, regressor `[DPC, 1]`.
    Dpc(Rls<2>),
    /// Mazzola-style basis: `Power = α·DPC + γ·DCU + β`, regressor
    /// `[DPC, DCU, 1]`, with the running DCU mean used to collapse back
    /// to the two-coefficient interface.
    DpcDcu(Rls<3>, RunningMean),
}

impl OnlineModel {
    /// Seeds an estimator from offline coefficients.
    ///
    /// The multi-counter variant starts its DCU coefficient at zero —
    /// until the stream demonstrates memory-overlap draw, the seed's
    /// DPC-only shape is the best prior.
    pub fn seeded(
        seed: PStateCoefficients,
        multi_counter: bool,
        forgetting: f64,
        gain: f64,
    ) -> Self {
        if multi_counter {
            OnlineModel::DpcDcu(
                Rls::seeded([seed.alpha, 0.0, seed.beta], forgetting, gain),
                RunningMean::new(forgetting),
            )
        } else {
            OnlineModel::Dpc(Rls::seeded([seed.alpha, seed.beta], forgetting, gain))
        }
    }

    /// Incorporates one interval's observation; returns acceptance.
    ///
    /// `dcu` is only consulted in the multi-counter basis; a missing DCU
    /// rate there rejects the sample (the regressor would be fabricated).
    pub fn observe(&mut self, dpc: f64, dcu: Option<f64>, watts: f64) -> bool {
        match self {
            OnlineModel::Dpc(rls) => rls.observe([dpc, 1.0], watts),
            OnlineModel::DpcDcu(rls, dcu_mean) => match dcu {
                Some(dcu) => {
                    let accepted = rls.observe([dpc, dcu, 1.0], watts);
                    if accepted {
                        dcu_mean.observe(dcu);
                    }
                    accepted
                }
                None => false,
            },
        }
    }

    /// Observations accepted since seeding.
    pub fn samples(&self) -> u64 {
        match self {
            OnlineModel::Dpc(rls) => rls.samples(),
            OnlineModel::DpcDcu(rls, _) => rls.samples(),
        }
    }

    /// The current fit collapsed to the two-coefficient interface, or
    /// `None` if the collapsed pair is not finite (degenerate estimator).
    ///
    /// The multi-counter fit folds its DCU term into the intercept at the
    /// running mean DCU: `β' = γ·mean(DCU) + β` — exact for the average
    /// regime, and the closest linear-in-DPC model available to a
    /// two-coefficient consumer.
    pub fn coefficients(&self) -> Option<PStateCoefficients> {
        let (alpha, beta) = match self {
            OnlineModel::Dpc(rls) => {
                let [alpha, beta] = rls.theta();
                (alpha, beta)
            }
            OnlineModel::DpcDcu(rls, dcu_mean) => {
                let [alpha, gamma, beta] = rls.theta();
                (alpha, gamma * dcu_mean.value() + beta)
            }
        };
        if alpha.is_finite() && beta.is_finite() {
            Some(PStateCoefficients { alpha, beta })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::least_squares;
    use proptest::prelude::*;

    #[test]
    fn rls_recovers_a_stationary_line() {
        // Seed far from the truth (P7 is 2.93·DPC + 12.11, seed at P0).
        let seed = PStateCoefficients { alpha: 0.34, beta: 2.58 };
        let mut model = OnlineModel::seeded(seed, false, 0.98, 100.0);
        for i in 0..400 {
            let dpc = 0.3 + 0.01 * (i % 120) as f64;
            model.observe(dpc, None, 2.93 * dpc + 12.11);
        }
        // The seed's weight decays as λⁿ, so convergence is asymptotic;
        // 400 samples at λ = 0.98 leave a ~1e-5 residual.
        let fit = model.coefficients().unwrap();
        assert!((fit.alpha - 2.93).abs() < 1e-3, "alpha = {}", fit.alpha);
        assert!((fit.beta - 12.11).abs() < 1e-3, "beta = {}", fit.beta);
    }

    #[test]
    fn forgetting_tracks_a_regime_change() {
        let seed = PStateCoefficients { alpha: 2.93, beta: 12.11 };
        let mut model = OnlineModel::seeded(seed, false, 0.95, 100.0);
        // First regime matches the seed; second shifts the floor up 2 W
        // (the art/mcf miss-overlap signature).
        for i in 0..300 {
            let dpc = 0.5 + 0.01 * (i % 80) as f64;
            model.observe(dpc, None, 2.93 * dpc + 12.11);
        }
        for i in 0..300 {
            let dpc = 0.5 + 0.01 * (i % 80) as f64;
            model.observe(dpc, None, 2.93 * dpc + 14.11);
        }
        let fit = model.coefficients().unwrap();
        assert!((fit.beta - 14.11).abs() < 0.05, "beta should track the shift, got {}", fit.beta);
    }

    #[test]
    fn multi_counter_collapse_matches_the_mean_regime() {
        let seed = PStateCoefficients { alpha: 1.0, beta: 1.0 };
        let mut model = OnlineModel::seeded(seed, true, 1.0, 1000.0);
        // Power = 2·DPC + 5·DCU + 3 with DCU varying around 0.4.
        let mut dcu_sum = 0.0;
        let mut n = 0.0;
        for i in 0..500 {
            let dpc = 0.4 + 0.013 * (i % 70) as f64;
            let dcu = 0.2 + 0.004 * (i % 100) as f64;
            dcu_sum += dcu;
            n += 1.0;
            assert!(model.observe(dpc, Some(dcu), 2.0 * dpc + 5.0 * dcu + 3.0));
        }
        let fit = model.coefficients().unwrap();
        assert!((fit.alpha - 2.0).abs() < 1e-3, "alpha = {}", fit.alpha);
        // λ = 1 makes the running mean the plain mean; the collapsed
        // intercept is γ·mean(DCU) + β.
        let expected_beta = 5.0 * (dcu_sum / n) + 3.0;
        assert!((fit.beta - expected_beta).abs() < 1e-3, "beta = {}", fit.beta);
    }

    #[test]
    fn multi_counter_rejects_missing_dcu() {
        let seed = PStateCoefficients { alpha: 1.0, beta: 1.0 };
        let mut model = OnlineModel::seeded(seed, true, 0.98, 100.0);
        assert!(!model.observe(1.0, None, 10.0));
        assert_eq!(model.samples(), 0);
        assert_eq!(model.coefficients().unwrap(), seed);
    }

    #[test]
    fn non_finite_observations_are_rejected_without_state_change() {
        let seed = PStateCoefficients { alpha: 2.93, beta: 12.11 };
        let mut model = OnlineModel::seeded(seed, false, 0.98, 100.0);
        assert!(model.observe(1.0, None, 15.0));
        let before = model.clone();
        assert!(!model.observe(f64::NAN, None, 15.0));
        assert!(!model.observe(1.0, None, f64::INFINITY));
        assert_eq!(model, before);
        assert_eq!(model.samples(), 1);
    }

    #[test]
    fn seed_gain_anchors_early_estimates() {
        let seed = PStateCoefficients { alpha: 2.93, beta: 12.11 };
        // Tiny gain = high confidence in the seed: one contradictory
        // sample barely moves the fit.
        let mut model = OnlineModel::seeded(seed, false, 1.0, 1e-6);
        model.observe(1.0, None, 30.0);
        let fit = model.coefficients().unwrap();
        assert!((fit.alpha - 2.93).abs() < 1e-3);
        assert!((fit.beta - 12.11).abs() < 1e-3);
    }

    proptest! {
        /// On stationary noiseless data the online refit converges to the
        /// offline least-squares fit (which recovers the line exactly).
        #[test]
        fn stationary_refit_converges_to_offline_fit(
            slope in 0.1f64..4.0,
            intercept in 1.0f64..15.0,
            seed_alpha in 0.1f64..4.0,
            seed_beta in 1.0f64..15.0,
            x0 in 0.1f64..1.0,
            spread in 0.2f64..1.5,
        ) {
            let xs: Vec<f64> = (0..24).map(|i| x0 + spread * i as f64 / 23.0).collect();
            let points: Vec<(f64, f64)> =
                xs.iter().map(|&x| (x, slope * x + intercept)).collect();
            let offline = least_squares(&points).unwrap();
            let seed = PStateCoefficients { alpha: seed_alpha, beta: seed_beta };
            let mut online = OnlineModel::seeded(seed, false, 0.99, 100.0);
            for round in 0..40 {
                for &x in &xs {
                    prop_assert!(online.observe(x, None, slope * x + intercept), "round {round}");
                }
            }
            let fit = online.coefficients().unwrap();
            prop_assert!(
                (fit.alpha - offline.slope).abs() < 1e-3,
                "alpha {} vs offline {}", fit.alpha, offline.slope
            );
            prop_assert!(
                (fit.beta - offline.intercept).abs() < 1e-3,
                "beta {} vs offline {}", fit.beta, offline.intercept
            );
        }
    }
}
