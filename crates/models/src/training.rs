//! Model training from microbenchmark runs (paper §III.A).
//!
//! The training pipeline mirrors the paper's: run each MS-Loops
//! microbenchmark at each p-state at the highest priority (here: alone on
//! the simulated machine), sample counters and power every 10 ms, then
//!
//! * fit `Power = α·DPC + β` per p-state with the least-absolute-error
//!   criterion (→ a [`PowerModel`], our analogue of Table II), and
//! * grid-search the DCU/IPC threshold and frequency exponent of eq. 3 to
//!   minimize relative IPC-projection error across all p-state pairs
//!   (→ [`PerfModelParams`]).

use aapm_platform::error::Result;
use aapm_platform::events::HardwareEvent;
use aapm_platform::machine::Machine;
use aapm_platform::pstate::{PStateId, PStateTable};
use aapm_platform::units::Seconds;
use aapm_platform::MachineConfig;
use aapm_telemetry::daq::{DaqConfig, PowerDaq};
use aapm_telemetry::pmc::PmcDriver;
use aapm_workloads::characterize::{training_set, CharacterizedLoop};

use crate::fit::{least_absolute, mean_absolute_error, LinearFit};
use crate::perf_model::{PerfModel, PerfModelParams};
use crate::power_model::{PowerModel, PStateCoefficients};

/// Configuration of a training run.
#[derive(Debug, Clone, Copy)]
pub struct TrainingConfig {
    /// 10 ms samples collected per (loop, p-state) point after warm-up.
    pub samples_per_point: usize,
    /// Warm-up samples discarded before collection.
    pub warmup_samples: usize,
    /// Sampling interval.
    pub sample_interval: Seconds,
    /// Seed for machine and DAQ noise.
    pub seed: u64,
    /// DAQ chain configuration.
    pub daq: DaqConfig,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            samples_per_point: 30,
            warmup_samples: 3,
            sample_interval: Seconds::from_millis(10.0),
            seed: 0x7241_1A11,
            daq: DaqConfig::default(),
        }
    }
}

/// Measurements for one (loop, p-state) training point.
#[derive(Debug, Clone)]
pub struct TrainingPoint {
    /// Loop name (e.g. `FMA-256KB`).
    pub workload: String,
    /// The p-state the point was measured at.
    pub pstate: PStateId,
    /// Per-sample (DPC, measured power) pairs.
    pub samples: Vec<(f64, f64)>,
    /// Mean retired IPC over the collected samples.
    pub mean_ipc: f64,
    /// Mean DCU-outstanding cycles per cycle.
    pub mean_dcu: f64,
    /// Mean DPC.
    pub mean_dpc: f64,
    /// Mean measured power in watts.
    pub mean_power: f64,
}

/// The complete training data set.
#[derive(Debug, Clone)]
pub struct TrainingData {
    points: Vec<TrainingPoint>,
    table: PStateTable,
}

impl TrainingData {
    /// All collected points.
    pub fn points(&self) -> &[TrainingPoint] {
        &self.points
    }

    /// Points measured at one p-state.
    pub fn points_at(&self, pstate: PStateId) -> impl Iterator<Item = &TrainingPoint> {
        self.points.iter().filter(move |p| p.pstate == pstate)
    }

    /// The p-state table the data was collected over.
    pub fn table(&self) -> &PStateTable {
        &self.table
    }
}

/// Runs one characterized loop at one p-state and samples it.
fn measure_point(
    loop_: &CharacterizedLoop,
    pstate: PStateId,
    config: &TrainingConfig,
    table: &PStateTable,
) -> Result<TrainingPoint> {
    let machine_config = {
        let mut b = MachineConfig::builder();
        b.pstates(table.clone())
            .initial_pstate(pstate)
            .seed(config.seed ^ (pstate.index() as u64) << 8 ^ loop_.microloop as u64);
        b.build()?
    };
    let mut machine = Machine::new(machine_config, loop_.program());
    let mut daq = PowerDaq::new(config.daq, config.seed ^ 0xD0_0D ^ pstate.index() as u64);
    let mut pmc = PmcDriver::new(vec![
        HardwareEvent::InstructionsDecoded,
        HardwareEvent::InstructionsRetired,
        HardwareEvent::DcuMissOutstanding,
    ]);
    // Three events on two counters: the driver multiplexes, as the real one
    // would have to. Warm-up also primes the rotation history.
    for _ in 0..config.warmup_samples {
        machine.tick(config.sample_interval);
        let _ = daq.sample(&machine);
        let _ = pmc.sample(&machine);
    }
    let mut samples = Vec::with_capacity(config.samples_per_point);
    let (mut sum_ipc, mut sum_dcu, mut sum_dpc, mut sum_power) = (0.0, 0.0, 0.0, 0.0);
    for _ in 0..config.samples_per_point {
        machine.tick(config.sample_interval);
        let power = daq.sample(&machine);
        let counters = pmc.sample(&machine);
        let dpc = counters.dpc().unwrap_or(0.0);
        samples.push((dpc, power.power.watts()));
        sum_ipc += counters.ipc().unwrap_or(0.0);
        sum_dcu += counters.dcu().unwrap_or(0.0);
        sum_dpc += dpc;
        sum_power += power.power.watts();
    }
    let n = config.samples_per_point as f64;
    Ok(TrainingPoint {
        workload: loop_.name(),
        pstate,
        samples,
        mean_ipc: sum_ipc / n,
        mean_dcu: sum_dcu / n,
        mean_dpc: sum_dpc / n,
        mean_power: sum_power / n,
    })
}

/// Collects the full training data set: every MS-Loops point at every
/// p-state of `table`.
///
/// # Errors
///
/// Propagates platform errors from characterization or machine setup.
pub fn collect_training_data(config: &TrainingConfig, table: &PStateTable) -> Result<TrainingData> {
    collect_training_data_from(config, table, &training_set()?)
}

/// [`collect_training_data`] over an already-characterized training set,
/// for callers (the experiment context) that also need the characterized
/// loops themselves and should not pay for cache simulation twice.
///
/// # Errors
///
/// Propagates platform errors from machine setup.
pub fn collect_training_data_from(
    config: &TrainingConfig,
    table: &PStateTable,
    loops: &[CharacterizedLoop],
) -> Result<TrainingData> {
    let mut points = Vec::with_capacity(loops.len() * table.len());
    for loop_ in loops {
        for (pstate, _) in table.iter() {
            points.push(measure_point(loop_, pstate, config, table)?);
        }
    }
    Ok(TrainingData { points, table: table.clone() })
}

/// Fits the per-p-state linear DPC power model (least absolute error).
///
/// # Errors
///
/// Returns an error if any p-state lacks enough distinct samples to fit.
pub fn train_power_model(data: &TrainingData) -> Result<PowerModel> {
    let mut coefficients = Vec::with_capacity(data.table.len());
    for (pstate, _) in data.table.iter() {
        let samples: Vec<(f64, f64)> =
            data.points_at(pstate).flat_map(|p| p.samples.iter().copied()).collect();
        let fit: LinearFit = least_absolute(&samples, 30).ok_or_else(|| {
            aapm_platform::error::PlatformError::InvalidConfig {
                parameter: "training_data",
                reason: format!("not enough distinct samples at {pstate}"),
            }
        })?;
        coefficients.push(PStateCoefficients { alpha: fit.slope, beta: fit.intercept });
    }
    PowerModel::new(coefficients)
}

/// Result of the eq.-3 parameter search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfFitReport {
    /// The best parameters found.
    pub params: PerfModelParams,
    /// Mean relative IPC-projection error at the optimum.
    pub mean_relative_error: f64,
}

/// Scores a candidate eq.-3 parameterization on the training data: mean
/// relative IPC-projection error over all workloads and ordered p-state
/// pairs.
fn perf_model_error(data: &TrainingData, params: PerfModelParams) -> Option<f64> {
    let model = PerfModel::new(params);
    let mut error_sum = 0.0;
    let mut count = 0usize;
    for point_from in data.points() {
        if point_from.mean_ipc <= 0.0 {
            continue;
        }
        let Ok(from_state) = data.table.get(point_from.pstate) else { continue };
        for point_to in data.points() {
            if point_to.workload != point_from.workload
                || point_to.pstate == point_from.pstate
                || point_to.mean_ipc <= 0.0
            {
                continue;
            }
            let Ok(to_state) = data.table.get(point_to.pstate) else { continue };
            let predicted = model.project_ipc(
                point_from.mean_ipc,
                point_from.mean_dcu,
                from_state.frequency(),
                to_state.frequency(),
            );
            error_sum += (predicted - point_to.mean_ipc).abs() / point_to.mean_ipc;
            count += 1;
        }
    }
    (count > 0).then(|| error_sum / count as f64)
}

/// Golden-section refinement of the exponent within `[lo, hi]`, holding the
/// threshold fixed. The error surface is piecewise-smooth in the exponent
/// for a fixed classification, so the bracket from the grid search refines
/// quickly.
fn refine_exponent(data: &TrainingData, threshold: f64, lo: f64, hi: f64) -> f64 {
    const GOLDEN: f64 = 0.618_033_988_749_894_8;
    let score = |exponent: f64| {
        perf_model_error(data, PerfModelParams { dcu_threshold: threshold, exponent })
            .unwrap_or(f64::INFINITY)
    };
    let (mut a, mut b) = (lo, hi);
    let mut c = b - GOLDEN * (b - a);
    let mut d = a + GOLDEN * (b - a);
    let (mut fc, mut fd) = (score(c), score(d));
    for _ in 0..40 {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - GOLDEN * (b - a);
            fc = score(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + GOLDEN * (b - a);
            fd = score(d);
        }
        if (b - a).abs() < 1e-4 {
            break;
        }
    }
    (a + b) / 2.0
}

/// Grid-searches eq. 3's threshold and exponent against the training data,
/// then refines the exponent by golden-section search around the grid
/// optimum.
///
/// For every workload and every ordered p-state pair `(from, to)`, the
/// candidate model projects the IPC measured at `from` to `to` and is
/// scored on mean relative error against the IPC actually measured at `to`.
pub fn train_perf_model(data: &TrainingData) -> PerfFitReport {
    let mut best = PerfFitReport {
        params: PerfModelParams { dcu_threshold: 1.0, exponent: 0.8 },
        mean_relative_error: f64::INFINITY,
    };
    for threshold_step in 0..=40 {
        let threshold = 0.2 + threshold_step as f64 * 0.1; // 0.2 … 4.2
        for exponent_step in 0..=50 {
            let exponent = exponent_step as f64 * 0.02; // 0 … 1
            let params = PerfModelParams { dcu_threshold: threshold, exponent };
            let Some(mean) = perf_model_error(data, params) else { continue };
            if mean < best.mean_relative_error {
                best = PerfFitReport { params, mean_relative_error: mean };
            }
        }
    }
    // Refine the exponent within the grid cell around the optimum.
    let refined_exponent = refine_exponent(
        data,
        best.params.dcu_threshold,
        (best.params.exponent - 0.02).max(0.0),
        (best.params.exponent + 0.02).min(1.0),
    );
    let refined = PerfModelParams {
        dcu_threshold: best.params.dcu_threshold,
        exponent: refined_exponent,
    };
    if let Some(error) = perf_model_error(data, refined) {
        if error < best.mean_relative_error {
            best = PerfFitReport { params: refined, mean_relative_error: error };
        }
    }
    best
}

/// Per-p-state mean absolute error of a power model over the training data.
pub fn power_model_training_error(data: &TrainingData, model: &PowerModel) -> Vec<(PStateId, f64)> {
    data.table
        .iter()
        .map(|(pstate, _)| {
            let samples: Vec<(f64, f64)> =
                data.points_at(pstate).flat_map(|p| p.samples.iter().copied()).collect();
            let c = model.coefficients(pstate).expect("model covers table");
            let fit = LinearFit { slope: c.alpha, intercept: c.beta };
            (pstate, mean_absolute_error(&fit, &samples))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> TrainingConfig {
        TrainingConfig { samples_per_point: 12, warmup_samples: 2, ..TrainingConfig::default() }
    }

    fn data() -> TrainingData {
        collect_training_data(&quick_config(), &PStateTable::pentium_m_755()).unwrap()
    }

    #[test]
    fn training_data_covers_all_points() {
        let d = data();
        assert_eq!(d.points().len(), 12 * 8);
        for (pstate, _) in d.table().iter() {
            assert_eq!(d.points_at(pstate).count(), 12);
        }
    }

    #[test]
    fn trained_power_model_matches_table_ii_shape() {
        let d = data();
        let model = train_power_model(&d).unwrap();
        assert!(model.covers(d.table()));
        // α and β must both rise monotonically with the p-state, like the
        // paper's Table II.
        let mut last_alpha = 0.0;
        let mut last_beta = 0.0;
        for (_, c) in model.iter() {
            assert!(c.alpha > last_alpha, "alpha must grow: {} after {}", c.alpha, last_alpha);
            assert!(c.beta > last_beta, "beta must grow: {} after {}", c.beta, last_beta);
            last_alpha = c.alpha;
            last_beta = c.beta;
        }
    }

    #[test]
    fn trained_power_model_tracks_fma_within_guardband_scale() {
        // FMA is the extreme point of the fit; the paper absorbs residual
        // model error with a 0.5 W guardband and reports per-sample errors
        // of this order. Demand estimates within ~3× guardband.
        let d = data();
        let model = train_power_model(&d).unwrap();
        for point in d.points().iter().filter(|p| p.workload == "FMA-256KB") {
            let estimated = model.estimate(point.pstate, point.mean_dpc).unwrap().watts();
            assert!(
                (estimated - point.mean_power).abs() < 1.5,
                "{} at {}: est {estimated:.2} vs measured {:.2}",
                point.workload,
                point.pstate,
                point.mean_power
            );
        }
    }

    #[test]
    fn training_error_is_small_on_training_set() {
        let d = data();
        let model = train_power_model(&d).unwrap();
        for (pstate, mae) in power_model_training_error(&d, &model) {
            assert!(mae < 1.0, "{pstate}: training MAE {mae:.3} W too high");
        }
    }

    #[test]
    fn perf_fit_finds_plausible_parameters() {
        let d = data();
        let report = train_perf_model(&d);
        assert!(report.mean_relative_error < 0.2, "error {}", report.mean_relative_error);
        // The exponent should land in the upper half: the training loops'
        // memory-bound members (MLOAD_RAND especially) are latency-bound.
        assert!(
            (0.4..=1.0).contains(&report.params.exponent),
            "exponent {}",
            report.params.exponent
        );
        assert!(
            (0.2..=4.0).contains(&report.params.dcu_threshold),
            "threshold {}",
            report.params.dcu_threshold
        );
    }

    #[test]
    fn training_is_deterministic() {
        let a = collect_training_data(&quick_config(), &PStateTable::pentium_m_755()).unwrap();
        let b = collect_training_data(&quick_config(), &PStateTable::pentium_m_755()).unwrap();
        assert_eq!(a.points().len(), b.points().len());
        for (pa, pb) in a.points().iter().zip(b.points()) {
            assert_eq!(pa.samples, pb.samples, "{} at {}", pa.workload, pa.pstate);
        }
    }
}
