//! Per-sample model-accuracy evaluation.
//!
//! The paper stresses *per-sample* accuracy over program-average accuracy:
//! a run-time controller acts on individual 10 ms samples, where over- and
//! under-estimates cannot cancel. These helpers score a power model against
//! a stream of (DPC, measured power) observations.

use aapm_platform::error::Result;
use aapm_platform::pstate::PStateId;

use crate::power_model::PowerModel;

/// Error statistics of a model over a sample stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelErrorReport {
    /// Number of samples scored.
    pub samples: usize,
    /// Mean absolute error in watts.
    pub mean_abs_error: f64,
    /// Mean signed error in watts (positive = model over-estimates).
    pub mean_signed_error: f64,
    /// Largest absolute error in watts.
    pub max_abs_error: f64,
    /// Mean absolute percentage error.
    pub mean_abs_pct_error: f64,
}

/// Scores `model` against per-sample observations `(pstate, dpc, watts)`.
///
/// # Errors
///
/// Returns an error if any sample references a p-state outside the model.
pub fn evaluate_power_model(
    model: &PowerModel,
    samples: &[(PStateId, f64, f64)],
) -> Result<Option<ModelErrorReport>> {
    if samples.is_empty() {
        return Ok(None);
    }
    let mut abs_sum = 0.0;
    let mut signed_sum = 0.0;
    let mut max_abs = 0.0f64;
    let mut pct_sum = 0.0;
    for &(pstate, dpc, measured) in samples {
        let estimated = model.estimate(pstate, dpc)?.watts();
        let err = estimated - measured;
        abs_sum += err.abs();
        signed_sum += err;
        max_abs = max_abs.max(err.abs());
        if measured.abs() > 1e-9 {
            pct_sum += err.abs() / measured.abs();
        }
    }
    let n = samples.len() as f64;
    Ok(Some(ModelErrorReport {
        samples: samples.len(),
        mean_abs_error: abs_sum / n,
        mean_signed_error: signed_sum / n,
        max_abs_error: max_abs,
        mean_abs_pct_error: pct_sum / n,
    }))
}

/// Recommends a PM guardband from training residuals: the `quantile`-th
/// absolute error across all training samples and p-states. The paper's
/// 0.5 W guardband was chosen "based on earlier studies with this model";
/// this makes the choice reproducible from the data.
///
/// # Panics
///
/// Panics if `quantile` is outside `[0, 1]`.
pub fn recommend_guardband(
    data: &crate::training::TrainingData,
    model: &PowerModel,
    quantile: f64,
) -> Option<f64> {
    assert!((0.0..=1.0).contains(&quantile), "quantile must lie in [0, 1]");
    let mut abs_errors: Vec<f64> = Vec::new();
    for point in data.points() {
        let Ok(coefficients) = model.coefficients(point.pstate) else { continue };
        for &(dpc, measured) in &point.samples {
            abs_errors.push((coefficients.estimate(dpc).watts() - measured).abs());
        }
    }
    if abs_errors.is_empty() {
        return None;
    }
    abs_errors.sort_by(f64::total_cmp);
    let rank = (quantile * (abs_errors.len() - 1) as f64).round() as usize;
    Some(abs_errors[rank])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_have_zero_error() {
        let model = PowerModel::paper_table_ii();
        let id = PStateId::new(7);
        let samples: Vec<(PStateId, f64, f64)> = (0..10)
            .map(|i| {
                let dpc = i as f64 * 0.2;
                (id, dpc, model.estimate(id, dpc).unwrap().watts())
            })
            .collect();
        let report = evaluate_power_model(&model, &samples).unwrap().unwrap();
        assert_eq!(report.samples, 10);
        assert!(report.mean_abs_error < 1e-12);
        assert!(report.max_abs_error < 1e-12);
    }

    #[test]
    fn signed_error_reveals_bias_direction() {
        let model = PowerModel::paper_table_ii();
        let id = PStateId::new(0);
        // Measured power 1 W above the model everywhere → model
        // under-estimates → negative signed error.
        let samples: Vec<(PStateId, f64, f64)> = (0..5)
            .map(|i| {
                let dpc = i as f64 * 0.3;
                (id, dpc, model.estimate(id, dpc).unwrap().watts() + 1.0)
            })
            .collect();
        let report = evaluate_power_model(&model, &samples).unwrap().unwrap();
        assert!((report.mean_signed_error + 1.0).abs() < 1e-12);
        assert!((report.mean_abs_error - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_yields_none() {
        let model = PowerModel::paper_table_ii();
        assert!(evaluate_power_model(&model, &[]).unwrap().is_none());
    }

    #[test]
    fn unknown_pstate_propagates_error() {
        let model = PowerModel::paper_table_ii();
        let samples = [(PStateId::new(42), 1.0, 10.0)];
        assert!(evaluate_power_model(&model, &samples).is_err());
    }

    #[test]
    fn guardband_recommendation_lands_near_the_papers_half_watt() {
        use crate::training::{collect_training_data, train_power_model, TrainingConfig};
        use aapm_platform::pstate::PStateTable;

        let table = PStateTable::pentium_m_755();
        let config = TrainingConfig { samples_per_point: 15, ..TrainingConfig::default() };
        let data = collect_training_data(&config, &table).unwrap();
        let model = train_power_model(&data).unwrap();
        let p50 = recommend_guardband(&data, &model, 0.5).unwrap();
        let p95 = recommend_guardband(&data, &model, 0.95).unwrap();
        assert!(p50 < p95, "quantiles are ordered");
        // The median training residual sits in the regime of the paper's
        // 0.5 W choice; the 95th percentile is dominated by the hottest
        // FMA points at 2 GHz, where the linear fit bends most.
        assert!((0.05..=0.8).contains(&p50), "p50 residual {p50}");
        assert!((0.3..=2.0).contains(&p95), "p95 residual {p95}");
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile_panics() {
        use crate::training::{collect_training_data, TrainingConfig};
        use aapm_platform::pstate::PStateTable;
        let table = PStateTable::pentium_m_755();
        let config = TrainingConfig { samples_per_point: 2, warmup_samples: 1, ..TrainingConfig::default() };
        let data = collect_training_data(&config, &table).unwrap();
        let model = PowerModel::paper_table_ii();
        let _ = recommend_guardband(&data, &model, 1.5);
    }
}
