//! IPC/performance projection across p-states (paper eq. 3).
//!
//! Workloads respond to frequency differently (flat for memory-bound,
//! linear for core-bound), so a single formula cannot fit all. The paper
//! splits on memory-boundedness as seen by the DCU counter:
//!
//! ```text
//! IPC' = IPC                     if DCU/IPC <  threshold   (core-bound)
//! IPC' = IPC · (f/f')^exponent   if DCU/IPC >= threshold   (memory-bound)
//! ```
//!
//! with `threshold = 1.21` and `exponent = 0.81` from the paper's
//! microbenchmark fit — `0.59` was the other local minimum, and the paper
//! shows it repairs the `art`/`mcf` floor violations (our Figure 11
//! experiment reproduces both settings).

use aapm_platform::units::MegaHertz;

/// The two workload classes of eq. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    /// Performance scales with frequency; IPC is frequency-independent.
    CoreBound,
    /// Performance is latency-dominated; IPC rises as frequency falls.
    MemoryBound,
}

/// Parameters of the projection model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfModelParams {
    /// DCU-stall-cycles-per-instruction threshold separating the classes.
    pub dcu_threshold: f64,
    /// Frequency exponent applied to the memory-bound class.
    pub exponent: f64,
}

impl PerfModelParams {
    /// The paper's primary fit: threshold 1.21, exponent 0.81.
    pub fn paper() -> Self {
        PerfModelParams { dcu_threshold: 1.21, exponent: 0.81 }
    }

    /// The paper's alternate local minimum: threshold 1.21, exponent 0.59
    /// (repairs the art/mcf violations at the cost of less energy saving).
    pub fn paper_alternate() -> Self {
        PerfModelParams { dcu_threshold: 1.21, exponent: 0.59 }
    }
}

impl Default for PerfModelParams {
    fn default() -> Self {
        PerfModelParams::paper()
    }
}

/// The eq. 3 performance model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PerfModel {
    params: PerfModelParams,
}

impl PerfModel {
    /// Creates a model with explicit parameters.
    pub fn new(params: PerfModelParams) -> Self {
        PerfModel { params }
    }

    /// The model parameters.
    pub fn params(&self) -> &PerfModelParams {
        &self.params
    }

    /// Classifies a sample by its DCU/IPC ratio (stall cycles per retired
    /// instruction). Zero-IPC samples classify as memory-bound: an entirely
    /// stalled interval cannot benefit from frequency.
    pub fn classify(&self, ipc: f64, dcu_per_cycle: f64) -> WorkloadClass {
        if ipc <= 0.0 {
            return WorkloadClass::MemoryBound;
        }
        if dcu_per_cycle / ipc >= self.params.dcu_threshold {
            WorkloadClass::MemoryBound
        } else {
            WorkloadClass::CoreBound
        }
    }

    /// Projects an IPC observed at `from` to frequency `to` (eq. 3).
    pub fn project_ipc(&self, ipc: f64, dcu_per_cycle: f64, from: MegaHertz, to: MegaHertz) -> f64 {
        match self.classify(ipc, dcu_per_cycle) {
            WorkloadClass::CoreBound => ipc,
            WorkloadClass::MemoryBound => ipc * from.ratio(to).powf(self.params.exponent),
        }
    }

    /// Projects *throughput* (instructions per second, ∝ IPC × f) at `to`
    /// relative to the throughput observed at `from`. Returns the ratio
    /// `perf(to) / perf(from)`.
    pub fn relative_performance(
        &self,
        ipc: f64,
        dcu_per_cycle: f64,
        from: MegaHertz,
        to: MegaHertz,
    ) -> f64 {
        if ipc <= 0.0 {
            return 1.0; // no work observed: any state preserves "performance"
        }
        let projected = self.project_ipc(ipc, dcu_per_cycle, from, to);
        (projected * to.ghz()) / (ipc * from.ghz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F2000: MegaHertz = MegaHertz::new(2000);
    const F1000: MegaHertz = MegaHertz::new(1000);
    const F600: MegaHertz = MegaHertz::new(600);

    #[test]
    fn paper_parameters() {
        let p = PerfModelParams::paper();
        assert_eq!((p.dcu_threshold, p.exponent), (1.21, 0.81));
        let alt = PerfModelParams::paper_alternate();
        assert_eq!((alt.dcu_threshold, alt.exponent), (1.21, 0.59));
    }

    #[test]
    fn classification_threshold() {
        let m = PerfModel::default();
        // DCU/IPC = 1.2 < 1.21 → core.
        assert_eq!(m.classify(1.0, 1.2), WorkloadClass::CoreBound);
        // DCU/IPC = 1.21 → memory (inclusive bound, as in eq. 3).
        assert_eq!(m.classify(1.0, 1.21), WorkloadClass::MemoryBound);
        // Scaling both preserves the ratio.
        assert_eq!(m.classify(0.5, 0.7), WorkloadClass::MemoryBound);
        assert_eq!(m.classify(2.0, 2.0), WorkloadClass::CoreBound);
    }

    #[test]
    fn zero_ipc_classifies_memory_bound() {
        let m = PerfModel::default();
        assert_eq!(m.classify(0.0, 0.0), WorkloadClass::MemoryBound);
    }

    #[test]
    fn core_bound_ipc_is_invariant() {
        let m = PerfModel::default();
        assert_eq!(m.project_ipc(1.5, 0.1, F2000, F600), 1.5);
        assert_eq!(m.project_ipc(1.5, 0.1, F600, F2000), 1.5);
    }

    #[test]
    fn memory_bound_ipc_rises_as_frequency_falls() {
        let m = PerfModel::default();
        let projected = m.project_ipc(0.4, 2.0, F2000, F1000);
        // (2000/1000)^0.81 = 2^0.81 ≈ 1.754
        assert!((projected - 0.4 * 2f64.powf(0.81)).abs() < 1e-12);
        assert!(projected > 0.4);
    }

    #[test]
    fn projection_at_same_frequency_is_identity() {
        let m = PerfModel::default();
        for (ipc, dcu) in [(1.5, 0.1), (0.3, 2.0)] {
            assert_eq!(m.project_ipc(ipc, dcu, F2000, F2000), ipc);
            assert!((m.relative_performance(ipc, dcu, F2000, F2000) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn core_bound_performance_scales_linearly() {
        let m = PerfModel::default();
        let rel = m.relative_performance(1.5, 0.1, F2000, F1000);
        assert!((rel - 0.5).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_performance_degrades_sublinearly() {
        let m = PerfModel::default();
        let rel = m.relative_performance(0.4, 2.0, F2000, F1000);
        // (1000/2000)^(1-0.81) = 0.5^0.19 ≈ 0.877: mild loss for half the
        // frequency — the PS energy-saving opportunity.
        assert!((rel - 0.5f64.powf(0.19)).abs() < 1e-12);
        assert!(rel > 0.85);
    }

    #[test]
    fn lower_exponent_predicts_more_performance_loss() {
        let primary = PerfModel::new(PerfModelParams::paper());
        let alternate = PerfModel::new(PerfModelParams::paper_alternate());
        let rel_081 = primary.relative_performance(0.4, 2.0, F2000, F600);
        let rel_059 = alternate.relative_performance(0.4, 2.0, F2000, F600);
        assert!(
            rel_059 < rel_081,
            "0.59 is more conservative: {rel_059} should be below {rel_081}"
        );
    }

    #[test]
    fn relative_performance_is_monotone_in_target_frequency() {
        let m = PerfModel::default();
        for (ipc, dcu) in [(1.5, 0.1), (0.3, 2.0), (0.8, 1.0)] {
            let mut last = 0.0;
            for mhz in [600, 800, 1000, 1200, 1400, 1600, 1800, 2000] {
                let rel = m.relative_performance(ipc, dcu, F2000, MegaHertz::new(mhz));
                assert!(rel >= last, "performance must not fall as frequency rises");
                last = rel;
            }
        }
    }
}
