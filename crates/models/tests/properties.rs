//! Property-based tests of the estimation models.

use aapm_models::dpc_projection::project_dpc;
use aapm_models::fit::{least_absolute, least_squares, mean_absolute_error};
use aapm_models::perf_model::{PerfModel, PerfModelParams, WorkloadClass};
use aapm_models::power_model::PowerModel;
use aapm_platform::pstate::{PStateId, PStateTable};
use aapm_platform::units::MegaHertz;
use proptest::prelude::*;

fn freq_strategy() -> impl Strategy<Value = MegaHertz> {
    prop::sample::select(vec![600u32, 800, 1000, 1200, 1400, 1600, 1800, 2000])
        .prop_map(MegaHertz::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Eq.-4 DPC projection: identity at the same frequency, conservative
    /// (never lower) when moving down, identity when moving up.
    #[test]
    fn dpc_projection_conservatism(
        dpc in 0.0f64..4.0,
        from in freq_strategy(),
        to in freq_strategy(),
    ) {
        let projected = project_dpc(dpc, from, to);
        if to == from {
            prop_assert_eq!(projected, dpc);
        } else if to < from {
            prop_assert!(projected >= dpc);
            // Exact scaling by the frequency ratio.
            prop_assert!((projected - dpc * from.ratio(to)).abs() < 1e-12);
        } else {
            prop_assert_eq!(projected, dpc);
        }
    }

    /// Eq.-3 classification is scale-invariant in (ipc, dcu) and projection
    /// preserves the sign of frequency moves.
    #[test]
    fn perf_model_classification_scale_invariance(
        ipc in 0.01f64..3.0,
        dcu_ratio in 0.0f64..6.0,
        scale in 0.1f64..5.0,
    ) {
        let model = PerfModel::new(PerfModelParams::paper());
        let dcu = ipc * dcu_ratio;
        let class_a = model.classify(ipc, dcu);
        let class_b = model.classify(ipc * scale, dcu * scale);
        prop_assert_eq!(class_a, class_b);
        let expected = if dcu_ratio >= 1.21 {
            WorkloadClass::MemoryBound
        } else {
            WorkloadClass::CoreBound
        };
        prop_assert_eq!(class_a, expected);
    }

    /// Relative performance is 1 at the same frequency, monotone in the
    /// target frequency, and bounded by the frequency ratio.
    #[test]
    fn relative_performance_bounds(
        ipc in 0.01f64..3.0,
        dcu_ratio in 0.0f64..6.0,
        from in freq_strategy(),
    ) {
        let model = PerfModel::new(PerfModelParams::paper());
        let dcu = ipc * dcu_ratio;
        prop_assert!((model.relative_performance(ipc, dcu, from, from) - 1.0).abs() < 1e-12);
        let mut last = 0.0;
        for mhz in [600u32, 800, 1000, 1200, 1400, 1600, 1800, 2000] {
            let to = MegaHertz::new(mhz);
            let rel = model.relative_performance(ipc, dcu, from, to);
            prop_assert!(rel >= last);
            // Never better than the pure frequency ratio, never worse than
            // flat (for downward moves the model floor is ratio^(1-e) ≥ ratio).
            let ratio = to.ghz() / from.ghz();
            prop_assert!(rel <= ratio.max(1.0) + 1e-12);
            last = rel;
        }
    }

    /// Projecting down and back up with the same model returns the original
    /// IPC (eq. 3 is a pure power law in f).
    #[test]
    fn ipc_projection_round_trips(
        ipc in 0.01f64..3.0,
        dcu_ratio in 1.3f64..6.0, // memory-bound branch, the non-trivial one
        a in freq_strategy(),
        b in freq_strategy(),
    ) {
        let model = PerfModel::new(PerfModelParams::paper());
        let dcu = ipc * dcu_ratio;
        let there = model.project_ipc(ipc, dcu, a, b);
        // The DCU rate scales with the IPC projection (stall cycles per
        // instruction are preserved by the model's assumptions).
        let dcu_there = there * dcu_ratio;
        let back = model.project_ipc(there, dcu_there, b, a);
        prop_assert!((back - ipc).abs() < 1e-9, "{ipc} -> {there} -> {back}");
    }

    /// The power model is linear: estimate(αx + βy) relations hold exactly.
    #[test]
    fn power_model_linearity(
        state in 0usize..8,
        a in 0.0f64..3.0,
        b in 0.0f64..3.0,
    ) {
        let model = PowerModel::paper_table_ii();
        let id = PStateId::new(state);
        let pa = model.estimate(id, a).unwrap().watts();
        let pb = model.estimate(id, b).unwrap().watts();
        let pm = model.estimate(id, (a + b) / 2.0).unwrap().watts();
        prop_assert!((pm - (pa + pb) / 2.0).abs() < 1e-9);
    }

    /// For any fixed DPC, the estimated power rises strictly with the
    /// p-state (both α and β grow).
    #[test]
    fn power_estimates_monotone_in_pstate(dpc in 0.0f64..3.0) {
        let model = PowerModel::paper_table_ii();
        let table = PStateTable::pentium_m_755();
        let mut last = 0.0;
        for (id, _) in table.iter() {
            let p = model.estimate(id, dpc).unwrap().watts();
            prop_assert!(p > last);
            last = p;
        }
    }

    /// On random data the L1 fit never has (meaningfully) worse mean
    /// absolute error than the L2 fit — it optimizes that criterion.
    #[test]
    fn l1_fit_never_worse_on_mae(
        points in prop::collection::vec((0.0f64..10.0, -5.0f64..25.0), 3..40),
    ) {
        // Skip degenerate zero-x-variance inputs.
        let x0 = points[0].0;
        prop_assume!(points.iter().any(|p| (p.0 - x0).abs() > 1e-6));
        let l2 = least_squares(&points).unwrap();
        let l1 = least_absolute(&points, 50).unwrap();
        let mae_l2 = mean_absolute_error(&l2, &points);
        let mae_l1 = mean_absolute_error(&l1, &points);
        // IRLS is approximate; allow a small tolerance.
        prop_assert!(mae_l1 <= mae_l2 * 1.02 + 1e-9, "l1 {mae_l1} vs l2 {mae_l2}");
    }
}
