//! Per-sample cost of the estimation models — the paper's "low runtime
//! overheads" requirement: the whole Estimate phase must be vanishingly
//! small against a 10 ms control interval.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aapm_models::dpc_projection::project_dpc;
use aapm_models::perf_model::{PerfModel, PerfModelParams};
use aapm_models::power_model::PowerModel;
use aapm_platform::pstate::{PStateId, PStateTable};
use aapm_platform::units::MegaHertz;

fn bench_power_estimate(c: &mut Criterion) {
    let model = PowerModel::paper_table_ii();
    c.bench_function("power_model_estimate_single_state", |b| {
        b.iter(|| model.estimate(black_box(PStateId::new(7)), black_box(1.37)).unwrap())
    });
    c.bench_function("power_model_estimate_all_states", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for i in 0..8 {
                total += model.estimate(PStateId::new(i), black_box(1.37)).unwrap().watts();
            }
            total
        })
    });
}

fn bench_dpc_projection(c: &mut Criterion) {
    let table = PStateTable::pentium_m_755();
    let from = table.get(table.highest()).unwrap().frequency();
    c.bench_function("dpc_projection_all_states", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for (_, state) in table.iter() {
                total += project_dpc(black_box(1.2), from, state.frequency());
            }
            total
        })
    });
}

fn bench_perf_projection(c: &mut Criterion) {
    let model = PerfModel::new(PerfModelParams::paper());
    c.bench_function("perf_model_relative_performance", |b| {
        b.iter(|| {
            model.relative_performance(
                black_box(0.45),
                black_box(0.9),
                MegaHertz::new(2000),
                MegaHertz::new(800),
            )
        })
    });
}

criterion_group!(benches, bench_power_estimate, bench_dpc_projection, bench_perf_projection);
criterion_main!(benches);
