//! Full governor decision latency per 10 ms sample: Monitor rates are
//! already in hand, so this measures Estimate + Control.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aapm::governor::{Governor, SampleContext};
use aapm::limits::{PerformanceFloor, PowerLimit};
use aapm::pm::PerformanceMaximizer;
use aapm::ps::PowerSave;
use aapm_models::perf_model::{PerfModel, PerfModelParams};
use aapm_models::power_model::PowerModel;
use aapm_platform::events::HardwareEvent;
use aapm_platform::pstate::{PStateId, PStateTable};
use aapm_platform::units::Seconds;
use aapm_telemetry::pmc::CounterSample;

fn sample(ipc: f64, dpc: f64, dcu: f64) -> CounterSample {
    let cycles = 20e6;
    CounterSample {
        start: Seconds::ZERO,
        end: Seconds::from_millis(10.0),
        cycles,
        counts: vec![
            (HardwareEvent::InstructionsRetired, ipc * cycles, true),
            (HardwareEvent::InstructionsDecoded, dpc * cycles, true),
            (HardwareEvent::DcuMissOutstanding, dcu * cycles, true),
        ],
    }
}

fn bench_pm_decision(c: &mut Criterion) {
    let table = PStateTable::pentium_m_755();
    let mut pm =
        PerformanceMaximizer::new(PowerModel::paper_table_ii(), PowerLimit::new(13.5).unwrap());
    let s = sample(1.1, 1.4, 0.4);
    c.bench_function("pm_decide_per_sample", |b| {
        b.iter(|| {
            let ctx = SampleContext {
                counters: black_box(&s),
                power: None, temperature: None,
                current: PStateId::new(6),
                table: &table,
                queue: None,
            };
            pm.decide(&ctx)
        })
    });
}

fn bench_ps_decision(c: &mut Criterion) {
    let table = PStateTable::pentium_m_755();
    let mut ps = PowerSave::new(
        PerfModel::new(PerfModelParams::paper()),
        PerformanceFloor::new(0.8).unwrap(),
    );
    let s = sample(0.4, 0.5, 1.2);
    c.bench_function("ps_decide_per_sample", |b| {
        b.iter(|| {
            let ctx = SampleContext {
                counters: black_box(&s),
                power: None, temperature: None,
                current: PStateId::new(4),
                table: &table,
                queue: None,
            };
            ps.decide(&ctx)
        })
    });
}

criterion_group!(benches, bench_pm_decision, bench_ps_decision);
criterion_main!(benches);
