//! Cost of the model-training pipeline: microbenchmark characterization,
//! data collection across p-states, and the two fits.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aapm_models::training::{
    collect_training_data, train_perf_model, train_power_model, TrainingConfig,
};
use aapm_platform::pstate::PStateTable;
use aapm_workloads::characterize::characterize;
use aapm_workloads::footprint::Footprint;
use aapm_workloads::loops::MicroLoop;

fn bench_characterization(c: &mut Criterion) {
    let mut group = c.benchmark_group("characterization");
    group.sample_size(10);
    group.bench_function("characterize_fma_l2", |b| {
        b.iter(|| characterize(black_box(MicroLoop::Fma), Footprint::L2).unwrap())
    });
    group.finish();
}

fn bench_fits(c: &mut Criterion) {
    let table = PStateTable::pentium_m_755();
    let config = TrainingConfig { samples_per_point: 15, ..TrainingConfig::default() };
    let data = collect_training_data(&config, &table).expect("training data");
    c.bench_function("train_power_model", |b| {
        b.iter(|| train_power_model(black_box(&data)).unwrap())
    });
    let mut slow = c.benchmark_group("grid_search");
    slow.sample_size(10);
    slow.bench_function("train_perf_model", |b| b.iter(|| train_perf_model(black_box(&data))));
    slow.finish();
}

criterion_group!(benches, bench_characterization, bench_fits);
criterion_main!(benches);
