//! Machine-executor throughput: how many simulated 10 ms control intervals
//! the platform model processes per wall-clock second. This bounds how fast
//! whole-suite experiments can run.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use aapm_bench::fixture_machine;
use aapm_platform::units::Seconds;

fn bench_ticks(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");
    const TICKS: u64 = 1000;
    group.throughput(Throughput::Elements(TICKS));
    group.bench_function("thousand_10ms_ticks", |b| {
        b.iter(|| {
            // Budget large enough that the program never finishes mid-bench.
            let mut machine = fixture_machine(u64::MAX / 4);
            for _ in 0..TICKS {
                black_box(machine.tick(Seconds::from_millis(10.0)));
            }
            machine.true_energy()
        })
    });
    group.finish();
}

fn bench_multi_phase(c: &mut Criterion) {
    use aapm_platform::config::MachineConfig;
    use aapm_platform::machine::Machine;
    use aapm_workloads::spec;

    let galgel = spec::by_name("galgel").expect("galgel exists");
    c.bench_function("galgel_full_run", |b| {
        b.iter(|| {
            let mut machine =
                Machine::new(MachineConfig::pentium_m_755(1), galgel.program().clone());
            machine.run_to_completion().expect("galgel makes forward progress")
        })
    });
}

criterion_group!(benches, bench_ticks, bench_multi_phase);
criterion_main!(benches);
