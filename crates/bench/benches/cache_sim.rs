//! Cache-hierarchy simulation throughput — the characterization substrate's
//! cost (accesses per second through L1 → L2 → DRAM).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use aapm_platform::cache::{Cache, CacheGeometry};
use aapm_platform::hierarchy::{MemoryHierarchy, PrefetchConfig};

const STREAM_LEN: usize = 64 * 1024;

fn sequential_stream() -> Vec<u64> {
    (0..STREAM_LEN as u64).map(|i| i * 64).collect()
}

fn scattered_stream() -> Vec<u64> {
    let mut addr: u64 = 0;
    (0..STREAM_LEN)
        .map(|_| {
            addr = (addr + 7_368_787) % (64 << 20);
            addr
        })
        .collect()
}

fn bench_single_cache(c: &mut Criterion) {
    let stream = sequential_stream();
    let mut group = c.benchmark_group("l1_cache");
    group.throughput(Throughput::Elements(STREAM_LEN as u64));
    group.bench_function("sequential_accesses", |b| {
        let mut cache = Cache::new(CacheGeometry::pentium_m_l1d()).unwrap();
        b.iter(|| {
            for &addr in &stream {
                black_box(cache.access(addr));
            }
        })
    });
    group.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy");
    group.throughput(Throughput::Elements(STREAM_LEN as u64));
    for (name, stream) in
        [("sequential", sequential_stream()), ("scattered", scattered_stream())]
    {
        group.bench_function(format!("{name}_with_prefetcher"), |b| {
            let mut mem = MemoryHierarchy::pentium_m_755()
                .unwrap()
                .with_prefetcher(PrefetchConfig::pentium_m());
            b.iter(|| {
                for &addr in &stream {
                    black_box(mem.access(addr));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_cache, bench_hierarchy);
criterion_main!(benches);
