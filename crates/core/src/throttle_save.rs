//! ThrottleSave: PowerSave's objective actuated by clock modulation only.
//!
//! The companion report to the paper (IBM RC24007) models clock throttling
//! alongside DVFS. This governor holds the top p-state and picks the lowest
//! duty cycle whose predicted performance stays above the floor —
//! performance scales (conservatively) linearly with duty. Comparing it
//! against [`crate::ps::PowerSave`] (the `ablation-throttle` experiment)
//! demonstrates *why* the paper builds on DVFS: without voltage scaling,
//! gating the clock cuts average power but saves essentially no energy —
//! the same active cycles are spent at the same V²f, plus extra leakage
//! over the stretched run time.

use aapm_platform::events::HardwareEvent;
use aapm_platform::pstate::PStateId;
use aapm_platform::throttle::ThrottleLevel;

use crate::governor::{Governor, GovernorCommand, SampleContext};
use crate::limits::PerformanceFloor;

/// The throttling-only energy-saving governor.
///
/// # Examples
///
/// ```
/// use aapm::limits::PerformanceFloor;
/// use aapm::throttle_save::ThrottleSave;
///
/// let governor = ThrottleSave::new(PerformanceFloor::new(0.75)?);
/// // 6/8 duty = 0.75: exactly meets the floor.
/// assert_eq!(governor.chosen_level().steps(), 6);
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ThrottleSave {
    floor: PerformanceFloor,
}

impl ThrottleSave {
    /// Creates the governor with a performance floor.
    pub fn new(floor: PerformanceFloor) -> Self {
        ThrottleSave { floor }
    }

    /// The active floor.
    pub fn floor(&self) -> PerformanceFloor {
        self.floor
    }

    /// The lowest duty level whose linear performance prediction meets the
    /// floor.
    pub fn chosen_level(&self) -> ThrottleLevel {
        for level in ThrottleLevel::all() {
            if level.duty() + 1e-12 >= self.floor.fraction() {
                return level;
            }
        }
        ThrottleLevel::FULL
    }
}

impl Governor for ThrottleSave {
    fn name(&self) -> &str {
        "throttle-save"
    }

    fn events(&self) -> Vec<HardwareEvent> {
        vec![HardwareEvent::InstructionsRetired]
    }

    fn decide(&mut self, ctx: &SampleContext<'_>) -> PStateId {
        // DVFS is left alone at the top state.
        ctx.table.highest()
    }

    fn throttle_decision(&mut self, _ctx: &SampleContext<'_>) -> ThrottleLevel {
        self.chosen_level()
    }

    fn command(&mut self, command: GovernorCommand) {
        if let GovernorCommand::SetPerformanceFloor(floor) = command {
            self.floor = floor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn governor(floor: f64) -> ThrottleSave {
        ThrottleSave::new(PerformanceFloor::new(floor).unwrap())
    }

    #[test]
    fn duty_quantizes_up_to_meet_the_floor() {
        assert_eq!(governor(1.0).chosen_level().steps(), 8);
        assert_eq!(governor(0.75).chosen_level().steps(), 6);
        assert_eq!(governor(0.70).chosen_level().steps(), 6, "5/8 = 0.625 < 0.70");
        assert_eq!(governor(0.5).chosen_level().steps(), 4);
        assert_eq!(governor(0.1).chosen_level().steps(), 1);
    }

    #[test]
    fn floor_command_reconfigures() {
        let mut g = governor(0.9);
        assert_eq!(g.chosen_level().steps(), 8);
        g.command(GovernorCommand::SetPerformanceFloor(PerformanceFloor::new(0.5).unwrap()));
        assert_eq!(g.chosen_level().steps(), 4);
    }
}
