//! Hierarchical power budgets: datacenter → rack → node.
//!
//! The paper's Monitor→Estimate→Control loop manages one machine against
//! one power limit. This module lifts it to fleet scale: a [`BudgetTree`]
//! holds a datacenter budget split across racks and racks split across
//! nodes, and a [`ClusterGovernor`] periodically *reallocates* those
//! splits from the per-node guardband-headroom signal the PM governor
//! already measures ([`PerformanceMaximizer::last_headroom`]).
//!
//! Reallocation runs in two sweeps:
//!
//! 1. **Bottom-up reclaim** — each node's demand (its current cap minus
//!    observed headroom, plus a configurable reserve) is clamped to its
//!    `[floor, ceiling]` band; rack demand is the sum of its nodes capped
//!    at the rack ceiling. Headroom is slack, so an over-provisioned node
//!    *asks for less* and the difference flows up the tree.
//! 2. **Top-down distribute** — each parent hands its budget to its
//!    children in three passes with a running remainder: floors first,
//!    then proportional-to-demand, then leftover slack water-filled
//!    toward ceilings (letting under-demand nodes burst). Every grant is
//!    `min(share, remaining)` and a final rounding backstop shaves any
//!    ULP overshoot, so the invariant *children's grants never sum above
//!    the parent's budget* holds under exact float comparison — the
//!    property tests in this module pin it under adversarial demands
//!    (NaN, ±∞, negatives).
//!
//! [`FleetPmController`] is the glue to the discrete-event fleet
//! simulator ([`aapm_platform::fleet`]): it runs a real
//! [`PerformanceMaximizer`] per node off hand-built counter samples from
//! the batch SoA state, folds each window's minimum headroom per node,
//! and at the cluster cadence feeds those into the tree and pushes the
//! resulting caps back down as [`GovernorCommand::SetPowerLimit`]
//! commands. [`ClusterSpec`] is the serializable description (spec kind
//! `"cluster"`), following the hand-rolled JSON conventions of
//! [`crate::spec`].

use aapm_models::power_model::PowerModel;
use aapm_platform::counters::CounterSnapshot;
use aapm_platform::error::{PlatformError, Result};
use aapm_platform::events::HardwareEvent;
use aapm_platform::fleet::{CohortId, Fleet, FleetController};
use aapm_platform::pstate::PStateTable;
use aapm_platform::units::Seconds;
use aapm_telemetry::pmc::CounterSample;

use crate::governor::{Governor, GovernorCommand, SampleContext};
use crate::json::Json;
use crate::limits::PowerLimit;
use crate::pm::PerformanceMaximizer;

/// Caps pushed to node PMs never fall below this, so
/// [`PowerLimit::new`] always accepts them even if a degenerate tree
/// starves a node.
const MIN_NODE_CAP_W: f64 = 0.1;

fn invalid(reason: impl Into<String>) -> PlatformError {
    PlatformError::InvalidConfig { parameter: "cluster", reason: reason.into() }
}

/// One node's configured band in the tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// Minimum cap this node is always granted (watts, positive).
    pub floor_w: f64,
    /// Seed ceiling: the node's cap never exceeds this (watts).
    pub ceiling_w: f64,
}

/// One rack's configuration: a ceiling and its nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct RackSpec {
    /// The rack's budget never exceeds this (watts).
    pub ceiling_w: f64,
    /// The nodes housed in this rack.
    pub nodes: Vec<NodeSpec>,
}

/// A node's live budget state.
#[derive(Debug, Clone, Copy)]
struct NodeBudget {
    floor_w: f64,
    ceiling_w: f64,
    cap_w: f64,
}

/// A rack's live budget state.
#[derive(Debug, Clone)]
struct Rack {
    ceiling_w: f64,
    budget_w: f64,
    nodes: Vec<NodeBudget>,
}

/// A child's claim during one distribution pass.
struct Claim {
    floor: f64,
    desired: f64,
    ceiling: f64,
}

/// Hands `budget` to children in three running-remainder passes: floors,
/// proportional-to-demand, then slack water-filled toward ceilings. Every
/// grant is capped at the remaining budget, and a final backstop shaves
/// float-rounding overshoot, so the returned grants sum to at most
/// `budget` under exact comparison and never exceed their ceilings.
fn distribute(budget: f64, claims: &[Claim]) -> Vec<f64> {
    let mut grants = vec![0.0; claims.len()];
    let mut remaining = budget.max(0.0);
    for (grant, claim) in grants.iter_mut().zip(claims) {
        let give = claim.floor.max(0.0).min(remaining);
        *grant = give;
        remaining = (remaining - give).max(0.0);
    }
    let want_total: f64 = grants.iter().zip(claims).map(|(g, c)| (c.desired - g).max(0.0)).sum();
    if remaining > 0.0 && want_total > 0.0 {
        let scale = (remaining / want_total).min(1.0);
        for (grant, claim) in grants.iter_mut().zip(claims) {
            let give = ((claim.desired - *grant).max(0.0) * scale).min(remaining);
            *grant += give;
            remaining = (remaining - give).max(0.0);
        }
    }
    let room_total: f64 = grants.iter().zip(claims).map(|(g, c)| (c.ceiling - g).max(0.0)).sum();
    if remaining > 0.0 && room_total > 0.0 {
        let scale = (remaining / room_total).min(1.0);
        for (grant, claim) in grants.iter_mut().zip(claims) {
            let give = ((claim.ceiling - *grant).max(0.0) * scale).min(remaining);
            *grant += give;
            remaining = (remaining - give).max(0.0);
        }
    }
    // Rounding backstop: running subtraction keeps `remaining` ≥ 0 but a
    // sum of grants can still overshoot the budget by an ULP; shave the
    // largest grant until the invariant holds exactly. Shaving only ever
    // lowers a grant, so ceilings stay respected.
    loop {
        let total: f64 = grants.iter().sum();
        if total <= budget || grants.iter().all(|g| *g <= 0.0) {
            return grants;
        }
        let (i, &largest) =
            grants.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).expect("non-empty");
        let reduced = (largest - (total - budget)).max(0.0);
        // Guarantee strict progress even when the excess rounds away.
        grants[i] = if reduced < largest { reduced } else { largest * (1.0 - f64::EPSILON) };
    }
}

/// The datacenter → rack → node budget hierarchy.
///
/// Node indices are **rack-major**: rack 0's nodes first, in order, then
/// rack 1's, matching [`Fleet`](aapm_platform::fleet::Fleet) node ids
/// when cohorts are added rack by rack.
#[derive(Debug, Clone)]
pub struct BudgetTree {
    datacenter_w: f64,
    racks: Vec<Rack>,
}

impl BudgetTree {
    /// Builds a tree and performs the initial allocation (full-demand
    /// water-fill, so every node starts at its fair share of the budget).
    ///
    /// # Errors
    ///
    /// Rejects empty racks, non-positive or non-finite parameters,
    /// floors above ceilings, and budgets too small to cover the floors
    /// beneath them.
    pub fn new(datacenter_w: f64, racks: &[RackSpec]) -> Result<Self> {
        if !datacenter_w.is_finite() || datacenter_w <= 0.0 {
            return Err(invalid(format!("datacenter budget must be positive, got {datacenter_w}")));
        }
        if racks.is_empty() {
            return Err(invalid("a budget tree needs at least one rack".to_owned()));
        }
        let mut floor_total = 0.0;
        let mut built = Vec::with_capacity(racks.len());
        for (r, rack) in racks.iter().enumerate() {
            if !rack.ceiling_w.is_finite() || rack.ceiling_w <= 0.0 {
                return Err(invalid(format!("rack {r} ceiling must be positive")));
            }
            if rack.nodes.is_empty() {
                return Err(invalid(format!("rack {r} has no nodes")));
            }
            let mut rack_floor = 0.0;
            let mut nodes = Vec::with_capacity(rack.nodes.len());
            for (n, node) in rack.nodes.iter().enumerate() {
                if !node.floor_w.is_finite() || node.floor_w <= 0.0 {
                    return Err(invalid(format!("rack {r} node {n} floor must be positive")));
                }
                if !node.ceiling_w.is_finite() || node.ceiling_w < node.floor_w {
                    return Err(invalid(format!(
                        "rack {r} node {n} ceiling must be finite and at least the floor"
                    )));
                }
                rack_floor += node.floor_w;
                nodes.push(NodeBudget {
                    floor_w: node.floor_w,
                    ceiling_w: node.ceiling_w,
                    cap_w: node.floor_w,
                });
            }
            if rack.ceiling_w < rack_floor {
                return Err(invalid(format!(
                    "rack {r} ceiling {} cannot cover its node floors ({rack_floor})",
                    rack.ceiling_w
                )));
            }
            floor_total += rack_floor;
            built.push(Rack { ceiling_w: rack.ceiling_w, budget_w: 0.0, nodes });
        }
        if datacenter_w < floor_total {
            return Err(invalid(format!(
                "datacenter budget {datacenter_w} cannot cover the node floors ({floor_total})"
            )));
        }
        let mut tree = BudgetTree { datacenter_w, racks: built };
        let full_demand = vec![f64::INFINITY; tree.node_count()];
        tree.reallocate(&full_demand);
        Ok(tree)
    }

    /// Total nodes across all racks.
    pub fn node_count(&self) -> usize {
        self.racks.iter().map(|r| r.nodes.len()).sum()
    }

    /// Number of racks.
    pub fn rack_count(&self) -> usize {
        self.racks.len()
    }

    /// The datacenter-level budget.
    pub fn datacenter_w(&self) -> f64 {
        self.datacenter_w
    }

    /// A rack's currently granted budget.
    pub fn rack_budget_w(&self, rack: usize) -> f64 {
        self.racks[rack].budget_w
    }

    /// Current node caps in rack-major order.
    pub fn caps(&self) -> Vec<f64> {
        self.racks.iter().flat_map(|r| r.nodes.iter().map(|n| n.cap_w)).collect()
    }

    /// Node ceilings in rack-major order.
    pub fn ceilings(&self) -> Vec<f64> {
        self.racks.iter().flat_map(|r| r.nodes.iter().map(|n| n.ceiling_w)).collect()
    }

    /// Reallocates the whole tree from per-node demands (watts, rack-major
    /// order). Demands are clamped to each node's `[floor, ceiling]` band;
    /// NaN falls back to the floor. See the module docs for the sweep
    /// structure and invariants.
    ///
    /// # Panics
    ///
    /// Panics if `demands` is not one entry per node.
    pub fn reallocate(&mut self, demands: &[f64]) {
        assert_eq!(demands.len(), self.node_count(), "one demand per node");
        let mut idx = 0;
        let mut rack_claims = Vec::with_capacity(self.racks.len());
        let mut node_desired = Vec::with_capacity(self.racks.len());
        for rack in &self.racks {
            let mut floor_sum = 0.0;
            let mut desired_sum = 0.0;
            let mut desired = Vec::with_capacity(rack.nodes.len());
            for node in &rack.nodes {
                let d = demands[idx];
                idx += 1;
                let d = if d.is_nan() { node.floor_w } else { d.clamp(node.floor_w, node.ceiling_w) };
                floor_sum += node.floor_w;
                desired_sum += d;
                desired.push(d);
            }
            rack_claims.push(Claim {
                floor: floor_sum,
                desired: desired_sum.min(rack.ceiling_w),
                ceiling: rack.ceiling_w,
            });
            node_desired.push(desired);
        }
        let rack_grants = distribute(self.datacenter_w, &rack_claims);
        for ((rack, grant), desired) in self.racks.iter_mut().zip(rack_grants).zip(node_desired) {
            rack.budget_w = grant;
            let claims: Vec<Claim> = rack
                .nodes
                .iter()
                .zip(&desired)
                .map(|(n, &d)| Claim { floor: n.floor_w, desired: d, ceiling: n.ceiling_w })
                .collect();
            let caps = distribute(grant, &claims);
            for (node, cap) in rack.nodes.iter_mut().zip(caps) {
                node.cap_w = cap;
            }
        }
    }

    /// Panics unless every structural invariant holds under exact float
    /// comparison: node caps within `[0, ceiling]`, each rack's caps sum
    /// to at most its budget, rack budgets within their ceilings, and
    /// rack budgets sum to at most the datacenter budget.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        let mut rack_sum = 0.0;
        for (r, rack) in self.racks.iter().enumerate() {
            assert!(
                rack.budget_w >= 0.0 && rack.budget_w <= rack.ceiling_w,
                "rack {r} budget {} outside [0, {}]",
                rack.budget_w,
                rack.ceiling_w
            );
            rack_sum += rack.budget_w;
            let mut cap_sum = 0.0;
            for (n, node) in rack.nodes.iter().enumerate() {
                assert!(
                    node.cap_w >= 0.0 && node.cap_w <= node.ceiling_w,
                    "rack {r} node {n} cap {} outside [0, {}]",
                    node.cap_w,
                    node.ceiling_w
                );
                cap_sum += node.cap_w;
            }
            assert!(
                cap_sum <= rack.budget_w,
                "rack {r} caps sum {cap_sum} above budget {}",
                rack.budget_w
            );
        }
        assert!(
            rack_sum <= self.datacenter_w,
            "rack budgets sum {rack_sum} above datacenter {}",
            self.datacenter_w
        );
    }
}

/// The cluster-level control loop: headroom in, caps out.
#[derive(Debug, Clone)]
pub struct ClusterGovernor {
    tree: BudgetTree,
    reserve_w: f64,
    reallocations: u64,
}

impl ClusterGovernor {
    /// A governor with no reserve margin.
    pub fn new(tree: BudgetTree) -> Self {
        ClusterGovernor { tree, reserve_w: 0.0, reallocations: 0 }
    }

    /// A governor that keeps `reserve_w` watts of each node's demand in
    /// hand above its estimated need (absorbs between-window bursts).
    ///
    /// # Errors
    ///
    /// Rejects a non-finite or negative reserve.
    pub fn with_reserve(tree: BudgetTree, reserve_w: f64) -> Result<Self> {
        if !reserve_w.is_finite() || reserve_w < 0.0 {
            return Err(invalid(format!("reserve must be non-negative, got {reserve_w}")));
        }
        Ok(ClusterGovernor { tree, reserve_w, reallocations: 0 })
    }

    /// The budget tree being governed.
    pub fn tree(&self) -> &BudgetTree {
        &self.tree
    }

    /// How many reallocation sweeps have run.
    pub fn reallocations(&self) -> u64 {
        self.reallocations
    }

    /// One cluster control step: per-node observed headroom (minimum over
    /// the window; `None` = no signal, hold the node's current demand) is
    /// turned into demands — current cap minus headroom plus reserve — and
    /// the tree reallocates. Returns the new caps in rack-major order.
    ///
    /// # Panics
    ///
    /// Panics if `headrooms` is not one entry per node.
    pub fn reallocate(&mut self, headrooms: &[Option<f64>]) -> Vec<f64> {
        assert_eq!(headrooms.len(), self.tree.node_count(), "one headroom per node");
        let caps = self.tree.caps();
        let demands: Vec<f64> = caps
            .iter()
            .zip(headrooms)
            .map(|(&cap, h)| match h {
                Some(h) if h.is_finite() => cap - h + self.reserve_w,
                _ => cap,
            })
            .collect();
        self.tree.reallocate(&demands);
        self.reallocations += 1;
        self.tree.caps()
    }
}

/// Serializable cluster description — spec kind `"cluster"`, following
/// the [`crate::spec`] JSON conventions (fixed key order out, strict
/// recursive-descent parse in, round-trip identity).
///
/// # Examples
///
/// ```
/// use aapm::cluster::{ClusterSpec, NodeSpec, RackSpec};
///
/// let spec = ClusterSpec {
///     datacenter_w: 40.0,
///     reserve_w: 0.5,
///     racks: vec![RackSpec {
///         ceiling_w: 25.0,
///         nodes: vec![NodeSpec { floor_w: 6.0, ceiling_w: 24.5 }],
///     }],
/// };
/// let json = spec.to_json();
/// assert!(json.starts_with("{\"kind\":\"cluster\""));
/// assert_eq!(ClusterSpec::from_json(&json)?, spec);
/// let governor = spec.build()?;
/// assert_eq!(governor.tree().node_count(), 1);
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Datacenter-level budget in watts.
    pub datacenter_w: f64,
    /// Per-node reserve margin in watts.
    pub reserve_w: f64,
    /// Rack configurations.
    pub racks: Vec<RackSpec>,
}

impl ClusterSpec {
    /// The `"kind"` discriminator of the JSON form.
    pub const KIND: &'static str = "cluster";

    /// Builds the live governor this spec describes.
    ///
    /// # Errors
    ///
    /// Propagates [`BudgetTree::new`] and reserve validation.
    pub fn build(&self) -> Result<ClusterGovernor> {
        ClusterGovernor::with_reserve(BudgetTree::new(self.datacenter_w, &self.racks)?, self.reserve_w)
    }

    /// Renders the spec as one line of JSON with a fixed key order.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(64);
        let _ = write!(
            out,
            "{{\"kind\":\"{}\",\"datacenter_w\":{},\"reserve_w\":{},\"racks\":[",
            Self::KIND,
            self.datacenter_w,
            self.reserve_w
        );
        for (r, rack) in self.racks.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"ceiling_w\":{},\"nodes\":[", rack.ceiling_w);
            for (n, node) in rack.nodes.iter().enumerate() {
                if n > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"floor_w\":{},\"ceiling_w\":{}}}",
                    node.floor_w, node.ceiling_w
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Parses a spec from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidConfig`] on malformed JSON, a
    /// wrong `"kind"`, or missing/extra/mistyped keys.
    pub fn from_json(text: &str) -> Result<Self> {
        let value = crate::json::parse(text).map_err(invalid)?;
        ClusterSpec::from_value(&value)
    }

    /// Parses a spec from an already-parsed [`Json`] value.
    ///
    /// # Errors
    ///
    /// As [`ClusterSpec::from_json`].
    pub fn from_value(value: &Json) -> Result<Self> {
        let fields = expect_object(value, "cluster spec")?;
        expect_keys(fields, "cluster spec", &["kind", "datacenter_w", "reserve_w", "racks"])?;
        match find(fields, "kind") {
            Some(Json::String(kind)) if kind == Self::KIND => {}
            Some(Json::String(kind)) => {
                return Err(invalid(format!("expected kind \"cluster\", got \"{kind}\"")));
            }
            _ => return Err(invalid("cluster spec requires a string \"kind\"".to_owned())),
        }
        let datacenter_w = expect_number(fields, "cluster spec", "datacenter_w")?;
        let reserve_w = expect_number(fields, "cluster spec", "reserve_w")?;
        let Some(Json::Array(racks_json)) = find(fields, "racks") else {
            return Err(invalid("cluster spec requires an array \"racks\"".to_owned()));
        };
        let mut racks = Vec::with_capacity(racks_json.len());
        for rack_value in racks_json {
            let rack_fields = expect_object(rack_value, "rack")?;
            expect_keys(rack_fields, "rack", &["ceiling_w", "nodes"])?;
            let ceiling_w = expect_number(rack_fields, "rack", "ceiling_w")?;
            let Some(Json::Array(nodes_json)) = find(rack_fields, "nodes") else {
                return Err(invalid("rack requires an array \"nodes\"".to_owned()));
            };
            let mut nodes = Vec::with_capacity(nodes_json.len());
            for node_value in nodes_json {
                let node_fields = expect_object(node_value, "node")?;
                expect_keys(node_fields, "node", &["floor_w", "ceiling_w"])?;
                nodes.push(NodeSpec {
                    floor_w: expect_number(node_fields, "node", "floor_w")?,
                    ceiling_w: expect_number(node_fields, "node", "ceiling_w")?,
                });
            }
            racks.push(RackSpec { ceiling_w, nodes });
        }
        Ok(ClusterSpec { datacenter_w, reserve_w, racks })
    }
}

fn expect_object<'a>(value: &'a Json, what: &str) -> Result<&'a [(String, Json)]> {
    match value {
        Json::Object(fields) => Ok(fields),
        _ => Err(invalid(format!("{what} must be a JSON object"))),
    }
}

fn find<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn expect_number(fields: &[(String, Json)], what: &str, key: &str) -> Result<f64> {
    match find(fields, key) {
        Some(Json::Number(v)) => Ok(*v),
        Some(_) => Err(invalid(format!("\"{key}\" must be a number in a {what}"))),
        None => Err(invalid(format!("{what} requires \"{key}\""))),
    }
}

fn expect_keys(fields: &[(String, Json)], what: &str, keys: &[&str]) -> Result<()> {
    for (k, _) in fields {
        if !keys.contains(&k.as_str()) {
            return Err(invalid(format!("unexpected key \"{k}\" in a {what}")));
        }
    }
    Ok(())
}

/// Drives a fleet with one [`PerformanceMaximizer`] per node and an
/// optional [`ClusterGovernor`] reallocating caps at the governor cadence
/// (`None` = static caps, the uniform baseline).
///
/// Node indexing must line up: the tree's rack-major node order (or the
/// static caps vector) is the fleet's global node order. Fast-forward
/// cohorts never step, so their nodes simply hold their caps; they are
/// advanced to the governor tick here so metering stays current.
#[derive(Debug)]
pub struct FleetPmController {
    table: PStateTable,
    cluster: Option<ClusterGovernor>,
    caps_w: Vec<f64>,
    pms: Vec<PerformanceMaximizer>,
    prev: Vec<CounterSnapshot>,
    prev_time_s: Vec<f64>,
    prev_energy_j: Vec<f64>,
    /// Per-node minimum guardband headroom observed this cluster window.
    min_headroom_w: Vec<Option<f64>>,
    windows: u64,
    violation_windows: u64,
}

impl FleetPmController {
    /// A controller whose caps are reallocated by `governor`'s budget
    /// tree; the tree must have exactly one node per fleet node.
    ///
    /// # Errors
    ///
    /// Propagates [`PowerLimit::new`] (unreachable for valid trees).
    pub fn hierarchical(
        table: PStateTable,
        model: &PowerModel,
        governor: ClusterGovernor,
    ) -> Result<Self> {
        let caps = governor.tree().caps();
        Self::build(table, model, caps, Some(governor))
    }

    /// A controller with fixed per-node caps (the uniform-static arm).
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite caps.
    pub fn uniform(table: PStateTable, model: &PowerModel, caps_w: Vec<f64>) -> Result<Self> {
        for (i, cap) in caps_w.iter().enumerate() {
            if !cap.is_finite() || *cap <= 0.0 {
                return Err(invalid(format!("node {i} cap must be positive, got {cap}")));
            }
        }
        Self::build(table, model, caps_w, None)
    }

    fn build(
        table: PStateTable,
        model: &PowerModel,
        caps_w: Vec<f64>,
        cluster: Option<ClusterGovernor>,
    ) -> Result<Self> {
        let n = caps_w.len();
        let mut pms = Vec::with_capacity(n);
        for cap in &caps_w {
            pms.push(PerformanceMaximizer::new(
                model.clone(),
                PowerLimit::new(cap.max(MIN_NODE_CAP_W))?,
            ));
        }
        Ok(FleetPmController {
            table,
            cluster,
            caps_w,
            pms,
            prev: vec![CounterSnapshot::zero(); n],
            prev_time_s: vec![0.0; n],
            prev_energy_j: vec![0.0; n],
            min_headroom_w: vec![None; n],
            windows: 0,
            violation_windows: 0,
        })
    }

    /// Current per-node caps in fleet node order.
    pub fn caps_w(&self) -> &[f64] {
        &self.caps_w
    }

    /// The cluster governor, when running hierarchically.
    pub fn cluster(&self) -> Option<&ClusterGovernor> {
        self.cluster.as_ref()
    }

    /// Decision windows metered so far, across all nodes.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Fraction of metered windows whose average node power exceeded the
    /// node's cap at the time.
    pub fn cap_violation_fraction(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.violation_windows as f64 / self.windows as f64
            }
        }
    }

    fn fold_headroom(&mut self, node: usize, headroom_w: f64) {
        let slot = &mut self.min_headroom_w[node];
        *slot = Some(match *slot {
            Some(prev) => prev.min(headroom_w),
            None => headroom_w,
        });
    }
}

impl FleetController for FleetPmController {
    fn cohort_stepped(&mut self, fleet: &mut Fleet, cohort: CohortId, now_ticks: u64) -> Result<()> {
        let offset = fleet.node_offset(cohort);
        let now = fleet.time_at(now_ticks);
        for lane in 0..fleet.lanes(cohort) {
            let node = offset + lane;
            let snapshot = fleet.counter_snapshot(cohort, lane);
            let energy_j = fleet.energy(cohort, lane).joules();
            let machine = fleet.machine(cohort, lane);
            let finished = machine.finished();
            let current = machine.pstate();
            let start_s = self.prev_time_s[node];
            let dt = now.seconds() - start_s;
            if finished {
                // A completed node's whole cap is reclaimable slack.
                self.fold_headroom(node, self.caps_w[node]);
            } else if dt > 0.0 {
                self.windows += 1;
                if (energy_j - self.prev_energy_j[node]) / dt > self.caps_w[node] {
                    self.violation_windows += 1;
                }
                let delta = snapshot - self.prev[node];
                let sample = CounterSample {
                    start: Seconds::new(start_s),
                    end: now,
                    cycles: delta.get(HardwareEvent::Cycles),
                    counts: vec![(
                        HardwareEvent::InstructionsDecoded,
                        delta.get(HardwareEvent::InstructionsDecoded),
                        true,
                    )],
                };
                let ctx = SampleContext {
                    counters: &sample,
                    power: None,
                    temperature: None,
                    current,
                    table: &self.table,
                    queue: None,
                };
                let chosen = self.pms[node].decide(&ctx);
                // A throttled node's deficit is negative headroom: its
                // demand rises above the current cap by exactly what the
                // next p-state up would cost, so slack reclaimed elsewhere
                // flows here.
                if let Some(deficit) = self.pms[node].last_deficit() {
                    self.fold_headroom(node, -deficit.watts());
                } else if let Some(headroom) = self.pms[node].last_headroom() {
                    self.fold_headroom(node, headroom.watts());
                }
                if chosen != current {
                    fleet.set_pstate(cohort, lane, chosen)?;
                }
            }
            self.prev[node] = snapshot;
            self.prev_time_s[node] = now.seconds();
            self.prev_energy_j[node] = energy_j;
        }
        Ok(())
    }

    fn governor_tick(&mut self, fleet: &mut Fleet, now_ticks: u64) -> Result<()> {
        // Keep unobserved (fast-forward) spans advanced to the cluster
        // cadence so their books are current.
        fleet.advance_fastforward_to(now_ticks)?;
        if let Some(cluster) = &mut self.cluster {
            let new_caps = cluster.reallocate(&self.min_headroom_w);
            for (node, cap) in new_caps.into_iter().enumerate() {
                if cap != self.caps_w[node] {
                    self.caps_w[node] = cap;
                    self.pms[node].command(GovernorCommand::SetPowerLimit(PowerLimit::new(
                        cap.max(MIN_NODE_CAP_W),
                    )?));
                }
            }
        }
        // A fresh observation window starts for every node.
        for slot in &mut self.min_headroom_w {
            *slot = None;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn two_rack_spec() -> Vec<RackSpec> {
        vec![
            RackSpec {
                ceiling_w: 40.0,
                nodes: vec![
                    NodeSpec { floor_w: 6.0, ceiling_w: 24.5 },
                    NodeSpec { floor_w: 6.0, ceiling_w: 24.5 },
                ],
            },
            RackSpec {
                ceiling_w: 30.0,
                nodes: vec![
                    NodeSpec { floor_w: 6.0, ceiling_w: 24.5 },
                    NodeSpec { floor_w: 6.0, ceiling_w: 24.5 },
                ],
            },
        ]
    }

    #[test]
    fn initial_allocation_water_fills_and_respects_the_tree() {
        let tree = BudgetTree::new(60.0, &two_rack_spec()).unwrap();
        tree.assert_invariants();
        let caps = tree.caps();
        assert_eq!(caps.len(), 4);
        // 60 W across four full-demand nodes: everyone well above floor.
        for cap in &caps {
            assert!(*cap > 6.0, "initial cap {cap} should exceed the floor");
        }
    }

    #[test]
    fn slack_flows_from_idle_to_hungry_nodes() {
        let tree = BudgetTree::new(60.0, &two_rack_spec()).unwrap();
        let mut governor = ClusterGovernor::new(tree);
        let before = governor.tree().caps();
        // Node 0 has lots of headroom (near-idle); node 1 is over budget
        // (negative headroom = it wanted more than its cap).
        let caps = governor.reallocate(&[Some(10.0), Some(-5.0), Some(0.0), Some(0.0)]);
        governor.tree().assert_invariants();
        assert!(caps[0] < before[0], "idle node surrenders cap");
        assert!(caps[1] > before[1], "hungry node receives cap");
        assert_eq!(governor.reallocations(), 1);
    }

    #[test]
    fn missing_headroom_signal_holds_demand() {
        let tree = BudgetTree::new(60.0, &two_rack_spec()).unwrap();
        let mut governor = ClusterGovernor::new(tree);
        let before = governor.tree().caps();
        let after = governor.reallocate(&[None, None, None, None]);
        governor.tree().assert_invariants();
        // With no signal anywhere, the split stays where it was (up to the
        // water-fill's re-derivation of the same fixpoint).
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-9, "cap moved without a signal: {b} -> {a}");
        }
    }

    #[test]
    fn construction_rejects_bad_trees() {
        assert!(BudgetTree::new(0.0, &two_rack_spec()).is_err());
        assert!(BudgetTree::new(f64::NAN, &two_rack_spec()).is_err());
        assert!(BudgetTree::new(100.0, &[]).is_err());
        assert!(
            BudgetTree::new(100.0, &[RackSpec { ceiling_w: 20.0, nodes: vec![] }]).is_err(),
            "empty rack"
        );
        assert!(
            BudgetTree::new(
                100.0,
                &[RackSpec {
                    ceiling_w: 20.0,
                    nodes: vec![NodeSpec { floor_w: 10.0, ceiling_w: 5.0 }],
                }]
            )
            .is_err(),
            "floor above ceiling"
        );
        assert!(
            BudgetTree::new(
                5.0,
                &[RackSpec {
                    ceiling_w: 20.0,
                    nodes: vec![NodeSpec { floor_w: 10.0, ceiling_w: 15.0 }],
                }]
            )
            .is_err(),
            "datacenter below floors"
        );
        assert!(ClusterGovernor::with_reserve(
            BudgetTree::new(60.0, &two_rack_spec()).unwrap(),
            -1.0
        )
        .is_err());
    }

    #[test]
    fn cluster_spec_round_trips_and_rejects_junk() {
        let spec = ClusterSpec { datacenter_w: 60.0, reserve_w: 0.5, racks: two_rack_spec() };
        let json = spec.to_json();
        let parsed = ClusterSpec::from_json(&json).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.to_json(), json, "round trip is an identity");
        parsed.build().unwrap().tree().assert_invariants();

        assert!(ClusterSpec::from_json("[]").is_err(), "not an object");
        assert!(ClusterSpec::from_json("{\"kind\":\"pm\",\"datacenter_w\":1,\"reserve_w\":0,\"racks\":[]}").is_err(), "wrong kind");
        assert!(ClusterSpec::from_json("{\"kind\":\"cluster\",\"reserve_w\":0,\"racks\":[]}").is_err(), "missing budget");
        assert!(
            ClusterSpec::from_json(
                "{\"kind\":\"cluster\",\"datacenter_w\":1,\"reserve_w\":0,\"racks\":[],\"x\":1}"
            )
            .is_err(),
            "extra key"
        );
        assert!(
            ClusterSpec::from_json(
                "{\"kind\":\"cluster\",\"datacenter_w\":1,\"reserve_w\":0,\"racks\":[{\"ceiling_w\":1,\"nodes\":[{\"floor_w\":true,\"ceiling_w\":2}]}]}"
            )
            .is_err(),
            "mistyped number"
        );
    }

    /// Strategy: a valid tree (floors fit under every budget) plus a
    /// sequence of adversarial demand vectors.
    fn tree_strategy() -> impl Strategy<Value = (f64, Vec<RackSpec>)> {
        let node = (0.5f64..8.0, 0.0f64..30.0)
            .prop_map(|(floor, extra)| NodeSpec { floor_w: floor, ceiling_w: floor + extra });
        let rack = (proptest::collection::vec(node, 1..5), 0.0f64..40.0).prop_map(
            |(nodes, slack)| {
                let floors: f64 = nodes.iter().map(|n| n.floor_w).sum();
                RackSpec { ceiling_w: floors + slack, nodes }
            },
        );
        (proptest::collection::vec(rack, 1..4), 0.0f64..100.0).prop_map(|(racks, slack)| {
            let floors: f64 =
                racks.iter().flat_map(|r| r.nodes.iter().map(|n| n.floor_w)).sum();
            (floors + slack, racks)
        })
    }

    fn demand_strategy(nodes: usize, rounds: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
        let demand = prop_oneof![
            5 => -10.0f64..120.0,
            1 => Just(f64::NAN),
            1 => Just(f64::INFINITY),
            1 => Just(f64::NEG_INFINITY),
        ];
        proptest::collection::vec(proptest::collection::vec(demand, nodes..nodes + 1), 1..rounds + 1)
    }

    proptest! {
        /// After any reallocation sequence — including NaN/±∞/negative
        /// demands — every node cap stays within its seed ceiling and
        /// every parent's children sum at most to its budget, under exact
        /// float comparison.
        #[test]
        fn budget_invariants_survive_any_demand_sequence(
            config in tree_strategy(),
            seed_demands in proptest::collection::vec(-10.0f64..120.0, 24..25),
        ) {
            let (datacenter, racks) = config;
            let mut tree = BudgetTree::new(datacenter, &racks).unwrap();
            tree.assert_invariants();
            let n = tree.node_count();
            // Reuse the flat pool as several demand rounds of width n.
            for round in seed_demands.chunks(n.max(1)) {
                let mut demands: Vec<f64> = round.to_vec();
                demands.resize(n, f64::INFINITY);
                tree.reallocate(&demands);
                tree.assert_invariants();
            }
        }
    }

    proptest! {
        /// The same invariants hold when demands come through the
        /// cluster governor's headroom path.
        #[test]
        fn governor_reallocation_preserves_invariants(
            config in tree_strategy(),
            reserve in 0.0f64..2.0,
        ) {
            let (datacenter, racks) = config;
            let tree = BudgetTree::new(datacenter, &racks).unwrap();
            let n = tree.node_count();
            let mut governor = ClusterGovernor::with_reserve(tree, reserve).unwrap();
            let patterns: Vec<Vec<Option<f64>>> = vec![
                vec![Some(4.0); n],
                vec![None; n],
                (0..n).map(|i| if i % 2 == 0 { Some(-3.0) } else { Some(f64::INFINITY) }).collect(),
                (0..n).map(|i| if i % 3 == 0 { None } else { Some(0.5) }).collect(),
            ];
            for headrooms in &patterns {
                let caps = governor.reallocate(headrooms);
                governor.tree().assert_invariants();
                let ceilings = governor.tree().ceilings();
                for (cap, ceiling) in caps.iter().zip(&ceilings) {
                    prop_assert!(cap <= ceiling, "cap {cap} above seed ceiling {ceiling}");
                }
            }
        }
    }

    proptest! {
        /// Dedicated NaN/±∞ coverage: adversarial demand vectors drawn
        /// per round against a matching tree.
        #[test]
        fn adversarial_demands_never_break_the_tree(
            case in tree_strategy().prop_flat_map(|(d, r)| {
                let n: usize = r.iter().map(|rack| rack.nodes.len()).sum();
                (Just((d, r)), demand_strategy(n, 4))
            }),
        ) {
            let ((datacenter, racks), rounds) = case;
            let mut tree = BudgetTree::new(datacenter, &racks).unwrap();
            for demands in &rounds {
                tree.reallocate(demands);
                tree.assert_invariants();
            }
        }
    }
}
