//! PhasePm: PM with phase-aware raise decisions.
//!
//! Plain PM waits ten agreeing samples before raising frequency, which
//! protects against noise but costs 100 ms of performance after every
//! genuine drop in activity (e.g. each time `ammp` enters a memory-bound
//! region under a tight limit). `PhasePm` feeds the DPC stream through a
//! [`PhaseDetector`]: when a *phase change* is detected — a sustained-level
//! shift, not a noisy sample — the raise window is bypassed and the new
//! best p-state is taken immediately. Lowering stays immediate, as in PM.
//!
//! The `ablation-phase` experiment quantifies the trade: faster recovery on
//! phase transitions against the extra violations eager raising risks on
//! deceptive workloads like `galgel`.

use aapm_platform::events::HardwareEvent;
use aapm_platform::pstate::PStateId;
use aapm_models::phase_detect::PhaseDetector;
use aapm_models::power_model::PowerModel;

use crate::governor::{Governor, GovernorCommand, SampleContext};
use crate::layer::GovernorLayer;
use crate::limits::PowerLimit;
use crate::pm::{PerformanceMaximizer, PmConfig};

/// PM with phase-change-triggered immediate raises.
#[derive(Debug, Clone)]
pub struct PhasePm {
    inner: PerformanceMaximizer,
    detector: PhaseDetector,
    raise_streak: usize,
    raise_samples: usize,
}

impl PhasePm {
    /// Creates phase-aware PM with the default detector and PM tunables.
    pub fn new(model: PowerModel, limit: PowerLimit) -> Self {
        PhasePm::with_detector(model, limit, PhaseDetector::for_dpc())
    }

    /// Creates phase-aware PM with an explicit detector.
    pub fn with_detector(model: PowerModel, limit: PowerLimit, detector: PhaseDetector) -> Self {
        let config = PmConfig::default();
        let raise_samples = config.raise_samples;
        PhasePm {
            inner: PerformanceMaximizer::with_config(model, limit, config),
            detector,
            raise_streak: 0,
            raise_samples,
        }
    }

    /// The active power limit.
    pub fn limit(&self) -> PowerLimit {
        self.inner.limit()
    }

    /// Highest p-state whose guarded estimate fits under the limit.
    fn candidate(&self, ctx: &SampleContext<'_>, dpc: f64) -> PStateId {
        for (id, _) in ctx.table.iter_descending() {
            if let Some(estimate) = self.inner.estimate_at(ctx, dpc, id) {
                if estimate <= self.limit().watts() {
                    return id;
                }
            }
        }
        ctx.table.lowest()
    }
}

impl GovernorLayer for PhasePm {
    fn layer_name(&self) -> &str {
        "pm-phase"
    }

    fn inner_governor(&self) -> &dyn Governor {
        &self.inner
    }

    fn inner_governor_mut(&mut self) -> &mut dyn Governor {
        &mut self.inner
    }

    fn layer_events(&self) -> Vec<HardwareEvent> {
        vec![HardwareEvent::InstructionsDecoded]
    }

    fn layer_decide(&mut self, ctx: &SampleContext<'_>) -> PStateId {
        let dpc = ctx.counters.dpc().unwrap_or(0.0);
        let phase_changed = self.detector.observe(dpc);
        let candidate = self.candidate(ctx, dpc);
        if candidate < ctx.current {
            self.raise_streak = 0;
            candidate
        } else if candidate > ctx.current {
            if phase_changed {
                // A confirmed level shift: re-evaluate without the window.
                self.raise_streak = 0;
                return candidate;
            }
            self.raise_streak += 1;
            if self.raise_streak >= self.raise_samples {
                self.raise_streak = 0;
                candidate
            } else {
                ctx.current
            }
        } else {
            self.raise_streak = 0;
            ctx.current
        }
    }

    fn layer_command(&mut self, command: GovernorCommand) {
        self.inner.command(command);
        self.detector.reset();
        self.raise_streak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapm_platform::pstate::PStateTable;
    use aapm_platform::units::Seconds;
    use aapm_telemetry::pmc::CounterSample;

    fn sample(dpc: f64) -> CounterSample {
        let cycles = 20e6;
        CounterSample {
            start: Seconds::ZERO,
            end: Seconds::from_millis(10.0),
            cycles,
            counts: vec![(HardwareEvent::InstructionsDecoded, dpc * cycles, true)],
        }
    }

    fn decide(g: &mut PhasePm, table: &PStateTable, current: usize, dpc: f64) -> PStateId {
        let s = sample(dpc);
        let ctx = SampleContext {
            counters: &s,
            power: None,
            temperature: None,
            current: PStateId::new(current),
            table,
            queue: None,
        };
        g.decide(&ctx)
    }

    fn governor(limit: f64) -> PhasePm {
        PhasePm::new(PowerModel::paper_table_ii(), PowerLimit::new(limit).unwrap())
    }

    #[test]
    fn steady_stream_still_waits_the_full_window() {
        let table = PStateTable::pentium_m_755();
        let mut g = governor(30.0);
        // Establish a steady baseline at the same DPC the raises will see:
        // no phase change fires, so the 10-sample window applies.
        decide(&mut g, &table, 2, 0.5);
        for i in 0..8 {
            assert_eq!(decide(&mut g, &table, 2, 0.5), PStateId::new(2), "sample {i}");
        }
        assert!(decide(&mut g, &table, 2, 0.5) > PStateId::new(2), "10th sample raises");
    }

    #[test]
    fn phase_change_raises_immediately() {
        let table = PStateTable::pentium_m_755();
        let mut g = governor(30.0);
        // Steady hot-ish phase at DPC 3.2 keeps a low state.
        for _ in 0..5 {
            decide(&mut g, &table, 2, 3.2);
        }
        // The workload drops to a cool phase: one sample suffices.
        let chosen = decide(&mut g, &table, 2, 0.4);
        assert!(chosen > PStateId::new(2), "phase change bypasses the window, got {chosen}");
    }

    #[test]
    fn lowering_remains_immediate() {
        let table = PStateTable::pentium_m_755();
        let mut g = governor(14.0);
        for _ in 0..3 {
            decide(&mut g, &table, 7, 0.3);
        }
        let chosen = decide(&mut g, &table, 7, 3.0);
        assert!(chosen < PStateId::new(7));
    }

    #[test]
    fn limit_change_resets_detector_and_streak() {
        let table = PStateTable::pentium_m_755();
        let mut g = governor(30.0);
        for _ in 0..5 {
            decide(&mut g, &table, 2, 0.5);
        }
        g.command(GovernorCommand::SetPowerLimit(PowerLimit::new(20.0).unwrap()));
        // After the reset the next sample re-baselines: no phase-change
        // bypass, and the streak starts over.
        for i in 0..9 {
            assert_eq!(decide(&mut g, &table, 2, 0.5), PStateId::new(2), "sample {i}");
        }
        assert!(decide(&mut g, &table, 2, 0.5) > PStateId::new(2));
    }
}
