//! SloSave: energy savings under a tail-latency SLO (the serve-traffic
//! analogue of [`PowerSave`](crate::ps::PowerSave)).
//!
//! PS's floor is a fraction of peak *throughput* — the right contract for
//! batch work, where finishing later is the only cost of running slower.
//! An open-loop server has a different contract: requests keep arriving
//! whether or not the machine keeps up, and what the operator bounds is
//! the *tail* of the sojourn time (queueing + service). SloSave's floor is
//! therefore a p99 sojourn-time SLO over a moving window of completed
//! requests:
//!
//! 1. **monitors** the per-interval [`QueueSample`] the runtime drains from
//!    the serve queue (no PMC events at all — the queue *is* the
//!    application-level telemetry, one layer above the paper's counters);
//! 2. **estimates** the current tail as the windowed p99 of completed
//!    sojourns ([`MovingWindow::percentile`]);
//! 3. **controls** with hysteresis: a violated SLO steps one p-state
//!    toward the peak immediately; stepping *down* requires a settle
//!    window of consecutive intervals comfortably inside the SLO
//!    (p99 ≤ `step_down_margin` × SLO), so the governor probes lower
//!    frequencies slowly and retreats fast — the asymmetry every
//!    latency-SLO controller needs, because a violation is observed only
//!    after users already waited.
//!
//! Degradation is fail-safe in the same direction as PS: missing queue
//! telemetry (a batch run, or a faulted sample path) holds the current
//! state for a bounded window and then steps toward the peak, and a
//! NaN-poisoned p99 takes the violating branch. Running too fast never
//! breaches the latency contract; running too slow does.
//!
//! [`QueueSample`]: aapm_platform::requests::QueueSample
//! [`MovingWindow::percentile`]: aapm_telemetry::window::MovingWindow::percentile

use aapm_platform::events::HardwareEvent;
use aapm_platform::pstate::PStateId;
use aapm_platform::units::Seconds;
use aapm_telemetry::metrics::{EventKind, Metrics};
use aapm_telemetry::window::MovingWindow;

use crate::governor::{Governor, SampleContext};

/// Tunables of the SloSave control loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSaveConfig {
    /// Completed sojourns the p99 is computed over. Small windows react
    /// fast but a single slow request dominates the estimated tail; the
    /// default (256) spans a few hundred ms of completions at typical
    /// service rates.
    pub window_sojourns: usize,
    /// Consecutive comfortable intervals (p99 ≤ `step_down_margin` × SLO)
    /// required before one step down. At the 10 ms control cadence the
    /// default (25) probes lower frequencies at most every 250 ms.
    pub settle_intervals: usize,
    /// How far inside the SLO the tail must sit before SloSave considers
    /// stepping down, as a fraction of the SLO in (0, 1].
    pub step_down_margin: f64,
    /// Consecutive intervals without queue telemetry absorbed by holding
    /// the current state before failing toward the peak (same contract as
    /// [`PowerSave::STALE_HOLD_SAMPLES`](crate::ps::PowerSave)).
    pub hold_samples: usize,
}

impl Default for SloSaveConfig {
    fn default() -> Self {
        SloSaveConfig {
            window_sojourns: 256,
            settle_intervals: 25,
            step_down_margin: 0.6,
            hold_samples: 50,
        }
    }
}

/// The SloSave governor.
///
/// # Examples
///
/// ```
/// use aapm::slo_save::SloSave;
/// use aapm_platform::units::Seconds;
///
/// let slo = SloSave::new(Seconds::from_millis(50.0))?;
/// assert_eq!(aapm::governor::Governor::name(&slo), "slo-save");
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SloSave {
    slo: Seconds,
    config: SloSaveConfig,
    /// Moving window of completed-request sojourn times (seconds).
    sojourns: MovingWindow,
    /// Consecutive comfortable intervals toward the settle threshold.
    good_streak: usize,
    /// Consecutive intervals without queue telemetry.
    stale_streak: usize,
    /// Total simulated time spent with the windowed p99 over the SLO.
    violation_seconds: f64,
    /// Observability handle (disabled unless the runtime installs one).
    metrics: Metrics,
}

impl SloSave {
    /// Creates SloSave with the default control-loop tunables.
    ///
    /// # Errors
    ///
    /// Returns [`aapm_platform::error::PlatformError::InvalidConfig`] for a
    /// non-positive or non-finite SLO.
    pub fn new(slo: Seconds) -> aapm_platform::error::Result<Self> {
        SloSave::with_config(slo, SloSaveConfig::default())
    }

    /// Creates SloSave with explicit control-loop tunables.
    ///
    /// # Errors
    ///
    /// Returns [`aapm_platform::error::PlatformError::InvalidConfig`] for a
    /// non-positive or non-finite SLO, a `step_down_margin` outside (0, 1],
    /// or a zero window/settle length.
    pub fn with_config(slo: Seconds, config: SloSaveConfig) -> aapm_platform::error::Result<Self> {
        let invalid = |parameter: &'static str, reason: String| {
            aapm_platform::error::PlatformError::InvalidConfig { parameter, reason }
        };
        if !(slo.seconds().is_finite() && slo.seconds() > 0.0) {
            return Err(invalid(
                "slo",
                format!("sojourn-time SLO must be positive and finite, got {}", slo.seconds()),
            ));
        }
        if !(config.step_down_margin > 0.0 && config.step_down_margin <= 1.0) {
            return Err(invalid(
                "step_down_margin",
                format!("must lie in (0, 1], got {}", config.step_down_margin),
            ));
        }
        if config.window_sojourns == 0 || config.settle_intervals == 0 {
            return Err(invalid(
                "window_sojourns",
                "window_sojourns and settle_intervals must be positive".to_owned(),
            ));
        }
        Ok(SloSave {
            slo,
            sojourns: MovingWindow::new(config.window_sojourns),
            config,
            good_streak: 0,
            stale_streak: 0,
            violation_seconds: 0.0,
            metrics: Metrics::disabled(),
        })
    }

    /// The active sojourn-time SLO.
    pub fn slo(&self) -> Seconds {
        self.slo
    }

    /// The control-loop tunables in use.
    pub fn config(&self) -> &SloSaveConfig {
        &self.config
    }

    /// Total simulated minutes spent with the windowed p99 over the SLO —
    /// the serve experiment's equal-violation comparison axis. Mirrored as
    /// the `slo.violation_minutes` gauge when metrics are installed.
    pub fn violation_minutes(&self) -> f64 {
        self.violation_seconds / 60.0
    }

    /// The current windowed p99 sojourn estimate, `None` before any
    /// completion has been observed.
    pub fn p99(&self) -> Option<f64> {
        self.sojourns.percentile(99.0)
    }

    fn step_up(&self, ctx: &SampleContext<'_>) -> PStateId {
        ctx.table.next_higher(ctx.current).unwrap_or_else(|| ctx.table.highest())
    }
}

impl Governor for SloSave {
    fn name(&self) -> &str {
        "slo-save"
    }

    fn events(&self) -> Vec<HardwareEvent> {
        // SloSave is driven entirely by queue telemetry: it needs no
        // programmable PMC events, so a PMC outage cannot blind it.
        Vec::new()
    }

    fn decide(&mut self, ctx: &SampleContext<'_>) -> PStateId {
        let now = ctx.counters.end;
        let interval = (ctx.counters.end - ctx.counters.start).seconds().max(0.0);

        // No queue telemetry this interval (batch run, or the sample path
        // faulted): hold a bounded window, then fail toward the peak —
        // running fast cannot breach a latency SLO.
        let Some(sample) = ctx.queue else {
            self.good_streak = 0;
            self.stale_streak += 1;
            self.metrics.inc("slo_save.stale_intervals");
            if self.stale_streak == 1 {
                self.metrics.inc("slo_save.hold_entries");
                self.metrics.event(now, EventKind::HoldEntered { governor: "slo-save" });
            }
            if self.stale_streak <= self.config.hold_samples {
                return ctx.current;
            }
            self.metrics.inc("slo_save.failsafe_steps");
            self.metrics.event(now, EventKind::FailSafeStep { governor: "slo-save" });
            return self.step_up(ctx);
        };
        if self.stale_streak > 0 {
            self.metrics.inc("slo_save.hold_exits");
            self.metrics.event(
                now,
                EventKind::HoldExited {
                    governor: "slo-save",
                    stale_intervals: self.stale_streak as u64,
                },
            );
            self.stale_streak = 0;
        }

        for &sojourn in &sample.sojourns {
            self.sojourns.push(sojourn);
        }
        let Some(p99) = self.sojourns.percentile(99.0) else {
            // No completion observed yet. With work queued, run faster
            // until evidence arrives (a cold start at a low state must not
            // trap itself behind its own backlog); an idle queue can wait.
            return if sample.depth > 0 { self.step_up(ctx) } else { ctx.current };
        };
        self.metrics.observe("slo.p99_s", p99);

        // `!(p99 <= slo)` rather than `p99 > slo`: a NaN-poisoned tail
        // must take the violating branch.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(p99 <= self.slo.seconds()) {
            self.violation_seconds += interval;
            self.metrics.gauge("slo.violation_minutes", self.violation_minutes());
            self.good_streak = 0;
            self.metrics.inc("slo_save.steps_up");
            return self.step_up(ctx);
        }

        // Inside the SLO: probe downward only after a full settle window
        // of comfortable intervals, one state at a time.
        if p99 <= self.config.step_down_margin * self.slo.seconds() {
            self.good_streak += 1;
            if self.good_streak >= self.config.settle_intervals {
                self.good_streak = 0;
                if let Some(lower) = ctx.table.next_lower(ctx.current) {
                    self.metrics.inc("slo_save.steps_down");
                    return lower;
                }
            }
        } else {
            self.good_streak = 0;
        }
        ctx.current
    }

    fn install_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapm_platform::pstate::PStateTable;
    use aapm_platform::requests::QueueSample;
    use aapm_telemetry::pmc::CounterSample;

    fn counters() -> CounterSample {
        CounterSample {
            start: Seconds::ZERO,
            end: Seconds::from_millis(10.0),
            cycles: 20e6,
            counts: Vec::new(),
        }
    }

    fn queue_sample(depth: usize, sojourns: &[f64]) -> QueueSample {
        QueueSample {
            depth,
            arrived: sojourns.len() as u64,
            completed: sojourns.len() as u64,
            sojourns: sojourns.to_vec(),
        }
    }

    fn decide(
        slo: &mut SloSave,
        table: &PStateTable,
        current: PStateId,
        queue: Option<&QueueSample>,
    ) -> PStateId {
        let counters = counters();
        let ctx = SampleContext {
            counters: &counters,
            power: None,
            temperature: None,
            current,
            table,
            queue,
        };
        slo.decide(&ctx)
    }

    fn slo_50ms() -> SloSave {
        // A tiny window and settle so tests converge quickly.
        SloSave::with_config(
            Seconds::from_millis(50.0),
            SloSaveConfig {
                window_sojourns: 8,
                settle_intervals: 3,
                step_down_margin: 0.6,
                hold_samples: 4,
            },
        )
        .unwrap()
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(SloSave::new(Seconds::new(0.0)).is_err());
        assert!(SloSave::new(Seconds::new(-1.0)).is_err());
        // NaN durations cannot even be constructed (Seconds::new asserts),
        // so infinity is the only non-finite value to reject here.
        assert!(SloSave::new(Seconds::new(f64::INFINITY)).is_err());
        let bad_margin =
            SloSaveConfig { step_down_margin: 0.0, ..SloSaveConfig::default() };
        assert!(SloSave::with_config(Seconds::new(0.05), bad_margin).is_err());
        let bad_window = SloSaveConfig { window_sojourns: 0, ..SloSaveConfig::default() };
        assert!(SloSave::with_config(Seconds::new(0.05), bad_window).is_err());
    }

    #[test]
    fn violated_slo_steps_toward_peak_immediately() {
        let table = PStateTable::pentium_m_755();
        let mut slo = slo_50ms();
        let current = PStateId::new(3);
        let sample = queue_sample(5, &[0.2, 0.3]); // way over 50 ms
        let chosen = decide(&mut slo, &table, current, Some(&sample));
        assert_eq!(chosen, table.next_higher(current).unwrap());
        assert!(slo.violation_minutes() > 0.0);
    }

    #[test]
    fn comfortable_tail_steps_down_only_after_settle_window() {
        let table = PStateTable::pentium_m_755();
        let mut slo = slo_50ms();
        let current = table.highest();
        let sample = queue_sample(0, &[0.001, 0.002]); // far inside 50 ms
        // Two comfortable intervals hold; the third (settle_intervals = 3)
        // steps down one state.
        assert_eq!(decide(&mut slo, &table, current, Some(&sample)), current);
        assert_eq!(decide(&mut slo, &table, current, Some(&sample)), current);
        let stepped = decide(&mut slo, &table, current, Some(&sample));
        assert_eq!(stepped, table.next_lower(current).unwrap());
        assert_eq!(slo.violation_minutes(), 0.0);
    }

    #[test]
    fn tail_inside_slo_but_outside_margin_holds() {
        let table = PStateTable::pentium_m_755();
        let mut slo = slo_50ms();
        let current = PStateId::new(4);
        // 40 ms: under the 50 ms SLO but over the 30 ms step-down margin.
        let sample = queue_sample(1, &[0.04]);
        for _ in 0..10 {
            assert_eq!(decide(&mut slo, &table, current, Some(&sample)), current);
        }
        assert_eq!(slo.violation_minutes(), 0.0);
    }

    #[test]
    fn missing_queue_telemetry_holds_then_fails_toward_peak() {
        let table = PStateTable::pentium_m_755();
        let mut slo = slo_50ms();
        let current = PStateId::new(2);
        // hold_samples = 4: four missing intervals hold, the fifth steps up.
        for i in 0..4 {
            assert_eq!(decide(&mut slo, &table, current, None), current, "interval {i}");
        }
        assert_eq!(decide(&mut slo, &table, current, None), table.next_higher(current).unwrap());
        // Telemetry loss never counts as an SLO violation.
        assert_eq!(slo.violation_minutes(), 0.0);
    }

    #[test]
    fn cold_start_with_backlog_steps_up_without_evidence() {
        let table = PStateTable::pentium_m_755();
        let mut slo = slo_50ms();
        let current = table.lowest();
        let backlog = queue_sample(12, &[]); // queued work, no completions yet
        assert_eq!(decide(&mut slo, &table, current, Some(&backlog)), table.next_higher(current).unwrap());
        let idle = queue_sample(0, &[]);
        assert_eq!(decide(&mut slo, &table, current, Some(&idle)), current);
    }

    #[test]
    fn nan_poisoned_tail_takes_the_violating_branch() {
        let table = PStateTable::pentium_m_755();
        let mut slo = slo_50ms();
        let current = PStateId::new(3);
        let sample = queue_sample(1, &[0.001, f64::NAN]);
        // The p99 over a window containing NaN is NaN; the comparison is
        // written so that counts as a violation, not a free pass.
        let chosen = decide(&mut slo, &table, current, Some(&sample));
        assert_eq!(chosen, table.next_higher(current).unwrap());
        assert!(slo.violation_minutes() > 0.0);
    }

    #[test]
    fn at_peak_a_violation_stays_at_peak() {
        let table = PStateTable::pentium_m_755();
        let mut slo = slo_50ms();
        let sample = queue_sample(50, &[0.5]);
        assert_eq!(decide(&mut slo, &table, table.highest(), Some(&sample)), table.highest());
    }

    #[test]
    fn violation_minutes_accumulate_per_violating_interval() {
        let table = PStateTable::pentium_m_755();
        let mut slo = slo_50ms();
        let sample = queue_sample(5, &[0.2]);
        for _ in 0..60 {
            decide(&mut slo, &table, table.highest(), Some(&sample));
        }
        // 60 violating intervals × 10 ms = 0.6 s = 0.01 min.
        assert!((slo.violation_minutes() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn metrics_count_control_actions() {
        let table = PStateTable::pentium_m_755();
        let mut slo = slo_50ms();
        let metrics = Metrics::enabled();
        Governor::install_metrics(&mut slo, metrics.clone());
        let bad = queue_sample(5, &[0.2]);
        decide(&mut slo, &table, PStateId::new(3), Some(&bad));
        // Each good interval completes a full window of fast requests, so
        // the 0.2 s straggler is evicted immediately.
        for _ in 0..3 {
            let good = queue_sample(0, &[0.001; 8]);
            decide(&mut slo, &table, PStateId::new(4), Some(&good));
        }
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.counter("slo_save.steps_up"), 1);
        assert_eq!(snapshot.counter("slo_save.steps_down"), 1);
        assert!(snapshot.histogram("slo.p99_s").is_some());
        assert!(snapshot.gauge("slo.violation_minutes").is_some());
    }
}
