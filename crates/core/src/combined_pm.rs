//! CombinedPm: PM extended with clock modulation for deep power caps.
//!
//! Plain PM bottoms out at the lowest p-state: a limit below P0's power is
//! simply violated. Real parts layer ACPI T-states under the p-states for
//! exactly this case (thermal emergencies, battery-critical operation).
//! `CombinedPm` runs PM's DVFS policy unchanged and, only when even the
//! lowest p-state's estimate exceeds the limit, engages the duty-cycle
//! modulator:
//!
//! ```text
//! est(duty) = duty · est(P0) + (1 − duty) · gated_floor
//! ```
//!
//! choosing the highest duty that fits. The gated floor models the
//! leakage-only draw while the clock is stopped (the governor cannot see
//! the platform's leakage split, so it is a configured estimate, like the
//! guardband).

use aapm_platform::events::HardwareEvent;
use aapm_platform::throttle::ThrottleLevel;
use aapm_platform::units::Watts;
use aapm_models::power_model::PowerModel;

use crate::governor::{Governor, SampleContext};
use crate::layer::GovernorLayer;
use crate::limits::PowerLimit;
use crate::pm::{PerformanceMaximizer, PmConfig};

/// PM with a clock-modulation deep-cap extension.
#[derive(Debug, Clone)]
pub struct CombinedPm {
    inner: PerformanceMaximizer,
    /// Estimated draw while the clock is gated (leakage-only floor).
    gated_floor: Watts,
}

impl CombinedPm {
    /// Creates combined PM with the default 1.5 W gated-floor estimate.
    pub fn new(model: PowerModel, limit: PowerLimit) -> Self {
        CombinedPm::with_gated_floor(model, limit, Watts::new(1.5))
    }

    /// Creates combined PM with an explicit gated-floor estimate.
    pub fn with_gated_floor(model: PowerModel, limit: PowerLimit, gated_floor: Watts) -> Self {
        CombinedPm {
            inner: PerformanceMaximizer::with_config(model, limit, PmConfig::default()),
            gated_floor,
        }
    }

    /// The configured gated-floor estimate.
    pub fn gated_floor(&self) -> Watts {
        self.gated_floor
    }

    /// The active power limit.
    pub fn limit(&self) -> PowerLimit {
        self.inner.limit()
    }

    /// Estimated power at the lowest p-state under `duty` modulation.
    fn gated_estimate(&self, ctx: &SampleContext<'_>, dpc: f64, duty: f64) -> Option<Watts> {
        let p0 = self.inner.estimate_at(ctx, dpc, ctx.table.lowest())?;
        Some(p0 * duty + self.gated_floor * (1.0 - duty))
    }
}

impl GovernorLayer for CombinedPm {
    fn layer_name(&self) -> &str {
        "pm-combined"
    }

    fn inner_governor(&self) -> &dyn Governor {
        &self.inner
    }

    fn inner_governor_mut(&mut self) -> &mut dyn Governor {
        &mut self.inner
    }

    fn layer_events(&self) -> Vec<HardwareEvent> {
        vec![HardwareEvent::InstructionsDecoded]
    }

    fn layer_throttle(&mut self, ctx: &SampleContext<'_>) -> ThrottleLevel {
        let dpc = ctx.counters.dpc().unwrap_or(0.0);
        // DVFS headroom? Leave the clock alone.
        if let Some(p0_estimate) = self.inner.estimate_at(ctx, dpc, ctx.table.lowest()) {
            if p0_estimate <= self.limit().watts() {
                return ThrottleLevel::FULL;
            }
        }
        // Deep cap: the highest duty whose estimate fits; 1/8 if none does.
        let mut choice = ThrottleLevel::new(1).expect("1/8 duty is valid");
        for level in ThrottleLevel::all() {
            match self.gated_estimate(ctx, dpc, level.duty()) {
                Some(estimate) if estimate <= self.limit().watts() => choice = level,
                _ => {}
            }
        }
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::GovernorCommand;
    use aapm_platform::pstate::{PStateId, PStateTable};
    use aapm_platform::units::Seconds;
    use aapm_telemetry::pmc::CounterSample;

    fn sample(dpc: f64) -> CounterSample {
        let cycles = 20e6;
        CounterSample {
            start: Seconds::ZERO,
            end: Seconds::from_millis(10.0),
            cycles,
            counts: vec![(HardwareEvent::InstructionsDecoded, dpc * cycles, true)],
        }
    }

    fn ctx_at<'a>(
        s: &'a CounterSample,
        table: &'a PStateTable,
        current: usize,
    ) -> SampleContext<'a> {
        SampleContext {
            counters: s,
            power: None,
            temperature: None,
            current: PStateId::new(current),
            table,
            queue: None,
        }
    }

    #[test]
    fn generous_limit_leaves_clock_ungated() {
        let table = PStateTable::pentium_m_755();
        let mut g = CombinedPm::new(PowerModel::paper_table_ii(), PowerLimit::new(15.0).unwrap());
        let s = sample(1.0);
        let ctx = ctx_at(&s, &table, 7);
        assert!(g.throttle_decision(&ctx).is_full());
    }

    #[test]
    fn deep_cap_engages_modulation() {
        let table = PStateTable::pentium_m_755();
        // Paper Table II at P0: 0.34·DPC + 2.58; with DPC projected down
        // from P7 (×2000/600) and the 0.5 W guardband, est(P0) at DPC 1.0
        // is 0.34·3.33 + 2.58 + 0.5 ≈ 4.21 W. A 3.5 W cap needs gating.
        let mut g = CombinedPm::new(PowerModel::paper_table_ii(), PowerLimit::new(3.5).unwrap());
        let s = sample(1.0);
        let ctx = ctx_at(&s, &table, 7);
        let level = g.throttle_decision(&ctx);
        assert!(!level.is_full(), "3.5 W cap must gate the clock");
        // est(duty) = duty·4.21 + (1−duty)·1.5 ≤ 3.5 → duty ≤ 0.738 → 5/8.
        assert_eq!(level.steps(), 5, "highest duty fitting under the cap");
        // And the DVFS decision bottoms out at the lowest state.
        assert_eq!(g.decide(&ctx), table.lowest());
    }

    #[test]
    fn impossible_cap_falls_to_minimum_duty() {
        let table = PStateTable::pentium_m_755();
        let mut g = CombinedPm::new(PowerModel::paper_table_ii(), PowerLimit::new(1.0).unwrap());
        let s = sample(2.0);
        let ctx = ctx_at(&s, &table, 0);
        assert_eq!(g.throttle_decision(&ctx).steps(), 1);
    }

    #[test]
    fn limit_commands_flow_through() {
        let table = PStateTable::pentium_m_755();
        let mut g = CombinedPm::new(PowerModel::paper_table_ii(), PowerLimit::new(3.5).unwrap());
        g.command(GovernorCommand::SetPowerLimit(PowerLimit::new(20.0).unwrap()));
        let s = sample(1.0);
        let ctx = ctx_at(&s, &table, 7);
        assert!(g.throttle_decision(&ctx).is_full());
    }
}
