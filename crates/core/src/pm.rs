//! PerformanceMaximizer (PM): best performance under a power limit
//! (paper §IV.A).
//!
//! Every 10 ms PM:
//!
//! 1. **monitors** DPC (decoded instructions per cycle) — a single
//!    programmable counter;
//! 2. **predicts** DPC at every other p-state with eq. 4 and applies the
//!    per-p-state power model, adding a guardband (0.5 W by default) for
//!    model error and system variability;
//! 3. **controls**: picks the highest-frequency p-state whose estimated
//!    power stays under the limit — *lowering immediately* when even a
//!    single sample demands it, but *raising only after ten consecutive
//!    samples* (100 ms) agree a higher state is safe, minimizing violations
//!    during hard-to-predict workload transitions.
//!
//! The power limit can change at any instant (the paper delivers this via
//! Unix signals; here via [`GovernorCommand::SetPowerLimit`]).

use aapm_platform::events::HardwareEvent;
use aapm_platform::pstate::PStateId;
use aapm_platform::units::Watts;
use aapm_models::dpc_projection::project_dpc;
use aapm_models::power_model::PowerModel;
use aapm_telemetry::metrics::{EventKind, Metrics};

use crate::governor::{Governor, GovernorCommand, SampleContext};
use crate::limits::PowerLimit;

/// Tunables of the PM control loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmConfig {
    /// Watts added to every estimate to absorb model error (paper: 0.5 W).
    pub guardband: Watts,
    /// Consecutive agreeing samples required before raising frequency
    /// (paper: ten 10 ms samples = 100 ms).
    pub raise_samples: usize,
    /// How many consecutive stale counter samples (missed PMC reads) PM
    /// tolerates by holding its last measured DPC before it starts
    /// stepping the frequency down as a fail-safe. "Hold for N" means
    /// *exactly N* stale intervals are absorbed: stale samples 1..=N hold,
    /// and stale sample N+1 takes the first fail-safe step.
    pub hold_samples: usize,
}

impl Default for PmConfig {
    fn default() -> Self {
        PmConfig { guardband: Watts::new(0.5), raise_samples: 10, hold_samples: 25 }
    }
}

/// The PerformanceMaximizer governor.
///
/// # Examples
///
/// ```
/// use aapm::limits::PowerLimit;
/// use aapm::pm::PerformanceMaximizer;
/// use aapm_models::power_model::PowerModel;
///
/// let pm = PerformanceMaximizer::new(
///     PowerModel::paper_table_ii(),
///     PowerLimit::new(17.5)?,
/// );
/// assert_eq!(aapm::governor::Governor::name(&pm), "pm");
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PerformanceMaximizer {
    model: PowerModel,
    limit: PowerLimit,
    config: PmConfig,
    raise_streak: usize,
    /// Most recent DPC taken from a fresh counter sample.
    last_dpc: Option<f64>,
    /// Consecutive stale counter samples seen.
    stale_streak: usize,
    /// DPC projected for the state chosen last interval, compared against
    /// the next fresh sample to measure eq. 4's projection error.
    predicted_dpc: Option<f64>,
    /// Guardband headroom (limit − guarded estimate at the chosen state)
    /// of the most recent fresh decision window.
    last_headroom: Option<Watts>,
    /// Watts short of affording the next-higher p-state when the limit
    /// throttled the most recent fresh decision window (`None` while
    /// unthrottled).
    last_deficit: Option<Watts>,
    /// Observability handle (disabled unless the runtime installs one).
    metrics: Metrics,
}

impl PerformanceMaximizer {
    /// Creates PM with the default guardband and raise window.
    pub fn new(model: PowerModel, limit: PowerLimit) -> Self {
        PerformanceMaximizer::with_config(model, limit, PmConfig::default())
    }

    /// Creates PM with explicit control-loop tunables.
    pub fn with_config(model: PowerModel, limit: PowerLimit, config: PmConfig) -> Self {
        PerformanceMaximizer {
            model,
            limit,
            config,
            raise_streak: 0,
            last_dpc: None,
            stale_streak: 0,
            predicted_dpc: None,
            last_headroom: None,
            last_deficit: None,
            metrics: Metrics::disabled(),
        }
    }

    /// Guardband headroom of the most recent fresh decision window: the
    /// watts left between the power limit and the guarded estimate at the
    /// state the governor chose. This is the slack signal a cluster
    /// governor reclaims. `None` until the first fresh sample; hold and
    /// fail-safe windows keep the previous window's value. Exported as
    /// the `pm.guardband_headroom_w` gauge when metrics are installed.
    pub fn last_headroom(&self) -> Option<Watts> {
        self.last_headroom
    }

    /// How many watts short the limit left the governor of affording the
    /// next-higher p-state in the most recent fresh decision window — the
    /// hunger signal a cluster governor weighs against other nodes'
    /// [`Self::last_headroom`] slack. `None` while unthrottled (the chosen
    /// state is the top one, or the next state up fits under the limit)
    /// and before the first fresh sample; hold and fail-safe windows keep
    /// the previous window's value. Exported as the `pm.power_deficit_w`
    /// gauge when metrics are installed.
    pub fn last_deficit(&self) -> Option<Watts> {
        self.last_deficit
    }

    /// The active power limit.
    pub fn limit(&self) -> PowerLimit {
        self.limit
    }

    /// The control-loop tunables in use.
    pub fn config(&self) -> &PmConfig {
        &self.config
    }

    /// The power model in use.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// Estimated power at `target` given a DPC observed at `current`
    /// (projection + model + guardband).
    pub fn estimate_at(
        &self,
        ctx: &SampleContext<'_>,
        dpc: f64,
        target: PStateId,
    ) -> Option<Watts> {
        let from = ctx.table.get(ctx.current).ok()?.frequency();
        let to = ctx.table.get(target).ok()?.frequency();
        let projected = project_dpc(dpc, from, to);
        let estimate = self.model.estimate(target, projected).ok()?;
        Some(estimate + self.config.guardband)
    }

    /// The highest p-state whose guarded estimate fits under the limit
    /// (the lowest state if none fits).
    fn best_pstate(&self, ctx: &SampleContext<'_>, dpc: f64) -> PStateId {
        for (id, _) in ctx.table.iter_descending() {
            if let Some(estimate) = self.estimate_at(ctx, dpc, id) {
                if estimate <= self.limit.watts() {
                    return id;
                }
            }
        }
        ctx.table.lowest()
    }
}

impl Governor for PerformanceMaximizer {
    fn name(&self) -> &str {
        "pm"
    }

    fn events(&self) -> Vec<HardwareEvent> {
        vec![HardwareEvent::InstructionsDecoded]
    }

    fn decide(&mut self, ctx: &SampleContext<'_>) -> PStateId {
        let now = ctx.counters.end;
        // Graceful degradation under missed PMC reads: hold the last
        // measured DPC for a bounded window of exactly `hold_samples` stale
        // intervals (never raising on stale data), then fail safe by
        // stepping the frequency down one state per sample until fresh
        // telemetry returns.
        let dpc = if ctx.counters.is_fresh() {
            if self.stale_streak > 0 {
                self.metrics.inc("pm.hold_exits");
                self.metrics.event(
                    now,
                    EventKind::HoldExited {
                        governor: "pm",
                        stale_intervals: self.stale_streak as u64,
                    },
                );
                self.stale_streak = 0;
            }
            let dpc = ctx.counters.dpc().unwrap_or(0.0);
            if let Some(predicted) = self.predicted_dpc.take() {
                self.metrics.observe("pm.projection_error_dpc", (dpc - predicted).abs());
            }
            self.last_dpc = Some(dpc);
            dpc
        } else {
            self.stale_streak += 1;
            self.metrics.inc("pm.stale_intervals");
            if self.stale_streak == 1 {
                self.metrics.inc("pm.hold_entries");
                self.metrics.event(now, EventKind::HoldEntered { governor: "pm" });
            }
            // A stale interval invalidates the one-step-ahead projection.
            self.predicted_dpc = None;
            match self.last_dpc {
                Some(dpc) if self.stale_streak <= self.config.hold_samples => {
                    // Only safety-driven lowering is allowed on held data.
                    let candidate = self.best_pstate(ctx, dpc);
                    if candidate < ctx.current {
                        self.raise_streak = 0;
                        return candidate;
                    }
                    return ctx.current;
                }
                _ => {
                    self.raise_streak = 0;
                    self.metrics.inc("pm.failsafe_steps");
                    self.metrics.event(now, EventKind::FailSafeStep { governor: "pm" });
                    return ctx.table.next_lower(ctx.current).unwrap_or(ctx.table.lowest());
                }
            }
        };
        let candidate = self.best_pstate(ctx, dpc);
        let chosen = if candidate < ctx.current {
            // A single over-limit sample lowers frequency immediately.
            self.raise_streak = 0;
            candidate
        } else if candidate > ctx.current {
            // Raising waits for a full window of agreeing samples.
            self.raise_streak += 1;
            if self.raise_streak >= self.config.raise_samples {
                self.raise_streak = 0;
                candidate
            } else {
                ctx.current
            }
        } else {
            self.raise_streak = 0;
            ctx.current
        };
        // Guardband headroom: slack between the limit and the guarded
        // estimate at the state actually chosen — the per-window signal a
        // cluster governor reclaims and reallocates. Tracked whether or
        // not metrics are installed; hold and fail-safe windows return
        // earlier above and keep the previous window's value.
        if let Some(estimate) = self.estimate_at(ctx, dpc, chosen) {
            let headroom = self.limit.watts().watts() - estimate.watts();
            self.last_headroom = Some(Watts::new(headroom));
            if self.metrics.is_enabled() {
                self.metrics.observe("pm.guardband_margin_w", headroom);
                self.metrics.gauge("pm.guardband_headroom_w", headroom);
            }
        }
        // Power deficit: when the limit throttles the node below the top
        // p-state, the extra watts the next state up would need. A cluster
        // governor reads this as negative headroom — unmet demand.
        self.last_deficit = ctx.table.next_higher(chosen).and_then(|next| {
            let estimate = self.estimate_at(ctx, dpc, next)?;
            let deficit = estimate.watts() - self.limit.watts().watts();
            (deficit > 0.0).then(|| Watts::new(deficit))
        });
        if self.metrics.is_enabled() {
            if let Some(deficit) = self.last_deficit {
                self.metrics.gauge("pm.power_deficit_w", deficit.watts());
            }
        }
        if self.metrics.is_enabled() {
            // One-step-ahead DPC projection for the chosen state (eq. 4),
            // scored against the next fresh sample.
            if let (Ok(from), Ok(to)) = (ctx.table.get(ctx.current), ctx.table.get(chosen)) {
                self.predicted_dpc =
                    Some(project_dpc(dpc, from.frequency(), to.frequency()));
            }
        }
        chosen
    }

    fn command(&mut self, command: GovernorCommand) {
        match command {
            GovernorCommand::SetPowerLimit(limit) => {
                self.limit = limit;
                // A fresh limit invalidates the raise history.
                self.raise_streak = 0;
            }
            GovernorCommand::SetPowerCoefficients(id, coeffs) => {
                // A rejected refit (out-of-range state, non-finite pair)
                // leaves the installed model untouched — the adaptive
                // layer validates before sending, so this is belt and
                // braces.
                if self.model.set_coefficients(id, coeffs).is_ok() {
                    self.raise_streak = 0;
                }
            }
            GovernorCommand::SetPerformanceFloor(_) => {}
        }
    }

    fn install_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapm_platform::pstate::PStateTable;
    use aapm_platform::units::Seconds;
    use aapm_telemetry::pmc::CounterSample;

    fn sample(dpc: f64) -> CounterSample {
        let cycles = 20e6;
        CounterSample {
            start: Seconds::ZERO,
            end: Seconds::from_millis(10.0),
            cycles,
            counts: vec![(HardwareEvent::InstructionsDecoded, dpc * cycles, true)],
        }
    }

    fn decide_at(pm: &mut PerformanceMaximizer, table: &PStateTable, current: usize, dpc: f64) -> PStateId {
        let s = sample(dpc);
        let ctx = SampleContext { counters: &s, power: None, temperature: None, current: PStateId::new(current), table, queue: None };
        pm.decide(&ctx)
    }

    fn pm_with_limit(watts: f64) -> PerformanceMaximizer {
        PerformanceMaximizer::new(PowerModel::paper_table_ii(), PowerLimit::new(watts).unwrap())
    }

    #[test]
    fn generous_limit_stays_at_top() {
        let table = PStateTable::pentium_m_755();
        let mut pm = pm_with_limit(30.0);
        assert_eq!(decide_at(&mut pm, &table, 7, 2.0), PStateId::new(7));
    }

    #[test]
    fn hot_sample_lowers_immediately() {
        let table = PStateTable::pentium_m_755();
        // Table II at P7: 2.93·DPC + 12.11 (+0.5 guardband) ≤ 15 fails for
        // DPC 2.0 (18.5 est); P6: 2.36·2.22+10.18+0.5 = 15.9 also fails
        // (projected DPC grows when stepping down); P5 @1600: projected DPC
        // = 2·2000/1600 = 2.5 → 1.82·2.5+8.44+0.5 = 13.5 ≤ 15 ✓.
        let mut pm = pm_with_limit(15.0);
        let chosen = decide_at(&mut pm, &table, 7, 2.0);
        assert_eq!(chosen, PStateId::new(5), "one sample is enough to lower");
    }

    #[test]
    fn raising_requires_consecutive_good_samples() {
        let table = PStateTable::pentium_m_755();
        let mut pm = pm_with_limit(30.0);
        // Start low; 9 good samples must not raise, the 10th raises.
        for i in 0..9 {
            let chosen = decide_at(&mut pm, &table, 2, 0.5);
            assert_eq!(chosen, PStateId::new(2), "sample {i} must hold");
        }
        let chosen = decide_at(&mut pm, &table, 2, 0.5);
        assert!(chosen > PStateId::new(2), "10th consecutive sample raises");
    }

    #[test]
    fn interrupted_streak_resets() {
        let table = PStateTable::pentium_m_755();
        let mut pm = pm_with_limit(14.0);
        // 5 good (low-DPC) samples…
        for _ in 0..5 {
            decide_at(&mut pm, &table, 2, 0.2);
        }
        // …then one hot sample: at DPC 8 every state above P2 estimates
        // over 14 W (P3: 1.06·8 + 5.6 + 0.5 = 14.58), so the candidate
        // equals the current state and the good streak resets.
        decide_at(&mut pm, &table, 2, 8.0);
        // 9 more good samples still must not raise (streak restarted).
        for i in 0..9 {
            let chosen = decide_at(&mut pm, &table, 2, 0.2);
            assert_eq!(chosen, PStateId::new(2), "post-reset sample {i}");
        }
        assert!(decide_at(&mut pm, &table, 2, 0.2) > PStateId::new(2));
    }

    #[test]
    fn impossible_limit_falls_to_lowest_state() {
        let table = PStateTable::pentium_m_755();
        // 2 W is below even P0's β (2.58 + guardband).
        let mut pm = pm_with_limit(2.0);
        assert_eq!(decide_at(&mut pm, &table, 7, 1.0), table.lowest());
    }

    #[test]
    fn limit_change_takes_effect_immediately() {
        let table = PStateTable::pentium_m_755();
        let mut pm = pm_with_limit(30.0);
        assert_eq!(decide_at(&mut pm, &table, 7, 2.0), PStateId::new(7));
        pm.command(GovernorCommand::SetPowerLimit(PowerLimit::new(10.0).unwrap()));
        let chosen = decide_at(&mut pm, &table, 7, 2.0);
        assert!(chosen < PStateId::new(7), "tighter limit lowers at once");
    }

    #[test]
    fn coefficient_refit_changes_estimates_immediately() {
        use aapm_models::power_model::PStateCoefficients;
        let table = PStateTable::pentium_m_755();
        // 16 W fits P7 at DPC 1.0 under Table II (15.04 + 0.5 guardband).
        let mut pm = pm_with_limit(16.0);
        assert_eq!(decide_at(&mut pm, &table, 7, 1.0), PStateId::new(7));
        // A refit reporting a 3 W hotter floor at P7 pushes it over the
        // limit; the very next decision lowers.
        pm.command(GovernorCommand::SetPowerCoefficients(
            PStateId::new(7),
            PStateCoefficients { alpha: 2.93, beta: 15.11 },
        ));
        assert!(decide_at(&mut pm, &table, 7, 1.0) < PStateId::new(7));
        // A non-finite refit is dropped and the (already refit) model kept.
        pm.command(GovernorCommand::SetPowerCoefficients(
            PStateId::new(7),
            PStateCoefficients { alpha: f64::NAN, beta: 12.11 },
        ));
        assert_eq!(pm.model().coefficients(PStateId::new(7)).unwrap().beta, 15.11);
    }

    #[test]
    fn guardband_biases_choices_down() {
        let table = PStateTable::pentium_m_755();
        // Pick a limit that P7 satisfies without guardband but not with a
        // huge one: est(P7, 1.0) = 15.04.
        let no_guard = PmConfig { guardband: Watts::new(0.0), ..PmConfig::default() };
        let big_guard = PmConfig { guardband: Watts::new(3.0), ..PmConfig::default() };
        let mut lenient = PerformanceMaximizer::with_config(
            PowerModel::paper_table_ii(),
            PowerLimit::new(15.5).unwrap(),
            no_guard,
        );
        let mut strict = PerformanceMaximizer::with_config(
            PowerModel::paper_table_ii(),
            PowerLimit::new(15.5).unwrap(),
            big_guard,
        );
        assert_eq!(decide_at(&mut lenient, &table, 7, 1.0), PStateId::new(7));
        assert!(decide_at(&mut strict, &table, 7, 1.0) < PStateId::new(7));
    }

    fn stale_sample(dpc: f64) -> CounterSample {
        let cycles = 20e6;
        CounterSample {
            start: Seconds::ZERO,
            end: Seconds::from_millis(10.0),
            cycles,
            counts: vec![(HardwareEvent::InstructionsDecoded, dpc * cycles, false)],
        }
    }

    fn decide_stale(pm: &mut PerformanceMaximizer, table: &PStateTable, current: usize) -> PStateId {
        let s = stale_sample(0.0);
        let ctx = SampleContext { counters: &s, power: None, temperature: None, current: PStateId::new(current), table, queue: None };
        pm.decide(&ctx)
    }

    #[test]
    fn stale_counters_hold_then_step_down() {
        let table = PStateTable::pentium_m_755();
        let mut pm = pm_with_limit(30.0);
        // Establish history at the top state.
        assert_eq!(decide_at(&mut pm, &table, 7, 1.0), PStateId::new(7));
        // Within the hold window the last DPC is held and the state kept.
        for i in 0..pm.config().hold_samples {
            assert_eq!(decide_stale(&mut pm, &table, 7), PStateId::new(7), "stale sample {i}");
        }
        // Past the window PM fails safe, one state at a time.
        assert_eq!(decide_stale(&mut pm, &table, 7), PStateId::new(6));
        assert_eq!(decide_stale(&mut pm, &table, 6), PStateId::new(5));
        // A fresh sample recovers normal operation (raise still gated).
        assert_eq!(decide_at(&mut pm, &table, 5, 1.0), PStateId::new(5));
    }

    #[test]
    fn stale_counters_never_raise() {
        let table = PStateTable::pentium_m_755();
        let mut pm = pm_with_limit(30.0);
        decide_at(&mut pm, &table, 2, 0.2);
        // Even a long run of benign stale samples must not raise frequency.
        for _ in 0..pm.config().raise_samples + 5 {
            let chosen = decide_stale(&mut pm, &table, 2);
            assert!(chosen <= PStateId::new(2));
        }
    }

    /// Boundary of the hold window: with `hold_samples = N`, exactly N
    /// stale intervals are held and the (N+1)-th steps down.
    #[test]
    fn hold_window_boundary_is_exactly_n_stale_intervals() {
        let table = PStateTable::pentium_m_755();
        let n = 3;
        let config = PmConfig { hold_samples: n, ..PmConfig::default() };
        let mut pm = PerformanceMaximizer::with_config(
            PowerModel::paper_table_ii(),
            PowerLimit::new(30.0).unwrap(),
            config,
        );
        assert_eq!(decide_at(&mut pm, &table, 7, 1.0), PStateId::new(7));
        for i in 1..=n {
            assert_eq!(decide_stale(&mut pm, &table, 7), PStateId::new(7), "stale sample {i} holds");
        }
        // Stale sample N+1 is the first fail-safe step.
        assert_eq!(decide_stale(&mut pm, &table, 7), PStateId::new(6), "sample N+1 steps down");
    }

    /// Hold-window entry/exit and fail-safe steps are counted when a
    /// metrics registry is installed, and the counts follow the exact-N
    /// boundary contract.
    #[test]
    fn hold_window_metrics_count_the_boundary() {
        let table = PStateTable::pentium_m_755();
        let n = 3;
        let config = PmConfig { hold_samples: n, ..PmConfig::default() };
        let mut pm = PerformanceMaximizer::with_config(
            PowerModel::paper_table_ii(),
            PowerLimit::new(30.0).unwrap(),
            config,
        );
        let metrics = Metrics::enabled();
        Governor::install_metrics(&mut pm, metrics.clone());
        decide_at(&mut pm, &table, 7, 1.0);
        for _ in 0..n + 2 {
            decide_stale(&mut pm, &table, 7);
        }
        decide_at(&mut pm, &table, 7, 1.0);
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.counter("pm.hold_entries"), 1);
        assert_eq!(snapshot.counter("pm.hold_exits"), 1);
        assert_eq!(snapshot.counter("pm.stale_intervals"), n as u64 + 2);
        assert_eq!(snapshot.counter("pm.failsafe_steps"), 2, "samples N+1 and N+2 step down");
        assert!(snapshot.histogram("pm.guardband_margin_w").is_some());
    }

    /// The per-window guardband headroom is tracked on fresh windows,
    /// exported as the `pm.guardband_headroom_w` gauge, and held across
    /// stale windows (the cluster governor's input signal).
    #[test]
    fn guardband_headroom_tracks_fresh_windows_and_holds_on_stale() {
        let table = PStateTable::pentium_m_755();
        let mut pm = pm_with_limit(30.0);
        assert!(pm.last_headroom().is_none(), "no headroom before the first fresh window");
        let metrics = Metrics::enabled();
        Governor::install_metrics(&mut pm, metrics.clone());
        decide_at(&mut pm, &table, 7, 1.0);
        // Staying at P7 the guarded estimate is 2.93·1.0 + 12.11 + 0.5 W
        // (Table II top state plus guardband); headroom is the remainder.
        let expect = 30.0 - (2.93 + 12.11 + 0.5);
        let got = pm.last_headroom().expect("fresh window sets headroom").watts();
        assert!((got - expect).abs() < 1e-9, "headroom {got} != {expect}");
        assert_eq!(metrics.snapshot().gauge("pm.guardband_headroom_w"), Some(got));
        // A stale window holds the previous value rather than clearing it.
        decide_stale(&mut pm, &table, 7);
        assert_eq!(pm.last_headroom().unwrap().watts(), got);
    }

    #[test]
    fn stale_with_no_history_fails_safe_immediately() {
        let table = PStateTable::pentium_m_755();
        let mut pm = pm_with_limit(30.0);
        assert_eq!(decide_stale(&mut pm, &table, 7), PStateId::new(6));
    }

    #[test]
    fn estimate_uses_projected_dpc_downward() {
        let table = PStateTable::pentium_m_755();
        let pm = pm_with_limit(15.0);
        let s = sample(1.0);
        let ctx = SampleContext { counters: &s, power: None, temperature: None, current: PStateId::new(7), table: &table, queue: None };
        // At P3 (1200 MHz) the projected DPC is 1.0 × 2000/1200 = 5/3;
        // Table II: 1.06·(5/3) + 5.60 + 0.5 guardband.
        let est = pm.estimate_at(&ctx, 1.0, PStateId::new(3)).unwrap();
        assert!((est.watts() - (1.06 * 5.0 / 3.0 + 5.60 + 0.5)).abs() < 1e-9);
    }
}
