//! The minimal hand-rolled JSON layer shared by the serializable grammars.
//!
//! The workspace vendors no serde, so every serialized artifact — governor
//! specs ([`crate::spec::GovernorSpec`]), and the adversarial-scenario
//! fixtures the fuzz harness commits under `corpus/` — shares this one
//! recursive-descent parser and [`Json`] value type. The subset is exactly
//! what those grammars need: objects, arrays, strings, and finite numbers.
//!
//! Two rejections are deliberate and load-bearing for reproducibility:
//!
//! * **non-finite numbers** — a literal that overflows to infinity
//!   (`1e999`) or any other non-finite value is an error, because every
//!   downstream consumer (power limits, fault rates, phase parameters)
//!   treats non-finite values as corruption;
//! * **duplicate object keys** — last-one-wins parsing silently drops
//!   data, so a repeated key is an error naming the key.

/// The subset of JSON the workspace's codecs need.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// An object, as key/value pairs in source order.
    Object(Vec<(String, Json)>),
    /// An array.
    Array(Vec<Json>),
    /// A string.
    String(String),
    /// A finite number.
    Number(f64),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The object's fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string's contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Json::Number(v) => Some(*v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing input is an error).
///
/// # Errors
///
/// Returns a human-readable description of the first problem: malformed
/// syntax, a duplicate object key, a non-finite number, or trailing input.
pub fn parse(text: &str) -> std::result::Result<Json, String> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing input at byte {}", parser.pos));
    }
    Ok(value)
}

/// Appends `text` to `out` as a JSON string literal, escaping quotes and
/// backslashes (the only escapes the parser understands).
pub fn write_string(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(c),
        }
    }
    out.push('"');
}

/// Minimal recursive-descent parser (the workspace vendors no serde).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> std::result::Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn parse_value(&mut self) -> std::result::Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(format!(
                "expected a value at byte {}, found {:?}",
                self.pos,
                other.map(|b| b as char)
            )),
        }
    }

    fn parse_object(&mut self) -> std::result::Result<Json, String> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!(
                    "duplicate key \"{key}\" in object (each key may appear once)"
                ));
            }
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn parse_array(&mut self) -> std::result::Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn parse_string(&mut self) -> std::result::Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        other => {
                            return Err(format!(
                                "unsupported escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Keys and kinds are ASCII; multi-byte UTF-8 passes
                    // through byte-wise, which is fine for error text.
                    let start = self.pos;
                    while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(&String::from_utf8_lossy(&self.bytes[start..self.pos]));
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn parse_number(&mut self) -> std::result::Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 number".to_owned())?;
        let value = text
            .parse::<f64>()
            .map_err(|e| format!("invalid number \"{text}\": {e}"))?;
        if !value.is_finite() {
            return Err(format!(
                "non-finite number \"{text}\" (overflows f64; \
                 finite values are required)"
            ));
        }
        Ok(Json::Number(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_objects_arrays_strings_numbers() {
        let value = parse(
            r#"{"a":[1, -2.5, {"b":"text"}], "c":{"d":[]}, "e":3e2}"#,
        )
        .unwrap();
        assert_eq!(value.get("e").and_then(Json::as_number), Some(300.0));
        let items = value.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(items[0].as_number(), Some(1.0));
        assert_eq!(items[1].as_number(), Some(-2.5));
        assert_eq!(items[2].get("b").and_then(Json::as_str), Some("text"));
        assert_eq!(value.get("c").and_then(|c| c.get("d")).and_then(Json::as_array), Some(&[][..]));
        assert!(value.get("missing").is_none());
        assert!(value.as_object().is_some());
    }

    /// Literals that overflow to ±inf must be rejected with an explicit
    /// message, not silently accepted as infinite values.
    #[test]
    fn non_finite_numbers_are_rejected_with_explicit_errors() {
        for bad in ["1e999", "-1e999", "{\"x\":1e400}", "[2e308]"] {
            let err = parse(bad).unwrap_err();
            assert!(
                err.contains("non-finite number"),
                "{bad:?} must name the non-finite number, got: {err}"
            );
        }
        // NaN/inf keywords are not numbers in this grammar at all.
        for bad in ["NaN", "inf", "-inf", "Infinity"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn duplicate_keys_are_rejected_naming_the_key() {
        let err = parse(r#"{"rate":1,"rate":2}"#).unwrap_err();
        assert!(
            err.contains("duplicate key \"rate\""),
            "error must name the duplicated key, got: {err}"
        );
        // Duplicates are detected at any nesting depth.
        assert!(parse(r#"{"a":{"k":1,"k":2}}"#).is_err());
        // The same key in sibling objects is fine.
        assert!(parse(r#"[{"k":1},{"k":2}]"#).is_ok());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in ["", "{", "[1,", "{\"a\"}", "{\"a\":}", "1 2", "{}{}", "\"open", "[1]]"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut out = String::new();
        write_string(&mut out, r#"a"b\c"#);
        assert_eq!(out, r#""a\"b\\c""#);
        assert_eq!(parse(&out).unwrap().as_str(), Some(r#"a"b\c"#));
    }
}
