//! Baseline governors the paper compares against.
//!
//! * [`StaticClock`] — conventional worst-case provisioning: pin the
//!   frequency low enough that even the worst-case workload (FMA-256K)
//!   stays under the power limit (paper Table IV);
//! * [`Unconstrained`] — maximum performance, no power concern (the 2 GHz
//!   reference in Figures 6, 7, 9);
//! * [`DemandBasedSwitching`] — the utilization-driven energy saver the
//!   paper's PS improves upon: it only lowers frequency when the system is
//!   *under-utilized*, so at full load it saves nothing.

use aapm_platform::error::{PlatformError, Result};
use aapm_platform::events::HardwareEvent;
use aapm_platform::pstate::PStateId;

use crate::governor::{Governor, SampleContext};

/// Runs at a fixed p-state forever.
#[derive(Debug, Clone)]
pub struct StaticClock {
    target: PStateId,
    name: String,
}

impl StaticClock {
    /// Creates a static-clocking governor pinned to `target`.
    pub fn new(target: PStateId) -> Self {
        StaticClock { target, name: format!("static-p{}", target.index()) }
    }

    /// The pinned p-state.
    pub fn target(&self) -> PStateId {
        self.target
    }
}

impl Governor for StaticClock {
    fn name(&self) -> &str {
        &self.name
    }

    fn events(&self) -> Vec<HardwareEvent> {
        Vec::new()
    }

    fn decide(&mut self, ctx: &SampleContext<'_>) -> PStateId {
        if ctx.table.contains(self.target) {
            self.target
        } else {
            ctx.table.highest()
        }
    }
}

/// Always runs at the highest p-state.
#[derive(Debug, Clone, Default)]
pub struct Unconstrained;

impl Unconstrained {
    /// Creates the unconstrained governor.
    pub fn new() -> Self {
        Unconstrained
    }
}

impl Governor for Unconstrained {
    fn name(&self) -> &str {
        "unconstrained"
    }

    fn events(&self) -> Vec<HardwareEvent> {
        Vec::new()
    }

    fn decide(&mut self, ctx: &SampleContext<'_>) -> PStateId {
        ctx.table.highest()
    }
}

/// Demand-based switching: scale frequency with *utilization*.
///
/// Utilization is approximated as the busy fraction of the interval (cycles
/// in which the machine retired any work). The governor targets the lowest
/// frequency that would keep utilization below `target_utilization`. Under
/// the always-saturated workloads of this study, utilization is 1.0 and DBS
/// pins the top p-state — demonstrating the paper's point that
/// utilization-driven saving is inert at full load.
#[derive(Debug, Clone)]
pub struct DemandBasedSwitching {
    target_utilization: f64,
}

impl DemandBasedSwitching {
    /// Creates DBS with the conventional 80 % utilization target.
    pub fn new() -> Self {
        DemandBasedSwitching { target_utilization: 0.8 }
    }

    /// Creates DBS with an explicit utilization target in `(0, 1]`.
    ///
    /// The target divides the measured busy fraction, so a zero, negative,
    /// or non-finite value would turn the demand calculation into
    /// `inf`/negative MHz and silently pin the highest p-state; such
    /// targets are rejected here instead.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidConfig`] if `target` is not a finite
    /// number in `(0, 1]`.
    pub fn with_target(target: f64) -> Result<Self> {
        if !target.is_finite() || target <= 0.0 || target > 1.0 {
            return Err(PlatformError::InvalidConfig {
                parameter: "target_utilization",
                reason: format!("utilization target must lie in (0, 1], got {target}"),
            });
        }
        Ok(DemandBasedSwitching { target_utilization: target })
    }

    /// The active utilization target.
    pub fn target_utilization(&self) -> f64 {
        self.target_utilization
    }
}

impl Default for DemandBasedSwitching {
    fn default() -> Self {
        DemandBasedSwitching::new()
    }
}

impl Governor for DemandBasedSwitching {
    fn name(&self) -> &str {
        "dbs"
    }

    fn events(&self) -> Vec<HardwareEvent> {
        vec![HardwareEvent::InstructionsRetired]
    }

    fn decide(&mut self, ctx: &SampleContext<'_>) -> PStateId {
        // Busy fraction: a saturated core retires work every interval; an
        // idle one retires none. (The simulated machine is either running a
        // program or idling after completion.)
        let busy = if ctx.counters.ipc().unwrap_or(0.0) > 0.0 { 1.0 } else { 0.0 };
        let current_freq = match ctx.table.get(ctx.current) {
            Ok(state) => state.frequency(),
            Err(_) => return ctx.table.highest(),
        };
        // Demand in "frequency units": what frequency would put us at the
        // utilization target?
        let demanded_mhz = current_freq.mhz() as f64 * busy / self.target_utilization;
        for (id, state) in ctx.table.iter() {
            if f64::from(state.frequency().mhz()) >= demanded_mhz {
                return id;
            }
        }
        ctx.table.highest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapm_platform::pstate::PStateTable;
    use aapm_platform::units::Seconds;
    use aapm_telemetry::pmc::CounterSample;

    fn sample(ipc: f64) -> CounterSample {
        let cycles = 20e6;
        CounterSample {
            start: Seconds::ZERO,
            end: Seconds::from_millis(10.0),
            cycles,
            counts: vec![(HardwareEvent::InstructionsRetired, ipc * cycles, true)],
        }
    }

    #[test]
    fn static_clock_holds_its_state() {
        let table = PStateTable::pentium_m_755();
        let mut g = StaticClock::new(PStateId::new(3));
        let s = sample(1.0);
        for current in [0usize, 3, 7] {
            let ctx = SampleContext { counters: &s, power: None, temperature: None, current: PStateId::new(current), table: &table, queue: None };
            assert_eq!(g.decide(&ctx), PStateId::new(3));
        }
        assert_eq!(g.name(), "static-p3");
    }

    #[test]
    fn static_clock_with_invalid_target_degrades_to_highest() {
        let table = PStateTable::pentium_m_755();
        let mut g = StaticClock::new(PStateId::new(99));
        let s = sample(1.0);
        let ctx = SampleContext { counters: &s, power: None, temperature: None, current: PStateId::new(0), table: &table, queue: None };
        assert_eq!(g.decide(&ctx), table.highest());
    }

    #[test]
    fn unconstrained_always_max() {
        let table = PStateTable::pentium_m_755();
        let mut g = Unconstrained::new();
        let s = sample(0.1);
        let ctx = SampleContext { counters: &s, power: None, temperature: None, current: PStateId::new(2), table: &table, queue: None };
        assert_eq!(g.decide(&ctx), table.highest());
    }

    #[test]
    fn dbs_pins_top_frequency_at_full_load() {
        // The paper's critique: utilization-driven DVFS is inert when the
        // system is saturated.
        let table = PStateTable::pentium_m_755();
        let mut g = DemandBasedSwitching::new();
        let s = sample(1.2);
        let ctx = SampleContext { counters: &s, power: None, temperature: None, current: table.highest(), table: &table, queue: None };
        assert_eq!(g.decide(&ctx), table.highest());
    }

    #[test]
    fn dbs_drops_to_lowest_when_idle() {
        let table = PStateTable::pentium_m_755();
        let mut g = DemandBasedSwitching::new();
        let s = sample(0.0);
        let ctx = SampleContext { counters: &s, power: None, temperature: None, current: table.highest(), table: &table, queue: None };
        assert_eq!(g.decide(&ctx), table.lowest());
    }

    #[test]
    fn dbs_rejects_invalid_targets() {
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            match DemandBasedSwitching::with_target(bad) {
                Err(PlatformError::InvalidConfig { parameter, .. }) => {
                    assert_eq!(parameter, "target_utilization");
                }
                other => panic!("target {bad} must be rejected, got {other:?}"),
            }
        }
    }

    #[test]
    fn dbs_accepts_valid_targets() {
        for good in [0.1, 0.8, 1.0] {
            let g = DemandBasedSwitching::with_target(good).unwrap();
            assert_eq!(g.target_utilization(), good);
        }
    }

    /// A mid-range target actually shapes the decision: at half busy with
    /// target 0.8 the demanded frequency is 2000·0.5/0.8 = 1250 MHz → the
    /// 1400 MHz state. (Guards the division the validation protects.)
    #[test]
    fn dbs_target_scales_demand() {
        let table = PStateTable::pentium_m_755();
        let mut g = DemandBasedSwitching::with_target(1.0).unwrap();
        let s = sample(1.2);
        let ctx = SampleContext { counters: &s, power: None, temperature: None, current: table.highest(), table: &table, queue: None };
        assert_eq!(g.decide(&ctx), table.highest(), "target 1.0 at full load keeps peak");
    }
}
