//! # aapm — Application-Aware Power Management
//!
//! Reproduction of the core contribution of *Application-Aware Power
//! Management* (Rajamani, Hanson, Rubio, Ghiasi, Rawson — IISWC 2006): a
//! three-phase **Monitor → Estimate → Control** methodology that lets a
//! user-level governor predict, every 10 ms, the power and performance
//! consequences of every available p-state — and two governors built on it:
//!
//! * [`pm::PerformanceMaximizer`] — the best possible performance under an
//!   explicit power limit (dynamic clocking vs worst-case static clocking);
//! * [`ps::PowerSave`] — energy savings under an explicit performance
//!   floor, even at 100 % load.
//!
//! Baselines ([`baselines`]), the measured-power-feedback extension the
//! paper sketches as future work ([`feedback`]), decorator layers built on
//! [`layer::GovernorLayer`], a data-driven governor registry
//! ([`spec::GovernorSpec`]), and the [`runtime::Session`] builder that
//! wires governors to the simulated Pentium M platform round out the
//! crate.
//!
//! # Quickstart
//!
//! Run PM against a synthetic SPEC workload under a 14.5 W limit:
//!
//! ```
//! use aapm::limits::PowerLimit;
//! use aapm::pm::PerformanceMaximizer;
//! use aapm::runtime::Session;
//! use aapm_models::power_model::PowerModel;
//! use aapm_platform::config::MachineConfig;
//! use aapm_workloads::spec;
//!
//! let ammp = spec::by_name("ammp").expect("ammp is in the suite");
//! let mut pm = PerformanceMaximizer::new(
//!     PowerModel::paper_table_ii(),
//!     PowerLimit::new(14.5)?,
//! );
//! let (report, _faults) = Session::builder(
//!     MachineConfig::pentium_m_755(42),
//!     ammp.program().scaled(0.02), // shortened for the doc test
//! )
//! .governor(&mut pm)
//! .run()?;
//! assert!(report.completed);
//! # Ok::<(), aapm_platform::error::PlatformError>(())
//! ```
//!
//! The same run from a serializable spec (the registry path the
//! experiment harness uses):
//!
//! ```
//! use aapm::runtime::Session;
//! use aapm::spec::{GovernorSpec, SpecModels};
//! use aapm_platform::config::MachineConfig;
//! use aapm_workloads::spec;
//!
//! let ammp = spec::by_name("ammp").expect("ammp is in the suite");
//! let spec = GovernorSpec::from_json(r#"{"kind":"pm","limit_w":14.5}"#)?;
//! let (report, _faults) = Session::builder(
//!     MachineConfig::pentium_m_755(42),
//!     ammp.program().scaled(0.02),
//! )
//! .governor_spec(&spec, &SpecModels::default())?
//! .run()?;
//! assert_eq!(report.governor, "pm");
//! # Ok::<(), aapm_platform::error::PlatformError>(())
//! ```

pub mod adaptive;
pub mod baselines;
pub mod cluster;
pub mod combined_pm;
pub mod feedback;
pub mod governor;
pub mod json;
pub mod layer;
pub mod limits;
pub mod phase_pm;
pub mod pm;
pub mod ps;
pub mod report;
pub mod runtime;
pub mod session;
pub mod slo_save;
pub mod spec;
pub mod thermal_guard;
pub mod throttle_save;
pub mod watchdog;

pub use baselines::{DemandBasedSwitching, StaticClock, Unconstrained};
pub use cluster::{BudgetTree, ClusterGovernor, ClusterSpec, FleetPmController, NodeSpec, RackSpec};
pub use combined_pm::CombinedPm;
pub use feedback::FeedbackPm;
pub use governor::{BoxedGovernor, Governor, GovernorCommand, SampleContext};
pub use layer::GovernorLayer;
pub use limits::{PerformanceFloor, PowerLimit};
pub use phase_pm::PhasePm;
pub use pm::{PerformanceMaximizer, PmConfig};
pub use ps::PowerSave;
pub use report::RunReport;
pub use runtime::{ScheduledCommand, Session, SessionBuilder, SessionStatus, SimulationConfig};
pub use session::{run_session, SessionReport};
pub use slo_save::{SloSave, SloSaveConfig};
pub use spec::{GovernorSpec, RegistryEntry, SpecModels, REGISTRY};
pub use thermal_guard::{ThermalGuard, ThermalGuardConfig};
pub use throttle_save::ThrottleSave;
pub use watchdog::{Watchdog, WatchdogConfig};
