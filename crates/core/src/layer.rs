//! Composable governor layers: interposition without forwarding boilerplate.
//!
//! Decorator governors ([`crate::watchdog::Watchdog`],
//! [`crate::thermal_guard::ThermalGuard`], [`crate::phase_pm::PhasePm`],
//! [`crate::combined_pm::CombinedPm`]) each used to hand-roll the whole
//! [`Governor`] trait surface just to override one or two methods, and the
//! copies drifted (notably `install_metrics`: Watchdog cloned the handle
//! and kept one, ThermalGuard forwarded by move and kept none — so it
//! could never emit its own events). [`GovernorLayer`] captures the
//! pattern once: a layer names its inner governor and overrides only the
//! `layer_*` hooks it interposes on; the blanket `impl Governor for L`
//! supplies uniform forwarding for everything else.
//!
//! The blanket impl fixes the metrics drift by construction: the handle is
//! always cloned down to the inner governor *and* offered to the layer via
//! [`GovernorLayer::layer_metrics`], so every level of a stack like
//! `Watchdog(ThermalGuard(Pm))` records into the same registry.

use aapm_platform::events::HardwareEvent;
use aapm_platform::pstate::PStateId;
use aapm_platform::throttle::ThrottleLevel;
use aapm_telemetry::metrics::Metrics;

use crate::governor::{Governor, GovernorCommand, SampleContext};

/// A governor decorator: wraps an inner governor and interposes on part of
/// the control surface.
///
/// Implementors provide [`layer_name`](GovernorLayer::layer_name) and the
/// two inner-governor accessors, then override only the hooks they
/// actually interpose on; every default delegates to the inner governor.
/// The blanket `impl<L: GovernorLayer> Governor for L` turns any layer
/// into a full [`Governor`], so layers nest arbitrarily deep.
pub trait GovernorLayer {
    /// The composed name shown in reports (e.g. `"watchdog<pm>"`).
    fn layer_name(&self) -> &str;

    /// The wrapped governor.
    fn inner_governor(&self) -> &dyn Governor;

    /// The wrapped governor, mutably.
    fn inner_governor_mut(&mut self) -> &mut dyn Governor;

    /// Hardware events to monitor; defaults to the inner governor's set.
    fn layer_events(&self) -> Vec<HardwareEvent> {
        self.inner_governor().events()
    }

    /// The p-state decision; defaults to the inner governor's.
    fn layer_decide(&mut self, ctx: &SampleContext<'_>) -> PStateId {
        self.inner_governor_mut().decide(ctx)
    }

    /// The clock-modulation decision; defaults to the inner governor's.
    fn layer_throttle(&mut self, ctx: &SampleContext<'_>) -> ThrottleLevel {
        self.inner_governor_mut().throttle_decision(ctx)
    }

    /// Runtime command delivery; defaults to forwarding inward.
    fn layer_command(&mut self, command: GovernorCommand) {
        self.inner_governor_mut().command(command);
    }

    /// Receives this layer's own clone of the metrics handle. The blanket
    /// impl has already forwarded a clone to the inner governor when this
    /// is called; the default discards it (correct for layers with nothing
    /// to record).
    fn layer_metrics(&mut self, _metrics: Metrics) {}
}

impl<L: GovernorLayer> Governor for L {
    fn name(&self) -> &str {
        self.layer_name()
    }

    fn events(&self) -> Vec<HardwareEvent> {
        self.layer_events()
    }

    fn decide(&mut self, ctx: &SampleContext<'_>) -> PStateId {
        self.layer_decide(ctx)
    }

    fn throttle_decision(&mut self, ctx: &SampleContext<'_>) -> ThrottleLevel {
        self.layer_throttle(ctx)
    }

    fn command(&mut self, command: GovernorCommand) {
        self.layer_command(command);
    }

    /// Clone-then-keep, uniformly: the inner chain gets its clone first,
    /// then the layer gets the original. Every level of a stack ends up
    /// sharing one registry.
    fn install_metrics(&mut self, metrics: Metrics) {
        self.inner_governor_mut().install_metrics(metrics.clone());
        self.layer_metrics(metrics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapm_platform::pstate::PStateTable;
    use aapm_platform::units::Seconds;
    use aapm_telemetry::pmc::CounterSample;

    /// A minimal layer that records whether each hook fired.
    struct Probe<G> {
        inner: G,
        name: String,
        metrics: Metrics,
    }

    impl<G: Governor> Probe<G> {
        fn new(inner: G) -> Self {
            let name = format!("probe<{}>", inner.name());
            Probe { inner, name, metrics: Metrics::disabled() }
        }
    }

    impl<G: Governor> GovernorLayer for Probe<G> {
        fn layer_name(&self) -> &str {
            &self.name
        }
        fn inner_governor(&self) -> &dyn Governor {
            &self.inner
        }
        fn inner_governor_mut(&mut self) -> &mut dyn Governor {
            &mut self.inner
        }
        fn layer_metrics(&mut self, metrics: Metrics) {
            metrics.inc("probe.installed");
            self.metrics = metrics;
        }
    }

    #[test]
    fn defaults_delegate_the_whole_surface() {
        let mut probe = Probe::new(crate::baselines::Unconstrained::new());
        let table = PStateTable::pentium_m_755();
        let s = CounterSample {
            start: Seconds::ZERO,
            end: Seconds::from_millis(10.0),
            cycles: 20e6,
            counts: vec![],
        };
        let ctx = SampleContext {
            counters: &s,
            power: None,
            temperature: None,
            current: PStateId::new(3),
            table: &table,
            queue: None,
        };
        assert_eq!(Governor::name(&probe), "probe<unconstrained>");
        assert_eq!(probe.decide(&ctx), table.highest());
        assert!(probe.throttle_decision(&ctx).is_full());
        assert!(probe.events().is_empty());
    }

    #[test]
    fn install_metrics_clones_down_and_keeps_one() {
        // A two-deep stack of probes: both layers must end up holding a
        // live clone of the same registry.
        let mut stack = Probe::new(Probe::new(crate::baselines::Unconstrained::new()));
        let metrics = Metrics::enabled();
        stack.install_metrics(metrics.clone());
        assert_eq!(metrics.snapshot().counter("probe.installed"), 2);
        assert!(stack.metrics.is_enabled());
        assert!(stack.inner.metrics.is_enabled());
        // Both kept handles write into the shared registry.
        stack.metrics.inc("outer");
        stack.inner.metrics.inc("inner");
        assert_eq!(metrics.snapshot().counter("outer"), 1);
        assert_eq!(metrics.snapshot().counter("inner"), 1);
    }
}
