//! Results of a governed run.

use aapm_platform::units::{Joules, Seconds, Watts};
use aapm_telemetry::metrics::MetricsSnapshot;
use aapm_telemetry::trace::RunTrace;

/// Everything measured during one governed run of one workload.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload (program) name.
    pub workload: String,
    /// Governor name.
    pub governor: String,
    /// Wall-clock time to program completion.
    pub execution_time: Seconds,
    /// Energy summed from measured 10 ms power samples (the paper's energy
    /// metric).
    pub measured_energy: Joules,
    /// Ground-truth energy (what a perfect meter would report).
    pub true_energy: Joules,
    /// Number of p-state transitions the governor performed.
    pub transitions: u64,
    /// Whether the program ran to completion (false only if the safety cap
    /// on samples was hit).
    pub completed: bool,
    /// The full sample trace.
    pub trace: RunTrace,
    /// End-of-run metrics snapshot (empty unless an enabled registry was
    /// installed via `SessionBuilder::observer`).
    pub metrics: MetricsSnapshot,
    /// Request accounting for open-loop (serve) runs; `None` on batch
    /// runs.
    pub requests: Option<RequestSummary>,
}

/// Request-level accounting of an open-loop serve run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestSummary {
    /// Requests that arrived during the run.
    pub arrived: u64,
    /// Requests completed during the run.
    pub completed: u64,
    /// Requests still queued when the run ended (the backlog). Queue
    /// accounting conserves: `arrived == completed + pending` always.
    pub pending: u64,
    /// True energy divided by completed requests (the serve experiment's
    /// headline metric); zero when nothing completed.
    pub energy_per_request: Joules,
    /// Mean sojourn (queueing + service) time over completed requests;
    /// zero when nothing completed.
    pub mean_sojourn: Seconds,
}

impl RunReport {
    /// Mean measured power over the run.
    pub fn mean_power(&self) -> Option<Watts> {
        self.trace.mean_power()
    }

    /// Maximum single-sample measured power.
    pub fn max_power(&self) -> Option<Watts> {
        self.trace.max_power()
    }

    /// Fraction of `window`-sample moving averages above `limit`
    /// (the paper's 100 ms adherence metric with `window = 10`).
    pub fn violation_fraction(&self, limit: Watts, window: usize) -> f64 {
        self.trace.violation_fraction(limit, window)
    }

    /// Performance relative to a baseline run of the same workload:
    /// `baseline_time / this_time` (> 1 means this run was faster).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        baseline.execution_time / self.execution_time
    }

    /// Performance reduction relative to a baseline:
    /// `1 − baseline_time / this_time` (positive = slower than baseline).
    pub fn performance_reduction_vs(&self, baseline: &RunReport) -> f64 {
        1.0 - baseline.execution_time / self.execution_time
    }

    /// Energy saved relative to a baseline, as a fraction of the baseline's
    /// measured energy.
    pub fn energy_savings_vs(&self, baseline: &RunReport) -> f64 {
        1.0 - self.measured_energy / baseline.measured_energy
    }

    /// Energy-delay product in joule-seconds — the classic efficiency
    /// metric that penalizes trading too much time for energy.
    pub fn energy_delay_product(&self) -> f64 {
        self.measured_energy.joules() * self.execution_time.seconds()
    }

    /// Energy-delay² product in joule-seconds² — weights performance more
    /// heavily, the conventional metric for high-performance parts.
    pub fn energy_delay_squared(&self) -> f64 {
        self.measured_energy.joules() * self.execution_time.seconds().powi(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(time_s: f64, energy_j: f64) -> RunReport {
        RunReport {
            workload: "w".into(),
            governor: "g".into(),
            execution_time: Seconds::new(time_s),
            measured_energy: Joules::new(energy_j),
            true_energy: Joules::new(energy_j),
            transitions: 0,
            completed: true,
            trace: RunTrace::new(Seconds::from_millis(10.0)),
            metrics: MetricsSnapshot::default(),
            requests: None,
        }
    }

    #[test]
    fn relative_metrics() {
        let fast = report(10.0, 150.0);
        let slow = report(12.5, 100.0);
        assert!((slow.speedup_over(&fast) - 0.8).abs() < 1e-12);
        assert!((fast.speedup_over(&slow) - 1.25).abs() < 1e-12);
        assert!((slow.performance_reduction_vs(&fast) - 0.2).abs() < 1e-12);
        assert!((slow.energy_savings_vs(&fast) - (1.0 - 100.0 / 150.0)).abs() < 1e-12);
    }

    #[test]
    fn edp_metrics_combine_energy_and_time() {
        let r = report(2.0, 10.0);
        assert!((r.energy_delay_product() - 20.0).abs() < 1e-12);
        assert!((r.energy_delay_squared() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_has_no_power_stats() {
        let r = report(1.0, 1.0);
        assert!(r.mean_power().is_none());
        assert!(r.max_power().is_none());
        assert_eq!(r.violation_fraction(Watts::new(10.0), 10), 0.0);
    }
}
