//! Telemetry watchdog: a last-resort safety decorator for any governor.
//!
//! Per-governor degradation (PM holding its last DPC, ThermalGuard failing
//! safe without a sensor) assumes *some* telemetry channel still works. The
//! watchdog covers the remaining case — a joint blackout where both the
//! power meter and the counter driver go silent — by forcing a configured
//! safe p-state after `loss_threshold` consecutive blind intervals and
//! handing control back only after `recovery_samples` consecutive healthy
//! ones. While engaged it still calls the inner governor every sample so
//! its internal state (streaks, corrections, ceilings) tracks the run and
//! is consistent when control returns.

use aapm_platform::error::PlatformError;
use aapm_platform::pstate::PStateId;
use aapm_telemetry::metrics::{EventKind, Metrics};

use crate::governor::{Governor, SampleContext};
use crate::layer::GovernorLayer;

/// Tunables of the telemetry watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Consecutive blind intervals (no power sample *and* no fresh counter
    /// sample) before the watchdog engages.
    pub loss_threshold: usize,
    /// P-state forced while engaged. The lowest state draws the least
    /// power, so it is safe under any power limit the run may carry.
    pub safe_pstate: PStateId,
    /// Consecutive healthy intervals before control returns to the inner
    /// governor.
    pub recovery_samples: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            loss_threshold: 10,
            safe_pstate: PStateId::new(0),
            recovery_samples: 10,
        }
    }
}

/// A governor decorator forcing a safe p-state through telemetry blackouts.
///
/// # Examples
///
/// ```
/// use aapm::limits::PowerLimit;
/// use aapm::pm::PerformanceMaximizer;
/// use aapm::watchdog::Watchdog;
/// use aapm_models::power_model::PowerModel;
///
/// let pm = PerformanceMaximizer::new(PowerModel::paper_table_ii(), PowerLimit::new(12.5)?);
/// let dog = Watchdog::new(pm);
/// assert_eq!(aapm::governor::Governor::name(&dog), "watchdog<pm>");
/// assert!(!dog.engaged());
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Watchdog<G> {
    inner: G,
    config: WatchdogConfig,
    loss_streak: usize,
    healthy_streak: usize,
    engaged: bool,
    name: String,
    /// Observability handle (disabled unless the runtime installs one).
    metrics: Metrics,
}

impl<G: Governor> Watchdog<G> {
    /// Wraps `inner` with the default thresholds (engage after 10 blind
    /// intervals, release after 10 healthy ones, safe state P0).
    pub fn new(inner: G) -> Self {
        Watchdog::with_config(inner, WatchdogConfig::default())
    }

    /// Wraps `inner` with explicit thresholds.
    pub fn with_config(inner: G, config: WatchdogConfig) -> Self {
        let name = format!("watchdog<{}>", inner.name());
        Watchdog {
            inner,
            config,
            loss_streak: 0,
            healthy_streak: 0,
            engaged: false,
            name,
            metrics: Metrics::disabled(),
        }
    }

    /// The wrapped governor.
    pub fn inner(&self) -> &G {
        &self.inner
    }

    /// The watchdog thresholds.
    pub fn config(&self) -> &WatchdogConfig {
        &self.config
    }

    /// Whether the watchdog currently overrides the inner governor.
    pub fn engaged(&self) -> bool {
        self.engaged
    }

    /// The ongoing outage as a [`PlatformError::TelemetryLost`], if the
    /// watchdog is engaged (for surfacing in logs and experiment notes).
    pub fn outage(&self) -> Option<PlatformError> {
        self.engaged.then_some(PlatformError::TelemetryLost {
            channel: "power+pmc",
            intervals: self.loss_streak,
        })
    }

    /// A blind interval: no power sample delivered and no exactly-measured
    /// counter in the sample. Uses [`has_fresh_counts`] rather than
    /// `is_fresh`: with an inner governor that monitors no PMC events the
    /// counter sample is empty, which is *absence* of evidence, not
    /// evidence of a live driver — power loss alone must then engage the
    /// watchdog, or `watchdog<unconstrained>` would sleep through any
    /// blackout (found by the fuzz harness; pinned by corpus fixture 011).
    ///
    /// [`has_fresh_counts`]: aapm_telemetry::pmc::CounterSample::has_fresh_counts
    fn is_blind(ctx: &SampleContext<'_>) -> bool {
        ctx.power.is_none() && !ctx.counters.has_fresh_counts()
    }
}

impl<G: Governor> GovernorLayer for Watchdog<G> {
    fn layer_name(&self) -> &str {
        &self.name
    }

    fn inner_governor(&self) -> &dyn Governor {
        &self.inner
    }

    fn inner_governor_mut(&mut self) -> &mut dyn Governor {
        &mut self.inner
    }

    fn layer_decide(&mut self, ctx: &SampleContext<'_>) -> PStateId {
        if Watchdog::<G>::is_blind(ctx) {
            self.loss_streak += 1;
            self.healthy_streak = 0;
            if self.loss_streak >= self.config.loss_threshold && !self.engaged {
                self.engaged = true;
                self.metrics.inc("watchdog.engagements");
                self.metrics.event(
                    ctx.counters.end,
                    EventKind::WatchdogEngaged { blind_intervals: self.loss_streak as u64 },
                );
            }
        } else {
            self.loss_streak = 0;
            if self.engaged {
                self.healthy_streak += 1;
                if self.healthy_streak >= self.config.recovery_samples {
                    self.engaged = false;
                    self.healthy_streak = 0;
                    self.metrics.inc("watchdog.releases");
                    self.metrics.event(ctx.counters.end, EventKind::WatchdogReleased);
                }
            }
        }
        // Always consult the inner governor so its state tracks the run.
        let wanted = self.inner.decide(ctx);
        if self.engaged {
            if ctx.table.contains(self.config.safe_pstate) {
                self.config.safe_pstate
            } else {
                ctx.table.lowest()
            }
        } else {
            wanted
        }
    }

    fn layer_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limits::PowerLimit;
    use crate::pm::PerformanceMaximizer;
    use aapm_models::power_model::PowerModel;
    use aapm_platform::events::HardwareEvent;
    use aapm_platform::pstate::PStateTable;
    use aapm_platform::units::{Seconds, Watts};
    use aapm_telemetry::daq::PowerSample;
    use aapm_telemetry::pmc::CounterSample;

    fn fresh_sample(dpc: f64) -> CounterSample {
        let cycles = 20e6;
        CounterSample {
            start: Seconds::ZERO,
            end: Seconds::from_millis(10.0),
            cycles,
            counts: vec![(HardwareEvent::InstructionsDecoded, dpc * cycles, true)],
        }
    }

    fn stale_sample() -> CounterSample {
        let cycles = 20e6;
        CounterSample {
            start: Seconds::ZERO,
            end: Seconds::from_millis(10.0),
            cycles,
            counts: vec![(HardwareEvent::InstructionsDecoded, 0.0, false)],
        }
    }

    fn power(watts: f64) -> PowerSample {
        PowerSample {
            start: Seconds::ZERO,
            end: Seconds::from_millis(10.0),
            power: Watts::new(watts),
            true_power: Watts::new(watts),
        }
    }

    fn watchdog() -> Watchdog<PerformanceMaximizer> {
        Watchdog::new(PerformanceMaximizer::new(
            PowerModel::paper_table_ii(),
            PowerLimit::new(30.0).unwrap(),
        ))
    }

    #[test]
    fn healthy_telemetry_passes_inner_decision_through() {
        let table = PStateTable::pentium_m_755();
        let mut dog = watchdog();
        let s = fresh_sample(1.0);
        let p = power(14.0);
        let ctx = SampleContext {
            counters: &s,
            power: Some(&p),
            temperature: None,
            current: PStateId::new(7),
            table: &table,
            queue: None,
        };
        assert_eq!(dog.decide(&ctx), PStateId::new(7));
        assert!(!dog.engaged());
        assert!(dog.outage().is_none());
    }

    #[test]
    fn blackout_engages_after_threshold_and_recovers() {
        let table = PStateTable::pentium_m_755();
        let mut dog = watchdog();
        let stale = stale_sample();
        let threshold = dog.config().loss_threshold;
        // Blind intervals below the threshold: inner governor still rules
        // (PM's own stale-hold keeps the current state).
        for i in 0..threshold - 1 {
            let ctx = SampleContext {
                counters: &stale,
                power: None,
                temperature: None,
                current: PStateId::new(7),
                table: &table,
                queue: None,
            };
            // Seed PM with one fresh decision first so it has DPC history.
            if i == 0 {
                let s = fresh_sample(1.0);
                let p = power(14.0);
                let warm = SampleContext {
                    counters: &s,
                    power: Some(&p),
                    temperature: None,
                    current: PStateId::new(7),
                    table: &table,
                    queue: None,
                };
                dog.decide(&warm);
            }
            dog.decide(&ctx);
            assert!(!dog.engaged(), "interval {i} must not engage yet");
        }
        // Crossing the threshold forces the safe state.
        let ctx = SampleContext {
            counters: &stale,
            power: None,
            temperature: None,
            current: PStateId::new(7),
            table: &table,
            queue: None,
        };
        assert_eq!(dog.decide(&ctx), PStateId::new(0));
        assert!(dog.engaged());
        match dog.outage() {
            Some(PlatformError::TelemetryLost { channel, intervals }) => {
                assert_eq!(channel, "power+pmc");
                assert!(intervals >= threshold);
            }
            other => panic!("expected TelemetryLost, got {other:?}"),
        }
        // Telemetry returns: stays engaged until a full healthy window.
        let s = fresh_sample(1.0);
        let p = power(8.0);
        for i in 0..dog.config().recovery_samples - 1 {
            let healthy = SampleContext {
                counters: &s,
                power: Some(&p),
                temperature: None,
                current: PStateId::new(0),
                table: &table,
                queue: None,
            };
            assert_eq!(dog.decide(&healthy), PStateId::new(0), "recovery interval {i}");
            assert!(dog.engaged());
        }
        let healthy = SampleContext {
            counters: &s,
            power: Some(&p),
            temperature: None,
            current: PStateId::new(0),
            table: &table,
            queue: None,
        };
        dog.decide(&healthy);
        assert!(!dog.engaged(), "full healthy window releases the watchdog");
    }

    /// An inner governor that monitors no PMC events yields empty counter
    /// samples; an empty sample is not proof of a live driver, so power
    /// loss alone must still engage the watchdog (corpus fixture 011).
    #[test]
    fn blackout_engages_with_no_monitored_counters() {
        let table = PStateTable::pentium_m_755();
        let mut dog = Watchdog::new(crate::baselines::Unconstrained::new());
        let empty = CounterSample {
            start: Seconds::ZERO,
            end: Seconds::from_millis(10.0),
            cycles: 20e6,
            counts: Vec::new(),
        };
        for _ in 0..dog.config().loss_threshold {
            let ctx = SampleContext {
                counters: &empty,
                power: None,
                temperature: None,
                current: PStateId::new(7),
                table: &table,
                queue: None,
            };
            dog.decide(&ctx);
        }
        assert!(dog.engaged(), "power loss alone must engage with empty counters");
        // With power back, the same empty sample is healthy again.
        let p = power(8.0);
        for _ in 0..dog.config().recovery_samples {
            let ctx = SampleContext {
                counters: &empty,
                power: Some(&p),
                temperature: None,
                current: PStateId::new(0),
                table: &table,
                queue: None,
            };
            dog.decide(&ctx);
        }
        assert!(!dog.engaged(), "power recovery must release the watchdog");
    }

    #[test]
    fn partial_telemetry_does_not_engage() {
        let table = PStateTable::pentium_m_755();
        let mut dog = watchdog();
        // Power lost but counters fresh: governors handle this themselves.
        let s = fresh_sample(1.0);
        for _ in 0..dog.config().loss_threshold * 3 {
            let ctx = SampleContext {
                counters: &s,
                power: None,
                temperature: None,
                current: PStateId::new(7),
                table: &table,
                queue: None,
            };
            dog.decide(&ctx);
        }
        assert!(!dog.engaged());
        // Counters stale but power present: also not a blackout.
        let stale = stale_sample();
        let p = power(14.0);
        for _ in 0..dog.config().loss_threshold * 3 {
            let ctx = SampleContext {
                counters: &stale,
                power: Some(&p),
                temperature: None,
                current: PStateId::new(7),
                table: &table,
                queue: None,
            };
            dog.decide(&ctx);
        }
        assert!(!dog.engaged());
    }
}
