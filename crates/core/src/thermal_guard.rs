//! ThermalGuard: a thermal envelope wrapped around any inner governor.
//!
//! The paper motivates PM with "programmable power and thermal envelopes"
//! (Foxton) and "partial supply/cooling failures". Power limits bound
//! instantaneous draw; the thermal envelope bounds the *integrated* history
//! the RC package model turns into die temperature. `ThermalGuard` layers a
//! temperature ceiling over any governor: while the sensor reads above the
//! cap it ratchets a p-state ceiling downward (one state per sample —
//! temperature moves slowly, so this converges long before the package time
//! constant); once the die cools below `cap − hysteresis` the ceiling
//! relaxes one state per raise window.

use aapm_platform::pstate::PStateId;
use aapm_platform::thermal::Celsius;
use aapm_telemetry::metrics::{EventKind, Metrics};

use crate::governor::{Governor, SampleContext};
use crate::layer::GovernorLayer;

/// Configuration of the thermal envelope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalGuardConfig {
    /// Die-temperature cap.
    pub cap: Celsius,
    /// Degrees below the cap before the ceiling relaxes.
    pub hysteresis_c: f64,
    /// Samples below `cap − hysteresis` before relaxing one state.
    pub relax_samples: usize,
    /// Consecutive missing sensor reads tolerated before the guard fails
    /// safe: with no temperature data it can no longer prove the envelope
    /// holds, so it starts ratcheting the ceiling down as if the die were
    /// hot.
    pub missing_fail_samples: usize,
}

impl Default for ThermalGuardConfig {
    fn default() -> Self {
        ThermalGuardConfig {
            cap: Celsius::new(77.0),
            hysteresis_c: 3.0,
            relax_samples: 50,
            missing_fail_samples: 25,
        }
    }
}

/// A governor decorator enforcing a die-temperature cap.
#[derive(Debug, Clone)]
pub struct ThermalGuard<G> {
    inner: G,
    config: ThermalGuardConfig,
    ceiling: Option<PStateId>,
    relax_streak: usize,
    /// Consecutive sensor reads that returned no temperature.
    miss_streak: usize,
    name: String,
    /// Observability handle (disabled unless the runtime installs one).
    metrics: Metrics,
}

impl<G: Governor> ThermalGuard<G> {
    /// Wraps `inner` with the default 77 °C envelope.
    pub fn new(inner: G) -> Self {
        ThermalGuard::with_config(inner, ThermalGuardConfig::default())
    }

    /// Wraps `inner` with an explicit envelope configuration.
    pub fn with_config(inner: G, config: ThermalGuardConfig) -> Self {
        let name = format!("thermal<{}>", inner.name());
        ThermalGuard {
            inner,
            config,
            ceiling: None,
            relax_streak: 0,
            miss_streak: 0,
            name,
            metrics: Metrics::disabled(),
        }
    }

    /// The wrapped governor.
    pub fn inner(&self) -> &G {
        &self.inner
    }

    /// The current p-state ceiling, if the guard is engaged.
    pub fn ceiling(&self) -> Option<PStateId> {
        self.ceiling
    }

    /// The envelope configuration.
    pub fn config(&self) -> &ThermalGuardConfig {
        &self.config
    }

    /// Records and applies a lowered ceiling (no event when the ratchet is
    /// already pinned at the same state, to bound trace volume).
    fn lower_ceiling(&mut self, ctx: &SampleContext<'_>, lowered: PStateId) {
        if self.ceiling != Some(lowered) {
            self.metrics.inc("thermal_guard.ceiling_lowered");
            self.metrics.event(
                ctx.counters.end,
                EventKind::ThermalCeilingLowered { ceiling: lowered.index() },
            );
        }
        self.ceiling = Some(lowered);
    }

    fn update_ceiling(&mut self, ctx: &SampleContext<'_>) {
        let Some(temperature) = ctx.temperature else {
            // Sensor dropout. Brief gaps are harmless (temperature moves on
            // package time constants), but a sustained outage means the
            // envelope can no longer be verified: fail safe by ratcheting
            // down one state per sample, exactly as if the die read hot.
            self.miss_streak += 1;
            if self.miss_streak >= self.config.missing_fail_samples {
                self.relax_streak = 0;
                let current_ceiling = self.ceiling.unwrap_or_else(|| ctx.table.highest());
                let lowered = ctx
                    .table
                    .next_lower(current_ceiling.min(ctx.current))
                    .unwrap_or(ctx.table.lowest());
                self.lower_ceiling(ctx, lowered);
            }
            return;
        };
        self.miss_streak = 0;
        if temperature > self.config.cap {
            // Too hot: ratchet down one state per sample.
            self.relax_streak = 0;
            let current_ceiling = self.ceiling.unwrap_or_else(|| ctx.table.highest());
            let lowered =
                ctx.table.next_lower(current_ceiling.min(ctx.current)).unwrap_or(ctx.table.lowest());
            self.lower_ceiling(ctx, lowered);
        } else if temperature.degrees() < self.config.cap.degrees() - self.config.hysteresis_c {
            // Comfortably cool: relax slowly.
            if let Some(ceiling) = self.ceiling {
                self.relax_streak += 1;
                if self.relax_streak >= self.config.relax_samples {
                    self.relax_streak = 0;
                    let raised = ctx.table.next_higher(ceiling);
                    self.ceiling = raised;
                    self.metrics.inc("thermal_guard.ceiling_raised");
                    self.metrics.event(
                        ctx.counters.end,
                        EventKind::ThermalCeilingRaised {
                            ceiling: raised.unwrap_or_else(|| ctx.table.highest()).index(),
                        },
                    );
                }
            }
        } else {
            self.relax_streak = 0;
        }
    }
}

impl<G: Governor> GovernorLayer for ThermalGuard<G> {
    fn layer_name(&self) -> &str {
        &self.name
    }

    fn inner_governor(&self) -> &dyn Governor {
        &self.inner
    }

    fn inner_governor_mut(&mut self) -> &mut dyn Governor {
        &mut self.inner
    }

    fn layer_decide(&mut self, ctx: &SampleContext<'_>) -> PStateId {
        self.update_ceiling(ctx);
        let wanted = self.inner.decide(ctx);
        match self.ceiling {
            Some(ceiling) => wanted.min(ceiling),
            None => wanted,
        }
    }

    fn layer_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Unconstrained;
    use aapm_platform::pstate::PStateTable;
    use aapm_platform::units::Seconds;
    use aapm_telemetry::pmc::CounterSample;

    fn sample() -> CounterSample {
        CounterSample {
            start: Seconds::ZERO,
            end: Seconds::from_millis(10.0),
            cycles: 20e6,
            counts: vec![],
        }
    }

    fn decide(
        guard: &mut ThermalGuard<Unconstrained>,
        table: &PStateTable,
        current: usize,
        temperature: f64,
    ) -> PStateId {
        let s = sample();
        let ctx = SampleContext {
            counters: &s,
            power: None,
            temperature: Some(Celsius::new(temperature)),
            current: PStateId::new(current),
            table,
            queue: None,
        };
        guard.decide(&ctx)
    }

    #[test]
    fn cool_die_passes_inner_decision_through() {
        let table = PStateTable::pentium_m_755();
        let mut guard = ThermalGuard::new(Unconstrained::new());
        assert_eq!(decide(&mut guard, &table, 7, 60.0), table.highest());
        assert_eq!(guard.ceiling(), None);
    }

    #[test]
    fn hot_die_ratchets_the_ceiling_down() {
        let table = PStateTable::pentium_m_755();
        let mut guard = ThermalGuard::new(Unconstrained::new());
        let first = decide(&mut guard, &table, 7, 80.0);
        assert_eq!(first, PStateId::new(6), "one state down per hot sample");
        let second = decide(&mut guard, &table, 6, 80.0);
        assert_eq!(second, PStateId::new(5));
        assert!(guard.ceiling().is_some());
    }

    #[test]
    fn ceiling_relaxes_after_sustained_cooling() {
        let table = PStateTable::pentium_m_755();
        let config = ThermalGuardConfig { relax_samples: 5, ..ThermalGuardConfig::default() };
        let mut guard = ThermalGuard::with_config(Unconstrained::new(), config);
        decide(&mut guard, &table, 7, 80.0);
        let engaged = guard.ceiling().unwrap();
        // Within hysteresis: no relaxation.
        for _ in 0..20 {
            decide(&mut guard, &table, engaged.index(), 75.0);
        }
        assert_eq!(guard.ceiling(), Some(engaged));
        // Below cap − hysteresis for relax_samples: one state back up.
        for _ in 0..5 {
            decide(&mut guard, &table, engaged.index(), 70.0);
        }
        assert_eq!(guard.ceiling(), table.next_higher(engaged));
    }

    #[test]
    fn brief_sensor_dropout_is_tolerated() {
        let table = PStateTable::pentium_m_755();
        let mut guard = ThermalGuard::new(Unconstrained::new());
        let s = sample();
        let ctx = SampleContext {
            counters: &s,
            power: None,
            temperature: None,
            current: PStateId::new(7),
            table: &table,
            queue: None,
        };
        assert_eq!(guard.decide(&ctx), table.highest());
        assert_eq!(guard.ceiling(), None, "one missing read must not engage the guard");
    }

    #[test]
    fn sustained_sensor_outage_fails_safe() {
        let table = PStateTable::pentium_m_755();
        let config =
            ThermalGuardConfig { missing_fail_samples: 10, ..ThermalGuardConfig::default() };
        let mut guard = ThermalGuard::with_config(Unconstrained::new(), config);
        let s = sample();
        let mut current = PStateId::new(7);
        // First 9 missing reads: tolerated.
        for _ in 0..9 {
            let ctx = SampleContext {
                counters: &s,
                power: None,
                temperature: None,
                current,
                table: &table,
                queue: None,
            };
            assert_eq!(guard.decide(&ctx), table.highest());
        }
        // From the 10th on the guard ratchets down one state per sample.
        for expected in (0..7).rev() {
            let ctx = SampleContext {
                counters: &s,
                power: None,
                temperature: None,
                current,
                table: &table,
                queue: None,
            };
            current = guard.decide(&ctx);
            assert_eq!(current, PStateId::new(expected));
        }
        // A returning sensor (cool die) lets the ceiling relax again.
        for _ in 0..guard.config().relax_samples {
            let ctx = SampleContext {
                counters: &s,
                power: None,
                temperature: Some(Celsius::new(60.0)),
                current,
                table: &table,
                queue: None,
            };
            guard.decide(&ctx);
        }
        assert_eq!(guard.ceiling(), Some(PStateId::new(1)), "recovery relaxes one state");
    }

    #[test]
    fn name_reflects_inner_governor() {
        let guard = ThermalGuard::new(Unconstrained::new());
        assert_eq!(Governor::name(&guard), "thermal<unconstrained>");
    }
}
